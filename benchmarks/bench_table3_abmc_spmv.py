"""Table III — effect of ABMC reordering on a *single* SpMV invocation.

Measured directly on the stand-in matrices: wall-clock of the compiled
(scipy/MKL-like) SpMV on the original matrix over the ABMC-reordered
matrix.  A ratio > 1 means the reordered SpMV is faster.  Expected shape
(Section V-E): most inputs sit near 1.0 (little impact); slowdowns stay
within a few percent.
"""

import time

import numpy as np

from repro.bench import MATRIX_NAMES, bench_rows, format_table, standin, write_report
from repro.bench.paper_data import TABLE3_ABMC_RATIO
from repro.reorder import abmc_ordering, permute_symmetric
from repro.sparse.convert import to_scipy_csr


def _best_time(fn, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure_all():
    n = min(bench_rows(), 20_000)
    rows = []
    ratios = {}
    for name in MATRIX_NAMES:
        a = standin(name, n)
        ordering = abmc_ordering(a, block_size=max(a.n_rows // 512, 1))
        reordered = permute_symmetric(a, ordering.perm)
        sp_orig = to_scipy_csr(a)
        sp_reord = to_scipy_csr(reordered)
        x = np.random.default_rng(3).standard_normal(a.n_rows)
        t_orig = _best_time(lambda: sp_orig @ x)
        t_reord = _best_time(lambda: sp_reord @ x)
        ratio = t_orig / t_reord
        ratios[name] = ratio
        rows.append([name, ratio, TABLE3_ABMC_RATIO[name]])
    return rows, ratios


def test_table3_abmc_single_spmv(benchmark):
    # The timed region is one representative reorder+SpMV pair; the full
    # 14-matrix sweep runs once outside the timer.
    a = standin("af_shell10", min(bench_rows(), 20_000))
    ordering = abmc_ordering(a, block_size=max(a.n_rows // 512, 1))
    reordered = permute_symmetric(a, ordering.perm)
    sp = to_scipy_csr(reordered)
    x = np.random.default_rng(3).standard_normal(a.n_rows)
    benchmark(lambda: sp @ x)

    rows, ratios = _measure_all()
    table = format_table(
        ["matrix", "measured ratio", "paper ratio (FT 2000+)"], rows,
        title="Table III: single-SpMV time original/ABMC-reordered "
              "(>1 = reordered faster); measured on stand-ins, this host",
    )
    write_report("table3_abmc_spmv", table)
    vals = np.array(list(ratios.values()))
    # ABMC must not wreck single-SpMV performance: like the paper, the
    # typical impact is small and slowdowns stay bounded.
    assert np.median(vals) > 0.85, f"median ratio {np.median(vals):.2f}"
    assert (vals > 0.6).all(), ratios
