"""Fig 7 — FBMPK speedup over the baseline MPK, k=5, four platforms.

Reproduced with the machine performance model over the registry's
paper-scale matrix statistics (the substitute for the paper's hardware;
DESIGN.md).  Expected shape: FBMPK wins on nearly every matrix, the Xeon
column is the strongest (its baseline is MKL), and the per-platform
averages land near the paper's 1.50/1.54/1.47/1.73.
"""

import numpy as np

from repro.bench import format_table, geomean, write_report
from repro.bench.paper_data import FIG7_AVERAGE_SPEEDUP, FIG7_MAX_SPEEDUP
from repro.machine import PLATFORMS, predict_speedup
from repro.matrices import TABLE2

K = 5


def _fig7_matrix():
    results = {}
    for m in TABLE2:
        stats = m.traffic_stats()
        results[m.name] = {
            p.name: predict_speedup(p, stats, k=K) for p in PLATFORMS
        }
    return results


def test_fig7_speedups(benchmark):
    results = benchmark(_fig7_matrix)
    rows = []
    for m in TABLE2:
        rows.append([m.name] + [results[m.name][p.name] for p in PLATFORMS])
    means = {p.name: geomean([results[m.name][p.name] for m in TABLE2])
             for p in PLATFORMS}
    rows.append(["average (model)"] + [means[p.name] for p in PLATFORMS])
    rows.append(["average (paper)"]
                + [FIG7_AVERAGE_SPEEDUP[p.name] for p in PLATFORMS])
    table = format_table(
        ["matrix"] + [p.name for p in PLATFORMS], rows,
        title=f"Fig 7: modelled FBMPK speedup over baseline MPK (k={K})",
    )
    write_report("fig7_speedup", table)

    # Shape assertions: FBMPK wins on the vast majority of cases…
    all_vals = [v for per in results.values() for v in per.values()]
    wins = sum(v > 1.0 for v in all_vals)
    assert wins >= 0.8 * len(all_vals), "FBMPK should win most cases"
    # …averages in the paper's band…
    for p in PLATFORMS:
        assert 1.1 <= means[p.name] <= 2.0, (p.name, means[p.name])
    # …Xeon (MKL baseline) shows the largest average gain…
    assert means["Intel Xeon"] == max(means.values())
    # …and the peak speedup is in the paper's ballpark (max 2.32).
    assert max(all_vals) <= FIG7_MAX_SPEEDUP + 0.6
    assert max(all_vals) >= 1.5
