"""Fig 11 — ABMC preprocessing cost in single-thread SpMV equivalents.

Measured on the stand-ins: wall-clock of the full ABMC pipeline
(adjacency + quotient colouring + renumbering) divided by one
single-thread SpMV on the same matrix.  The paper reports an average of
~36 SpMV invocations and argues the one-off cost amortises; our Python
graph pipeline is expected to land in the tens-to-hundreds band — the
*unit* (SpMV equivalents) makes the numbers comparable across substrates.
"""

import time

import numpy as np

from repro.bench import MATRIX_NAMES, bench_rows, format_table, standin, write_report
from repro.bench.paper_data import FIG11_MEAN_SPMV_EQUIVALENTS
from repro.reorder import abmc_ordering
from repro.sparse.convert import to_scipy_csr


def _spmv_seconds(a) -> float:
    sp = to_scipy_csr(a)
    x = np.random.default_rng(1).standard_normal(a.n_rows)
    best = float("inf")
    for _ in range(9):
        t0 = time.perf_counter()
        sp @ x
        best = min(best, time.perf_counter() - t0)
    return best


def test_fig11_preprocessing_cost(benchmark):
    n = min(bench_rows(), 15_000)
    # Timed region: one representative ABMC run.
    rep = standin("shipsec1", n)
    benchmark.pedantic(
        lambda: abmc_ordering(rep, block_size=max(rep.n_rows // 512, 1)),
        rounds=1, iterations=1,
    )

    rows = []
    equivalents = []
    for name in MATRIX_NAMES:
        a = standin(name, n)
        t_spmv = _spmv_seconds(a)
        t0 = time.perf_counter()
        abmc_ordering(a, block_size=max(a.n_rows // 512, 1))
        t_abmc = time.perf_counter() - t0
        eq = t_abmc / t_spmv
        equivalents.append(eq)
        rows.append([name, f"{t_abmc * 1e3:.0f}ms", f"{t_spmv * 1e6:.0f}us",
                     f"{eq:.0f}"])
    mean_eq = float(np.mean(equivalents))
    rows.append(["mean", "", "", f"{mean_eq:.0f}"])
    rows.append(["paper mean (C impl)", "", "",
                 f"{FIG11_MEAN_SPMV_EQUIVALENTS:.0f}"])
    table = format_table(
        ["matrix", "ABMC time", "1-thread SpMV", "SpMV equivalents"], rows,
        title="Fig 11: ABMC preprocessing cost normalised to single-thread "
              "SpMV invocations (Python pipeline vs paper's C pipeline)",
    )
    write_report("fig11_preprocessing", table)
    # One-off cost is finite and amortisable: bounded by a few thousand
    # SpMVs even in Python, i.e. negligible for solvers running 1e4+
    # MPK calls on the same matrix.
    assert mean_eq < 5000, mean_eq
    assert all(e > 1 for e in equivalents)
