"""Process pool vs thread pool vs serial on the FBMPK colour phases.

The experiment the shared-memory backend exists for: CPython's GIL
serialises the numpy-slicing portions of the threaded block kernels, so
on a multi-core host the process executor — same schedule, same
arithmetic, zero-copy operands in ``multiprocessing.shared_memory``,
one enqueue per phase per worker — should win on the small-block
schedules where per-task overhead dominates.  Every timed run is
checked bit-for-bit against the serial fused pipeline first, under
**all three assignment policies** for the process backend; a fast wrong
answer is worth nothing.

Numbers land in ``BENCH_process_executor.json`` at the repo root with
enough host metadata to interpret them.  Speedup bounds are asserted
from the CPUs this process may actually *use* —
``len(os.sched_getaffinity(0))``, not ``os.cpu_count()``: a container
pinned to one core of a 64-core box reports 64 CPUs but cannot run two
workers concurrently, and asserting a parallel speedup there is
meaningless.  With affinity < 2 every bound is refused and the report
flags the numbers as overhead documentation only:

* affinity >= 2: processes must reach at least 0.95x the thread
  backend at block >= 64 (batched dispatch closes the messaging gap);
* affinity >= 4: processes must additionally beat threads 1.5x at
  block <= 64 (the GIL-bound regime the backend exists for).
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import bench_rows, format_table, standin, write_report
from repro.core import build_fbmpk_operator
from repro.tune import trimmed_mean

K = 8
REPEATS = 5
WARMUP = 1
MATRIX = "cant"
BLOCK_SIZES = [16, 64, 256]
POLICIES = ["round_robin", "lpt", "dynamic"]


def _affinity() -> int:
    """CPUs this process can actually schedule onto (affinity mask),
    falling back to ``cpu_count`` where the API is missing."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


AFFINITY = _affinity()
N_WORKERS = max(2, min(4, AFFINITY))
#: Speedup bounds are only meaningful where the host can actually run
#: the workers concurrently; with affinity < 2 they are refused.
PARITY_BOUND = AFFINITY >= 2    # processes >= 0.95x threads, block >= 64
MULTICORE = AFFINITY >= 4       # processes >= 1.5x threads, block <= 64

ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = ROOT / "BENCH_process_executor.json"

_RESULTS = {}


def _timed(*runnables):
    """Trimmed-mean times, samples interleaved across all runnables so
    clock drift and cache state on a shared host bias none of them."""
    for _ in range(WARMUP):
        for run in runnables:
            run()
    samples = [[] for _ in runnables]
    for _ in range(REPEATS):
        for bucket, run in zip(samples, runnables):
            t0 = time.perf_counter()
            run()
            bucket.append(time.perf_counter() - t0)
    return [trimmed_mean(s) for s in samples]


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_processes_vs_threads_vs_serial(block_size, rng):
    a = standin(MATRIX, min(bench_rows(), 20_000))
    x = rng.standard_normal(a.n_rows)

    serial_op = build_fbmpk_operator(a, block_size=block_size)
    threads_op = build_fbmpk_operator(a, block_size=block_size,
                                      executor="threads",
                                      n_threads=N_WORKERS)
    procs_op = build_fbmpk_operator(a, block_size=block_size,
                                    executor="processes",
                                    n_threads=N_WORKERS)
    try:
        y_serial = serial_op.power(x, K)
        np.testing.assert_array_equal(threads_op.power(x, K), y_serial)
        # Bitwise identity must hold under every assignment policy: the
        # batched claim order is a per-colour permutation, and
        # same-colour blocks touch disjoint elements.
        for policy in POLICIES:
            procs_op.configure_executor(assign_policy=policy)
            np.testing.assert_array_equal(procs_op.power(x, K), y_serial,
                                          err_msg=f"policy={policy}")
        procs_op.configure_executor(assign_policy="lpt")

        serial_s, threads_s, procs_s = _timed(
            lambda: serial_op.power(x, K),
            lambda: threads_op.power(x, K),
            lambda: procs_op.power(x, K))

        stats = procs_op.last_stats
        _RESULTS[str(block_size)] = {
            "rows": a.n_rows,
            "nnz": a.nnz,
            "serial_s": serial_s,
            "threads_s": threads_s,
            "processes_s": procs_s,
            "speedup_vs_serial": serial_s / procs_s,
            "speedup_vs_threads": threads_s / procs_s,
            "barriers": stats.barriers,
            "enqueues": stats.enqueues,
            "steals": stats.steals,
            "efficiency": stats.efficiency,
            "identical_policies": POLICIES,
        }
        # One enqueue per phase per worker: the tentpole invariant,
        # asserted on every host (it is a counting fact, not a timing).
        assert stats.enqueues == stats.barriers * N_WORKERS
        if PARITY_BOUND and block_size >= 64:
            # Batched dispatch acceptance: at block >= 64 the process
            # backend must be within 5% of the thread backend.
            assert procs_s * 0.95 <= threads_s, (
                f"block={block_size}: processes {procs_s * 1e3:.3f} ms "
                f"below 0.95x of threads {threads_s * 1e3:.3f} ms")
        if MULTICORE and block_size <= 64:
            # With real cores and a small-block schedule, shared-memory
            # processes must beat the GIL-bound thread pool clearly.
            assert procs_s * 1.5 <= threads_s, (
                f"block={block_size}: processes {procs_s * 1e3:.3f} ms "
                f"not 1.5x faster than threads {threads_s * 1e3:.3f} ms")
    finally:
        serial_op.close()
        threads_op.close()
        procs_op.close()


def test_write_results():
    """Persist the numbers (runs last: file order)."""
    assert _RESULTS, "no benchmark results collected"
    payload = {
        "bench": "process_executor",
        "matrix": MATRIX,
        "k": K,
        "repeats": REPEATS,
        "n_workers": N_WORKERS,
        "host": {
            "cpu_count": os.cpu_count(),
            "affinity": AFFINITY,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "parity_bound_asserted": PARITY_BOUND,
            "multicore_bound_asserted": MULTICORE,
        },
        "block_sizes": _RESULTS,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2,
                                       sort_keys=True) + "\n")
    bounds = ("affinity<2: no speedup bounds asserted, numbers document "
              "overheads only" if not PARITY_BOUND else
              f"bounds asserted at affinity={AFFINITY}")
    rows = [[bs, r["rows"],
             f"{r['serial_s'] * 1e3:.3f}", f"{r['threads_s'] * 1e3:.3f}",
             f"{r['processes_s'] * 1e3:.3f}",
             f"{r['speedup_vs_serial']:.2f}x",
             f"{r['speedup_vs_threads']:.2f}x",
             r["enqueues"], r["steals"],
             f"{r['efficiency']:.1%}"]
            for bs, r in _RESULTS.items()]
    table = format_table(
        ["block", "rows", "serial (ms)", "threads (ms)", "processes (ms)",
         "vs serial", "vs threads", "enqueues", "steals",
         "proc efficiency"],
        rows,
        title=f"A^{K} x executor comparison, {MATRIX} stand-in, "
              f"{N_WORKERS} workers, affinity {AFFINITY} of "
              f"{os.cpu_count()} CPUs ({bounds}; "
              f"trimmed mean of {REPEATS})")
    write_report("process_executor", table)
    print()
    print(table)
