"""Table II — input matrices.

Prints the registry's paper-scale statistics and validates that the
scale-reduced stand-ins preserve the structural character the traffic
analysis keys on: nnz/row (within a tolerance) and (un)symmetry.  The
timed region is stand-in generation for one representative matrix.
"""

import pytest

from repro.bench import MATRIX_NAMES, bench_rows, format_table, standin, write_report
from repro.matrices import TABLE2, get_matrix_info


def test_table2_registry(benchmark):
    rows = benchmark(lambda: [
        [m.id, m.name, f"{m.rows / 1e6:.2f}M", f"{m.nnz / 1e6:.2f}M",
         f"{m.nnz_per_row:.2f}", "sym" if m.symmetric else "unsym",
         m.domain]
        for m in TABLE2
    ])
    table = format_table(
        ["ID", "Input", "Rows(N)", "#nnz", "#nnz/N", "Symmetry", "Domain"],
        rows, title="Table II: input matrices (paper-scale statistics)",
    )
    write_report("table2_matrices", table)
    assert len(TABLE2) == 14
    unsym = {m.name for m in TABLE2 if not m.symmetric}
    assert unsym == {"cage14", "ML_Geer"}


@pytest.mark.parametrize("name", ["audikw_1", "G3_circuit", "cage14",
                                  "nlpkkt120"])
def test_standin_structure(benchmark, name):
    """Stand-ins match the published nnz/row within 40% and preserve
    symmetry exactly (generation is the timed region)."""
    info = get_matrix_info(name)
    n = min(bench_rows(), 8000)
    a = benchmark.pedantic(
        lambda: info.generate(n_rows=n, seed=info.id + 100),
        rounds=1, iterations=1,
    )
    measured = a.nnz / a.n_rows
    assert measured == pytest.approx(info.nnz_per_row, rel=0.4), (
        f"{name}: stand-in nnz/row {measured:.1f} vs paper "
        f"{info.nnz_per_row:.1f}"
    )
    assert a.is_symmetric(tol=1e-12) == info.symmetric
