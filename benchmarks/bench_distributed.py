"""Distributed MPK communication study (Sections VI/VII context).

Compares the standard k-round distributed MPK with the one-round
communication-avoiding variant over the power k, on a stencil-like and
an expander-like stand-in, reporting rounds / volume / redundant work
and alpha-beta times for a latency-bound and a bandwidth-bound network.
Expected shape: CA wins rounds always; it wins *time* on latency-bound
networks and stencil-like matrices, and loses volume catastrophically on
fast-expanding structures — the boundary of the s-step approach the
paper's related work describes.
"""

import numpy as np
import pytest

from repro.bench import format_table, write_report
from repro.core.mpk import mpk_reference_dense
from repro.distributed import distributed_mpk, distributed_mpk_ca, partition_rows
from repro.matrices import banded_random

N = 1200
RANKS = 8
LATENCY_NET = dict(latency_s=5e-5, bw_doubles_per_s=1.25e9)
BANDWIDTH_NET = dict(latency_s=1e-7, bw_doubles_per_s=2e7)


@pytest.fixture(scope="module")
def stencil_like():
    return banded_random(N, 6, 5, symmetric=True, seed=11)


@pytest.fixture(scope="module")
def expander_like():
    return banded_random(N, 8, 500, symmetric=True, seed=12)


def test_distributed_comm_sweep(benchmark, stencil_like, expander_like):
    x = np.random.default_rng(3).standard_normal(N)
    rows = []
    for label, a in (("stencil", stencil_like), ("expander", expander_like)):
        part = partition_rows(a, RANKS)
        for k in (2, 4, 6, 8):
            y_std, s_std = distributed_mpk(part, x, k)
            y_ca, s_ca = distributed_mpk_ca(part, x, k)
            ref = mpk_reference_dense(a, x, k)
            assert np.allclose(y_std, ref, rtol=1e-8, atol=1e-10)
            assert np.allclose(y_ca, ref, rtol=1e-8, atol=1e-10)
            rows.append([
                label, k,
                f"{s_std.rounds}/{s_ca.rounds}",
                f"{s_std.volume_doubles}/{s_ca.volume_doubles}",
                s_ca.redundant_flops,
                f"{s_std.time_seconds(**LATENCY_NET) * 1e3:.2f}",
                f"{s_ca.time_seconds(**LATENCY_NET) * 1e3:.2f}",
            ])
    table = format_table(
        ["matrix", "k", "rounds std/CA", "volume std/CA",
         "CA redundant flops", "std ms (latency net)", "CA ms"],
        rows,
        title="Distributed MPK: standard vs communication-avoiding "
              f"({N} rows, {RANKS} ranks)",
    )
    write_report("distributed_mpk", table)

    # Timed region: one CA run at k=6 on the stencil-like matrix.
    part = partition_rows(stencil_like, RANKS)
    benchmark.pedantic(lambda: distributed_mpk_ca(part, x, 6),
                       rounds=1, iterations=1)

    # Shape assertions.
    stencil_rows = [r for r in rows if r[0] == "stencil"]
    for r in stencil_rows:
        k = r[1]
        s_std_t = float(r[5])
        s_ca_t = float(r[6])
        # Latency-bound network: CA's single round wins on the stencil.
        assert s_ca_t < s_std_t, r
    # Expander: the k-hop ghost zone saturates at the whole vector, so
    # every rank recomputes nearly the full problem — CA's redundant
    # flops dwarf the useful work (2 * nnz * k), which is how
    # communication avoidance fails off the stencil regime.
    exp8 = [r for r in rows if r[0] == "expander" and r[1] == 8][0]
    useful_flops = 2 * expander_like.nnz * 8
    assert exp8[4] > 2 * useful_flops, exp8
    # On the stencil the redundancy stays a small multiple of one SpMV.
    st8 = [r for r in rows if r[0] == "stencil" and r[1] == 8][0]
    assert st8[4] < 2 * stencil_like.nnz * 8, st8
