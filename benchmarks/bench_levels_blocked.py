"""Levels-blocked (RACE-style) schedule vs FBMPK across the power sweep.

The tentpole claim this bench records: FBMPK's matrix traffic grows as
``(k + 1) / 2`` streams while the levels-blocked wavefront keeps a
cache-resident block window and streams the matrix once (plus reloads
when the ``(2k - 1)``-block diamond outgrows cache) — so as ``k`` grows
there is a DRAM-traffic crossover where residency beats fusion.  For
each matrix class and ``k`` in ``KS`` it measures the wall-clock of both
operators (bit-identity asserted first — the schedules are two orderings
of the same arithmetic), records the memsim-predicted traffic ratio at
the host LLC size, and stores the predicted crossover ``k`` from
:func:`repro.memsim.levels_blocked_crossover`.

Results land in ``BENCH_levels_blocked.json`` at the repo root plus a
table in ``benchmarks/out/``.  No speedup is *asserted*: the numpy
sweep kernels are bandwidth-modelled, not bandwidth-bound, so the
measured ratio documents where this implementation stands against the
model rather than gating CI.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import bench_rows, format_table, standin, write_report
from repro.core import build_fbmpk_operator
from repro.machine import XEON_6230R
from repro.memsim import (
    fbmpk_traffic,
    levels_blocked_crossover,
    levels_blocked_traffic,
)
from repro.memsim.traffic import MatrixTrafficStats
from repro.tune import trimmed_mean

KS = [2, 4, 8, 16]
REPEATS = 5
WARMUP = 1
BLOCK_ROWS = 4096
MATRICES = ["cant", "shipsec1", "G3_circuit"]

ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = ROOT / "BENCH_levels_blocked.json"

_RESULTS = {}


def _timed_pair(run_a, run_b):
    """Interleaved trimmed-mean timing (see bench_autotune)."""
    for _ in range(WARMUP):
        run_a()
        run_b()
    samples_a, samples_b = [], []
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        run_a()
        samples_a.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_b()
        samples_b.append(time.perf_counter() - t0)
    return trimmed_mean(samples_a), trimmed_mean(samples_b)


@pytest.mark.parametrize("name", MATRICES)
def test_levels_blocked_vs_fbmpk(name, rng):
    a = standin(name, min(bench_rows(), 8_000))
    x = rng.standard_normal(a.n_rows)
    cache_bytes = XEON_6230R.total_last_level_bytes()
    stats = MatrixTrafficStats.from_csr(a)

    fb = build_fbmpk_operator(a)
    lb = build_fbmpk_operator(a, strategy="levels-blocked",
                              block_size=BLOCK_ROWS)
    ref = build_fbmpk_operator(a, strategy="levels")
    per_k = {}
    try:
        for k in KS:
            # Both schedules replay serial arithmetic exactly: FBMPK
            # matches its own serial path by construction, and
            # levels-blocked must match serial FBMPK with the levels
            # grouping bit-for-bit.
            assert np.array_equal(lb.power(x, k), ref.power(x, k))

            fb_s, lb_s = _timed_pair(lambda: fb.power(x, k),
                                     lambda: lb.power(x, k))
            fb_bytes = fbmpk_traffic(stats, k, cache_bytes).total_bytes
            lb_bytes = levels_blocked_traffic(
                stats, k, cache_bytes, block_rows=BLOCK_ROWS).total_bytes
            per_k[str(k)] = {
                "fbmpk_s": fb_s,
                "levels_blocked_s": lb_s,
                "measured_speedup": fb_s / lb_s,
                "predicted_bytes_ratio": lb_bytes / fb_bytes,
            }
        crossover = levels_blocked_crossover(stats, cache_bytes,
                                             block_rows=BLOCK_ROWS)
        _RESULTS[name] = {
            "rows": a.n_rows,
            "nnz": a.nnz,
            "block_rows": BLOCK_ROWS,
            "repeats": REPEATS,
            "cache_bytes": cache_bytes,
            "predicted_crossover_k": crossover,
            "per_k": per_k,
        }
    finally:
        fb.close()
        lb.close()
        ref.close()


def test_write_results():
    """Persist the sweep (runs last: file order)."""
    assert _RESULTS, "no benchmark results collected"
    payload = {
        "bench": "levels_blocked",
        "ks": KS,
        "block_rows": BLOCK_ROWS,
        "repeats": REPEATS,
        "matrices": _RESULTS,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2,
                                       sort_keys=True) + "\n")
    rows = []
    for name, r in _RESULTS.items():
        for k in KS:
            p = r["per_k"][str(k)]
            rows.append([
                name, k,
                f"{p['fbmpk_s'] * 1e3:.3f}",
                f"{p['levels_blocked_s'] * 1e3:.3f}",
                f"{p['measured_speedup']:.2f}x",
                f"{p['predicted_bytes_ratio']:.3f}",
                str(r["predicted_crossover_k"]),
            ])
    table = format_table(
        ["matrix", "k", "fbmpk (ms)", "lvl-blocked (ms)",
         "measured speedup", "predicted lb/fb bytes", "crossover k"],
        rows, title=f"levels-blocked vs FBMPK A^k x "
                    f"(block_rows={BLOCK_ROWS}, trimmed mean of "
                    f"{REPEATS})")
    write_report("levels_blocked", table)
    print()
    print(table)
