"""Autotuner amortisation: tuned vs default wall-clock per matrix class.

The OSKI-style argument the tuner must earn: after a one-off search
(amortised exactly like the paper's Fig. 11 preprocessing), executing
``A^8 x`` through the tuned plan is never slower than the untuned
default — the tuner measured the default as a candidate, so it can at
worst pick it back.  This bench asserts that end to end per matrix
class, with trimmed-mean timing over ``REPEATS >= 5`` repeats, and
records the numbers in ``BENCH_autotune.json`` at the repo root plus a
human-readable table in ``benchmarks/out/``.

The cache-amortisation claim is also asserted: a second
``autotune_power`` call against the populated cache must return the
same plan from disk without timing a single candidate.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import bench_rows, format_table, standin, write_report
from repro.core import build_fbmpk_operator
from repro.tune import PlanCache, autotune_power, trimmed_mean

K = 8
REPEATS = 5
WARMUP = 1
#: One representative per structural class of the Table II set:
#: banded/FEM (cant), wide-band FEM (shipsec1), circuit/graph-like
#: (G3_circuit).
MATRICES = ["cant", "shipsec1", "G3_circuit"]

ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = ROOT / "BENCH_autotune.json"

_RESULTS = {}


def _timed_pair(run_a, run_b):
    """Trimmed-mean times of two runnables, samples interleaved
    (a, b, a, b, ...) so clock drift and cache state on a shared host
    hit both sides equally instead of biasing whichever ran last."""
    for _ in range(WARMUP):
        run_a()
        run_b()
    samples_a, samples_b = [], []
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        run_a()
        samples_a.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_b()
        samples_b.append(time.perf_counter() - t0)
    return trimmed_mean(samples_a), trimmed_mean(samples_b)


@pytest.mark.parametrize("name", MATRICES)
def test_tuned_not_slower_than_default(name, tmp_path, rng):
    a = standin(name, min(bench_rows(), 8_000))
    x = rng.standard_normal(a.n_rows)

    default_op = build_fbmpk_operator(a)
    cache = PlanCache(tmp_path)
    t_search0 = time.perf_counter()
    tuned_op, result = autotune_power(a, k=K, cache=cache, repeats=REPEATS)
    search_s = time.perf_counter() - t_search0
    try:
        y_default = default_op.power(x, K)
        assert np.array_equal(tuned_op.power(x, K), y_default)

        default_s, tuned_s = _timed_pair(
            lambda: default_op.power(x, K),
            lambda: tuned_op.power(x, K))

        # Cache amortisation: the second process skips the search.
        t_hit0 = time.perf_counter()
        hit_op, hit = autotune_power(a, k=K, cache=cache)
        hit_s = time.perf_counter() - t_hit0
        assert hit.source == "cache"
        assert hit.plan == result.plan
        assert hit.trials == []
        assert np.array_equal(hit_op.power(x, K), y_default)
        hit_op.close()

        _RESULTS[name] = {
            "rows": a.n_rows,
            "nnz": a.nnz,
            "k": K,
            "repeats": REPEATS,
            "plan": result.plan.label,
            "default_s": default_s,
            "tuned_s": tuned_s,
            "speedup": default_s / tuned_s,
            "search_s": search_s,
            "cache_hit_s": hit_s,
            "candidates": len(result.trials),
        }
        # The acceptance bound: tuned execution must not lose to the
        # default it was gated against.  5% covers timer noise on a
        # busy host — the selection itself cannot regress because the
        # default is always in the candidate set.
        assert tuned_s <= default_s * 1.05, (
            f"{name}: tuned {tuned_s * 1e3:.3f} ms > default "
            f"{default_s * 1e3:.3f} ms")
    finally:
        default_op.close()
        tuned_op.close()


_RACING = {}


def test_racing_reduces_search_wall_clock(rng):
    """The satellite claim: racing drops dominated candidates after one
    repeat, so the same search over the same candidate space finishes
    faster and still selects the same plan."""
    a = standin("cant", min(bench_rows(), 8_000))
    op_full, full = autotune_power(a, k=K, cache=False, repeats=REPEATS,
                                   racing=False)
    op_full.close()
    op_raced, raced = autotune_power(a, k=K, cache=False, repeats=REPEATS,
                                     racing=True)
    op_raced.close()
    assert raced.plan == full.plan, (
        f"racing changed the winner: {raced.plan.label} "
        f"vs {full.plan.label}")
    n_raced = sum(1 for t in raced.trials if t.raced)
    _RACING.update({
        "matrix": "cant",
        "rows": a.n_rows,
        "plan": full.plan.label,
        "search_s_full": full.search_s,
        "search_s_racing": raced.search_s,
        "candidates": len(full.trials),
        "candidates_raced": n_raced,
    })
    # Only assert a saving when something was actually raced out — on a
    # host where every candidate stays within the margin the two
    # searches do identical work.
    if n_raced:
        assert raced.search_s < full.search_s * 1.05


def test_write_results():
    """Persist the per-class numbers (runs last: file order)."""
    assert _RESULTS, "no benchmark results collected"
    payload = {
        "bench": "autotune",
        "k": K,
        "repeats": REPEATS,
        "matrices": _RESULTS,
        "racing": _RACING,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2,
                                       sort_keys=True) + "\n")
    rows = [[name, r["rows"], r["plan"],
             f"{r['default_s'] * 1e3:.3f}", f"{r['tuned_s'] * 1e3:.3f}",
             f"{r['speedup']:.2f}x", f"{r['search_s']:.2f}",
             f"{r['cache_hit_s'] * 1e3:.1f}"]
            for name, r in _RESULTS.items()]
    table = format_table(
        ["matrix", "rows", "winning plan", "default (ms)", "tuned (ms)",
         "speedup", "search (s)", "cache hit (ms)"],
        rows, title=f"autotuned vs default A^{K} x "
                    f"(trimmed mean of {REPEATS})")
    write_report("autotune", table)
    print()
    print(table)
