"""Related work (Section VI) — FBMPK versus LB-MPK across k.

The paper argues LB-MPK's cache-blocking degrades as k grows (~6-8)
because it must keep k in-flight iterates' level groups hot, while FBMPK
only ever keeps two live iterates.  Reproduced with the two traffic
models on paper-scale statistics — the expected *shape* is a crossover:
LB-MPK is competitive (or better) at small k and loses at large k — plus
a correctness-checked wall-clock run of the actual LB-MPK implementation
on a stand-in.
"""

import numpy as np
import pytest

from repro.baselines import LevelBlockedMPK, lbmpk_traffic_estimate
from repro.bench import bench_rows, format_table, standin, write_report
from repro.core import mpk_standard
from repro.machine import XEON_6230R
from repro.matrices import get_matrix_info
from repro.memsim import fbmpk_traffic

KS = list(range(2, 11))


def test_lbmpk_vs_fbmpk_traffic(benchmark):
    info = get_matrix_info("audikw_1")
    stats = info.traffic_stats()
    cache = XEON_6230R.total_last_level_bytes()

    def sweep():
        rows = []
        for k in KS:
            fb = fbmpk_traffic(stats, k, cache,
                               residency_cache_bytes=cache).total_bytes
            lb = lbmpk_traffic_estimate(stats, k, cache).total_bytes
            rows.append([k, fb / 1e9, lb / 1e9, lb / fb])
        return rows

    rows = benchmark(sweep)
    table = format_table(
        ["k", "FBMPK GB", "LB-MPK GB", "LB/FB ratio"], rows,
        title="Section VI: modelled DRAM volume, FBMPK vs LB-MPK "
              "(audikw_1 at paper scale, Xeon LLC)",
    )
    write_report("lbmpk_comparison", table)
    ratio_by_k = {row[0]: row[3] for row in rows}
    # LB-MPK's relative cost grows with k (its cache window scales with
    # k; FBMPK's does not) …
    assert ratio_by_k[10] > ratio_by_k[2], ratio_by_k
    # …and by large k FBMPK moves materially less data.
    assert ratio_by_k[10] > 1.1, ratio_by_k


def test_lbmpk_wallclock(benchmark):
    """Actual LB-MPK execution on a stand-in (correctness + timing)."""
    a = standin("G3_circuit", min(bench_rows(), 10_000))
    x = np.random.default_rng(11).standard_normal(a.n_rows)
    op = LevelBlockedMPK(a)
    assert op._validate_levels()
    k = 4
    y = benchmark(lambda: op.power(x, k))
    assert np.allclose(y, mpk_standard(a, x, k), rtol=1e-8, atol=1e-10)
