"""Table IV — storage overhead of the L+U+d layout versus monolithic CSR.

Reproduced two ways: the symbolic array-length formulas of Table IV
(paper scale, from the registry statistics) and measured element counts
from actually splitting a stand-in.  Expected: the two layouts cost
nearly the same (ratio ~1.0x), because the diagonal moves out of the
index/value arrays and pays instead for one extra row_ptr array and the
dense ``d``.
"""

from repro.bench import MATRIX_NAMES, bench_rows, format_table, standin, write_report
from repro.core.partition import split_ldu
from repro.matrices import TABLE2


def test_table4_formulas(benchmark):
    def symbolic():
        rows = []
        for m in TABLE2:
            n, nnz = m.rows, m.nnz
            csr_total = nnz + (n + 1) + nnz
            ldu_total = (nnz - n) + 2 * (n + 1) + (nnz - n) + n
            rows.append([m.name, csr_total, ldu_total,
                         ldu_total / csr_total])
        return rows

    rows = benchmark(symbolic)
    table = format_table(
        ["matrix", "CSR elements", "L+U+d elements", "ratio"], rows,
        title="Table IV: storage element counts (paper-scale, assuming a "
              "full diagonal)",
    )
    write_report("table4_storage", table)
    for _, csr_total, ldu_total, ratio in rows:
        assert 0.9 < ratio < 1.1, ratio


def test_table4_measured_split(benchmark):
    """Split a real stand-in and compare the measured report with the
    Table IV formulas (the split is the timed region)."""
    a = standin("pwtk", min(bench_rows(), 15_000))
    part = benchmark(lambda: split_ldu(a))
    report = part.storage_report()
    n, nnz = a.n_rows, a.nnz
    assert report.csr_col_ind == nnz
    assert report.csr_row_ptr == n + 1
    assert report.ldu_row_ptr == 2 * (n + 1)
    assert report.ldu_d == n
    # Off-diagonal entry conservation: col_ind counts nnz minus the
    # stored diagonal entries.
    assert report.ldu_col_ind == part.lower.nnz + part.upper.nnz
    assert 0.9 < report.overhead_ratio() < 1.1
    # Round trip: the partition reassembles the original matrix exactly.
    assert part.reassemble().sort_indices().nnz <= nnz
