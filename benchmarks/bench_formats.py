"""Storage-format study (Section VII future work) — CSR vs ELLPACK vs
SELL-C-sigma.

The paper names ELLPACK and Sliced ELL as candidate formats for the
FBMPK submatrices.  This bench compares the formats implemented here on
a regular (FEM-like) and an irregular (KKT-like) stand-in: SpMV
wall-clock and the padding overhead that decides ELL's viability.
"""

import numpy as np
import pytest

from repro.bench import bench_rows, format_table, standin, write_report
from repro.sparse import BSRMatrix, ELLMatrix, SellCSigmaMatrix


@pytest.fixture(scope="module")
def regular():
    return standin("af_shell10", min(bench_rows(), 15_000))


@pytest.fixture(scope="module")
def irregular():
    return standin("nlpkkt120", min(bench_rows(), 15_000))


@pytest.mark.benchmark(group="formats-spmv")
def test_csr_spmv(benchmark, regular):
    x = np.random.default_rng(0).standard_normal(regular.n_cols)
    benchmark(lambda: regular.matvec(x))


@pytest.mark.benchmark(group="formats-spmv")
def test_ell_spmv(benchmark, regular):
    ell = ELLMatrix.from_csr(regular)
    x = np.random.default_rng(0).standard_normal(regular.n_cols)
    y = benchmark(lambda: ell.matvec(x))
    assert np.allclose(y, regular.matvec(x), rtol=1e-10, atol=1e-12)


@pytest.mark.benchmark(group="formats-spmv")
def test_sell_spmv(benchmark, regular):
    sell = SellCSigmaMatrix(regular, c=32, sigma=256)
    x = np.random.default_rng(0).standard_normal(regular.n_cols)
    y = benchmark(lambda: sell.matvec(x))
    assert np.allclose(y, regular.matvec(x), rtol=1e-10, atol=1e-12)


@pytest.mark.benchmark(group="formats-spmv")
def test_bsr_spmv(benchmark, regular):
    # Pad the row count to a multiple of the block size via slicing.
    r = 4
    n = (regular.n_rows // r) * r
    a = regular.row_slice(0, n)
    # Square it up: keep only columns < n (drop the tail columns).
    import numpy as np2
    rows = np2.repeat(np2.arange(n, dtype=np2.int64), a.row_nnz())
    keep = a.indices < n
    from repro.sparse import CSRMatrix
    sq = CSRMatrix.from_coo_arrays(rows[keep], a.indices[keep],
                                   a.data[keep], (n, n),
                                   sum_duplicates=False)
    bsr = BSRMatrix.from_csr(sq, r)
    x = np.random.default_rng(0).standard_normal(n)
    y = benchmark(lambda: bsr.matvec(x))
    assert np.allclose(y, sq.matvec(x), rtol=1e-10, atol=1e-12)


def test_format_padding_report(benchmark, regular, irregular):
    def report():
        rows = []
        for label, mat in (("af_shell10 (regular)", regular),
                           ("nlpkkt120 (irregular)", irregular)):
            ell = ELLMatrix.from_csr(mat)
            sell = SellCSigmaMatrix(mat, c=32, sigma=256)
            rows.append([
                label, mat.nnz,
                f"{ell.padding / mat.nnz:.2f}x",
                f"{sell.padding / mat.nnz:.2f}x",
                f"{sell.memory_bytes() / mat.memory_bytes():.2f}x",
            ])
        return rows

    rows = benchmark.pedantic(report, rounds=1, iterations=1)
    table = format_table(
        ["matrix", "nnz", "ELL padding", "SELL-32-256 padding",
         "SELL/CSR bytes"],
        rows,
        title="Section VII: storage-format padding overheads",
    )
    write_report("formats", table)
    # SELL's sorting window must beat plain ELL on the irregular matrix.
    ell_irr = ELLMatrix.from_csr(irregular)
    sell_irr = SellCSigmaMatrix(irregular, c=32, sigma=256)
    assert sell_irr.padding < ell_irr.padding
