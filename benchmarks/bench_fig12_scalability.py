"""Fig 12 — thread scalability on FT 2000+ (k=5).

Two reproductions:

* paper scale: the performance model sweeps threads for all 14 matrices,
  normalised to the single-threaded baseline — expected averages ~2x at
  4 threads rising to the mid/high teens at 64, with ``cant`` and
  ``G3_circuit`` flattening early (small matrices, Section V-G);
* schedule level: the deterministic thread simulator executes the actual
  ABMC phase structure of a ``cant`` stand-in and must show the
  efficiency collapse at high thread counts that the paper attributes to
  per-block work being too small.
"""

import numpy as np

from repro.bench import bench_rows, format_table, geomean, standin, write_report
from repro.bench.paper_data import FIG12_AVERAGE_SPEEDUP
from repro.machine import FT2000P, predict_mpk_time
from repro.matrices import TABLE2
from repro.parallel import block_cost_model, build_phases, simulate_phases
from repro.reorder import abmc_ordering, permute_symmetric
from repro.core.partition import split_ldu

K = 5
THREADS = [4, 8, 16, 24, 32, 48, 64]


def _model_sweep():
    out = {}
    for m in TABLE2:
        stats = m.traffic_stats()
        base1 = predict_mpk_time(FT2000P, stats, K, threads=1,
                                 method="standard").total
        out[m.name] = {
            t: base1 / predict_mpk_time(FT2000P, stats, K, threads=t).total
            for t in THREADS
        }
    return out


def test_fig12_model_scalability(benchmark):
    speedups = benchmark(_model_sweep)
    rows = [[m.name] + [speedups[m.name][t] for t in THREADS]
            for m in TABLE2]
    means = {t: geomean([speedups[m.name][t] for m in TABLE2])
             for t in THREADS}
    rows.append(["average (model)"] + [means[t] for t in THREADS])
    rows.append(["average (paper)", FIG12_AVERAGE_SPEEDUP[4]]
                + ["-"] * (len(THREADS) - 2) + [FIG12_AVERAGE_SPEEDUP[64]])
    table = format_table(
        ["matrix"] + [f"T={t}" for t in THREADS], rows,
        title=f"Fig 12: FBMPK speedup over 1-thread baseline on FT 2000+ "
              f"(k={K})",
    )
    write_report("fig12_scalability", table)

    # Averages scale: small-thread ballpark ~2x, large-thread >= 10x.
    assert 1.2 <= means[4] <= 4.0, means[4]
    assert means[64] >= 10.0, means[64]
    assert means[64] > means[4]
    # The small matrices flatten relative to the large ones: cant's
    # 24->64-thread gain trails Flan_1565's (the paper's Fig 12b story;
    # the absolute crossover below the baseline is a finer effect our
    # model reproduces only partially — see EXPERIMENTS.md).
    cant = speedups["cant"]
    big = speedups["Flan_1565"]
    assert cant[64] / cant[24] < big[64] / big[24], (cant, big)
    # Large matrices keep scaling materially past 24 threads.
    assert big[64] >= big[24] * 1.2, big


def test_fig12_schedule_simulation(benchmark):
    """Simulated static schedule of cant's actual ABMC phases: parallel
    efficiency collapses as threads exceed the per-colour block supply
    (the paper's "thread overhead outweighs the improvement")."""
    # Full-size cant stand-in with the paper's block granularity
    # (~122 rows per block -> ~512 blocks).
    a = standin("cant", 62_451)
    ordering = abmc_ordering(a, block_size=122)
    reordered = permute_symmetric(a, ordering.perm)
    part = split_ldu(reordered)
    phases = build_phases(ordering, part.lower)

    def run(threads: int):
        cost = block_cost_model(FT2000P, threads)
        return simulate_phases(phases, threads, cost,
                               barrier_s=FT2000P.barrier_seconds(threads))

    r4 = run(4)
    r24 = run(24)
    r64 = benchmark(lambda: run(64))
    report = format_table(
        ["threads", "makespan (ms)", "efficiency"],
        [[t, r.total_time * 1e3, f"{r.efficiency:.2f}"]
         for t, r in ((4, r4), (24, r24), (64, r64))],
        title="Fig 12b: simulated ABMC schedule of one FBMPK sweep on the "
              "cant stand-in (512 blocks of ~122 rows)",
    )
    write_report("fig12_schedule_sim", report)
    # Threads help up to the per-colour block supply…
    assert r24.total_time < r4.total_time
    # …but 24 -> 64 threads buys little or nothing (the flattening of
    # Fig 12b), and parallel efficiency collapses.
    assert r64.total_time > 0.6 * r24.total_time
    assert r64.efficiency < 0.7 * r4.efficiency
