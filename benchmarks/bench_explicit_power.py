"""Explicit-A² baseline vs FBMPK (design-space comparison).

Both approaches halve the number of matrix passes per power; the
difference is what each pass streams: FBMPK streams ``nnz(A)`` with no
extra storage, the explicit square streams ``nnz(A²)`` after a one-off
SpGEMM.  Fill-in decides the winner — this bench measures it on the
stand-ins and reports the streamed-entry ratio across k.
"""

import numpy as np
import pytest

from repro.baselines import ExplicitPowerMPK
from repro.bench import bench_rows, format_table, standin, write_report
from repro.core import mpk_standard

MATRICES = ["G3_circuit", "af_shell10", "cage14"]


def test_explicit_square_vs_fbmpk(benchmark):
    n = min(bench_rows(), 6000)  # SpGEMM intermediates grow fast
    rows = []
    ops = {}
    for name in MATRICES:
        a = standin(name, n)
        op = ExplicitPowerMPK(a)
        ops[name] = (a, op)
        rows.append([
            name, a.nnz, op.a2.nnz, f"{op.fill_in:.2f}x",
            f"{op.entries_vs_fbmpk(5):.2f}x",
            f"{op.entries_vs_fbmpk(9):.2f}x",
        ])
    table = format_table(
        ["matrix", "nnz(A)", "nnz(A^2)", "fill-in",
         "streamed vs FBMPK k=5", "k=9"],
        rows,
        title="Explicit-A^2 MPK vs FBMPK: both halve passes, fill-in "
              "decides the traffic",
    )
    write_report("explicit_power", table)

    # Correctness + timing of the explicit pipeline.
    a, op = ops["af_shell10"]
    x = np.random.default_rng(2).standard_normal(a.n_rows)
    y = benchmark(lambda: op.power(x, 5))
    assert np.allclose(y, mpk_standard(a, x, 5), rtol=1e-8, atol=1e-10)

    # The design contrast holds on every stand-in: fill-in > 1 makes
    # the explicit square stream more than FBMPK at k >= 5.
    for name in MATRICES:
        _, op = ops[name]
        assert op.fill_in > 1.2, name
        assert op.entries_vs_fbmpk(5) > 1.0, name
