"""Table I — evaluation platforms.

Regenerates the hardware table from the platform registry and checks the
published attributes; the derived model quantities (bandwidth, barrier
cost) are printed alongside, marked as estimates.
"""

from repro.bench import format_table, write_report
from repro.machine import PLATFORMS, get_platform


def _table1_rows():
    rows = []
    for p in PLATFORMS:
        rows.append([
            p.name,
            p.cores,
            p.sockets,
            p.numa_nodes,
            f"{p.freq_ghz}GHz",
            f"{p.l1_bytes // 1024}KB",
            f"{p.l2_bytes // 1024}KB",
            "None" if not p.l3_bytes else f"{p.l3_bytes / 2**20:.2f}MB",
            f"{p.stream_bw_gbs:.0f}GB/s*",
            f"{p.barrier_seconds(p.cores) * 1e6:.1f}us*",
        ])
    return rows


def test_table1_platforms(benchmark):
    rows = benchmark(_table1_rows)
    table = format_table(
        ["Platform", "#Cores", "Sockets", "#NUMAs", "Freq", "L1", "L2",
         "L3", "BW(est)", "barrier(est)"],
        rows,
        title="Table I: hardware platforms (BW/barrier columns are "
              "public-spec estimates, see repro.machine.registry)",
    )
    write_report("table1_platforms", table)
    # Pin the published Table I attributes.
    ft = get_platform("FT 2000+")
    assert (ft.cores, ft.sockets, ft.numa_nodes) == (64, 1, 8)
    assert ft.l3_bytes == 0
    xeon = get_platform("Intel Xeon")
    assert xeon.cores == 26 and xeon.freq_ghz == 2.1
    assert abs(xeon.l3_bytes / 2**20 - 35.75) < 0.01
