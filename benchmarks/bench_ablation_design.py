"""Design-choice ablations (DESIGN.md Section 5).

Three knobs the paper exposes or discusses, measured on stand-ins:

* **ABMC block size** — parallelism (blocks per colour, barrier count)
  versus per-block work; the performance/parallelism trade-off of
  Section III-D ("The maximum number of elements in each block can be
  set, with a trade-off between performance and parallelism").
* **Sweep-group strategy** — ABMC colours versus level scheduling
  (Section VII's alternative) in group counts and fused wall-clock.
* **Compute backend** — self-contained numpy kernels versus compiled
  scipy kernels executing the identical fused pipeline.
"""

import time

import numpy as np
import pytest

from repro.bench import bench_rows, format_table, standin, write_report
from repro.core import build_fbmpk_operator, mpk_standard
from repro.reorder import abmc_ordering

MATRIX = "pwtk"


def test_ablation_block_size(benchmark):
    a = standin(MATRIX, min(bench_rows(), 15_000))
    sizes = sorted({1, 8, 32, 128, a.n_rows // 512 * 4 or 4})

    def sweep():
        rows = []
        for bs in sizes:
            o = abmc_ordering(a, block_size=bs)
            counts = np.bincount(o.color_of_block)
            rows.append([bs, o.n_blocks, o.n_colors,
                         int(counts.max()), int(counts.min())])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["block rows", "#blocks", "#colours", "max blocks/colour",
         "min blocks/colour"],
        rows,
        title="Ablation: ABMC block size vs parallel structure "
              f"({MATRIX} stand-in)",
    )
    write_report("ablation_block_size", table)
    # Bigger blocks -> fewer blocks; parallelism (blocks per colour)
    # shrinks monotonically in block size.
    blocks = [r[1] for r in rows]
    assert blocks == sorted(blocks, reverse=True)
    max_par = [r[3] for r in rows]
    assert max_par[0] >= max_par[-1]


def test_ablation_strategy_and_backend(benchmark):
    a = standin(MATRIX, min(bench_rows(), 15_000))
    x = np.random.default_rng(5).standard_normal(a.n_rows)
    k = 5
    reference = mpk_standard(a, x, k)

    configs = [
        ("abmc", "numpy"), ("abmc", "scipy"),
        ("levels", "numpy"), ("levels", "scipy"),
    ]
    rows = []
    ops = {}
    for strategy, backend in configs:
        t0 = time.perf_counter()
        op = build_fbmpk_operator(a, strategy=strategy, backend=backend)
        t_pre = time.perf_counter() - t0
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            y = op.power(x, k)
            best = min(best, time.perf_counter() - t0)
        assert np.allclose(y, reference, rtol=1e-8, atol=1e-10)
        ops[(strategy, backend)] = op
        rows.append([f"{strategy}/{backend}", op.groups.n_forward,
                     f"{t_pre:.2f}s", f"{best * 1e3:.1f}ms"])
    table = format_table(
        ["strategy/backend", "fwd groups", "preprocess", "A^5x best"],
        rows,
        title=f"Ablation: sweep strategy x compute backend ({MATRIX} "
              "stand-in, this host)",
    )
    write_report("ablation_strategy_backend", table)

    # The timed region: the fastest configuration.
    op = ops[("abmc", "scipy")]
    benchmark(lambda: op.power(x, k))
    # ABMC keeps the phase count tiny; level scheduling on banded
    # matrices degenerates towards chains (the finding that motivates
    # the paper's choice of multi-colouring over levels).
    assert ops[("abmc", "numpy")].groups.n_forward < 100
    assert ops[("levels", "numpy")].groups.n_forward \
        > ops[("abmc", "numpy")].groups.n_forward
