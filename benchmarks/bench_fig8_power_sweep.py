"""Fig 8 — speedup as a function of the MPK power k (3..9).

Expected shape (Section V-B): the benefit grows with k on every platform
because the matrix-read saving approaches one half — average speedups
rise from ~1.3 at k=3 towards ~1.7 at k=9.
"""

from repro.bench import format_table, geomean, write_report
from repro.bench.paper_data import FIG8_AVERAGE_SPEEDUP_BY_K
from repro.machine import PLATFORMS, predict_speedup
from repro.matrices import TABLE2

KS = list(range(3, 10))


def _sweep():
    table = {}
    for k in KS:
        table[k] = {
            p.name: geomean(
                [predict_speedup(p, m.traffic_stats(), k=k) for m in TABLE2]
            )
            for p in PLATFORMS
        }
    return table


def test_fig8_power_sweep(benchmark):
    averages = benchmark(_sweep)
    rows = [[k] + [averages[k][p.name] for p in PLATFORMS] for k in KS]
    for k, ref in FIG8_AVERAGE_SPEEDUP_BY_K.items():
        rows.append([f"paper k={k}"] + [ref[p.name] for p in PLATFORMS])
    table = format_table(
        ["k"] + [p.name for p in PLATFORMS], rows,
        title="Fig 8: modelled average speedup vs power k",
    )
    write_report("fig8_power_sweep", table)
    for p in PLATFORMS:
        series = [averages[k][p.name] for k in KS]
        # Monotone benefit with k at equal parity (odd and even k have
        # slightly different pass efficiency — (k+1)/2 vs k/2+1 — which
        # makes the raw series zigzag by a percent, as in the paper's
        # plots).
        assert all(series[i + 2] >= series[i] - 1e-9
                   for i in range(len(series) - 2)), (p.name, series)
        # …with a material rise from k=3 to k=9 (paper: ~+0.35).
        assert series[-1] - series[0] >= 0.1, (p.name, series)


def test_fig8_per_matrix_trend(benchmark):
    """Per-matrix check on the strongest platform: nearly every matrix
    benefits more at k=9 than at k=3 (the per-panel trend of Fig 8)."""
    from repro.machine import XEON_6230R

    def trends():
        return {
            m.name: (
                predict_speedup(XEON_6230R, m.traffic_stats(), k=3),
                predict_speedup(XEON_6230R, m.traffic_stats(), k=9),
            )
            for m in TABLE2
        }

    t = benchmark(trends)
    rising = sum(hi > lo for lo, hi in t.values())
    assert rising >= 12, f"only {rising}/14 matrices improve with k"
