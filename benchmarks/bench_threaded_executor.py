"""Real threaded colour-phase executor vs the schedule simulator.

The companion experiment to Fig 12: where ``bench_fig12_scalability``
*simulates* thread scalability at paper scale, this bench actually runs
the ABMC phase schedule on the :class:`ThreadedPhaseExecutor` and lays
the observed per-phase wall times next to ``simulate_phases``
predictions for the *same* schedule.  Absolute times are incomparable
(the model predicts an FT 2000+, the run happens on this host), so the
report compares the *shape*: each phase's share of its sweep, which is
determined by load balance and is what the simulator claims to predict.

Every timed run is also checked bit-for-bit against the serial fused
pipeline — a benchmark that silently computes the wrong thing would be
worse than no benchmark.
"""

import numpy as np
import pytest

from repro.bench import bench_rows, format_table, standin, write_report
from repro.core import build_fbmpk_operator
from repro.machine import FT2000P
from repro.parallel import block_cost_model, simulate_phases

K = 4
MATRIX = "cant"
THREADS = [1, 2, 4]
POLICIES = ["round_robin", "lpt", "dynamic"]
BLOCK = 256


@pytest.fixture(scope="module")
def setup():
    a = standin(MATRIX, min(bench_rows(), 20_000))
    op = build_fbmpk_operator(a, block_size=BLOCK, executor="threads",
                              n_threads=1)
    x = np.random.default_rng(7).standard_normal(a.n_rows)
    y_serial = build_fbmpk_operator(a, block_size=BLOCK).power(x, K)
    yield a, op, x, y_serial
    op.close()


@pytest.mark.benchmark(group="threaded-executor")
@pytest.mark.parametrize("n_threads", THREADS)
def test_threaded_power_scaling(benchmark, setup, n_threads):
    """Wall time of ``A^4 x`` on the real executor across thread counts
    (preprocessing amortised: one operator, reconfigured pools)."""
    _, op, x, y_serial = setup
    op.configure_executor(n_threads=n_threads, assign_policy="lpt")
    y = benchmark(lambda: op.power(x, K))
    np.testing.assert_array_equal(y, y_serial)


@pytest.mark.benchmark(group="threaded-executor")
@pytest.mark.parametrize("policy", POLICIES)
def test_threaded_power_policies(benchmark, setup, policy):
    """Assignment-policy sweep at a fixed thread count."""
    _, op, x, y_serial = setup
    op.configure_executor(n_threads=4, assign_policy=policy)
    y = benchmark(lambda: op.power(x, K))
    np.testing.assert_array_equal(y, y_serial)


def test_observed_vs_simulated_phase_shape(setup):
    """Per-phase observability: the executor's measured forward-sweep
    phase times, printed next to the simulator's prediction for the
    identical schedule."""
    _, op, x, y_serial = setup
    n_threads = 4
    op.configure_executor(n_threads=n_threads, assign_policy="lpt")
    fw_phases, bw_phases = op.block_phases()

    # Repeat the run and keep each phase's fastest observation: the
    # minimum filters out OS-scheduler noise that would swamp the
    # sub-millisecond phases of a reduced-scale stand-in.
    best = None
    for _ in range(5):
        y = op.power(x, K)
        np.testing.assert_array_equal(y, y_serial)
        stats = op.last_stats
        # One barrier per colour per sweep, k//2 forward+backward pairs.
        assert stats.barriers == (len(fw_phases) + len(bw_phases)) * (K // 2)
        stage = stats.phases[:len(fw_phases)]
        best = stage if best is None else [
            a if a.wall_s <= b.wall_s else b for a, b in zip(best, stage)]
    observed = best
    sim = simulate_phases(fw_phases, n_threads,
                          block_cost_model(FT2000P, n_threads),
                          policy="lpt")
    obs_total = sum(p.wall_s for p in observed) or 1.0
    sim_total = sum(sim.phase_times) or 1.0
    rows = []
    for ph, rec, pred in zip(fw_phases, observed, sim.phase_times):
        rows.append([
            ph.color, len(ph.tasks), ph.total_nnz,
            f"{rec.wall_s * 1e3:.3f}", f"{rec.wall_s / obs_total:.1%}",
            f"{pred * 1e6:.3f}", f"{pred / sim_total:.1%}",
        ])
    rows.append(["total", sum(len(p.tasks) for p in fw_phases),
                 sum(p.total_nnz for p in fw_phases),
                 f"{obs_total * 1e3:.3f}", "100%",
                 f"{sim_total * 1e6:.3f}", "100%"])
    table = format_table(
        ["colour", "blocks", "nnz", "observed ms", "share",
         "predicted us (FT2000+)", "share"],
        rows,
        title=f"forward-sweep phases, real run ({n_threads} threads) vs "
              f"simulator, {MATRIX} stand-in, block={BLOCK}",
    )
    summary = (f"run: {stats.barriers} barriers, "
               f"wall {stats.total_wall_s * 1e3:.2f} ms, "
               f"busy {stats.busy_s * 1e3:.2f} ms, "
               f"efficiency {stats.efficiency:.1%} | "
               f"simulated efficiency {sim.efficiency:.1%}")
    write_report("threaded_executor", table + "\n\n" + summary)
    print()
    print(table)
    print(summary)

    # Both views must agree on the dominant phase's share ordering: the
    # heaviest-nnz colour is the largest share in the prediction and is
    # a top-2 share in the observation (interpreter noise allows one
    # inversion on tiny phases).
    heaviest = max(range(len(fw_phases)),
                   key=lambda i: fw_phases[i].total_nnz)
    assert sim.phase_times[heaviest] == max(sim.phase_times)
    obs_rank = sorted(range(len(observed)),
                      key=lambda i: -observed[i].wall_s)
    assert heaviest in obs_rank[:2]
