"""Fig 9 — DRAM read+write volume ratio, FBMPK over baseline, on Xeon.

Two reproductions:

* paper scale: the analytic traffic model over the registry statistics
  (expected means ~74%/65%/62% at k=3/6/9; G3_circuit worst at k=9,
  ML_Geer best);
* small scale: the trace-driven set-associative cache simulator replays
  both kernels' exact access streams on a stand-in and must agree with
  the theory direction (the timed region).
"""

import numpy as np
import pytest

from repro.bench import format_table, write_report
from repro.bench.paper_data import (
    FIG9_MEAN_MEASURED_RATIO,
    FIG9_THEORETICAL_RATIO,
)
from repro.core.partition import split_ldu
from repro.core.plan import theoretical_ratio
from repro.machine import XEON_6230R
from repro.matrices import TABLE2, poisson2d
from repro.memsim import (
    CacheConfig,
    MemoryHierarchy,
    trace_fbmpk_pair,
    trace_mpk_standard,
    traffic_ratio,
)

KS = (3, 6, 9)


def _paper_scale_ratios():
    cache = XEON_6230R.effective_cache_bytes(XEON_6230R.cores)
    residency = XEON_6230R.total_last_level_bytes()
    out = {}
    for m in TABLE2:
        stats = m.traffic_stats()
        out[m.name] = {
            k: traffic_ratio(stats, k, cache,
                             residency_cache_bytes=residency)
            for k in KS
        }
    return out


def test_fig9_analytic_ratios(benchmark):
    ratios = benchmark(_paper_scale_ratios)
    rows = [[m.name] + [f"{100 * ratios[m.name][k]:.0f}%" for k in KS]
            for m in TABLE2]
    means = {k: float(np.mean([ratios[m.name][k] for m in TABLE2]))
             for k in KS}
    rows.append(["mean (model)"] + [f"{100 * means[k]:.0f}%" for k in KS])
    rows.append(["mean (paper)"]
                + [f"{100 * FIG9_MEAN_MEASURED_RATIO[k]:.0f}%" for k in KS])
    rows.append(["theory (k+1)/2k"]
                + [f"{100 * theoretical_ratio(k):.0f}%" for k in KS])
    table = format_table(["matrix"] + [f"k={k}" for k in KS], rows,
                         title="Fig 9: FBMPK/baseline DRAM volume on Xeon")
    write_report("fig9_memory", table)

    for k in KS:
        # Means land near the paper's measurements (+-8 points)…
        assert means[k] == pytest.approx(FIG9_MEAN_MEASURED_RATIO[k],
                                         abs=0.08), (k, means[k])
        # …and sit above the pure-theory floor, as measured.
        assert means[k] >= theoretical_ratio(k) - 0.02
    # Sparsity extremes: G3_circuit worst ratio at k=9 (vector accesses
    # dominate its 4.8 nnz/row), ML_Geer close to the best (matrix
    # traffic dominates its 73.7 nnz/row).
    k9 = {m.name: ratios[m.name][9] for m in TABLE2}
    assert k9["G3_circuit"] == max(k9.values())
    assert k9["ML_Geer"] <= min(k9.values()) + 0.03


def _xeon_like_small_hierarchy():
    # Scaled-down hierarchy so the stand-in's ~34 KB matrix is several
    # times the last level — the same doesn't-fit regime as a 100 MB
    # matrix against a 35 MB L3.
    return MemoryHierarchy([
        CacheConfig(size_bytes=1 * 1024, associativity=4, name="L1"),
        CacheConfig(size_bytes=8 * 1024, associativity=8, name="L2"),
    ])


def test_fig9_trace_simulation(benchmark):
    """Trace-driven cross-check: simulated DRAM volume ratio of FBMPK
    over standard MPK reproduces the direction and k-trend."""
    a = poisson2d(24, seed=9)  # 576 rows; exact traces stay tractable
    part = split_ldu(a)
    k = 4

    def simulate():
        h1 = _xeon_like_small_hierarchy()
        std = trace_mpk_standard(a, k, h1).total_bytes
        h2 = _xeon_like_small_hierarchy()
        pair = trace_fbmpk_pair(part, h2, btb=True).total_bytes
        h3 = _xeon_like_small_hierarchy()
        head = trace_fbmpk_pair(part, h3, btb=True,
                                include_head=False).total_bytes
        # k=4 -> head + 2 pairs: approximate run volume from the traced
        # pieces (head traced once inside `pair`).
        fb = pair + head
        return fb / std

    ratio = benchmark(simulate)
    write_report("fig9_trace_check",
                 f"trace-simulated FBMPK/std DRAM ratio (k={k}, 576-row "
                 f"stand-in): {ratio:.2f} (theory {theoretical_ratio(k):.2f})")
    # FBMPK must move less data; with vector overheads the ratio sits
    # between the theory floor and 1.
    assert theoretical_ratio(k) - 0.05 <= ratio < 1.0
