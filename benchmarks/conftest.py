"""Benchmark-suite configuration.

Benches use module-level caches from :mod:`repro.bench.harness`; matrix
generation and FBMPK preprocessing are one-off costs (as in the paper)
and are excluded from the timed regions unless a bench explicitly
measures preprocessing (Fig 11).

Set ``REPRO_BENCH_SCALE`` (rows, default 20000) to trade fidelity for
runtime.
"""

import numpy as np
import pytest

from repro.obs import Telemetry


@pytest.fixture(scope="session")
def rng():
    """Session-wide deterministic RNG for benchmark inputs."""
    return np.random.default_rng(2023)


@pytest.fixture(autouse=True)
def bench_telemetry():
    """Fresh telemetry session per bench, so every
    :func:`repro.bench.harness.write_report` call emits a RunReport
    scoped to exactly that bench's metrics and spans."""
    with Telemetry() as tel:
        yield tel
