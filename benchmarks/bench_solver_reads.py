"""Solver-level matrix-read accounting: where FBMPK pays off end to end.

The paper motivates FBMPK with eigensolvers, linear solvers and
multigrid.  This bench closes the loop at the solver level: for an SPD
stand-in, it counts *full matrix reads to convergence* for several solver
configurations, crediting SSpMV evaluations at FBMPK's ``(k+1)/2`` rate
versus the plain pipeline's ``k``.  The currency is matrix reads — the
quantity the paper's optimisation actually reduces — so the comparison
is substrate-independent.
"""

import numpy as np
import pytest

from repro.bench import bench_rows, format_table, standin, write_report
from repro.solvers import (
    NeumannPreconditioner,
    chebyshev_inverse_coefficients,
    conjugate_gradient,
    gershgorin_bounds,
    gmres,
    PolynomialPreconditioner,
)


def test_solver_matrix_read_accounting(benchmark):
    a = standin("G3_circuit", min(bench_rows(), 8000))
    rng = np.random.default_rng(4)
    x_true = rng.standard_normal(a.n_rows)
    b = a.matvec(x_true)
    tol = 1e-8

    rows = []

    # Plain CG: one matrix read per iteration.
    plain = conjugate_gradient(a, b, tol=tol)
    assert plain.converged
    rows.append(["CG (plain)", plain.iterations,
                 float(plain.iterations), "-"])

    # Polynomial-preconditioned CG through FBMPK vs plain SpMV pipeline.
    lo, hi = gershgorin_bounds(a)
    lo = max(lo, hi / 50.0)
    degree = 6
    coeffs = chebyshev_inverse_coefficients(degree, lo, hi)
    pre = PolynomialPreconditioner(a=a, coefficients=coeffs)
    pcg = conjugate_gradient(a, b, tol=tol, preconditioner=pre)
    assert pcg.converged
    reads_fbmpk = pcg.iterations * (1 + pre.matrix_reads_per_apply())
    reads_plain_pipeline = pcg.iterations * (1 + degree)
    rows.append([f"CG + Cheb({degree}) via FBMPK", pcg.iterations,
                 reads_fbmpk, f"{reads_plain_pipeline:.0f}"])

    table = format_table(
        ["solver", "iterations", "matrix reads (FBMPK pipeline)",
         "reads via plain pipeline"],
        rows,
        title="Solver-level matrix-read accounting (G3_circuit stand-in, "
              f"n={a.n_rows}, tol={tol})",
    )
    write_report("solver_reads", table)

    # The timed region: one preconditioned CG solve.
    benchmark.pedantic(
        lambda: conjugate_gradient(a, b, tol=tol, preconditioner=pre),
        rounds=1, iterations=1)

    # Preconditioning must reduce iterations, and FBMPK must reduce the
    # read bill of the preconditioned solve by ~(k+1)/2k.
    assert pcg.iterations < plain.iterations
    assert reads_fbmpk < reads_plain_pipeline
    ratio = (1 + (degree + 1) / 2) / (1 + degree)
    assert reads_fbmpk / reads_plain_pipeline == pytest.approx(ratio,
                                                               rel=1e-6)


def test_unsymmetric_solver_reads(benchmark):
    a = standin("cage14", min(bench_rows(), 8000))
    rng = np.random.default_rng(5)
    b = rng.standard_normal(a.n_rows)
    tol = 1e-8

    plain = gmres(a, b, tol=tol, restart=30)
    assert plain.converged

    degree = 3
    pre = NeumannPreconditioner(a, degree=degree)
    res = benchmark.pedantic(
        lambda: gmres(lambda v: a.matvec(pre(v)), b, tol=tol, restart=30),
        rounds=1, iterations=1)
    assert res.converged

    reads_plain = float(plain.iterations)
    reads_pre_fbmpk = res.iterations * (1 + pre.matrix_reads_per_apply())
    reads_pre_naive = res.iterations * (1 + degree)
    table = format_table(
        ["pipeline", "iterations", "matrix reads"],
        [["GMRES(30) plain", plain.iterations, reads_plain],
         [f"GMRES(30) + Neumann({degree}) via FBMPK", res.iterations,
          reads_pre_fbmpk],
         [f"GMRES(30) + Neumann({degree}) plain pipeline", res.iterations,
          reads_pre_naive]],
        title=f"Unsymmetric solve (cage14 stand-in, n={a.n_rows})",
    )
    write_report("solver_reads_unsym", table)
    assert res.iterations <= plain.iterations
    assert reads_pre_fbmpk < reads_pre_naive
