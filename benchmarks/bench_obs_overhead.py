"""Overhead of the sampling profiler on the power-sweep hot path.

The acceptance bound for shipping the profiler: running the 100 Hz
:class:`~repro.obs.sampler.StackSampler` next to an ``A^k x`` power
sweep must cost < 5% median wall time.  Samples are interleaved
(off, on, off, on, ...) so clock drift and cache state on a shared
host bias neither configuration, and the asserted statistic is the
median — the same robust centre the acceptance criterion names.

Numbers land in ``BENCH_obs_overhead.json`` at the repo root.
"""

import json
import os
import platform
import statistics
import time
from pathlib import Path

import numpy as np

from repro.bench import bench_rows, format_table, standin, write_report
from repro.obs.sampler import StackSampler

K = 8
REPEATS = 15
WARMUP = 2
MATRIX = "cant"
BLOCK = 64
HZ = 100.0

ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = ROOT / "BENCH_obs_overhead.json"

_RESULTS = {}


def test_sampler_overhead_on_power_sweep(rng):
    from repro.core import build_fbmpk_operator

    a = standin(MATRIX, min(bench_rows(), 20_000))
    x = rng.standard_normal(a.n_rows)
    op = build_fbmpk_operator(a, block_size=BLOCK)
    sampler = StackSampler(hz=HZ)
    try:
        run = lambda: op.power(x, K)  # noqa: E731
        for _ in range(WARMUP):
            run()
        off, on = [], []
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            run()
            off.append(time.perf_counter() - t0)
            sampler.start()
            t0 = time.perf_counter()
            run()
            on.append(time.perf_counter() - t0)
            sampler.stop()
    finally:
        sampler.stop()
        op.close()

    med_off = statistics.median(off)
    med_on = statistics.median(on)
    overhead = med_on / med_off - 1.0
    _RESULTS["power_sweep"] = {
        "rows": a.n_rows,
        "nnz": a.nnz,
        "k": K,
        "block_size": BLOCK,
        "hz": HZ,
        "repeats": REPEATS,
        "median_off_s": med_off,
        "median_on_s": med_on,
        "overhead_frac": overhead,
        "samples_taken": sampler.sample_count,
    }
    assert sampler.sample_count > 0, "sampler never fired"
    assert overhead < 0.05, (
        f"profiler at {HZ:.0f} Hz costs {overhead:.1%} median wall "
        f"(off {med_off * 1e3:.3f} ms, on {med_on * 1e3:.3f} ms); "
        f"bound is 5%")


def test_write_results():
    """Persist the numbers (runs last: file order)."""
    assert _RESULTS, "no benchmark results collected"
    payload = {
        "bench": "obs_overhead",
        "matrix": MATRIX,
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "results": _RESULTS,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2,
                                       sort_keys=True) + "\n")
    r = _RESULTS["power_sweep"]
    table = format_table(
        ["config", "median (ms)", "overhead", "samples"],
        [["sampler off", f"{r['median_off_s'] * 1e3:.3f}", "-", "-"],
         ["sampler on", f"{r['median_on_s'] * 1e3:.3f}",
          f"{r['overhead_frac']:+.2%}", r["samples_taken"]]],
        title=f"A^{K} x wall with/without {HZ:.0f} Hz sampler, "
              f"{MATRIX} stand-in, {r['rows']} rows "
              f"(median of {REPEATS})")
    write_report("obs_overhead", table)
    print()
    print(table)
