"""What-if: FBMPK on an HBM machine (A64FX, the paper's [14] context).

The paper's related work reports SSpMV on Fugaku's A64FX but without
memory optimisation.  The machine model answers the natural follow-up:
with ~1 TB/s of HBM2 behind only 48 cores, how much of FBMPK's
traffic saving still shows as time?  Expected shape: FBMPK still wins
(sparse gathers keep the kernels partially memory-bound), but every
matrix gains *less* than on the DDR platforms — the compute roof takes a
bite out of a pure-traffic optimisation.
"""

import numpy as np

from repro.bench import format_table, geomean, write_report
from repro.machine import A64FX, FT2000P, XEON_6230R, predict_mpk_time, predict_speedup
from repro.matrices import TABLE2

K = 5


def test_whatif_a64fx(benchmark):
    def sweep():
        rows = []
        for m in TABLE2:
            stats = m.traffic_stats()
            rows.append([
                m.name,
                predict_speedup(FT2000P, stats, k=K),
                predict_speedup(XEON_6230R, stats, k=K),
                predict_speedup(A64FX, stats, k=K),
            ])
        return rows

    rows = benchmark(sweep)
    means = [geomean([r[i] for r in rows]) for i in (1, 2, 3)]
    rows.append(["average"] + means)
    table = format_table(
        ["matrix", "FT 2000+ (DDR)", "Xeon (DDR)", "A64FX (HBM2)"],
        rows,
        title=f"What-if: modelled FBMPK speedup (k={K}) on an HBM "
              "platform vs the paper's DDR platforms",
    )
    write_report("whatif_a64fx", table)

    # FBMPK still helps on HBM…
    assert means[2] > 1.05
    # …but less than on the bandwidth-starved FT 2000+ for the typical
    # matrix (compute roof absorbs part of the traffic saving).
    per_matrix_ft = [r[1] for r in rows[:-1]]
    per_matrix_hbm = [r[3] for r in rows[:-1]]
    fraction_smaller = np.mean([h < f for f, h
                                in zip(per_matrix_ft, per_matrix_hbm)])
    assert fraction_smaller >= 0.6, fraction_smaller
    # The memory-bound share of runtime shrinks on HBM: compute must be
    # a larger fraction of the roof there.
    stats = TABLE2[4].traffic_stats()  # Flan_1565
    hbm = predict_mpk_time(A64FX, stats, K)
    ddr = predict_mpk_time(FT2000P, stats, K)
    assert hbm.t_compute / max(hbm.t_memory, 1e-12) \
        > ddr.t_compute / max(ddr.t_memory, 1e-12)
