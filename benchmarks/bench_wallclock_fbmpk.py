"""In-process wall-clock benchmarks of the actual kernels on this host.

This is the honest companion to the model-based figure reproductions:
pure-Python/numpy kernels cannot express the register-level fusion the
paper's C kernels use, so FBMPK's *wall-clock* advantage largely does not
transfer to this substrate (see EXPERIMENTS.md), even though its memory
behaviour — verified by the access counters and the cache simulator —
does.  These benches record where each implementation actually lands.

Groups:

* ``spmv``: single SpMV tiers (scalar reference is omitted — it is
  thousands of times slower and only used in unit tests).
* ``mpk-k5``: full ``A^5 x`` pipelines.
"""

import numpy as np
import pytest

from repro.baselines import MklLikeMPK
from repro.bench import bench_rows, fbmpk_operator, standin, write_report
from repro.core import fbmpk_unfused, mpk_standard, split_ldu
from repro.sparse.spmv import spmv_scipy, spmv_vectorised

K = 5
MATRIX = "af_shell10"


@pytest.fixture(scope="module")
def setup():
    a = standin(MATRIX, bench_rows())
    part = split_ldu(a)
    op = fbmpk_operator(MATRIX, bench_rows())
    mkl = MklLikeMPK(a)
    x = np.random.default_rng(7).standard_normal(a.n_rows)
    return a, part, op, mkl, x


@pytest.mark.benchmark(group="spmv")
def test_spmv_vectorised(benchmark, setup):
    a, _, _, _, x = setup
    y = benchmark(lambda: spmv_vectorised(a, x))
    assert y.shape == (a.n_rows,)


@pytest.mark.benchmark(group="spmv")
def test_spmv_scipy(benchmark, setup):
    a, _, _, _, x = setup
    y = benchmark(lambda: spmv_scipy(a, x))
    assert y.shape == (a.n_rows,)


@pytest.mark.benchmark(group="mpk-k5")
def test_mpk_standard_vectorised(benchmark, setup):
    a, _, _, _, x = setup
    benchmark(lambda: mpk_standard(a, x, K))


@pytest.mark.benchmark(group="mpk-k5")
def test_mpk_mkl_like(benchmark, setup):
    _, _, _, mkl, x = setup
    benchmark(lambda: mkl.power(x, K))


@pytest.mark.benchmark(group="mpk-k5")
def test_fbmpk_unfused(benchmark, setup):
    _, part, _, _, x = setup
    benchmark(lambda: fbmpk_unfused(part, x, K))


@pytest.mark.benchmark(group="mpk-k5")
def test_fbmpk_fused(benchmark, setup):
    _, _, op, _, x = setup
    benchmark(lambda: op.power(x, K))


@pytest.mark.benchmark(group="mpk-k5")
def test_fbmpk_fused_scipy_backend(benchmark, setup):
    """Fused pipeline over compiled kernels — the fair wall-clock
    comparison against the MKL-like baseline (same kernel provider)."""
    from repro.core import build_fbmpk_operator

    a, _, _, mkl, x = setup
    op = build_fbmpk_operator(a, strategy="abmc", block_size=1,
                              backend="scipy")
    y = benchmark(lambda: op.power(x, K))
    assert np.allclose(y, mkl.power(x, K), rtol=1e-8, atol=1e-10)


def test_wallclock_equivalence(benchmark, setup):
    """All pipelines agree numerically on this host (timed region:
    the fused operator, once)."""
    a, part, op, mkl, x = setup
    y_ref = mkl.power(x, K)
    y_fused = benchmark.pedantic(lambda: op.power(x, K), rounds=1,
                                 iterations=1)
    assert np.allclose(y_fused, y_ref, rtol=1e-8, atol=1e-10)
    assert np.allclose(mpk_standard(a, x, K), y_ref, rtol=1e-8, atol=1e-10)
    assert np.allclose(fbmpk_unfused(part, x, K), y_ref, rtol=1e-8,
                       atol=1e-10)
    write_report(
        "wallclock_note",
        "Wall-clock groups 'spmv' and 'mpk-k5' measured by pytest-benchmark "
        "on this host; see the benchmark summary table in bench_output.txt. "
        "Expectation on a numpy substrate: the scipy (MKL-like) baseline "
        "wins single-kernel wall-clock; FBMPK's traffic advantage is "
        "demonstrated by the access counters (tests) and the cache "
        "simulator (fig9), not by Python wall-clock.",
    )
