"""Fig 10 — ablation: forward-backward (FB) alone vs FB plus back-to-back
(BtB) vector interleaving, on FT 2000+ and Xeon, k=5.

Expected shape (Section V-D): both variants beat the baseline; BtB adds a
further ~6% on FT 2000+ (no L3, tiny usable cache, so the pair-gather
miss term matters) but only a modest amount on Xeon (35.75 MB L3 absorbs
the pair working set for many inputs).
"""

from repro.bench import format_table, geomean, write_report
from repro.bench.paper_data import FIG10_FT_AVERAGES
from repro.machine import FT2000P, XEON_6230R, predict_speedup
from repro.matrices import TABLE2

K = 5
PLATS = [FT2000P, XEON_6230R]


def _ablation():
    out = {}
    for p in PLATS:
        out[p.name] = {
            m.name: {
                "fb": predict_speedup(p, m.traffic_stats(), k=K,
                                      method="fb"),
                "fb+btb": predict_speedup(p, m.traffic_stats(), k=K,
                                          method="fb+btb"),
            }
            for m in TABLE2
        }
    return out


def test_fig10_btb_ablation(benchmark):
    res = benchmark(_ablation)
    rows = []
    for m in TABLE2:
        rows.append([m.name]
                    + [res[p.name][m.name][v]
                       for p in PLATS for v in ("fb", "fb+btb")])
    means = {
        (p.name, v): geomean([res[p.name][m.name][v] for m in TABLE2])
        for p in PLATS for v in ("fb", "fb+btb")
    }
    rows.append(["average (model)"]
                + [means[(p.name, v)] for p in PLATS
                   for v in ("fb", "fb+btb")])
    rows.append(["average (paper)", FIG10_FT_AVERAGES["fb"],
                 FIG10_FT_AVERAGES["fb+btb"], float("nan"), float("nan")])
    table = format_table(
        ["matrix", "FT:FB", "FT:FB+BtB", "Xeon:FB", "Xeon:FB+BtB"], rows,
        title=f"Fig 10: FB vs FB+BtB speedup over baseline (k={K}); "
              "paper row gives FT 2000+ averages (1.41 -> 1.50)",
    )
    write_report("fig10_ablation", table)

    ft_gain = means[("FT 2000+", "fb+btb")] / means[("FT 2000+", "fb")]
    xeon_gain = means[("Intel Xeon", "fb+btb")] / means[("Intel Xeon", "fb")]
    # BtB must help on FT 2000+ …
    assert ft_gain > 1.005, f"BtB gain on FT only {ft_gain:.3f}"
    # …more than it helps on Xeon (where it is 'modest').
    assert ft_gain > xeon_gain, (ft_gain, xeon_gain)
    # Both variants still beat the baseline on average everywhere.
    for key, val in means.items():
        assert val > 1.0, (key, val)
