"""Persistent working buffers in FBMPKOperator: repeated power calls
reuse the BtB pair and sweep temporary without changing a single bit of
any result, and the fast float64 input path skips the defensive copy."""

import numpy as np
import pytest

from repro.core import build_fbmpk_operator
from repro.core.fbmpk import _as_float64


def test_repeated_calls_bit_stable(grid, rng):
    op = build_fbmpk_operator(grid)
    fresh = build_fbmpk_operator(grid)
    try:
        xs = [rng.standard_normal(grid.n_rows) for _ in range(4)]
        # Warm the buffers with unrelated inputs between comparisons so
        # any cross-call contamination would surface.
        for x in xs:
            expected = fresh.power(x, 5)
            got = op.power(x, 5)
            op.power(rng.standard_normal(grid.n_rows), 3)
            assert np.array_equal(got, expected)
    finally:
        op.close()
        fresh.close()


def test_buffers_are_retained(grid, rng):
    op = build_fbmpk_operator(grid)
    try:
        assert op._xy_buf is None
        op.power(rng.standard_normal(grid.n_rows), 4)
        xy = op._xy_buf
        assert xy is not None
        op.power(rng.standard_normal(grid.n_rows), 4)
        assert op._xy_buf is xy  # same allocation, not a fresh one
    finally:
        op.close()


def test_input_not_mutated(grid, rng):
    op = build_fbmpk_operator(grid)
    try:
        x = rng.standard_normal(grid.n_rows)
        keep = x.copy()
        op.power(x, 5)
        assert np.array_equal(x, keep)
    finally:
        op.close()


def test_result_not_aliased_to_buffers(grid, rng):
    op = build_fbmpk_operator(grid)
    try:
        x = rng.standard_normal(grid.n_rows)
        y1 = op.power(x, 4)
        y1_copy = y1.copy()
        op.power(rng.standard_normal(grid.n_rows), 4)
        assert np.array_equal(y1, y1_copy)  # later calls must not clobber
    finally:
        op.close()


def test_power_block_reuse_bit_stable(grid, rng):
    op = build_fbmpk_operator(grid)
    fresh = build_fbmpk_operator(grid)
    try:
        for _ in range(3):
            X = rng.standard_normal((grid.n_rows, 3))
            assert np.array_equal(op.power_block(X, 4),
                                  fresh.power_block(X, 4))
    finally:
        op.close()
        fresh.close()


def test_power_out_param(grid, rng):
    op = build_fbmpk_operator(grid)
    try:
        x = rng.standard_normal(grid.n_rows)
        expected = op.power(x, 5)
        out = np.empty(grid.n_rows)
        y = op.power(x, 5, out=out)
        assert y is out
        assert np.array_equal(out, expected)
        # k = 0 honours out too (identity copy).
        y0 = op.power(x, 0, out=out)
        assert y0 is out
        assert np.array_equal(out, x)
    finally:
        op.close()


def test_power_block_out_param(grid, rng):
    op = build_fbmpk_operator(grid)
    try:
        X = rng.standard_normal((grid.n_rows, 3))
        expected = op.power_block(X, 4)
        out = np.empty_like(X)
        Y = op.power_block(X, 4, out=out)
        assert Y is out
        assert np.array_equal(out, expected)
        Y0 = op.power_block(X, 0, out=out)
        assert Y0 is out
        assert np.array_equal(out, X)
    finally:
        op.close()


def test_out_param_rejects_bad_arrays(grid, rng):
    op = build_fbmpk_operator(grid)
    try:
        x = rng.standard_normal(grid.n_rows)
        with pytest.raises(ValueError):
            op.power(x, 2, out=np.empty(grid.n_rows + 1))
        with pytest.raises(TypeError):
            op.power(x, 2, out=np.empty(grid.n_rows, dtype=np.float32))
        with pytest.raises(TypeError):
            op.power(x, 2, out=[0.0] * grid.n_rows)
    finally:
        op.close()


def test_power_block_shrink_then_regrow(grid, rng):
    """The cached block buffer must be resized when m changes in either
    direction; a stale wider buffer silently reused for a narrower (or
    regrown) call would corrupt the interleaved layout."""
    op = build_fbmpk_operator(grid)
    fresh = build_fbmpk_operator(grid)
    try:
        for m in (5, 2, 5, 1, 4):
            X = rng.standard_normal((grid.n_rows, m))
            assert np.array_equal(op.power_block(X, 4),
                                  fresh.power_block(X, 4))
    finally:
        op.close()
        fresh.close()


def test_as_float64_passthrough_and_copy():
    x64 = np.arange(4, dtype=np.float64)
    assert _as_float64(x64) is x64  # no copy for the common case
    x32 = np.arange(4, dtype=np.float32)
    out = _as_float64(x32)
    assert out.dtype == np.float64
    assert np.array_equal(out, x32.astype(np.float64))
    out_list = _as_float64([1, 2, 3])
    assert out_list.dtype == np.float64
