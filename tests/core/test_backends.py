"""Unit tests for the FBMPK compute backends (numpy vs scipy)."""

import numpy as np
import pytest

from repro.core.fbmpk import KernelCounter, build_fbmpk_operator
from repro.core.mpk import mpk_reference_dense
from repro.core.plan import fbmpk_plan


@pytest.mark.parametrize("backend", ["numpy", "scipy"])
@pytest.mark.parametrize("strategy", ["abmc", "levels"])
@pytest.mark.parametrize("k", [0, 1, 2, 5])
def test_backends_match_dense(any_matrix, rng, backend, strategy, k):
    op = build_fbmpk_operator(any_matrix, strategy=strategy, backend=backend)
    x = rng.standard_normal(any_matrix.n_rows)
    np.testing.assert_allclose(op.power(x, k),
                               mpk_reference_dense(any_matrix, x, k),
                               rtol=1e-9, atol=1e-11)


def test_scipy_backend_counts_passes(small_sym, rng):
    op = build_fbmpk_operator(small_sym, backend="scipy", block_size=1)
    counter = KernelCounter()
    op.power(rng.standard_normal(small_sym.n_rows), 6, counter=counter)
    plan = fbmpk_plan(6)
    assert (counter.l_passes, counter.u_passes) \
        == (plan.l_passes, plan.u_passes)


def test_backends_bitwise_comparable(small_sym, rng):
    """Backends share summation structure per group, so results agree
    to tight tolerance."""
    x = rng.standard_normal(small_sym.n_rows)
    y_np = build_fbmpk_operator(small_sym, backend="numpy",
                                block_size=1).power(x, 4)
    y_sp = build_fbmpk_operator(small_sym, backend="scipy",
                                block_size=1).power(x, 4)
    np.testing.assert_allclose(y_np, y_sp, rtol=1e-12, atol=1e-13)


def test_unknown_backend_rejected(grid):
    with pytest.raises(ValueError, match="backend"):
        build_fbmpk_operator(grid, backend="cuda")
