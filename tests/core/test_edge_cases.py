"""Edge-case and failure-injection tests across the core pipeline."""

import numpy as np
import pytest

from repro.core.fbmpk import (
    FBMPKOperator,
    KernelCounter,
    build_fbmpk_operator,
    fbmpk_reference,
    fbmpk_unfused,
    make_sweep_groups_levels,
)
from repro.core.mpk import mpk_reference_dense, mpk_standard
from repro.core.partition import split_ldu
from repro.sparse import CSRMatrix


def op_for(dense, **kw):
    a = CSRMatrix.from_dense(np.asarray(dense, dtype=float))
    return a, build_fbmpk_operator(a, **kw)


class TestDegenerateMatrices:
    def test_one_by_one(self):
        a, op = op_for([[3.0]])
        assert np.allclose(op.power(np.array([2.0]), 4), [2.0 * 81.0])

    def test_diagonal_only(self):
        a, op = op_for(np.diag([1.0, 2.0, 3.0]))
        x = np.ones(3)
        np.testing.assert_allclose(op.power(x, 3), [1.0, 8.0, 27.0])
        # No triangles: zero L/U passes regardless of k.
        c = KernelCounter()
        op.power(x, 5, counter=c)
        assert c.l_entries == c.u_entries == 0

    def test_zero_matrix(self):
        a, op = op_for(np.zeros((4, 4)))
        x = np.arange(4.0)
        np.testing.assert_array_equal(op.power(x, 1), np.zeros(4))
        np.testing.assert_array_equal(op.power(x, 0), x)

    def test_strictly_lower_only(self):
        dense = np.zeros((4, 4))
        dense[2, 0] = 1.0
        dense[3, 1] = 2.0
        a, op = op_for(dense)
        for k in (1, 2, 3):
            np.testing.assert_allclose(op.power(np.ones(4), k),
                                       mpk_reference_dense(a, np.ones(4),
                                                           k))

    def test_strictly_upper_only(self):
        dense = np.zeros((4, 4))
        dense[0, 2] = 1.0
        dense[1, 3] = 2.0
        a, op = op_for(dense)
        for k in (1, 2, 3):
            np.testing.assert_allclose(op.power(np.ones(4), k),
                                       mpk_reference_dense(a, np.ones(4),
                                                           k))

    def test_permutation_matrix(self):
        # A cyclic shift: powers rotate the vector.
        n = 5
        dense = np.zeros((n, n))
        for i in range(n):
            dense[i, (i + 1) % n] = 1.0
        a, op = op_for(dense)
        x = np.arange(float(n))
        y = op.power(x, n)  # full cycle returns x
        np.testing.assert_allclose(y, x)

    def test_disconnected_blocks(self):
        dense = np.zeros((6, 6))
        dense[:3, :3] = np.array([[2, 1, 0], [1, 2, 1], [0, 1, 2]])
        dense[3:, 3:] = np.array([[1, 0, 1], [0, 1, 0], [1, 0, 1]])
        a, op = op_for(dense / 4.0)
        x = np.random.default_rng(0).standard_normal(6)
        np.testing.assert_allclose(op.power(x, 4),
                                   mpk_reference_dense(a, x, 4),
                                   rtol=1e-10, atol=1e-12)

    def test_dense_matrix(self, rng):
        dense = rng.uniform(-0.2, 0.2, size=(12, 12))
        a, op = op_for(dense)
        x = rng.standard_normal(12)
        np.testing.assert_allclose(op.power(x, 5),
                                   mpk_reference_dense(a, x, 5),
                                   rtol=1e-9, atol=1e-11)

    def test_explicit_stored_zeros(self):
        """Stored zeros (common after assembly) flow through correctly."""
        a = CSRMatrix([0, 2, 3], [0, 1, 1], [1.0, 0.0, 2.0], (2, 2))
        op = build_fbmpk_operator(a, strategy="levels")
        x = np.array([1.0, 1.0])
        np.testing.assert_allclose(op.power(x, 2),
                                   mpk_reference_dense(a, x, 2))


class TestNumericalBehaviour:
    def test_large_k_stays_bounded_for_contraction(self, grid):
        """Generator matrices have spectral radius <= 1, so very long
        power sequences must not blow up."""
        op = build_fbmpk_operator(grid, strategy="abmc", block_size=1)
        x = np.ones(grid.n_rows)
        y = op.power(x, 50)
        assert np.isfinite(y).all()
        assert np.abs(y).max() <= np.abs(x).max() + 1e-9

    def test_fbmpk_equals_standard_bit_level_structure(self, small_sym,
                                                       rng):
        """Not bit-identical (summation order differs), but far tighter
        than the generic tolerance: relative agreement ~1e-13."""
        x = rng.standard_normal(small_sym.n_rows)
        part = split_ldu(small_sym)
        y_ref = fbmpk_reference(part, x, 4)
        y_unf = fbmpk_unfused(part, x, 4)
        scale = np.abs(mpk_reference_dense(small_sym, x, 4)).max()
        assert np.abs(y_ref - y_unf).max() < 1e-12 * max(scale, 1.0)

    def test_nan_propagates_not_hides(self, grid):
        """A NaN in the input must surface in the output (no silent
        masking in the fused path)."""
        op = build_fbmpk_operator(grid, strategy="abmc", block_size=1)
        x = np.ones(grid.n_rows)
        x[3] = np.nan
        y = op.power(x, 2)
        assert np.isnan(y).any()


class TestCounterSemantics:
    def test_partial_streams_roll_over(self):
        c = KernelCounter()
        c.count_l(30, 100)
        c.count_l(50, 100)
        assert c.l_passes == 0
        c.count_l(40, 100)  # 120 total -> one pass + 20 carried
        assert c.l_passes == 1
        c.count_l(80, 100)
        assert c.l_passes == 2
        assert c.l_entries == 200

    def test_zero_total_never_divides(self):
        c = KernelCounter()
        c.count_u(0, 0)
        assert c.u_passes == 0


class TestOperatorMisc:
    def test_validate_false_skips_check(self, small_sym):
        part = split_ldu(small_sym)
        groups = make_sweep_groups_levels(part)
        # validate=False accepts anything; correctness is the caller's
        # problem (used by load()).
        FBMPKOperator(part, groups, validate=False)

    def test_groups_properties(self, small_sym):
        part = split_ldu(small_sym)
        g = make_sweep_groups_levels(part)
        assert g.n_forward == len(g.forward)
        assert g.n_backward == len(g.backward)

    def test_standard_mpk_unaffected_by_operator_reuse(self, small_sym,
                                                       rng):
        """Interleaving operator calls with standard MPK calls cannot
        contaminate either."""
        op = build_fbmpk_operator(small_sym, strategy="abmc",
                                  block_size=1)
        x1 = rng.standard_normal(small_sym.n_rows)
        x2 = rng.standard_normal(small_sym.n_rows)
        a1 = op.power(x1, 3)
        b1 = mpk_standard(small_sym, x2, 3)
        a2 = op.power(x1, 3)
        b2 = mpk_standard(small_sym, x2, 3)
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(b1, b2)
