"""Unit tests for the FBMPK kernel — the paper's core contribution."""

import numpy as np
import pytest

from repro.core.fbmpk import (
    FBMPKOperator,
    KernelCounter,
    SweepGroups,
    build_fbmpk_operator,
    check_sweep_groups,
    fbmpk_fused,
    fbmpk_reference,
    fbmpk_unfused,
    make_sweep_groups_abmc,
    make_sweep_groups_levels,
)
from repro.core.mpk import mpk_reference_dense
from repro.core.partition import split_ldu
from repro.core.plan import fbmpk_plan
from repro.reorder import abmc_ordering, permute_symmetric

KS = [0, 1, 2, 3, 4, 5, 6, 7]


class TestReference:
    """fbmpk_reference is the literal Algorithm 2 transcription."""

    @pytest.mark.parametrize("k", KS)
    def test_matches_dense_oracle(self, any_matrix, rng, k):
        x = rng.standard_normal(any_matrix.n_rows)
        part = split_ldu(any_matrix)
        np.testing.assert_allclose(
            fbmpk_reference(part, x, k),
            mpk_reference_dense(any_matrix, x, k),
            rtol=1e-9, atol=1e-11,
        )

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6])
    def test_access_counts_match_plan(self, small_sym, rng, k):
        part = split_ldu(small_sym)
        counter = KernelCounter()
        fbmpk_reference(part, rng.standard_normal(small_sym.n_rows), k,
                        counter=counter)
        plan = fbmpk_plan(k)
        assert counter.l_passes == plan.l_passes
        assert counter.u_passes == plan.u_passes

    def test_on_iterate_yields_all_powers(self, grid, rng):
        x = rng.standard_normal(grid.n_rows)
        part = split_ldu(grid)
        seen = {}
        fbmpk_reference(part, x, 5,
                        on_iterate=lambda i, xi: seen.setdefault(i, xi))
        assert sorted(seen) == [1, 2, 3, 4, 5]
        for i, xi in seen.items():
            np.testing.assert_allclose(xi, mpk_reference_dense(grid, x, i),
                                       rtol=1e-9, atol=1e-11)

    def test_rejects_negative_k(self, grid):
        with pytest.raises(ValueError):
            fbmpk_reference(split_ldu(grid), np.zeros(grid.n_rows), -1)

    def test_rejects_bad_shape(self, grid):
        with pytest.raises(ValueError):
            fbmpk_reference(split_ldu(grid), np.zeros(3), 2)

    def test_k0_returns_copy(self, grid):
        x = np.ones(grid.n_rows)
        y = fbmpk_reference(split_ldu(grid), x, 0)
        assert y is not x
        np.testing.assert_array_equal(y, x)


class TestUnfused:
    @pytest.mark.parametrize("k", KS)
    def test_matches_dense_oracle(self, any_matrix, rng, k):
        x = rng.standard_normal(any_matrix.n_rows)
        np.testing.assert_allclose(
            fbmpk_unfused(split_ldu(any_matrix), x, k),
            mpk_reference_dense(any_matrix, x, k),
            rtol=1e-9, atol=1e-11,
        )

    def test_on_iterate_matches_reference(self, small_sym, rng):
        x = rng.standard_normal(small_sym.n_rows)
        part = split_ldu(small_sym)
        ref_seq, unf_seq = {}, {}
        fbmpk_reference(part, x, 4,
                        on_iterate=lambda i, xi: ref_seq.setdefault(i, xi))
        fbmpk_unfused(part, x, 4,
                      on_iterate=lambda i, xi: unf_seq.setdefault(i, xi))
        assert sorted(ref_seq) == sorted(unf_seq)
        for i in ref_seq:
            np.testing.assert_allclose(ref_seq[i], unf_seq[i],
                                       rtol=1e-9, atol=1e-12)


class TestSweepGroups:
    def test_levels_groups_valid(self, any_matrix):
        part = split_ldu(any_matrix)
        groups = make_sweep_groups_levels(part)
        assert check_sweep_groups(part, groups)
        assert groups.origin == "levels"

    @pytest.mark.parametrize("block_size", [1, 4, 16])
    def test_abmc_groups_valid(self, any_matrix, block_size):
        ordering = abmc_ordering(any_matrix, block_size=block_size)
        reordered = permute_symmetric(any_matrix, ordering.perm)
        part = split_ldu(reordered)
        groups = make_sweep_groups_abmc(ordering)
        assert check_sweep_groups(part, groups)

    def test_groups_partition_rows(self, small_sym):
        part = split_ldu(small_sym)
        groups = make_sweep_groups_levels(part)
        fw = np.concatenate(groups.forward)
        assert sorted(fw.tolist()) == list(range(small_sym.n_rows))
        bw = np.concatenate(groups.backward)
        assert sorted(bw.tolist()) == list(range(small_sym.n_rows))

    def test_invalid_groups_rejected(self, small_sym):
        part = split_ldu(small_sym)
        n = small_sym.n_rows
        # Single forward group: every L dependency becomes intra-group.
        bad = SweepGroups(
            forward=[np.arange(n)],
            backward=make_sweep_groups_levels(part).backward,
            origin="test",
        )
        assert not check_sweep_groups(part, bad)
        with pytest.raises(ValueError, match="invalid sweep groups"):
            FBMPKOperator(part, bad)

    def test_overlapping_groups_rejected(self, small_sym):
        part = split_ldu(small_sym)
        good = make_sweep_groups_levels(part)
        overlapping = SweepGroups(
            forward=good.forward + [good.forward[0]],
            backward=good.backward,
            origin="test",
        )
        assert not check_sweep_groups(part, overlapping)

    def test_incomplete_groups_rejected(self, small_sym):
        part = split_ldu(small_sym)
        good = make_sweep_groups_levels(part)
        incomplete = SweepGroups(forward=good.forward[:-1],
                                 backward=good.backward, origin="test")
        assert not check_sweep_groups(part, incomplete)


class TestFused:
    @pytest.mark.parametrize("strategy,block_size", [
        ("abmc", 1), ("abmc", 4), ("abmc", 32), ("levels", 1),
    ])
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 5, 6])
    def test_matches_dense_oracle(self, any_matrix, rng, strategy,
                                  block_size, k):
        op = build_fbmpk_operator(any_matrix, strategy=strategy,
                                  block_size=block_size)
        x = rng.standard_normal(any_matrix.n_rows)
        np.testing.assert_allclose(
            op.power(x, k), mpk_reference_dense(any_matrix, x, k),
            rtol=1e-9, atol=1e-11,
        )

    @pytest.mark.parametrize("k", [1, 2, 5, 6])
    def test_access_counts_match_plan(self, small_sym, rng, k):
        op = build_fbmpk_operator(small_sym, strategy="abmc", block_size=1)
        counter = KernelCounter()
        op.power(rng.standard_normal(small_sym.n_rows), k, counter=counter)
        plan = fbmpk_plan(k)
        assert counter.l_passes == plan.l_passes
        assert counter.u_passes == plan.u_passes
        # The entry counters must cover every stored entry exactly
        # pass-many times.
        assert counter.l_entries == plan.l_passes * op.part.lower.nnz
        assert counter.u_entries == plan.u_passes * op.part.upper.nnz

    def test_on_iterate_in_original_numbering(self, small_sym, rng):
        op = build_fbmpk_operator(small_sym, strategy="abmc", block_size=1)
        x = rng.standard_normal(small_sym.n_rows)
        seen = {}
        op.power(x, 4, on_iterate=lambda i, xi: seen.setdefault(i, xi))
        for i, xi in seen.items():
            np.testing.assert_allclose(
                xi, mpk_reference_dense(small_sym, x, i),
                rtol=1e-9, atol=1e-11,
            )

    def test_fbmpk_fused_wrapper(self, grid, rng):
        part = split_ldu(grid)
        groups = make_sweep_groups_levels(part)
        x = rng.standard_normal(grid.n_rows)
        np.testing.assert_allclose(
            fbmpk_fused(part, groups, x, 3),
            mpk_reference_dense(grid, x, 3), rtol=1e-9, atol=1e-11,
        )

    def test_barriers_per_pair(self, small_sym):
        op = build_fbmpk_operator(small_sym, strategy="abmc", block_size=1)
        assert op.barriers_per_pair() == \
            op.groups.n_forward + op.groups.n_backward

    def test_power_input_validation(self, grid):
        op = build_fbmpk_operator(grid, strategy="levels")
        with pytest.raises(ValueError):
            op.power(np.zeros(grid.n_rows), -2)
        with pytest.raises(ValueError):
            op.power(np.zeros(grid.n_rows + 1), 2)

    def test_build_rejects_nonsquare(self):
        from repro.sparse import CSRMatrix

        with pytest.raises(ValueError, match="square"):
            build_fbmpk_operator(CSRMatrix.zeros((2, 3)))

    def test_build_rejects_unknown_strategy(self, grid):
        with pytest.raises(ValueError, match="strategy"):
            build_fbmpk_operator(grid, strategy="magic")

    def test_repeated_use_is_consistent(self, small_sym, rng):
        """The operator is reusable: repeated calls with different
        vectors give independent, correct results (no state leaks)."""
        op = build_fbmpk_operator(small_sym, strategy="abmc", block_size=1)
        for seed in range(3):
            x = np.random.default_rng(seed).standard_normal(small_sym.n_rows)
            np.testing.assert_allclose(
                op.power(x, 3), mpk_reference_dense(small_sym, x, 3),
                rtol=1e-9, atol=1e-11,
            )

    def test_input_not_mutated(self, grid, rng):
        op = build_fbmpk_operator(grid, strategy="abmc", block_size=1)
        x = rng.standard_normal(grid.n_rows)
        x_copy = x.copy()
        op.power(x, 5)
        np.testing.assert_array_equal(x, x_copy)
