"""Unit tests for the back-to-back interleaved vector storage."""

import numpy as np
import pytest

from repro.core.btb import InterleavedPair, deinterleave, interleave


def test_interleave_roundtrip(rng):
    even = rng.standard_normal(17)
    odd = rng.standard_normal(17)
    xy = interleave(even, odd)
    e, o = deinterleave(xy)
    np.testing.assert_array_equal(e, even)
    np.testing.assert_array_equal(o, odd)


def test_deinterleave_copy_semantics(rng):
    xy = interleave(rng.standard_normal(9), rng.standard_normal(9))
    e_copy, o_copy = deinterleave(xy)
    assert not np.shares_memory(e_copy, xy)
    assert not np.shares_memory(o_copy, xy)
    e_view, o_view = deinterleave(xy, copy=False)
    assert np.shares_memory(e_view, xy)
    assert np.shares_memory(o_view, xy)
    np.testing.assert_array_equal(e_view, e_copy)
    np.testing.assert_array_equal(o_view, o_copy)
    xy[0] = 42.0  # visible through the views, not the copies
    assert e_view[0] == 42.0
    assert e_copy[0] != 42.0


def test_physical_layout_is_interleaved():
    xy = interleave(np.array([1.0, 2.0]), np.array([10.0, 20.0]))
    np.testing.assert_array_equal(xy, [1.0, 10.0, 2.0, 20.0])


def test_interleave_validation():
    with pytest.raises(ValueError):
        interleave(np.ones(3), np.ones(4))
    with pytest.raises(ValueError):
        interleave(np.ones((2, 2)), np.ones((2, 2)))
    with pytest.raises(ValueError):
        deinterleave(np.ones(5))


class TestInterleavedPair:
    def test_from_initial_puts_x0_in_even_slots(self):
        pair = InterleavedPair.from_initial(np.array([3.0, 4.0]))
        np.testing.assert_array_equal(pair.even, [3.0, 4.0])
        np.testing.assert_array_equal(pair.odd, [0.0, 0.0])

    def test_views_share_memory(self):
        pair = InterleavedPair.from_initial(np.zeros(4))
        pair.even[2] = 7.0
        assert pair.xy[4] == 7.0
        pair.odd[0] = -1.0
        assert pair.xy[1] == -1.0

    def test_as_matrix_is_c_contiguous_view(self):
        pair = InterleavedPair.from_initial(np.arange(3.0))
        m = pair.as_matrix()
        assert m.flags["C_CONTIGUOUS"]
        assert m.shape == (3, 2)
        m[1, 1] = 42.0
        assert pair.xy[3] == 42.0

    def test_get_parity(self):
        pair = InterleavedPair(np.array([1.0, 2.0, 3.0, 4.0]))
        np.testing.assert_array_equal(pair.get(0), [1.0, 3.0])
        np.testing.assert_array_equal(pair.get(1), [2.0, 4.0])
        with pytest.raises(ValueError):
            pair.get(2)

    def test_rejects_odd_length(self):
        with pytest.raises(ValueError):
            InterleavedPair(np.ones(5))
