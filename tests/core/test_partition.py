"""Unit tests for the A = L + D + U partition (Section III-A)."""

import numpy as np
import pytest

from repro.core.partition import split_ldu
from repro.sparse import CSRMatrix


def test_split_shapes_and_triangularity(any_matrix):
    part = split_ldu(any_matrix)
    n = any_matrix.n_rows
    assert part.n == n
    # Strict triangularity of the parts.
    rows_l = np.repeat(np.arange(n), part.lower.row_nnz())
    assert (part.lower.indices < rows_l).all()
    rows_u = np.repeat(np.arange(n), part.upper.row_nnz())
    assert (part.upper.indices > rows_u).all()


def test_split_reassembles_exactly(any_matrix):
    part = split_ldu(any_matrix)
    np.testing.assert_array_equal(part.reassemble().to_dense(),
                                  any_matrix.to_dense())


def test_partition_matvec(any_matrix, rng):
    part = split_ldu(any_matrix)
    x = rng.standard_normal(any_matrix.n_cols)
    np.testing.assert_allclose(part.matvec(x), any_matrix.matvec(x),
                               rtol=1e-12, atol=1e-13)


def test_nnz_conservation(any_matrix):
    part = split_ldu(any_matrix)
    n_diag_stored = int(np.count_nonzero(any_matrix.diagonal()))
    assert part.lower.nnz + part.upper.nnz + n_diag_stored \
        == any_matrix.sort_indices().nnz


def test_diagonal_extraction():
    dense = np.array([[2.0, 1.0], [0.0, -3.0]])
    part = split_ldu(CSRMatrix.from_dense(dense))
    np.testing.assert_array_equal(part.diag, [2.0, -3.0])


def test_missing_diagonal_entries_become_zero():
    dense = np.array([[0.0, 1.0], [1.0, 0.0]])
    part = split_ldu(CSRMatrix.from_dense(dense))
    np.testing.assert_array_equal(part.diag, [0.0, 0.0])
    np.testing.assert_array_equal(part.reassemble().to_dense(), dense)


def test_requires_square():
    a = CSRMatrix.zeros((2, 3))
    with pytest.raises(ValueError, match="square"):
        split_ldu(a)


class TestStorageReport:
    def test_table4_formulas(self, small_sym):
        part = split_ldu(small_sym)
        r = part.storage_report()
        n, nnz = small_sym.n_rows, small_sym.nnz
        assert r.csr_col_ind == r.csr_values == nnz
        assert r.csr_row_ptr == n + 1
        assert r.csr_d == 0
        assert r.ldu_row_ptr == 2 * (n + 1)
        assert r.ldu_d == n
        assert r.ldu_col_ind == r.ldu_values == part.lower.nnz + part.upper.nnz

    def test_overhead_near_one(self, any_matrix):
        ratio = split_ldu(any_matrix).storage_report().overhead_ratio()
        assert 0.85 < ratio < 1.15

    def test_as_rows_structure(self, grid):
        rows = split_ldu(grid).storage_report().as_rows()
        assert set(rows) == {"CSR", "L+U+d"}
        assert set(rows["CSR"]) == {"col_ind", "row_ptr", "values", "d"}
