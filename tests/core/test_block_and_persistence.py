"""Unit tests for the block power kernel and operator persistence."""

import numpy as np
import pytest

from repro.core.fbmpk import FBMPKOperator, build_fbmpk_operator
from repro.core.mpk import mpk_reference_dense


class TestPowerBlock:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 5, 6])
    @pytest.mark.parametrize("backend", ["numpy", "scipy"])
    def test_matches_per_column_powers(self, any_matrix, rng, k, backend):
        op = build_fbmpk_operator(any_matrix, strategy="abmc",
                                  block_size=1, backend=backend)
        X = rng.standard_normal((any_matrix.n_rows, 3))
        Y = op.power_block(X, k)
        for j in range(X.shape[1]):
            np.testing.assert_allclose(
                Y[:, j], mpk_reference_dense(any_matrix, X[:, j], k),
                rtol=1e-9, atol=1e-11)

    def test_single_column_block_equals_power(self, small_sym, rng):
        op = build_fbmpk_operator(small_sym, strategy="levels")
        x = rng.standard_normal(small_sym.n_rows)
        np.testing.assert_allclose(op.power_block(x[:, None], 4)[:, 0],
                                   op.power(x, 4), rtol=1e-12, atol=1e-13)

    def test_validation(self, grid, rng):
        op = build_fbmpk_operator(grid, strategy="levels")
        with pytest.raises(ValueError):
            op.power_block(rng.standard_normal((grid.n_rows, 2)), -1)
        with pytest.raises(ValueError):
            op.power_block(rng.standard_normal(grid.n_rows), 2)  # 1-D
        with pytest.raises(ValueError):
            op.power_block(rng.standard_normal((grid.n_rows + 1, 2)), 2)

    def test_input_block_not_mutated(self, grid, rng):
        op = build_fbmpk_operator(grid, strategy="abmc", block_size=1)
        X = rng.standard_normal((grid.n_rows, 2))
        X_copy = X.copy()
        op.power_block(X, 3)
        np.testing.assert_array_equal(X, X_copy)


class TestPersistence:
    @pytest.mark.parametrize("strategy", ["abmc", "levels"])
    def test_save_load_roundtrip(self, small_sym, rng, tmp_path, strategy):
        op = build_fbmpk_operator(small_sym, strategy=strategy,
                                  block_size=4)
        path = tmp_path / "op.npz"
        op.save(path)
        x = rng.standard_normal(small_sym.n_rows)
        for backend in ("numpy", "scipy"):
            loaded = FBMPKOperator.load(path, backend=backend)
            assert loaded.groups.origin == op.groups.origin
            np.testing.assert_allclose(loaded.power(x, 5), op.power(x, 5),
                                       rtol=1e-13, atol=1e-14)

    def test_loaded_operator_metadata(self, grid, tmp_path):
        op = build_fbmpk_operator(grid, strategy="abmc", block_size=1)
        path = tmp_path / "grid.npz"
        op.save(path)
        loaded = FBMPKOperator.load(path)
        assert loaded.n == op.n
        assert loaded.groups.n_forward == op.groups.n_forward
        assert (loaded.perm is None) == (op.perm is None)
        if op.perm is not None:
            np.testing.assert_array_equal(loaded.perm, op.perm)

    def test_levels_operator_has_no_perm(self, grid, tmp_path):
        op = build_fbmpk_operator(grid, strategy="levels")
        path = tmp_path / "lv.npz"
        op.save(path)
        assert FBMPKOperator.load(path).perm is None
