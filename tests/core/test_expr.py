"""Unit tests for the symbolic SSpMV expression frontend."""

import numpy as np
import pytest

from repro.core.expr import A, X, MatrixSymbol, SSpMVExpression, from_coefficients
from repro.core.fbmpk import build_fbmpk_operator


class TestAlgebra:
    def test_basic_construction(self):
        expr = A(A(X)) + 2 * A(X) + X
        np.testing.assert_array_equal(expr.coefficients(), [1.0, 2.0, 1.0])
        assert expr.degree == 2

    def test_matmul_and_pow_syntax(self):
        assert (A @ X) == A(X)
        assert ((A ** 3) @ X) == A(A(A(X)))
        assert ((A ** 2)(X)) == A(A(X))
        assert (A ** 0) @ X == X

    def test_subtraction_and_negation(self):
        expr = A(X) - X
        np.testing.assert_array_equal(expr.coefficients(), [-1.0, 1.0])
        np.testing.assert_array_equal((-expr).coefficients(), [1.0, -1.0])

    def test_scalar_ops(self):
        expr = 3 * A(X) / 2
        np.testing.assert_array_equal(expr.coefficients(), [0.0, 1.5])
        assert (A(X) * 0 + X).degree == 0

    def test_trailing_zero_trim(self):
        expr = A(A(X)) - A(A(X)) + X
        np.testing.assert_array_equal(expr.coefficients(), [1.0])
        assert expr.degree == 0

    def test_complex_coefficients(self):
        expr = (1 + 2j) * A(X) + X
        assert expr.coefficients().dtype == np.complex128
        # Complex values that are actually real collapse to float64.
        real = (1 + 0j) * X
        assert real.coefficients().dtype == np.float64

    def test_equality_and_hash(self):
        assert A(X) + X == from_coefficients([1, 1])
        assert A(X) != X
        assert hash(A(X) + X) == hash(from_coefficients([1.0, 1.0]))

    def test_repr(self):
        assert "A^2" in repr(A(A(X)))
        assert repr(X - X) == "0"

    def test_validation(self):
        with pytest.raises(ValueError):
            SSpMVExpression([])
        with pytest.raises(ValueError):
            MatrixSymbol(-1)
        with pytest.raises(ValueError):
            A ** -2
        with pytest.raises(TypeError):
            A(np.ones(3))
        with pytest.raises(ValueError):
            X.shifted(-1)


class TestEvaluation:
    @pytest.fixture()
    def setup(self, small_sym, rng):
        op = build_fbmpk_operator(small_sym, strategy="abmc", block_size=1)
        x = rng.standard_normal(small_sym.n_rows)
        return small_sym, op, x

    def test_paper_intro_combination(self, setup):
        """A^2 x + A x, the paper's introductory SSpMV example."""
        a, op, x = setup
        expr = A(A(X)) + A(X)
        dense = a.to_dense()
        np.testing.assert_allclose(expr.evaluate(op, x),
                                   dense @ (dense @ x) + dense @ x,
                                   rtol=1e-9, atol=1e-11)

    def test_pipelines_agree(self, setup):
        a, op, x = setup
        expr = 0.25 * ((A ** 4) @ X) - A(X) + 2 * X
        np.testing.assert_allclose(expr.evaluate(op, x),
                                   expr.evaluate_baseline(a, x),
                                   rtol=1e-9, atol=1e-11)

    def test_complex_evaluation(self, setup):
        a, op, x = setup
        expr = 1j * A(X) + X
        y = expr.evaluate(op, x)
        assert np.iscomplexobj(y)
        np.testing.assert_allclose(y, x + 1j * a.matvec(x),
                                   rtol=1e-10, atol=1e-12)
