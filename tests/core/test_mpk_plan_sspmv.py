"""Unit tests for the standard MPK, the access plan, and generic SSpMV."""

import numpy as np
import pytest

from repro.core.mpk import mpk_reference_dense, mpk_standard, mpk_standard_all
from repro.core.plan import AccessPlan, fbmpk_plan, standard_plan, theoretical_ratio
from repro.core.sspmv import SSpMVProblem, sspmv_fbmpk, sspmv_standard
from repro.core.fbmpk import build_fbmpk_operator
from repro.sparse.spmv import spmv_scalar, spmv_scipy


class TestStandardMPK:
    @pytest.mark.parametrize("k", [0, 1, 3, 6])
    def test_matches_dense(self, any_matrix, rng, k):
        x = rng.standard_normal(any_matrix.n_rows)
        np.testing.assert_allclose(mpk_standard(any_matrix, x, k),
                                   mpk_reference_dense(any_matrix, x, k),
                                   rtol=1e-9, atol=1e-11)

    def test_kernel_plumbing(self, grid, rng):
        x = rng.standard_normal(grid.n_rows)
        for kernel in (spmv_scalar, spmv_scipy):
            np.testing.assert_allclose(
                mpk_standard(grid, x, 2, kernel=kernel),
                mpk_reference_dense(grid, x, 2), rtol=1e-9, atol=1e-11)

    def test_sequence(self, grid, rng):
        x = rng.standard_normal(grid.n_rows)
        seq = mpk_standard_all(grid, x, 3)
        assert len(seq) == 4
        np.testing.assert_array_equal(seq[0], x)
        for i, xi in enumerate(seq):
            np.testing.assert_allclose(xi, mpk_reference_dense(grid, x, i),
                                       rtol=1e-9, atol=1e-11)

    def test_negative_k_rejected(self, grid):
        with pytest.raises(ValueError):
            mpk_standard(grid, np.zeros(grid.n_rows), -1)
        with pytest.raises(ValueError):
            mpk_standard_all(grid, np.zeros(grid.n_rows), -1)


class TestAccessPlan:
    @pytest.mark.parametrize("k,l,u", [
        # Section III-B: even k -> U: k/2+1, L: k/2; odd k -> both (k+1)/2.
        (1, 1, 1), (2, 1, 2), (3, 2, 2), (4, 2, 3), (5, 3, 3),
        (6, 3, 4), (7, 4, 4), (8, 4, 5), (9, 5, 5),
    ])
    def test_fbmpk_pass_counts(self, k, l, u):
        plan = fbmpk_plan(k)
        assert (plan.l_passes, plan.u_passes) == (l, u)

    @pytest.mark.parametrize("k", range(1, 10))
    def test_matrix_equivalents_are_half_k_plus_one(self, k):
        assert fbmpk_plan(k).matrix_equivalents == pytest.approx((k + 1) / 2)
        assert standard_plan(k).matrix_equivalents == pytest.approx(k)

    @pytest.mark.parametrize("k", range(1, 10))
    def test_theoretical_ratio(self, k):
        assert theoretical_ratio(k) == pytest.approx((k + 1) / (2 * k))
        assert fbmpk_plan(k).matrix_equivalents \
            / standard_plan(k).matrix_equivalents \
            == pytest.approx(theoretical_ratio(k))

    def test_weighted_equivalents(self):
        plan = AccessPlan(method="x", k=2, l_passes=1, u_passes=2,
                          d_passes=2)
        # l_nnz=10, u_nnz=20, d=5, total=35: (1*10 + 2*20 + 2*5)/35.
        assert plan.weighted_equivalents(10, 20, 5, 35) \
            == pytest.approx(60 / 35)
        assert plan.weighted_equivalents(10, 20, 5, 0) == 0.0

    def test_k0_and_errors(self):
        assert fbmpk_plan(0).matrix_equivalents == 0.0
        with pytest.raises(ValueError):
            fbmpk_plan(-1)
        with pytest.raises(ValueError):
            standard_plan(-1)
        with pytest.raises(ValueError):
            theoretical_ratio(0)


class TestSSpMV:
    def _dense_poly(self, a, x, alphas):
        dense = a.to_dense()
        acc = np.zeros_like(x)
        xi = x.copy()
        for alpha in alphas:
            acc += alpha * xi
            xi = dense @ xi
        return acc

    @pytest.mark.parametrize("alphas", [
        [1.0], [0.0, 1.0], [1.0, 2.0, 0.5], [1.0, 0.0, 0.0, -0.25],
        [0.5, -1.0, 2.0, 0.0, 0.125, 1.0],
    ])
    def test_standard_and_fbmpk_match_dense(self, small_sym, rng, alphas):
        x = rng.standard_normal(small_sym.n_rows)
        expected = self._dense_poly(small_sym, x, alphas)
        np.testing.assert_allclose(sspmv_standard(small_sym, x, alphas),
                                   expected, rtol=1e-9, atol=1e-11)
        op = build_fbmpk_operator(small_sym, strategy="abmc", block_size=1)
        np.testing.assert_allclose(sspmv_fbmpk(op, x, alphas),
                                   expected, rtol=1e-9, atol=1e-11)

    def test_paper_intro_example(self, grid, rng):
        """The paper's introduction example: A^2 x + A x."""
        x = rng.standard_normal(grid.n_rows)
        op = build_fbmpk_operator(grid, strategy="levels")
        y = sspmv_fbmpk(op, x, [0.0, 1.0, 1.0])
        dense = grid.to_dense()
        np.testing.assert_allclose(y, dense @ x + dense @ (dense @ x),
                                   rtol=1e-9, atol=1e-11)

    def test_empty_alphas_rejected(self, grid):
        with pytest.raises(ValueError):
            sspmv_standard(grid, np.zeros(grid.n_rows), [])

    def test_problem_wrapper(self, small_unsym, rng):
        prob = SSpMVProblem(small_unsym, strategy="abmc", block_size=1)
        x = rng.standard_normal(small_unsym.n_rows)
        alphas = [1.0, -0.5, 0.25]
        np.testing.assert_allclose(prob.evaluate(x, alphas),
                                   prob.evaluate_baseline(x, alphas),
                                   rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(
            prob.power(x, 3), mpk_reference_dense(small_unsym, x, 3),
            rtol=1e-9, atol=1e-11)
