"""Unit tests for the distributed-memory MPK substrate."""

import numpy as np
import pytest

from repro.core.mpk import mpk_reference_dense
from repro.distributed import (
    CommStats,
    RowPartition,
    distributed_mpk,
    distributed_mpk_ca,
    distributed_spmv,
    partition_rows,
)
from repro.matrices import banded_random, poisson2d
from repro.sparse import CSRMatrix


class TestPartition:
    def test_blocks_tile_rows(self, small_sym):
        part = partition_rows(small_sym, 4)
        assert part.blocks[0].row_start == 0
        assert part.blocks[-1].row_stop == small_sym.n_rows
        total = sum(b.n_local for b in part.blocks)
        assert total == small_sym.n_rows

    def test_halo_is_off_rank_only(self, small_sym):
        part = partition_rows(small_sym, 3)
        for b in part.blocks:
            assert not ((b.halo_cols >= b.row_start)
                        & (b.halo_cols < b.row_stop)).any()

    def test_owner_of(self, small_sym):
        part = partition_rows(small_sym, 4)
        for b in part.blocks:
            mid = (b.row_start + b.row_stop) // 2
            assert part.owner_of(np.array([mid]))[0] == b.rank
            assert b.owns(mid)

    def test_halo_expansion_grows_monotonically(self, small_sym):
        part = partition_rows(small_sym, 4)
        sizes = [part.halo_expansion(1, h).size for h in range(4)]
        assert sizes == sorted(sizes)
        # hop 0 is exactly the owned range.
        assert sizes[0] == part.blocks[1].n_local

    def test_validation(self, small_sym):
        with pytest.raises(ValueError):
            partition_rows(small_sym, 0)
        with pytest.raises(ValueError):
            partition_rows(small_sym, small_sym.n_rows + 1)
        with pytest.raises(ValueError):
            partition_rows(CSRMatrix.zeros((2, 3)), 1)
        part = partition_rows(small_sym, 2)
        with pytest.raises(ValueError):
            part.halo_expansion(0, -1)


class TestSPMD:
    @pytest.mark.parametrize("n_ranks", [1, 2, 5])
    def test_spmv_matches_serial(self, any_matrix, rng, n_ranks):
        part = partition_rows(any_matrix, n_ranks)
        x = rng.standard_normal(any_matrix.n_rows)
        np.testing.assert_allclose(distributed_spmv(part, x),
                                   any_matrix.matvec(x),
                                   rtol=1e-12, atol=1e-13)

    @pytest.mark.parametrize("k", [0, 1, 2, 4, 5])
    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_both_strategies_match_serial_mpk(self, any_matrix, rng, k,
                                              n_ranks):
        part = partition_rows(any_matrix, n_ranks)
        x = rng.standard_normal(any_matrix.n_rows)
        ref = mpk_reference_dense(any_matrix, x, k)
        y_std, _ = distributed_mpk(part, x, k)
        y_ca, _ = distributed_mpk_ca(part, x, k)
        np.testing.assert_allclose(y_std, ref, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(y_ca, ref, rtol=1e-9, atol=1e-11)

    def test_round_counts(self, small_sym, rng):
        part = partition_rows(small_sym, 4)
        x = rng.standard_normal(small_sym.n_rows)
        _, s_std = distributed_mpk(part, x, 5)
        _, s_ca = distributed_mpk_ca(part, x, 5)
        assert s_std.rounds == 5
        assert s_ca.rounds == 1

    def test_ca_trades_volume_and_flops_for_rounds(self, rng):
        a = banded_random(300, 6, 5, symmetric=True, seed=2)
        part = partition_rows(a, 4)
        x = rng.standard_normal(a.n_rows)
        _, s_std = distributed_mpk(part, x, 6)
        _, s_ca = distributed_mpk_ca(part, x, 6)
        # CA pays redundant work and a (mildly) larger single shipment…
        assert s_ca.redundant_flops > 0
        assert s_ca.volume_doubles >= s_std.volume_doubles / 6
        # …to win on latency-dominated links.
        latency_heavy = dict(latency_s=1e-4, bw_doubles_per_s=1.25e9)
        assert s_ca.time_seconds(**latency_heavy) \
            < s_std.time_seconds(**latency_heavy)

    def test_expander_defeats_ca_volume(self, rng):
        """On a fast-expanding graph the k-hop ghost zone approaches the
        whole vector, so CA's single shipment outweighs the standard
        method's k thin exchanges — the structural limit of
        communication avoidance (stencil-like matrices are where it
        wins, cf. the paper's [46])."""
        a = banded_random(240, 8, 120, symmetric=True, seed=7)  # wide band
        part = partition_rows(a, 4)
        x = rng.standard_normal(a.n_rows)
        k = 4
        _, s_std = distributed_mpk(part, x, k)
        _, s_ca = distributed_mpk_ca(part, x, k)
        # The k-hop halo has blown up to (almost) everything…
        assert s_ca.volume_doubles > 0.5 * s_std.volume_doubles
        # …while on a narrow band CA ships no more than the standard
        # method's total.
        banded = banded_random(240, 6, 4, symmetric=True, seed=8)
        part_b = partition_rows(banded, 4)
        _, b_std = distributed_mpk(part_b, x, k)
        _, b_ca = distributed_mpk_ca(part_b, x, k)
        assert b_ca.volume_doubles <= b_std.volume_doubles * 1.2

    def test_stats_time_model(self):
        s = CommStats(rounds=2, messages=4, volume_doubles=1000)
        assert s.time_seconds(latency_s=1e-3, bw_doubles_per_s=1e6) \
            == pytest.approx(2e-3 + 1e-3)

    def test_negative_k_rejected(self, grid):
        part = partition_rows(grid, 2)
        with pytest.raises(ValueError):
            distributed_mpk(part, np.zeros(grid.n_rows), -1)
        with pytest.raises(ValueError):
            distributed_mpk_ca(part, np.zeros(grid.n_rows), -1)
