"""Failure-injection tests: the SPMD simulator's guard rails must catch
under-provisioned communication instead of silently computing garbage."""

import numpy as np
import pytest

from repro.distributed import partition_rows
from repro.distributed.spmd import _exchange, CommStats, distributed_mpk_ca
from repro.matrices import banded_random


@pytest.fixture()
def setup():
    a = banded_random(120, 5, 6, symmetric=True, seed=3)
    part = partition_rows(a, 3)
    x = np.random.default_rng(0).standard_normal(a.n_rows)
    return a, part, x


def test_truncated_ghost_zone_is_caught(setup, monkeypatch):
    """If the CA exchange ships a too-shallow ghost zone, the NaN guard
    must fire rather than produce a wrong answer."""
    a, part, x = setup
    real_expansion = part.halo_expansion

    def truncated(rank, hops):
        # Ship only the 1-hop zone no matter how deep the request.
        return real_expansion(rank, min(hops, 1))

    monkeypatch.setattr(part, "halo_expansion", truncated)
    with pytest.raises(AssertionError, match="ghost zone too small"):
        distributed_mpk_ca(part, x, 4)


def test_exchange_marks_unreceived_entries_nan(setup):
    a, part, x = setup
    stats = CommStats()
    views = _exchange(part, x, [np.empty(0, dtype=np.int64)
                                for _ in part.blocks], stats)
    for block, view in zip(part.blocks, views):
        own = view[block.row_start:block.row_stop]
        assert not np.isnan(own).any()
        outside = np.delete(view,
                            np.arange(block.row_start, block.row_stop))
        if outside.size:
            assert np.isnan(outside).all()


def test_exchange_accounting(setup):
    a, part, x = setup
    stats = CommStats()
    needed = [b.halo_cols for b in part.blocks]
    _exchange(part, x, needed, stats)
    assert stats.rounds == 1
    assert stats.volume_doubles == sum(b.halo_size for b in part.blocks)
    # Every rank with a nonempty halo sends at least one message.
    assert stats.messages >= sum(1 for b in part.blocks if b.halo_size)
