"""Library errors must survive pickling with their context intact.

The process executor ships worker exceptions across a
``multiprocessing`` queue and the parent re-wraps them into
:class:`~repro.robust.errors.PhaseExecutionError`; that error itself may
then cross a further process boundary (e.g. a pytest-xdist worker or a
spawned autotuner probe).  A pickle round-trip must preserve both the
message and every scheduling-context attribute.
"""

import pickle

import pytest

from repro.robust.errors import PhaseExecutionError


def _roundtrip(err):
    return pickle.loads(pickle.dumps(err))


def test_phase_execution_error_roundtrip_full_context():
    err = PhaseExecutionError("block task crashed", phase_index=3,
                              color=1, block=(128, 256), thread=2)
    clone = _roundtrip(err)
    assert isinstance(clone, PhaseExecutionError)
    assert str(clone) == str(err)
    assert clone.phase_index == 3
    assert clone.color == 1
    assert clone.block == (128, 256)
    assert clone.thread == 2


def test_phase_execution_error_roundtrip_partial_context():
    err = PhaseExecutionError("worker died", thread=0)
    clone = _roundtrip(err)
    assert clone.phase_index is None
    assert clone.color is None
    assert clone.block is None
    assert clone.thread == 0
    assert "thread bin 0" in str(clone)


def test_phase_execution_error_roundtrip_preserves_cause():
    err = PhaseExecutionError("crash", phase_index=0, color=0)
    err.__cause__ = RuntimeError("boom")
    clone = _roundtrip(err)
    assert isinstance(clone.__cause__, RuntimeError)
    assert str(clone.__cause__) == "boom"


def test_phase_execution_error_is_runtime_error():
    with pytest.raises(RuntimeError):
        raise PhaseExecutionError("x")
