"""Solver breakdown/divergence/non-finite guards: corrupt inputs must
end a run with a structured status (or a typed error under
``check_finite``), never with an endless iteration on garbage.
"""

import numpy as np
import pytest

from repro.core import build_fbmpk_operator
from repro.matrices import banded_random, poisson2d
from repro.robust import FaultInjector, NonFiniteError
from repro.solvers import bicgstab, conjugate_gradient, gmres
from repro.solvers.lanczos import lanczos, sstep_krylov_basis
from repro.sparse import CSRMatrix


@pytest.fixture
def spd():
    return poisson2d(10, seed=1)  # 100 rows, SPD


@pytest.fixture
def unsym():
    return banded_random(80, 4, 7, symmetric=False, seed=5)


def _rhs(a, seed=0):
    return a.matvec(np.random.default_rng(seed).standard_normal(a.n_rows))


class TestCG:
    def test_clean_run_converges(self, spd):
        res = conjugate_gradient(spd, _rhs(spd), check_finite=True)
        assert res.converged
        assert res.status == "converged"

    def test_breakdown_on_indefinite_matrix(self):
        # -I is symmetric but negative definite: p^T A p < 0 at once.
        n = 16
        idx = np.arange(n, dtype=np.int64)
        a = CSRMatrix.from_coo_arrays(idx, idx, -np.ones(n), (n, n))
        res = conjugate_gradient(a, np.ones(n))
        assert not res.converged
        assert res.status == "breakdown"
        assert res.iterations == 0

    def test_nan_rhs_check_finite_raises(self, spd):
        b = FaultInjector(seed=1).poison_vector(_rhs(spd), n=1)
        with pytest.raises(NonFiniteError, match="right-hand side"):
            conjugate_gradient(spd, b, check_finite=True)

    def test_nan_rhs_unchecked_reports_non_finite(self, spd):
        b = FaultInjector(seed=1).poison_vector(_rhs(spd), n=1)
        res = conjugate_gradient(spd, b)
        assert res.status == "non_finite"
        assert res.iterations == 0

    def test_corrupt_matrix_reports_non_finite(self, spd):
        bad = FaultInjector(seed=2).corrupt_values(spd, n=1, kind="nan")
        res = conjugate_gradient(bad, np.ones(bad.n_rows))
        assert res.status == "non_finite"

    def test_corrupt_matrix_check_finite_raises(self, spd):
        bad = FaultInjector(seed=2).corrupt_values(spd, n=1, kind="nan")
        with pytest.raises(NonFiniteError, match="matrix values"):
            conjugate_gradient(bad, np.ones(bad.n_rows), check_finite=True)

    def test_divergence_guard(self, spd):
        # An absurdly tight limit turns the first non-converged residual
        # into a divergence stop — exercising the guard deterministically.
        res = conjugate_gradient(spd, _rhs(spd), tol=1e-30,
                                 divergence_limit=1e-16)
        assert res.status == "diverged"
        assert not res.converged

    def test_max_iter_status(self, spd):
        res = conjugate_gradient(spd, _rhs(spd), max_iter=2, tol=1e-14)
        assert res.status == "max_iter"
        assert res.iterations == 2

    def test_nan_x0_check_finite_raises(self, spd):
        x0 = np.full(spd.n_rows, np.nan)
        with pytest.raises(NonFiniteError, match="initial guess"):
            conjugate_gradient(spd, _rhs(spd), x0=x0, check_finite=True)


class TestBiCGSTAB:
    def test_clean_run_converges(self, unsym):
        res = bicgstab(unsym, _rhs(unsym), check_finite=True)
        assert res.status == "converged"

    def test_nan_rhs(self, unsym):
        b = FaultInjector(seed=1).poison_vector(_rhs(unsym), n=2)
        assert bicgstab(unsym, b).status == "non_finite"
        with pytest.raises(NonFiniteError):
            bicgstab(unsym, b, check_finite=True)

    def test_corrupt_matrix(self, unsym):
        bad = FaultInjector(seed=2).corrupt_values(unsym, n=1, kind="inf")
        with np.errstate(invalid="ignore"):  # inf * 0 inside the SpMV
            res = bicgstab(bad, _rhs(unsym))
        assert res.status == "non_finite"

    def test_max_iter(self, unsym):
        res = bicgstab(unsym, _rhs(unsym), max_iter=1, tol=1e-14)
        assert res.status in ("max_iter", "converged")
        if res.status == "max_iter":
            assert not res.converged


class TestGMRES:
    def test_clean_run_converges(self, unsym):
        res = gmres(unsym, _rhs(unsym), check_finite=True)
        assert res.status == "converged"

    def test_nan_rhs(self, unsym):
        b = FaultInjector(seed=1).poison_vector(_rhs(unsym), n=1)
        assert gmres(unsym, b).status == "non_finite"
        with pytest.raises(NonFiniteError):
            gmres(unsym, b, check_finite=True)

    def test_corrupt_matrix(self, unsym):
        bad = FaultInjector(seed=2).corrupt_values(unsym, n=2, kind="nan")
        assert gmres(bad, _rhs(unsym)).status == "non_finite"

    def test_max_iter(self, unsym):
        res = gmres(unsym, _rhs(unsym), max_iter=2, tol=1e-14)
        assert res.status == "max_iter"
        assert not res.converged


class TestLanczos:
    def test_poisoned_start_vector(self, spd):
        q0 = FaultInjector(seed=1).poison_vector(np.ones(spd.n_rows), n=1)
        with pytest.raises(NonFiniteError, match="start vector"):
            lanczos(spd, 5, q0=q0)

    def test_corrupt_matrix_named_step(self, spd):
        bad = FaultInjector(seed=2).corrupt_values(spd, n=1, kind="nan")
        with pytest.raises(NonFiniteError, match=r"A q_0"):
            lanczos(bad, 5)

    def test_guard_can_be_disabled(self, spd):
        bad = FaultInjector(seed=2).corrupt_values(spd, n=1, kind="nan")
        q, alpha, beta = lanczos(bad, 3, check_finite=False)
        assert np.isnan(alpha).any() or np.isnan(q).any()

    def test_sstep_basis_forwards_check_finite(self, spd):
        bad = FaultInjector(seed=2).corrupt_values(spd, n=1, kind="nan")
        op = build_fbmpk_operator(bad)
        q0 = np.ones(bad.n_rows)
        with pytest.raises(NonFiniteError):
            sstep_krylov_basis(op, q0, 3, check_finite=True)
