"""Every structural corruption is caught by the right validator issue.

The strategy: take a known-good object, corrupt exactly one invariant,
and assert the report contains the matching issue code — so each
validator check is pinned to the defect class it exists for.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import build_fbmpk_operator
from repro.matrices import banded_random
from repro.parallel.scheduler import BlockTask, Phase
from repro.robust import (
    FaultInjector,
    NonFiniteError,
    ValidationError,
    ensure_finite,
    validate_coo,
    validate_csr,
    validate_phases,
    validate_sweep_groups,
)
from repro.sparse import CSRMatrix
from repro.sparse.convert import csr_to_coo


def _loose(a: CSRMatrix) -> SimpleNamespace:
    """Mutable duck-typed copy that bypasses constructor validation —
    the validators must distrust exactly such objects."""
    return SimpleNamespace(indptr=a.indptr.copy(), indices=a.indices.copy(),
                           data=a.data.copy(), shape=a.shape)


@pytest.fixture
def a():
    return banded_random(60, 4, 7, symmetric=True, seed=11)


def _codes(report):
    return {i.code for i in report.issues}


class TestValidateCSR:
    def test_clean_matrix_is_ok(self, a):
        report = validate_csr(a)
        assert report.ok
        assert not report.issues
        assert "ok" in str(report)

    def test_indptr_length(self, a):
        m = _loose(a)
        m.indptr = m.indptr[:-2]
        report = validate_csr(m)
        assert not report.ok
        assert "indptr-length" in _codes(report)

    def test_indptr_start(self, a):
        m = _loose(a)
        m.indptr[0] = 3
        assert "indptr-start" in _codes(validate_csr(m))

    def test_indptr_monotone(self, a):
        m = _loose(a)
        m.indptr[5] = m.indptr[7]  # row 5 now "ends" after row 6 starts
        assert "indptr-monotone" in _codes(validate_csr(m))

    def test_indptr_end(self, a):
        m = _loose(a)
        m.indptr[-1] += 4
        assert "indptr-end" in _codes(validate_csr(m))

    def test_array_length(self, a):
        m = _loose(a)
        m.data = m.data[:-1]
        assert "array-length" in _codes(validate_csr(m))

    def test_col_range(self, a):
        bad = FaultInjector(seed=5).corrupt_indices(a, n=3)
        report = validate_csr(bad)
        assert not report.ok
        assert "col-range" in _codes(report)
        assert "3 column indices" in report.errors[0].message

    def test_non_finite_values(self, a):
        bad = FaultInjector(seed=5).corrupt_values(a, n=2, kind="nan")
        assert "non-finite" in _codes(validate_csr(bad))

    def test_unsorted_row_is_warning(self, a):
        m = _loose(a)
        s, e = m.indptr[4], m.indptr[5]
        assert e - s >= 2
        m.indices[s:e] = m.indices[s:e][::-1]
        report = validate_csr(m)
        assert report.ok  # warning, not error
        assert any(i.code == "unsorted-row" for i in report.warnings)

    def test_duplicate_entry_is_warning(self, a):
        m = _loose(a)
        s, e = m.indptr[4], m.indptr[5]
        m.indices[s + 1] = m.indices[s]
        report = validate_csr(m)
        assert any(i.code == "duplicate-entry" for i in report.warnings)

    def test_raise_if_failed(self, a):
        bad = FaultInjector(seed=5).corrupt_indices(a, n=1)
        report = validate_csr(bad, name="bad.mtx")
        with pytest.raises(ValidationError, match="bad.mtx") as ei:
            report.raise_if_failed()
        assert ei.value.issues  # structured findings travel with the error
        assert isinstance(ei.value, ValueError)  # backward-compat

    def test_raise_if_failed_passes_clean(self, a):
        assert validate_csr(a).raise_if_failed().ok


class TestValidateCOO:
    def test_clean(self, a):
        assert validate_coo(csr_to_coo(a)).ok

    def test_row_range(self, a):
        coo = csr_to_coo(a)
        m = SimpleNamespace(rows=coo.rows.copy(), cols=coo.cols.copy(),
                            data=coo.data.copy(), shape=coo.shape)
        m.rows[0] = coo.shape[0] + 9
        assert "row-range" in _codes(validate_coo(m))

    def test_col_range(self, a):
        coo = csr_to_coo(a)
        m = SimpleNamespace(rows=coo.rows.copy(), cols=coo.cols.copy(),
                            data=coo.data.copy(), shape=coo.shape)
        m.cols[-1] = -2
        assert "col-range" in _codes(validate_coo(m))

    def test_non_finite(self, a):
        coo = csr_to_coo(a)
        m = SimpleNamespace(rows=coo.rows, cols=coo.cols,
                            data=coo.data.copy(), shape=coo.shape)
        m.data[3] = np.inf
        assert "non-finite" in _codes(validate_coo(m))

    def test_duplicates_warn(self, a):
        coo = csr_to_coo(a)
        m = SimpleNamespace(rows=np.append(coo.rows, coo.rows[0]),
                            cols=np.append(coo.cols, coo.cols[0]),
                            data=np.append(coo.data, 1.0), shape=coo.shape)
        report = validate_coo(m)
        assert report.ok
        assert any(i.code == "duplicate-entry" for i in report.warnings)


class TestEnsureFinite:
    def test_passes_finite(self):
        ensure_finite(np.arange(5.0), "x")  # no raise

    def test_reports_count_and_position(self):
        x = np.ones(10)
        x[3] = np.nan
        x[7] = np.inf
        with pytest.raises(NonFiniteError) as ei:
            ensure_finite(x, "iterate")
        assert ei.value.count == 2
        assert ei.value.first_index == 3
        assert "iterate" in str(ei.value)
        assert isinstance(ei.value, ValidationError)

    def test_empty_ok(self):
        ensure_finite(np.empty(0), "empty")


class TestSweepGroupValidation:
    def test_real_operator_plans_are_valid(self, a):
        op = build_fbmpk_operator(a, strategy="abmc", block_size=4)
        assert validate_sweep_groups(op.part, op.groups).ok
        op2 = build_fbmpk_operator(a, strategy="levels")
        assert validate_sweep_groups(op2.part, op2.groups).ok

    def _groups(self, op):
        return SimpleNamespace(forward=[g.copy() for g in op.groups.forward],
                               backward=[g.copy()
                                         for g in op.groups.backward])

    def test_missing_rows(self, a):
        op = build_fbmpk_operator(a, strategy="abmc", block_size=4)
        g = self._groups(op)
        g.forward[0] = g.forward[0][:-1]  # drop a row from group 0
        report = validate_sweep_groups(op.part, g)
        assert "forward-coverage" in _codes(report)

    def test_duplicated_row(self, a):
        op = build_fbmpk_operator(a, strategy="abmc", block_size=4)
        g = self._groups(op)
        g.backward[-1] = np.append(g.backward[-1], g.backward[0][0])
        assert "backward-overlap" in _codes(
            validate_sweep_groups(op.part, g))

    def test_out_of_range_row(self, a):
        op = build_fbmpk_operator(a, strategy="abmc", block_size=4)
        g = self._groups(op)
        g.forward[0] = np.append(g.forward[0], a.n_rows + 5)
        assert "forward-row-range" in _codes(
            validate_sweep_groups(op.part, g))

    def test_reversed_groups_break_dependencies(self, a):
        op = build_fbmpk_operator(a, strategy="levels")
        g = self._groups(op)
        g.forward = g.forward[::-1]
        report = validate_sweep_groups(op.part, g)
        assert "forward-dependency" in _codes(report)


class TestPhaseValidation:
    def _chain(self, n):
        """Strictly-lower bidiagonal: row i depends on row i-1."""
        rows = np.arange(1, n, dtype=np.int64)
        cols = np.arange(0, n - 1, dtype=np.int64)
        return CSRMatrix.from_coo_arrays(rows, cols, np.ones(n - 1), (n, n))

    def test_single_task_is_valid(self):
        tri = self._chain(16)
        phases = [Phase(color=0, tasks=[BlockTask(0, 16, 15)])]
        assert validate_phases(tri, phases).ok

    def test_cross_task_race_detected(self):
        tri = self._chain(16)
        phases = [Phase(color=0, tasks=[BlockTask(0, 8, 7),
                                        BlockTask(8, 16, 8)])]
        report = validate_phases(tri, phases)
        assert "dependency" in _codes(report)
        assert "race" in report.errors[0].message

    def test_sequential_phases_are_valid(self):
        tri = self._chain(16)
        phases = [Phase(color=0, tasks=[BlockTask(0, 8, 7)]),
                  Phase(color=1, tasks=[BlockTask(8, 16, 8)])]
        assert validate_phases(tri, phases).ok

    def test_gap_detected(self):
        tri = self._chain(16)
        phases = [Phase(color=0, tasks=[BlockTask(0, 8, 7)])]
        assert "coverage" in _codes(validate_phases(tri, phases))

    def test_overlap_detected(self):
        tri = self._chain(16)
        phases = [Phase(color=0, tasks=[BlockTask(0, 10, 9)]),
                  Phase(color=1, tasks=[BlockTask(8, 16, 8)])]
        assert "task-overlap" in _codes(validate_phases(tri, phases))

    def test_out_of_range_task(self):
        tri = self._chain(16)
        phases = [Phase(color=0, tasks=[BlockTask(0, 20, 19)])]
        assert "task-range" in _codes(validate_phases(tri, phases))
