"""Operator lifecycle under failure: whatever goes wrong inside
``power``, the executor pool must be shut down — no leaked worker
threads, ever (the regression behind ``FBMPKOperator.close()``'s
guaranteed-cleanup contract).
"""

import threading

import numpy as np
import pytest

from repro.core import build_fbmpk_operator
from repro.matrices import banded_random
from repro.robust import FaultInjector, NonFiniteError, RaiseFault


def _fbmpk_threads():
    return [t for t in threading.enumerate() if t.name.startswith("fbmpk")]


@pytest.fixture(autouse=True)
def no_leaked_threads():
    assert not _fbmpk_threads()
    yield
    assert not _fbmpk_threads(), "leaked fbmpk worker threads"


@pytest.fixture
def a():
    return banded_random(96, 5, 9, symmetric=True, seed=8)


def _threaded_op(a, **kw):
    return build_fbmpk_operator(a, strategy="abmc", block_size=8,
                                executor="threads", n_threads=2, **kw)


def test_on_iterate_raise_mid_power_closes_pool(a):
    """A crash in *user* callback code between stages must not leak the
    pool either — the close() guarantee covers the whole power call."""
    op = _threaded_op(a)
    x = np.ones(a.n_rows)
    op.power(x.copy(), 2)  # warm the pool up
    assert _fbmpk_threads()

    class UserBug(Exception):
        pass

    def cb(i, xi):
        raise UserBug("callback exploded")

    with pytest.raises(UserBug):
        op.power(x, 3, on_iterate=cb)
    # the autouse fixture asserts the pool threads are gone


def test_non_finite_error_mid_power_closes_pool(a):
    bad = FaultInjector(seed=3).corrupt_values(a, n=1, kind="nan")
    op = _threaded_op(bad)
    with pytest.raises(NonFiniteError):
        op.power(np.ones(bad.n_rows), 3, check_finite=True)


def test_context_manager_closes(a):
    with _threaded_op(a) as op:
        op.power(np.ones(a.n_rows), 2)
        assert _fbmpk_threads()
    assert not _fbmpk_threads()


def test_close_is_idempotent(a):
    op = _threaded_op(a)
    op.power(np.ones(a.n_rows), 2)
    op.close()
    op.close()


def test_pool_reusable_across_powers(a):
    """Failure in one call must not poison the next: the operator
    rebuilds its pool lazily after a close()."""
    op = _threaded_op(a)
    x = np.ones(a.n_rows)
    inj = FaultInjector().install("executor.task", RaiseFault())
    with inj, pytest.raises(Exception):
        op.power(x.copy(), 3)
    assert not _fbmpk_threads()
    want = build_fbmpk_operator(a, strategy="abmc", block_size=8).power(
        x.copy(), 3)
    got = op.power(x.copy(), 3)
    op.close()
    assert np.array_equal(got, want)
