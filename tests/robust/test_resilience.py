"""Unit tests for the resilience primitives: monotonic deadlines,
full-jitter retry backoff, and the circuit breaker's closed →
open → half-open → closed lifecycle (including its telemetry)."""

import random

import pytest

from repro import obs
from repro.robust import (
    BREAKER_STATES,
    CircuitBreaker,
    Deadline,
    DeadlineExceededError,
    RetryPolicy,
)


# -- Deadline --------------------------------------------------------------
def test_deadline_never_is_unbounded():
    d = Deadline.never()
    assert not d.bounded
    assert d.remaining() is None
    assert d.remaining_or(1.5) == 1.5
    assert not d.expired()
    d.require("anything")  # no-op


def test_deadline_after_counts_down():
    d = Deadline.after(60.0)
    assert d.bounded
    rem = d.remaining()
    assert 0 < rem <= 60.0
    assert not d.expired()


def test_deadline_after_ms_expiry_and_require():
    d = Deadline.after_ms(-1.0)
    assert d.expired()
    assert d.remaining() < 0
    with pytest.raises(DeadlineExceededError) as exc_info:
        d.require("unit test")
    assert "unit test" in str(exc_info.value)
    assert "overran" in str(exc_info.value)


def test_deadline_exceeded_error_is_structured():
    err = DeadlineExceededError("solve", overrun_s=0.25)
    assert err.what == "solve"
    assert err.overrun_s == 0.25
    assert isinstance(err, RuntimeError)


# -- RetryPolicy -----------------------------------------------------------
def test_retry_delay_grows_and_caps():
    p = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0, jitter="none")
    assert p.delay(0) == pytest.approx(0.1)
    assert p.delay(1) == pytest.approx(0.2)
    assert p.delay(2) == pytest.approx(0.4)
    # capped at max_delay_s from attempt 4 on
    assert p.delay(10) == pytest.approx(1.0)
    # huge attempt numbers must not overflow the exponent
    assert p.delay(10_000) == pytest.approx(1.0)


def test_retry_full_jitter_stays_in_range():
    p = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0, jitter="full")
    rng = random.Random(7)
    for attempt in range(12):
        d = p.delay(attempt, rng=rng)
        assert 0.0 <= d <= min(1.0, 0.1 * 2 ** min(attempt, 63))


def test_retry_delays_respect_deadline():
    p = RetryPolicy(base_delay_s=0.05, max_delay_s=0.5, jitter="none")
    # Expired deadline: not a single delay is offered.
    assert list(p.delays(Deadline.after(-1.0))) == []
    # Unbounded deadline: delays keep coming.
    it = p.delays(Deadline.never(), rng=random.Random(0))
    assert next(it) >= 0.0
    assert next(it) >= 0.0


def test_retry_policy_validates():
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter="half")


# -- CircuitBreaker --------------------------------------------------------
def test_breaker_opens_after_threshold():
    b = CircuitBreaker("t", failure_threshold=3, reset_timeout_s=60.0)
    assert b.state == "closed"
    b.record_failure()
    b.record_failure()
    assert b.state == "closed"
    assert b.allow()
    b.record_failure()
    assert b.state == "open"
    assert not b.allow()


def test_breaker_success_resets_failure_run():
    b = CircuitBreaker("t", failure_threshold=2)
    b.record_failure()
    b.record_success()
    b.record_failure()
    assert b.state == "closed"  # the run was broken by the success


def test_breaker_half_open_probe_and_close():
    clock = [0.0]
    b = CircuitBreaker("t", failure_threshold=1, reset_timeout_s=10.0,
                       half_open_probes=1, clock=lambda: clock[0])
    b.record_failure()
    assert b.state == "open"
    assert not b.allow()
    clock[0] = 11.0
    assert b.state == "half_open"
    assert b.allow()       # the single probe is admitted
    assert not b.allow()   # a second concurrent caller is refused
    b.record_success()
    assert b.state == "closed"
    assert b.allow()


def test_breaker_half_open_failure_reopens():
    clock = [0.0]
    b = CircuitBreaker("t", failure_threshold=1, reset_timeout_s=10.0,
                       clock=lambda: clock[0])
    b.record_failure()
    clock[0] = 11.0
    assert b.allow()
    b.record_failure()
    assert b.state == "open"
    # the reset clock restarted at the re-open
    clock[0] = 20.0
    assert b.state == "open"
    clock[0] = 22.0
    assert b.state == "half_open"


def test_breaker_snapshot_and_metrics():
    tel = obs.Telemetry()
    with tel:
        b = CircuitBreaker("unit", failure_threshold=1)
        b.record_failure()
        assert not b.allow()
        assert not b.allow()
        snap = b.snapshot()
    assert snap["name"] == "unit"
    assert snap["state"] == "open"
    assert snap["state"] in BREAKER_STATES
    assert snap["consecutive_failures"] == 1
    counters = tel.metrics.snapshot()["counters"]
    assert counters["unit.breaker.short_circuit"]["value"] == 2
    assert counters["unit.breaker.open"]["value"] == 1


def test_breaker_reset():
    b = CircuitBreaker("t", failure_threshold=1)
    b.record_failure()
    b.reset()
    assert b.state == "closed"
    assert b.allow()
