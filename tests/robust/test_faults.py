"""Fault-injection campaign: every injected fault must surface as a
typed error or a structured status — never a hang, a leaked thread, or a
silently wrong answer.
"""

import threading

import numpy as np
import pytest

from repro.core import build_fbmpk_operator
from repro.matrices import banded_random
from repro.parallel.executor import ThreadedPhaseExecutor
from repro.parallel.scheduler import BlockTask, Phase
from repro.robust import (
    DelayFault,
    FaultInjector,
    InjectedFault,
    NonFiniteError,
    PhaseExecutionError,
    RaiseFault,
    active_injectors,
    fire,
)


def _fbmpk_threads():
    return [t for t in threading.enumerate() if t.name.startswith("fbmpk")]


@pytest.fixture(autouse=True)
def no_leaked_threads():
    """Every test must leave zero pool threads behind."""
    assert not _fbmpk_threads()
    yield
    assert not _fbmpk_threads(), "leaked fbmpk worker threads"


@pytest.fixture(autouse=True)
def no_lingering_injectors():
    yield
    assert not active_injectors(), "an injector was left activated"


# ---------------------------------------------------------------------------
# data corruption determinism
# ---------------------------------------------------------------------------
class TestCorruptions:
    def test_same_seed_same_corruption(self):
        a = banded_random(80, 4, 7, symmetric=True, seed=2)
        bad1 = FaultInjector(seed=42).corrupt_values(a, n=3, kind="nan")
        bad2 = FaultInjector(seed=42).corrupt_values(a, n=3, kind="nan")
        assert np.array_equal(np.isnan(bad1.data), np.isnan(bad2.data))
        bad3 = FaultInjector(seed=43).corrupt_values(a, n=3, kind="nan")
        assert not np.array_equal(np.isnan(bad1.data), np.isnan(bad3.data))

    def test_original_never_mutated(self):
        a = banded_random(40, 3, 5, seed=1)
        data = a.data.copy()
        indices = a.indices.copy()
        inj = FaultInjector(seed=0)
        inj.corrupt_values(a, n=5, kind="inf")
        inj.corrupt_indices(a, n=5)
        assert np.array_equal(a.data, data)
        assert np.array_equal(a.indices, indices)

    @pytest.mark.parametrize("kind,pred", [
        ("nan", np.isnan),
        ("inf", np.isinf),
        ("huge", lambda v: v == 1e300),
    ])
    def test_corrupt_value_kinds(self, kind, pred):
        a = banded_random(40, 3, 5, seed=1)
        bad = FaultInjector(seed=9).corrupt_values(a, n=4, kind=kind)
        assert int(pred(bad.data).sum()) == 4

    def test_corrupt_indices_go_out_of_range(self):
        a = banded_random(40, 3, 5, seed=1)
        bad = FaultInjector(seed=9).corrupt_indices(a, n=2)
        assert int((bad.indices >= a.shape[1]).sum()) == 2

    def test_poison_vector(self):
        x = np.ones(30)
        inj = FaultInjector(seed=4)
        y = inj.poison_vector(x, n=3, kind="nan")
        assert int(np.isnan(y).sum()) == 3
        assert not np.isnan(x).any()
        z = inj.poison_vector(x, n=2, kind="inf")
        assert int(np.isinf(z).sum()) == 2

    def test_unknown_kind_rejected(self):
        inj = FaultInjector()
        with pytest.raises(ValueError):
            inj.corrupt_values(banded_random(10, 2, 3, seed=0), kind="wat")
        with pytest.raises(ValueError):
            inj.poison_vector(np.ones(3), kind="wat")


# ---------------------------------------------------------------------------
# registry semantics
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_fire_is_noop_when_inactive(self):
        fire("executor.task", color=0)  # nothing active: must not raise

    def test_activation_scoped_by_context_manager(self):
        inj = FaultInjector().install("site", RaiseFault())
        with inj:
            assert inj in active_injectors()
            with pytest.raises(InjectedFault) as ei:
                fire("site")
            assert ei.value.site == "site"
        assert inj not in active_injectors()
        fire("site")  # deactivated: silent

    def test_times_budget(self):
        fault = RaiseFault(times=2)
        inj = FaultInjector().install("s", fault)
        with inj:
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    fire("s")
            fire("s")  # budget exhausted
        assert fault.fired == 2

    def test_match_restricts_context(self):
        inj = FaultInjector().install(
            "s", RaiseFault(times=None, match={"color": 2}))
        with inj:
            fire("s", color=0)
            fire("s")  # key absent: no match
            with pytest.raises(InjectedFault):
                fire("s", color=2, thread=1)

    def test_custom_exception_class_and_instance(self):
        inj = FaultInjector().install("a", RaiseFault(exc=OSError))
        inj.install("b", RaiseFault(exc=KeyError("boom")))
        with inj:
            with pytest.raises(OSError, match="injected fault"):
                fire("a")
            with pytest.raises(KeyError):
                fire("b")

    def test_clear(self):
        inj = FaultInjector().install("s", RaiseFault(times=None))
        inj.clear("s")
        with inj:
            fire("s")
        inj.install("s", RaiseFault(times=None)).clear()
        with inj:
            fire("s")


# ---------------------------------------------------------------------------
# executor failure containment
# ---------------------------------------------------------------------------
def _toy_phases(n=32, block=8):
    tasks = [BlockTask(s, min(s + block, n), block)
             for s in range(0, n, block)]
    return [Phase(color=c, tasks=[t]) for c, t in enumerate(tasks)]


class TestExecutorContainment:
    def test_crash_yields_typed_error_with_context(self):
        y = np.zeros(32)

        def run(task):
            y[task.start:task.stop] += 1

        inj = FaultInjector().install(
            "executor.task", RaiseFault(match={"color": 2}))
        ex = ThreadedPhaseExecutor(n_threads=2)
        with inj, pytest.raises(PhaseExecutionError) as ei:
            ex.run_phases(_toy_phases(), run)
        err = ei.value
        assert err.phase_index == 2
        assert err.color == 2
        assert err.block == (16, 24)
        assert isinstance(err.__cause__, InjectedFault)
        assert "colour 2" in str(err)
        assert isinstance(err, RuntimeError)  # backward-compat
        # Pool shut down by the failure path; y untouched past the crash.
        assert ex._pool is None
        assert np.array_equal(y[:16], np.ones(16))
        assert np.array_equal(y[24:], np.zeros(8))

    def test_barrier_drains_other_bins(self):
        """The failure must not propagate before concurrently running
        bins finish — no orphaned writers into caller state."""
        done = []

        def run(task):
            done.append(task.start)

        phases = [Phase(color=0, tasks=[BlockTask(0, 8, 8),
                                        BlockTask(8, 16, 8)])]
        inj = FaultInjector()
        inj.install("executor.task",
                    RaiseFault(match={"start": 0}))
        inj.install("executor.task", DelayFault(0.05, match={"start": 8}))
        ex = ThreadedPhaseExecutor(n_threads=2)
        with inj, pytest.raises(PhaseExecutionError):
            ex.run_phases(phases, run)
        assert 8 in done  # the delayed sibling bin completed

    def test_delay_fault_slows_but_never_corrupts(self):
        y = np.zeros(32)

        def run(task):
            y[task.start:task.stop] = task.start

        inj = FaultInjector().install(
            "executor.task", DelayFault(0.01, times=2))
        with ThreadedPhaseExecutor(n_threads=2) as ex, inj:
            stats = ex.run_phases(_toy_phases(), run)
        expect = np.repeat(np.arange(0, 32, 8), 8)
        assert np.array_equal(y, expect)
        assert stats.barriers == 4

    def test_fallback_serial_with_reset(self):
        y = np.zeros(32)

        def run(task):
            y[task.start:task.stop] += task.start + 1

        def reset():
            y[:] = 0.0

        ref = np.zeros(32)
        ThreadedPhaseExecutor(n_threads=1).run_serial(_toy_phases(),
                                                      lambda t: ref.__setitem__(
                                                          slice(t.start, t.stop),
                                                          ref[t.start:t.stop] + t.start + 1))
        inj = FaultInjector().install("executor.task", RaiseFault(times=1))
        ex = ThreadedPhaseExecutor(n_threads=2,
                                   on_failure="fallback_serial")
        with inj:
            stats = ex.run_phases(_toy_phases(), run, reset=reset)
        assert np.array_equal(y, ref)  # bit-identical to clean serial
        # Stats reflect only the serial rerun, not the aborted attempt.
        assert stats.barriers == 4
        assert len(stats.phases) == 4

    def test_fallback_without_reset_raises(self):
        inj = FaultInjector().install("executor.task", RaiseFault(times=1))
        ex = ThreadedPhaseExecutor(n_threads=2,
                                   on_failure="fallback_serial")
        with inj, pytest.raises(PhaseExecutionError):
            ex.run_phases(_toy_phases(), lambda t: None)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="on_failure"):
            ThreadedPhaseExecutor(n_threads=1, on_failure="retry")


# ---------------------------------------------------------------------------
# operator-level fault campaign
# ---------------------------------------------------------------------------
class TestOperatorFaults:
    @pytest.fixture
    def a(self):
        return banded_random(96, 5, 9, symmetric=True, seed=6)

    def test_crash_in_threaded_power_raises_and_closes(self, a):
        op = build_fbmpk_operator(a, strategy="abmc", block_size=8,
                                  executor="threads", n_threads=2)
        x = np.ones(a.n_rows)
        inj = FaultInjector().install("executor.task", RaiseFault())
        with inj, pytest.raises(PhaseExecutionError):
            op.power(x, 3)
        assert not _fbmpk_threads()

    def test_fallback_serial_bit_identical(self, a):
        x = np.random.default_rng(0).standard_normal(a.n_rows)
        serial = build_fbmpk_operator(a, strategy="abmc", block_size=8)
        want = serial.power(x.copy(), 3)
        op = build_fbmpk_operator(a, strategy="abmc", block_size=8,
                                  executor="threads", n_threads=2,
                                  on_failure="fallback_serial")
        inj = FaultInjector().install("executor.task", RaiseFault(times=1))
        with inj, pytest.warns(RuntimeWarning, match="recomputing serially"):
            got = op.power(x.copy(), 3)
        op.close()
        assert np.array_equal(got, want)

    def test_poisoned_input_caught_by_check_finite(self, a):
        op = build_fbmpk_operator(a)
        x = FaultInjector(seed=3).poison_vector(np.ones(a.n_rows), n=2)
        with pytest.raises(NonFiniteError, match="input vector x"):
            op.power(x, 2, check_finite=True)

    def test_corrupt_matrix_caught_at_first_iterate(self, a):
        bad = FaultInjector(seed=3).corrupt_values(a, n=1, kind="nan")
        op = build_fbmpk_operator(bad)
        x = np.ones(bad.n_rows)
        with pytest.raises(NonFiniteError, match="iterate"):
            op.power(x, 3, check_finite=True)
        # Unguarded: the same run silently produces NaN — the exact
        # failure mode the guard exists for.
        assert np.isnan(build_fbmpk_operator(bad).power(x, 3)).any()

    def test_power_block_check_finite(self, a):
        bad = FaultInjector(seed=3).corrupt_values(a, n=1, kind="inf")
        op = build_fbmpk_operator(bad)
        X = np.ones((bad.n_rows, 2))
        with pytest.raises(NonFiniteError):
            op.power_block(X, 3, check_finite=True)
