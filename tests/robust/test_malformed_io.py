"""A corpus of broken MatrixMarket files: every defect must surface as a
:class:`MatrixMarketError` naming the file and the 1-based line number —
and reach CLI users as a one-line message with exit code 3/4.
"""

import io

import numpy as np
import pytest

from repro.cli import (
    EXIT_IO,
    EXIT_SOLVER,
    EXIT_VALIDATION,
    main,
)
from repro.robust import MatrixMarketError
from repro.sparse import read_matrix_market

GOOD = """%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 1 2.0
2 2 3.0
3 3 4.0
1 3 0.5
"""

# (test id, file text, expected message fragment, expected 1-based line)
CORPUS = [
    ("missing-header",
     "3 3 1\n1 1 2.0\n",
     "missing %%MatrixMarket header", 1),
    ("short-header",
     "%%MatrixMarket matrix coordinate\n3 3 1\n1 1 2.0\n",
     "expected 5 fields", 1),
    ("wrong-format",
     "%%MatrixMarket matrix array real general\n3 3 1\n1 1 2.0\n",
     "only 'matrix coordinate'", 1),
    ("bad-field",
     "%%MatrixMarket matrix coordinate complex general\n3 3 1\n1 1 2.0\n",
     "unsupported field type", 1),
    ("bad-symmetry",
     "%%MatrixMarket matrix coordinate real hermitian\n3 3 1\n1 1 2.0\n",
     "unsupported symmetry", 1),
    ("no-size-line",
     "%%MatrixMarket matrix coordinate real general\n% only comments\n",
     "ends before the size line", 3),
    ("short-size-line",
     "%%MatrixMarket matrix coordinate real general\n3 3\n",
     "size line must be", 2),
    ("non-numeric-size",
     "%%MatrixMarket matrix coordinate real general\n3 three 1\n1 1 2.0\n",
     "non-numeric token in size line", 2),
    ("negative-size",
     "%%MatrixMarket matrix coordinate real general\n3 -3 1\n1 1 2.0\n",
     "negative dimension", 2),
    ("short-entry",
     "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1\n",
     "entry line needs", 3),
    ("non-numeric-entry",
     "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 two\n",
     "non-numeric token in entry line", 3),
    ("row-zero",
     "%%MatrixMarket matrix coordinate real general\n3 3 1\n0 1 2.0\n",
     "row index 0 outside [1, 3]", 3),
    ("row-too-big",
     "%%MatrixMarket matrix coordinate real general\n3 3 1\n4 1 2.0\n",
     "row index 4 outside [1, 3]", 3),
    ("col-too-big",
     "%%MatrixMarket matrix coordinate real general\n3 3 2\n"
     "1 1 2.0\n2 7 1.0\n",
     "column index 7 outside [1, 3]", 4),
    ("too-many-entries",
     "%%MatrixMarket matrix coordinate real general\n3 3 1\n"
     "1 1 2.0\n2 2 3.0\n",
     "more than the declared 1 entries", 4),
    ("truncated",
     "%%MatrixMarket matrix coordinate real general\n3 3 4\n1 1 2.0\n",
     "truncated file: expected 4 entries, found 1", 3),
]


@pytest.mark.parametrize("text,fragment,line",
                         [c[1:] for c in CORPUS],
                         ids=[c[0] for c in CORPUS])
def test_each_defect_names_file_and_line(tmp_path, text, fragment, line):
    path = tmp_path / "broken.mtx"
    path.write_text(text)
    with pytest.raises(MatrixMarketError) as ei:
        read_matrix_market(path)
    msg = str(ei.value)
    assert fragment in msg
    assert f"broken.mtx:{line}:" in msg
    assert isinstance(ei.value, ValueError)  # backward-compat


def test_good_file_still_parses(tmp_path):
    path = tmp_path / "good.mtx"
    path.write_text(GOOD)
    a = read_matrix_market(path).to_csr()
    assert a.shape == (3, 3)
    assert a.nnz == 4


def test_stream_source_named_in_error():
    with pytest.raises(MatrixMarketError, match=r"<stream>:1:"):
        read_matrix_market(io.StringIO("garbage\n"))


# ---------------------------------------------------------------------------
# the CLI error mapping (satellite: typed errors -> exit codes)
# ---------------------------------------------------------------------------
class TestCLIExitCodes:
    def test_malformed_file_exits_3(self, tmp_path, capsys):
        path = tmp_path / "broken.mtx"
        path.write_text(CORPUS[0][1])
        assert main(["info", str(path)]) == EXIT_IO
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "broken.mtx:1:" in err

    def test_missing_file_exits_3(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nope.mtx")]) == EXIT_IO
        assert "error:" in capsys.readouterr().err

    def test_validate_flag_exits_4(self, tmp_path, capsys):
        path = tmp_path / "nan.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n"
                        "3 3 2\n1 1 nan\n2 2 1.0\n")
        assert main(["info", str(path), "--validate"]) == EXIT_VALIDATION
        assert "non-finite" in capsys.readouterr().err

    def test_check_finite_power_exits_4(self, tmp_path, capsys):
        path = tmp_path / "inf.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n"
                        "2 2 3\n1 1 1.0\n1 2 inf\n2 2 1.0\n")
        code = main(["power", str(path), "-k", "2", "--ones",
                     "--check-finite"])
        assert code == EXIT_VALIDATION
        assert "non-finite" in capsys.readouterr().err

    def test_solver_nonconvergence_exits_6(self, capsys):
        code = main(["solve", "--standin", "Serena", "--rows", "300",
                     "--max-iter", "2"])
        assert code == EXIT_SOLVER
        out = capsys.readouterr()
        assert "status=max_iter" in out.out
        assert "did not converge" in out.err

    def test_crashed_phase_exits_5(self, capsys):
        from repro.cli import EXIT_EXECUTION
        from repro.robust import FaultInjector, RaiseFault

        inj = FaultInjector().install("executor.task",
                                      RaiseFault(times=None))
        with inj:
            code = main(["power", "--standin", "Serena", "--rows", "300",
                         "--executor", "threads", "--threads", "2",
                         "-k", "2", "--ones"])
        assert code == EXIT_EXECUTION
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "phase" in err

    def test_clean_run_exits_0(self, capsys):
        assert main(["solve", "--standin", "Serena", "--rows", "300",
                     "--validate"]) == 0
        assert "status=converged" in capsys.readouterr().out
