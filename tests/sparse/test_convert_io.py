"""Unit tests for format conversions and MatrixMarket I/O."""

import io

import numpy as np
import pytest

from repro.sparse import (
    COOMatrix,
    coo_to_csr,
    csr_to_coo,
    csr_to_ell,
    csr_to_sell,
    from_scipy,
    read_matrix_market,
    to_scipy_csr,
    write_matrix_market,
)


class TestConversions:
    def test_all_conversions_preserve_values(self, any_matrix):
        dense = any_matrix.to_dense()
        np.testing.assert_array_equal(
            coo_to_csr(csr_to_coo(any_matrix)).to_dense(), dense)
        np.testing.assert_array_equal(
            csr_to_ell(any_matrix).to_csr().to_dense(), dense)
        np.testing.assert_array_equal(
            csr_to_sell(any_matrix).to_csr().to_dense(), dense)

    def test_scipy_bridge_roundtrip(self, any_matrix, rng):
        sp = to_scipy_csr(any_matrix)
        x = rng.standard_normal(any_matrix.n_cols)
        np.testing.assert_allclose(sp @ x, any_matrix.matvec(x),
                                   rtol=1e-12, atol=1e-13)
        back = from_scipy(sp)
        np.testing.assert_array_equal(back.to_dense(), any_matrix.to_dense())

    def test_from_scipy_accepts_coo(self, grid):
        import scipy.sparse as sp

        coo = to_scipy_csr(grid).tocoo()
        np.testing.assert_array_equal(from_scipy(coo).to_dense(),
                                      grid.to_dense())


class TestMatrixMarket:
    def test_roundtrip_general(self, small_unsym):
        buf = io.StringIO()
        write_matrix_market(small_unsym, buf)
        buf.seek(0)
        back = read_matrix_market(buf).to_csr()
        np.testing.assert_allclose(back.to_dense(), small_unsym.to_dense(),
                                   rtol=0, atol=0)

    def test_symmetric_expansion(self):
        text = """%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 3
1 1 2.0
2 1 -1.0
3 3 4.0
"""
        coo = read_matrix_market(io.StringIO(text))
        dense = coo.to_dense()
        assert dense[0, 1] == dense[1, 0] == -1.0
        assert dense[0, 0] == 2.0 and dense[2, 2] == 4.0

    def test_skew_symmetric_expansion(self):
        text = """%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
"""
        dense = read_matrix_market(io.StringIO(text)).to_dense()
        assert dense[1, 0] == 3.0 and dense[0, 1] == -3.0

    def test_pattern_field(self):
        text = """%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
"""
        dense = read_matrix_market(io.StringIO(text)).to_dense()
        np.testing.assert_array_equal(dense, np.eye(2))

    def test_rejects_bad_header(self):
        with pytest.raises(ValueError, match="MatrixMarket"):
            read_matrix_market(io.StringIO("nope\n1 1 0\n"))
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(io.StringIO(
                "%%MatrixMarket matrix array real general\n1 1\n1.0\n"))
        with pytest.raises(ValueError, match="field"):
            read_matrix_market(io.StringIO(
                "%%MatrixMarket matrix coordinate complex general\n"
                "1 1 1\n1 1 1.0 0.0\n"))

    def test_rejects_wrong_count(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        with pytest.raises(ValueError, match="expected 2 entries"):
            read_matrix_market(io.StringIO(text))

    def test_file_roundtrip(self, tmp_path, grid):
        path = tmp_path / "m.mtx"
        write_matrix_market(grid, str(path), comment="grid test")
        back = read_matrix_market(str(path)).to_csr()
        np.testing.assert_allclose(back.to_dense(), grid.to_dense())
        assert "grid test" in path.read_text()
