"""Unit tests for the incremental matrix builder."""

import numpy as np
import pytest

from repro.sparse import MatrixBuilder


class TestAdd:
    def test_single_entries(self):
        b = MatrixBuilder((3, 3))
        b.add(0, 0, 1.0)
        b.add(2, 1, -2.0)
        a = b.build()
        assert a.to_dense()[0, 0] == 1.0
        assert a.to_dense()[2, 1] == -2.0
        assert a.nnz == 2

    def test_duplicates_sum(self):
        b = MatrixBuilder((2, 2))
        for _ in range(5):
            b.add(1, 1, 2.0)
        a = b.build()
        assert a.nnz == 1
        assert a.to_dense()[1, 1] == 10.0

    def test_bounds_checked(self):
        b = MatrixBuilder((2, 2))
        with pytest.raises(IndexError):
            b.add(2, 0, 1.0)
        with pytest.raises(IndexError):
            b.add(0, -1, 1.0)

    def test_growth_beyond_initial_capacity(self, rng):
        n = 5000  # > initial capacity, forces repeated doubling
        b = MatrixBuilder((100, 100))
        rows = rng.integers(0, 100, n)
        cols = rng.integers(0, 100, n)
        vals = rng.standard_normal(n)
        for r, c, v in zip(rows, cols, vals):
            b.add(int(r), int(c), float(v))
        assert len(b) == n
        dense = np.zeros((100, 100))
        np.add.at(dense, (rows, cols), vals)
        np.testing.assert_allclose(b.build().to_dense(), dense,
                                   rtol=1e-12, atol=1e-13)


class TestBlocks:
    def test_fem_scatter_add(self, rng):
        """Assemble a 1-D P1 stiffness matrix element by element and
        compare with the closed form."""
        n = 10
        b = MatrixBuilder((n, n))
        k_elem = np.array([[1.0, -1.0], [-1.0, 1.0]])
        for e in range(n - 1):
            b.add_block([e, e + 1], [e, e + 1], k_elem)
        a = b.build().to_dense()
        expected = (2 * np.eye(n) - np.eye(n, k=1) - np.eye(n, k=-1))
        expected[0, 0] = expected[-1, -1] = 1.0
        np.testing.assert_allclose(a, expected)

    def test_rectangular_block(self):
        b = MatrixBuilder((4, 5))
        b.add_block([1, 3], [0, 2, 4], np.arange(6.0).reshape(2, 3))
        dense = b.build().to_dense()
        assert dense[1, 2] == 1.0 and dense[3, 4] == 5.0

    def test_block_validation(self):
        b = MatrixBuilder((3, 3))
        with pytest.raises(ValueError, match="block shape"):
            b.add_block([0, 1], [0], np.ones((2, 2)))
        with pytest.raises(IndexError):
            b.add_block([0, 5], [0, 1], np.ones((2, 2)))
        with pytest.raises(IndexError):
            b.add_block([0, 1], [0, 9], np.ones((2, 2)))

    def test_add_diagonal(self):
        b = MatrixBuilder((3, 3))
        b.add_diagonal([1.0, 2.0, 3.0])
        b.add_diagonal([1.0, 1.0, 1.0])
        np.testing.assert_allclose(np.diag(b.build().to_dense()),
                                   [2.0, 3.0, 4.0])
        with pytest.raises(ValueError):
            b.add_diagonal([1.0])


class TestBuild:
    def test_builder_reusable_after_build(self):
        b = MatrixBuilder((2, 2))
        b.add(0, 0, 1.0)
        a1 = b.build()
        b.add(0, 0, 1.0)
        a2 = b.build()
        assert a1.to_dense()[0, 0] == 1.0
        assert a2.to_dense()[0, 0] == 2.0

    def test_empty_build(self):
        a = MatrixBuilder((3, 4)).build()
        assert a.shape == (3, 4) and a.nnz == 0

    def test_assembled_matrix_feeds_fbmpk(self, rng):
        """End-to-end: assemble -> partition -> FBMPK agrees with the
        dense oracle."""
        from repro.core import build_fbmpk_operator
        from repro.core.mpk import mpk_reference_dense

        n = 30
        b = MatrixBuilder((n, n))
        k_elem = np.array([[2.0, -1.0], [-1.0, 2.0]])
        for e in range(n - 1):
            b.add_block([e, e + 1], [e, e + 1], 0.1 * k_elem)
        a = b.build()
        op = build_fbmpk_operator(a, strategy="levels")
        x = rng.standard_normal(n)
        np.testing.assert_allclose(op.power(x, 4),
                                   mpk_reference_dense(a, x, 4),
                                   rtol=1e-9, atol=1e-11)
