"""Unit tests for the SpMV kernel tiers."""

import numpy as np
import pytest

from repro.sparse.spmv import (
    KERNELS,
    spmm_vectorised,
    spmv_blocked,
    spmv_scalar,
    spmv_scipy,
    spmv_vectorised,
)


@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_all_kernels_agree(any_matrix, rng, kernel_name):
    x = rng.standard_normal(any_matrix.n_cols)
    reference = any_matrix.to_dense() @ x
    np.testing.assert_allclose(KERNELS[kernel_name](any_matrix, x),
                               reference, rtol=1e-10, atol=1e-12)


def test_blocked_respects_block_boundaries(small_sym, rng):
    x = rng.standard_normal(small_sym.n_cols)
    for block_rows in (1, 7, 64, 1000):
        np.testing.assert_allclose(
            spmv_blocked(small_sym, x, block_rows=block_rows),
            spmv_vectorised(small_sym, x), rtol=1e-13, atol=1e-14)


def test_spmm_is_columnwise_spmv(small_sym, rng):
    X = rng.standard_normal((small_sym.n_cols, 3))
    result = spmm_vectorised(small_sym, X)
    for j in range(3):
        np.testing.assert_allclose(result[:, j],
                                   spmv_vectorised(small_sym, X[:, j]),
                                   rtol=1e-13, atol=1e-14)


def test_scalar_is_algorithm1_loops(grid, rng):
    # The scalar kernel must agree with an independent per-row Python
    # computation (pinning the Algorithm 1 transcription).
    x = rng.standard_normal(grid.n_cols)
    y = spmv_scalar(grid, x)
    for i in range(grid.n_rows):
        acc = 0.0
        for p in range(grid.indptr[i], grid.indptr[i + 1]):
            acc += grid.data[p] * x[grid.indices[p]]
        assert y[i] == pytest.approx(acc, abs=1e-15)


def test_kernel_registry_complete():
    assert {"scalar", "vectorised", "scipy", "blocked"} <= set(KERNELS)
