"""Memoised scipy-CSR bridge: repeated conversions return the cached
handle, array replacement invalidates it, in-place value edits flow
through (the handle shares the data buffer)."""

import numpy as np
import pytest

from repro.sparse.convert import to_scipy_csr
from repro.sparse.csr import CSRMatrix

scipy_sparse = pytest.importorskip("scipy.sparse")


def test_repeated_conversion_returns_same_handle(grid):
    assert to_scipy_csr(grid) is to_scipy_csr(grid)


def test_handle_computes_correctly(grid, rng):
    x = rng.standard_normal(grid.n_cols)
    assert np.allclose(to_scipy_csr(grid) @ x, grid.matvec(x))


def test_replacing_data_array_invalidates(grid):
    h1 = to_scipy_csr(grid)
    grid.data = grid.data * 2.0  # new array object
    h2 = to_scipy_csr(grid)
    assert h2 is not h1
    x = np.ones(grid.n_cols)
    assert np.allclose(h2 @ x, grid.matvec(x))


def test_replacing_index_array_invalidates(grid):
    h1 = to_scipy_csr(grid)
    grid.indices = grid.indices.copy()
    assert to_scipy_csr(grid) is not h1


def test_inplace_value_edit_reflected(grid):
    """The memoised handle shares the value buffer, so the supported
    in-place mutation pattern stays coherent without invalidation."""
    h = to_scipy_csr(grid)
    grid.data[0] += 7.5
    x = np.ones(grid.n_cols)
    assert np.allclose(h @ x, grid.matvec(x))


def test_cache_false_returns_independent_copy(grid):
    h = to_scipy_csr(grid, cache=False)
    assert h is not to_scipy_csr(grid, cache=False)
    h.data[0] += 1.0  # must not alias the matrix
    assert grid.data[0] != h.data[0]


def test_memo_survives_pickle_roundtrip_absence(grid):
    """A CSRMatrix built fresh (no memo yet) still converts."""
    twin = CSRMatrix(grid.indptr, grid.indices, grid.data, grid.shape)
    x = np.ones(grid.n_cols)
    assert np.allclose(to_scipy_csr(twin) @ x, grid.matvec(x))
