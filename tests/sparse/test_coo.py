"""Unit tests for the COO interchange format."""

import numpy as np
import pytest

from repro.sparse import COOMatrix, CSRMatrix


def test_roundtrip_dense(rng):
    dense = rng.standard_normal((6, 4))
    dense[np.abs(dense) < 0.5] = 0.0
    coo = COOMatrix.from_dense(dense)
    np.testing.assert_array_equal(coo.to_dense(), dense)
    np.testing.assert_array_equal(coo.to_csr().to_dense(), dense)


def test_duplicates_sum_on_conversion():
    coo = COOMatrix([0, 0], [0, 0], [1.0, 2.0], (1, 1))
    assert coo.nnz == 2
    assert coo.to_csr().nnz == 1
    assert coo.to_dense()[0, 0] == 3.0


def test_validation():
    with pytest.raises(ValueError, match="identical shapes"):
        COOMatrix([0, 1], [0], [1.0], (2, 2))
    with pytest.raises(ValueError, match="row index"):
        COOMatrix([5], [0], [1.0], (2, 2))
    with pytest.raises(ValueError, match="column index"):
        COOMatrix([0], [5], [1.0], (2, 2))


def test_transpose():
    coo = COOMatrix([0, 1], [1, 0], [2.0, 3.0], (2, 3))
    t = coo.transpose()
    assert t.shape == (3, 2)
    np.testing.assert_array_equal(t.to_dense(), coo.to_dense().T)


def test_symmetrized():
    coo = COOMatrix([0], [1], [4.0], (2, 2))
    sym = coo.symmetrized().to_csr()
    dense = sym.to_dense()
    assert dense[0, 1] == dense[1, 0] == 2.0


def test_csr_coo_csr_roundtrip(small_sym):
    from repro.sparse.convert import csr_to_coo

    back = csr_to_coo(small_sym).to_csr()
    np.testing.assert_array_equal(back.to_dense(), small_sym.to_dense())
