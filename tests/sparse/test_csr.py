"""Unit tests for the CSR container and its kernels."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix, reduce_rows


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        dense = rng.standard_normal((7, 5))
        dense[dense < 0.3] = 0.0
        a = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(a.to_dense(), dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            CSRMatrix.from_dense(np.ones(4))

    def test_from_coo_sums_duplicates(self):
        a = CSRMatrix.from_coo_arrays([0, 0, 1], [1, 1, 0], [2.0, 3.0, 1.0],
                                      (2, 2))
        assert a.nnz == 2
        assert a.to_dense()[0, 1] == 5.0

    def test_from_coo_keeps_duplicates_when_asked(self):
        a = CSRMatrix.from_coo_arrays([0, 0], [1, 1], [2.0, 3.0], (2, 2),
                                      sum_duplicates=False)
        assert a.nnz == 2
        assert a.to_dense()[0, 1] == 5.0  # to_dense still accumulates

    def test_from_coo_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRMatrix.from_coo_arrays([0], [5], [1.0], (2, 2))
        with pytest.raises(ValueError, match="out of range"):
            CSRMatrix.from_coo_arrays([-1], [0], [1.0], (2, 2))

    def test_from_coo_shape_mismatch(self):
        with pytest.raises(ValueError, match="identical shapes"):
            CSRMatrix.from_coo_arrays([0, 1], [0], [1.0], (2, 2))

    def test_validation_catches_bad_indptr(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix([0, 2], [0], [1.0], (2, 2))
        with pytest.raises(ValueError, match="start at 0"):
            CSRMatrix([1, 1, 1], [], [], (2, 2))
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRMatrix([0, 2, 1], [0, 1], [1.0, 1.0], (2, 2))

    def test_validation_catches_bad_columns(self):
        with pytest.raises(ValueError, match="column index"):
            CSRMatrix([0, 1, 1], [9], [1.0], (2, 2))

    def test_identity_and_zeros(self):
        eye = CSRMatrix.identity(4)
        np.testing.assert_array_equal(eye.to_dense(), np.eye(4))
        z = CSRMatrix.zeros((3, 5))
        assert z.nnz == 0
        assert z.to_dense().shape == (3, 5)

    def test_paper_fig1_example(self):
        """The exact CSR example of the paper's Fig 1."""
        dense = np.array([
            [1.0, 0, 2.0, 0],   # a b
            [0, 0, 0, 0],
            [3.0, 4.0, 0, 5.0],  # c d e
            [0, 0, 6.0, 7.0],   # f g
        ])
        a = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(a.indptr, [0, 2, 2, 5, 7])
        np.testing.assert_array_equal(a.indices, [0, 2, 0, 1, 3, 2, 3])
        np.testing.assert_array_equal(a.data, [1, 2, 3, 4, 5, 6, 7])


class TestKernels:
    def test_matvec_matches_scalar_reference(self, any_matrix, rng):
        x = rng.standard_normal(any_matrix.n_cols)
        np.testing.assert_allclose(
            any_matrix.matvec(x), any_matrix.matvec_scalar(x),
            rtol=1e-13, atol=1e-14,
        )

    def test_matvec_matches_dense(self, any_matrix, rng):
        x = rng.standard_normal(any_matrix.n_cols)
        np.testing.assert_allclose(
            any_matrix.matvec(x), any_matrix.to_dense() @ x,
            rtol=1e-10, atol=1e-12,
        )

    def test_matvec_out_parameter(self, grid, rng):
        x = rng.standard_normal(grid.n_cols)
        out = np.empty(grid.n_rows)
        y = grid.matvec(x, out=out)
        assert y is out
        np.testing.assert_allclose(out, grid.to_dense() @ x)

    def test_matvec_dimension_error(self, grid):
        with pytest.raises(ValueError, match="shape"):
            grid.matvec(np.ones(grid.n_cols + 1))

    def test_matmat_fused_two_columns(self, any_matrix, rng):
        X = rng.standard_normal((any_matrix.n_cols, 2))
        np.testing.assert_allclose(
            any_matrix.matmat(X), any_matrix.to_dense() @ X,
            rtol=1e-10, atol=1e-12,
        )

    def test_matmat_rejects_wrong_shape(self, grid):
        with pytest.raises(ValueError):
            grid.matmat(np.ones((grid.n_cols + 1, 2)))
        with pytest.raises(ValueError):
            grid.matmat(np.ones(grid.n_cols))

    def test_matmul_operator(self, grid, rng):
        x = rng.standard_normal(grid.n_cols)
        np.testing.assert_allclose(grid @ x, grid.matvec(x))
        X = rng.standard_normal((grid.n_cols, 3))
        np.testing.assert_allclose(grid @ X, grid.matmat(X))

    def test_empty_rows_produce_zero(self):
        a = CSRMatrix([0, 0, 1, 1], [2], [5.0], (3, 3))
        y = a.matvec(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(y, [0.0, 15.0, 0.0])

    def test_all_empty_matrix(self):
        a = CSRMatrix.zeros((4, 4))
        np.testing.assert_array_equal(a.matvec(np.ones(4)), np.zeros(4))
        np.testing.assert_array_equal(a.matmat(np.ones((4, 2))),
                                      np.zeros((4, 2)))


class TestReduceRows:
    def test_basic(self):
        products = np.array([1.0, 2.0, 3.0, 4.0])
        indptr = np.array([0, 2, 2, 4])
        np.testing.assert_array_equal(reduce_rows(products, indptr),
                                      [3.0, 0.0, 7.0])

    def test_2d_products(self):
        products = np.arange(8, dtype=float).reshape(4, 2)
        indptr = np.array([0, 1, 4])
        np.testing.assert_array_equal(
            reduce_rows(products, indptr),
            [[0.0, 1.0], [2 + 4 + 6, 3 + 5 + 7]],
        )

    def test_empty_products(self):
        out = reduce_rows(np.empty(0), np.array([0, 0, 0]))
        np.testing.assert_array_equal(out, [0.0, 0.0])

    def test_zero_rows(self):
        out = reduce_rows(np.empty(0), np.array([0]))
        assert out.shape == (0,)

    def test_trailing_empty_rows(self):
        out = reduce_rows(np.array([1.0, 1.0]), np.array([0, 2, 2, 2]))
        np.testing.assert_array_equal(out, [2.0, 0.0, 0.0])


class TestStructure:
    def test_row_slice_view_semantics(self, small_sym):
        sub = small_sym.row_slice(10, 20)
        assert sub.shape == (10, small_sym.n_cols)
        np.testing.assert_array_equal(sub.to_dense(),
                                      small_sym.to_dense()[10:20])
        # Views: mutating the slice's data mutates the parent.
        if sub.nnz:
            old = small_sym.data[int(small_sym.indptr[10])]
            sub.data[0] = old + 1.0
            assert small_sym.data[int(small_sym.indptr[10])] == old + 1.0
            sub.data[0] = old

    def test_row_slice_bounds(self, grid):
        with pytest.raises(IndexError):
            grid.row_slice(-1, 3)
        with pytest.raises(IndexError):
            grid.row_slice(0, grid.n_rows + 1)

    def test_select_rows_matches_dense(self, any_matrix, rng):
        rows = rng.permutation(any_matrix.n_rows)[:10]
        sub = any_matrix.select_rows(rows)
        np.testing.assert_array_equal(sub.to_dense(),
                                      any_matrix.to_dense()[rows])

    def test_select_rows_empty(self, grid):
        sub = grid.select_rows(np.array([], dtype=np.int64))
        assert sub.shape == (0, grid.n_cols)
        assert sub.nnz == 0

    def test_select_rows_out_of_range(self, grid):
        with pytest.raises(IndexError):
            grid.select_rows(np.array([grid.n_rows]))

    def test_select_rows_duplicates_allowed(self, grid):
        sub = grid.select_rows(np.array([3, 3]))
        np.testing.assert_array_equal(sub.to_dense()[0], sub.to_dense()[1])

    def test_transpose(self, any_matrix):
        np.testing.assert_array_equal(any_matrix.transpose().to_dense(),
                                      any_matrix.to_dense().T)

    def test_transpose_involution(self, small_unsym):
        twice = small_unsym.transpose().transpose()
        np.testing.assert_array_equal(twice.to_dense(),
                                      small_unsym.to_dense())

    def test_diagonal(self, any_matrix):
        np.testing.assert_allclose(any_matrix.diagonal(),
                                   np.diag(any_matrix.to_dense()))

    def test_is_symmetric(self, small_sym, small_unsym):
        assert small_sym.is_symmetric(tol=1e-12)
        assert not small_unsym.is_symmetric(tol=1e-12)

    def test_sort_indices(self):
        a = CSRMatrix([0, 2], [1, 0], [2.0, 1.0], (1, 2), check=True)
        assert not a.has_sorted_indices()
        s = a.sort_indices()
        assert s.has_sorted_indices()
        np.testing.assert_array_equal(s.to_dense(), a.to_dense())

    def test_copy_is_deep(self, grid):
        c = grid.copy()
        c.data[0] += 1.0
        assert grid.data[0] != c.data[0]

    def test_memory_bytes(self, grid):
        expected = (grid.indptr.size + grid.indices.size) * 8 \
            + grid.data.size * 8
        assert grid.memory_bytes() == expected
        assert grid.memory_bytes(index_bytes=4) < expected

    def test_row_nnz(self, grid):
        assert grid.row_nnz().sum() == grid.nnz


class TestMatmatPaths:
    """Both matmat code paths (narrow <=4 columns and wide) agree."""

    def test_zero_column_block(self, grid):
        out = grid.matmat(np.zeros((grid.n_cols, 0)))
        assert out.shape == (grid.n_rows, 0)

    def test_narrow_and_wide_paths_agree(self, small_sym, rng):
        X = rng.standard_normal((small_sym.n_cols, 8))
        wide = small_sym.matmat(X)
        narrow = np.column_stack([
            small_sym.matmat(X[:, j:j + 2]) for j in (0, 2, 4, 6)
        ])
        np.testing.assert_allclose(wide, narrow, rtol=1e-13, atol=1e-14)

    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 7])
    def test_every_width_matches_dense(self, grid, rng, m):
        X = rng.standard_normal((grid.n_cols, m))
        np.testing.assert_allclose(grid.matmat(X), grid.to_dense() @ X,
                                   rtol=1e-11, atol=1e-12)
