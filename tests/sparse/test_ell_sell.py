"""Unit tests for ELLPACK and SELL-C-sigma formats (Section VII)."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix, ELLMatrix, SellCSigmaMatrix


class TestELL:
    def test_roundtrip(self, any_matrix):
        ell = ELLMatrix.from_csr(any_matrix)
        np.testing.assert_array_equal(ell.to_csr().to_dense(),
                                      any_matrix.to_dense())

    def test_matvec(self, any_matrix, rng):
        ell = ELLMatrix.from_csr(any_matrix)
        x = rng.standard_normal(any_matrix.n_cols)
        np.testing.assert_allclose(ell.matvec(x), any_matrix.matvec(x),
                                   rtol=1e-12, atol=1e-13)

    def test_padding_accounting(self):
        # Rows of nnz 3 and 1 -> width 3, padding 2.
        a = CSRMatrix.from_dense(np.array([[1., 2., 3.], [0., 4., 0.]]))
        ell = ELLMatrix.from_csr(a)
        assert ell.width == 3
        assert ell.nnz == 4
        assert ell.padding == 2

    def test_empty_matrix(self):
        ell = ELLMatrix.from_csr(CSRMatrix.zeros((3, 3)))
        assert ell.width == 0
        np.testing.assert_array_equal(ell.matvec(np.ones(3)), np.zeros(3))

    def test_memory_bytes_includes_padding(self):
        a = CSRMatrix.from_dense(np.array([[1., 2., 3.], [0., 4., 0.]]))
        ell = ELLMatrix.from_csr(a)
        assert ell.memory_bytes() == 2 * 3 * (8 + 8)

    def test_matvec_dimension_error(self, grid):
        ell = ELLMatrix.from_csr(grid)
        with pytest.raises(ValueError):
            ell.matvec(np.ones(grid.n_cols + 2))


class TestSELL:
    @pytest.mark.parametrize("c,sigma", [(1, 1), (4, 16), (8, 64), (32, 1)])
    def test_roundtrip(self, any_matrix, c, sigma):
        sell = SellCSigmaMatrix(any_matrix, c=c, sigma=sigma)
        np.testing.assert_array_equal(sell.to_csr().to_dense(),
                                      any_matrix.to_dense())

    @pytest.mark.parametrize("c,sigma", [(4, 16), (8, 64)])
    def test_matvec(self, any_matrix, rng, c, sigma):
        sell = SellCSigmaMatrix(any_matrix, c=c, sigma=sigma)
        x = rng.standard_normal(any_matrix.n_cols)
        np.testing.assert_allclose(sell.matvec(x), any_matrix.matvec(x),
                                   rtol=1e-12, atol=1e-13)

    def test_sigma_sorting_reduces_padding(self):
        # Alternating long/short rows: plain slicing pads heavily, a
        # sorting window groups similar lengths together.
        n = 64
        dense = np.zeros((n, n))
        for i in range(n):
            width = 12 if i % 2 == 0 else 1
            dense[i, :width] = 1.0
        a = CSRMatrix.from_dense(dense)
        unsorted_ = SellCSigmaMatrix(a, c=8, sigma=1)
        sorted_ = SellCSigmaMatrix(a, c=8, sigma=64)
        assert sorted_.padding < unsorted_.padding

    def test_nnz_preserved(self, small_sym):
        sell = SellCSigmaMatrix(small_sym, c=8, sigma=32)
        assert sell.nnz == small_sym.nnz

    def test_invalid_params(self, grid):
        with pytest.raises(ValueError):
            SellCSigmaMatrix(grid, c=0)
        with pytest.raises(ValueError):
            SellCSigmaMatrix(grid, sigma=0)

    def test_matvec_dimension_error(self, grid):
        sell = SellCSigmaMatrix(grid)
        with pytest.raises(ValueError):
            sell.matvec(np.ones(grid.n_cols + 1))
