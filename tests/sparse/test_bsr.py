"""Unit tests for the BSR block format."""

import numpy as np
import pytest

from repro.matrices import banded_random, poisson2d
from repro.sparse import CSRMatrix
from repro.sparse.bsr import BSRMatrix


def block_structured_matrix(n_nodes=30, r=3, seed=0):
    """FEM-like matrix with genuine r x r block structure."""
    rng = np.random.default_rng(seed)
    base = banded_random(n_nodes, 5, 6, symmetric=True, seed=seed)
    dense_nodes = base.to_dense()
    n = n_nodes * r
    dense = np.zeros((n, n))
    for i, j in zip(*np.nonzero(dense_nodes)):
        dense[i * r:(i + 1) * r, j * r:(j + 1) * r] = \
            rng.standard_normal((r, r))
    return CSRMatrix.from_dense(dense)


class TestBSR:
    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_roundtrip(self, r):
        a = block_structured_matrix(r=max(r, 1))
        bsr = BSRMatrix.from_csr(a, r)
        np.testing.assert_allclose(bsr.to_csr().to_dense(), a.to_dense(),
                                   rtol=0, atol=0)

    @pytest.mark.parametrize("r", [1, 2, 3, 6])
    def test_matvec(self, r):
        a = block_structured_matrix(n_nodes=24, r=3)
        if a.shape[0] % r:
            pytest.skip("dimension not divisible")
        bsr = BSRMatrix.from_csr(a, r)
        x = np.random.default_rng(1).standard_normal(a.n_cols)
        np.testing.assert_allclose(bsr.matvec(x), a.matvec(x),
                                   rtol=1e-11, atol=1e-12)

    def test_block_structure_has_low_fill(self):
        a = block_structured_matrix(r=3)
        bsr = BSRMatrix.from_csr(a, 3)
        # Dense 3x3 node blocks: fill ratio == 1 exactly.
        assert bsr.fill_ratio(a.nnz) == pytest.approx(1.0)

    def test_unstructured_matrix_pays_fill(self):
        a = poisson2d(8)  # point structure, 64 rows
        bsr = BSRMatrix.from_csr(a, 2)
        assert bsr.fill_ratio(a.nnz) > 1.2
        # Still numerically exact.
        x = np.random.default_rng(0).standard_normal(a.n_cols)
        np.testing.assert_allclose(bsr.matvec(x), a.matvec(x),
                                   rtol=1e-11, atol=1e-12)

    def test_index_traffic_reduction(self):
        a = block_structured_matrix(r=3)
        bsr = BSRMatrix.from_csr(a, 3)
        # One index per 3x3 block: ~9x fewer column indices than CSR.
        assert bsr.indices.size * 9 == pytest.approx(a.nnz, rel=0.01)

    def test_r1_equals_csr(self):
        a = poisson2d(5)
        bsr = BSRMatrix.from_csr(a, 1)
        assert bsr.nnz == a.nnz
        x = np.ones(a.n_cols)
        np.testing.assert_allclose(bsr.matvec(x), a.matvec(x))

    def test_empty_matrix(self):
        bsr = BSRMatrix.from_csr(CSRMatrix.zeros((6, 6)), 3)
        assert bsr.nnz_blocks == 0
        np.testing.assert_array_equal(bsr.matvec(np.ones(6)), np.zeros(6))
        assert bsr.to_csr().nnz == 0

    def test_validation(self):
        a = poisson2d(5)  # 25 rows
        with pytest.raises(ValueError, match="multiples"):
            BSRMatrix.from_csr(a, 2)
        with pytest.raises(ValueError, match="positive"):
            BSRMatrix.from_csr(a, 0)
        with pytest.raises(ValueError, match="blocks"):
            BSRMatrix(np.array([0, 1]), np.array([0]),
                      np.ones((1, 2, 3)), (2, 2))

    def test_matvec_dimension_error(self):
        bsr = BSRMatrix.from_csr(block_structured_matrix(), 3)
        with pytest.raises(ValueError):
            bsr.matvec(np.ones(bsr.shape[1] + 1))

    def test_memory_accounting(self):
        a = block_structured_matrix(r=3)
        bsr = BSRMatrix.from_csr(a, 3)
        expected = (bsr.indptr.size + bsr.indices.size) * 8 \
            + bsr.blocks.size * 8
        assert bsr.memory_bytes() == expected
        # For perfectly blocked matrices BSR stores fewer bytes than CSR.
        assert bsr.memory_bytes() < a.memory_bytes()
