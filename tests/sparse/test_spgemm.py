"""Unit tests for SpGEMM and explicit sparse powers."""

import numpy as np
import pytest

from repro.baselines import ExplicitPowerMPK
from repro.core.mpk import mpk_reference_dense
from repro.sparse import (
    CSRMatrix,
    matrix_power_explicit,
    spgemm,
    spgemm_product_count,
)


class TestSpGEMM:
    def test_matches_dense(self, any_matrix):
        c = spgemm(any_matrix, any_matrix)
        dense = any_matrix.to_dense()
        np.testing.assert_allclose(c.to_dense(), dense @ dense,
                                   rtol=1e-10, atol=1e-12)

    def test_rectangular(self, rng):
        a = CSRMatrix.from_dense(
            np.where(rng.random((6, 9)) < 0.4, rng.standard_normal((6, 9)),
                     0.0))
        b = CSRMatrix.from_dense(
            np.where(rng.random((9, 4)) < 0.4, rng.standard_normal((9, 4)),
                     0.0))
        np.testing.assert_allclose(spgemm(a, b).to_dense(),
                                   a.to_dense() @ b.to_dense(),
                                   rtol=1e-10, atol=1e-12)

    def test_identity_is_neutral(self, grid):
        eye = CSRMatrix.identity(grid.n_rows)
        np.testing.assert_allclose(spgemm(eye, grid).to_dense(),
                                   grid.to_dense(), rtol=0, atol=0)
        np.testing.assert_allclose(spgemm(grid, eye).to_dense(),
                                   grid.to_dense(), rtol=0, atol=0)

    def test_zero_operands(self):
        z = CSRMatrix.zeros((3, 3))
        assert spgemm(z, z).nnz == 0
        assert spgemm_product_count(z, z) == 0

    def test_dimension_mismatch(self, grid):
        with pytest.raises(ValueError):
            spgemm(grid, CSRMatrix.zeros((grid.n_cols + 1, 2)))
        with pytest.raises(ValueError):
            spgemm_product_count(grid, CSRMatrix.zeros((grid.n_cols + 1, 2)))

    def test_product_count_matches_expansion(self, small_sym):
        count = spgemm_product_count(small_sym, small_sym)
        # Independent computation from the dense pattern.
        pattern = (small_sym.to_dense() != 0).astype(np.int64)
        expected = int((pattern.sum(axis=0) * pattern.sum(axis=1)).sum())
        # sum_ik nnz(B[k,:]) with A=B: sum_k (col-count of k in A) * nnz(A[k,:])
        cols = np.bincount(small_sym.indices,
                           minlength=small_sym.n_cols)
        expected2 = int((cols * small_sym.row_nnz()).sum())
        assert count == expected2
        assert count == expected

    def test_memory_guard(self, small_sym):
        with pytest.raises(MemoryError):
            spgemm(small_sym, small_sym, max_products=10)

    def test_matrix_power(self, grid):
        dense = grid.to_dense()
        for p in (1, 2, 3, 4, 5):
            np.testing.assert_allclose(
                matrix_power_explicit(grid, p).to_dense(),
                np.linalg.matrix_power(dense, p), rtol=1e-9, atol=1e-11)
        with pytest.raises(ValueError):
            matrix_power_explicit(grid, 0)


class TestExplicitPowerBaseline:
    @pytest.mark.parametrize("k", [0, 1, 2, 4, 5])
    def test_matches_mpk(self, any_matrix, rng, k):
        op = ExplicitPowerMPK(any_matrix)
        x = rng.standard_normal(any_matrix.n_rows)
        np.testing.assert_allclose(op.power(x, k),
                                   mpk_reference_dense(any_matrix, x, k),
                                   rtol=1e-9, atol=1e-11)

    def test_fill_in_makes_it_lose_to_fbmpk(self, small_sym):
        """The design contrast: the explicit square also halves passes,
        but fill-in makes every pass stream >1x nnz(A), so FBMPK
        streams fewer entries for the same k."""
        op = ExplicitPowerMPK(small_sym)
        assert op.fill_in > 1.5
        for k in (4, 6, 8):
            assert op.entries_vs_fbmpk(k) > 1.0

    def test_cost_accounting(self, grid):
        op = ExplicitPowerMPK(grid)
        c = op.cost(5)
        assert (c.passes_a2, c.passes_a) == (2, 1)
        assert c.entries_streamed == 2 * op.a2.nnz + grid.nnz
