"""Unit tests for GMRES and BiCGSTAB."""

import numpy as np
import pytest

from repro.matrices import banded_random, poisson2d
from repro.solvers.krylov import KrylovResult, bicgstab, gmres
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def unsym():
    return banded_random(300, 7, 15, symmetric=False, seed=5)


@pytest.fixture(scope="module")
def spd():
    return poisson2d(12, seed=4)


class TestGMRES:
    def test_solves_unsymmetric(self, unsym, rng):
        x_true = rng.standard_normal(unsym.n_rows)
        b = unsym.matvec(x_true)
        res = gmres(unsym, b, tol=1e-10, restart=40)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-6, atol=1e-8)

    def test_restart_smaller_than_dimension(self, unsym, rng):
        b = rng.standard_normal(unsym.n_rows)
        res = gmres(unsym, b, tol=1e-8, restart=10)
        assert res.converged
        assert np.linalg.norm(unsym.matvec(res.x) - b) \
            <= 1e-7 * np.linalg.norm(b)

    def test_spd_system(self, spd, rng):
        x_true = rng.standard_normal(spd.n_rows)
        res = gmres(spd, spd.matvec(x_true), tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-6, atol=1e-8)

    def test_callable_operator(self, unsym, rng):
        b = rng.standard_normal(unsym.n_rows)
        res = gmres(lambda v: unsym.matvec(v), b, tol=1e-8)
        assert res.converged

    def test_zero_rhs(self, unsym):
        res = gmres(unsym, np.zeros(unsym.n_rows))
        assert res.converged and res.iterations == 0

    def test_warm_start(self, unsym, rng):
        x_true = rng.standard_normal(unsym.n_rows)
        b = unsym.matvec(x_true)
        res = gmres(unsym, b, x0=x_true, tol=1e-8)
        assert res.converged and res.iterations == 0

    def test_budget_exhaustion(self, unsym, rng):
        b = rng.standard_normal(unsym.n_rows)
        res = gmres(unsym, b, tol=1e-15, max_iter=3, restart=3)
        assert not res.converged
        assert res.iterations == 3

    def test_identity_converges_instantly(self, rng):
        eye = CSRMatrix.identity(20)
        b = rng.standard_normal(20)
        res = gmres(eye, b, tol=1e-12)
        assert res.converged and res.iterations <= 1
        np.testing.assert_allclose(res.x, b, rtol=1e-10, atol=1e-12)

    def test_validation(self, unsym):
        with pytest.raises(ValueError):
            gmres(unsym, np.zeros(unsym.n_rows), restart=0)
        with pytest.raises(TypeError):
            gmres(42, np.zeros(3))


class TestBiCGSTAB:
    def test_solves_unsymmetric(self, unsym, rng):
        x_true = rng.standard_normal(unsym.n_rows)
        b = unsym.matvec(x_true)
        res = bicgstab(unsym, b, tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-5, atol=1e-7)

    def test_fewer_spmv_than_gmres_here(self, unsym, rng):
        """On this well-conditioned system BiCGSTAB's 2-SpMV iterations
        beat small-restart GMRES in total work — record it."""
        b = rng.standard_normal(unsym.n_rows)
        res_b = bicgstab(unsym, b, tol=1e-8)
        res_g = gmres(unsym, b, tol=1e-8, restart=5)
        assert res_b.converged and res_g.converged
        assert 2 * res_b.iterations <= 3 * res_g.iterations

    def test_zero_rhs(self, unsym):
        res = bicgstab(unsym, np.zeros(unsym.n_rows))
        assert res.converged and res.iterations == 0

    def test_budget(self, unsym, rng):
        res = bicgstab(unsym, rng.standard_normal(unsym.n_rows),
                       tol=1e-15, max_iter=2)
        assert not res.converged

    def test_residual_history_recorded(self, unsym, rng):
        res = bicgstab(unsym, rng.standard_normal(unsym.n_rows), tol=1e-8)
        assert len(res.residual_norms) >= 2
        assert res.final_residual == res.residual_norms[-1]

    def test_result_dataclass(self):
        r = KrylovResult(x=np.zeros(2), iterations=0, converged=False,
                         residual_norms=[])
        assert r.final_residual == float("inf")
