"""Unit tests for the multilevel AMG hierarchy."""

import numpy as np
import pytest

from repro.matrices import poisson2d
from repro.solvers import conjugate_gradient
from repro.solvers.amg import MultilevelAMG
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def spd():
    return poisson2d(16, seed=2)  # 256 rows


class TestHierarchy:
    def test_builds_multiple_levels(self, spd):
        amg = MultilevelAMG(spd, aggregate_size=4, coarse_size=16)
        assert amg.n_levels >= 3
        sizes = [lv.a.n_rows for lv in amg.levels]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] <= 16

    def test_galerkin_coarse_operators(self, spd):
        """A_{l+1} = P^T A_l P at every level."""
        amg = MultilevelAMG(spd, aggregate_size=4, coarse_size=16)
        for fine, coarse in zip(amg.levels, amg.levels[1:]):
            p = fine.prolong.to_dense()
            expected = p.T @ fine.a.to_dense() @ p
            np.testing.assert_allclose(coarse.a.to_dense(), expected,
                                       rtol=1e-10, atol=1e-12)

    def test_coarse_levels_stay_spd(self, spd):
        amg = MultilevelAMG(spd, aggregate_size=4, coarse_size=16)
        for lv in amg.levels:
            eigs = np.linalg.eigvalsh(lv.a.to_dense())
            assert eigs.min() > -1e-10

    def test_operator_complexity_reasonable(self, spd):
        amg = MultilevelAMG(spd, aggregate_size=4, coarse_size=16)
        assert 1.0 <= amg.operator_complexity() < 2.5

    def test_max_levels_cap(self, spd):
        amg = MultilevelAMG(spd, aggregate_size=2, max_levels=2,
                            coarse_size=4)
        assert amg.n_levels == 2

    def test_validation(self, spd):
        with pytest.raises(ValueError):
            MultilevelAMG(CSRMatrix.zeros((2, 3)))
        with pytest.raises(ValueError):
            MultilevelAMG(spd, aggregate_size=1)
        with pytest.raises(ValueError):
            MultilevelAMG(spd, cycle=3)


class TestCycles:
    @pytest.mark.parametrize("smoother", ["jacobi", "chebyshev"])
    @pytest.mark.parametrize("cycle", [1, 2])
    def test_solve_converges(self, spd, rng, smoother, cycle):
        amg = MultilevelAMG(spd, aggregate_size=4, coarse_size=16,
                            smoother=smoother, cycle=cycle)
        x_true = rng.standard_normal(spd.n_rows)
        b = spd.matvec(x_true)
        x, cycles, ok = amg.solve(b, tol=1e-9)
        assert ok, f"{smoother}/{cycle} failed"
        np.testing.assert_allclose(x, x_true, rtol=1e-5, atol=1e-7)

    def test_w_cycle_needs_no_more_cycles_than_v(self, spd, rng):
        b = rng.standard_normal(spd.n_rows)
        v = MultilevelAMG(spd, aggregate_size=4, coarse_size=16, cycle=1)
        w = MultilevelAMG(spd, aggregate_size=4, coarse_size=16, cycle=2)
        _, cycles_v, ok_v = v.solve(b, tol=1e-9)
        _, cycles_w, ok_w = w.solve(b, tol=1e-9)
        assert ok_v and ok_w
        assert cycles_w <= cycles_v

    def test_single_cycle_contracts(self, spd, rng):
        amg = MultilevelAMG(spd, aggregate_size=4, coarse_size=16)
        x_true = rng.standard_normal(spd.n_rows)
        b = spd.matvec(x_true)
        x = amg.vcycle(b)
        assert np.linalg.norm(b - spd.matvec(x)) \
            < 0.7 * np.linalg.norm(b)

    def test_as_cg_preconditioner(self, spd, rng):
        b = rng.standard_normal(spd.n_rows)
        plain = conjugate_gradient(spd, b, tol=1e-10)
        amg = MultilevelAMG(spd, aggregate_size=4, coarse_size=16)
        pcg = conjugate_gradient(spd, b, tol=1e-10,
                                 preconditioner=amg.as_preconditioner())
        assert pcg.converged
        assert pcg.iterations < plain.iterations

    def test_small_matrix_direct(self):
        a = poisson2d(3, seed=1)  # 9 rows < coarse_size
        amg = MultilevelAMG(a, coarse_size=64)
        assert amg.n_levels == 1
        b = np.ones(a.n_rows)
        x, cycles, ok = amg.solve(b, tol=1e-12)
        assert ok and cycles == 1
        np.testing.assert_allclose(a.matvec(x), b, rtol=1e-9, atol=1e-11)
