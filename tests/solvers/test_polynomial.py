"""Unit tests for polynomial preconditioning through FBMPK."""

import numpy as np
import pytest

from repro.core.fbmpk import build_fbmpk_operator
from repro.matrices import poisson2d
from repro.solvers import conjugate_gradient, gershgorin_bounds
from repro.solvers.krylov import bicgstab, gmres
from repro.solvers.polynomial import (
    NeumannPreconditioner,
    PolynomialPreconditioner,
    chebyshev_inverse_coefficients,
)
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def spd():
    return poisson2d(12, seed=4)


class TestChebyshevInverse:
    def test_approximates_reciprocal(self):
        coeffs = chebyshev_inverse_coefficients(8, 0.5, 2.0)
        t = np.linspace(0.5, 2.0, 100)
        p = sum(c * t ** i for i, c in enumerate(coeffs))
        assert np.abs(p - 1.0 / t).max() < 1e-3

    def test_degree_zero(self):
        coeffs = chebyshev_inverse_coefficients(0, 1.0, 3.0)
        assert coeffs.shape == (1,)

    def test_validation(self):
        with pytest.raises(ValueError):
            chebyshev_inverse_coefficients(3, 0.0, 1.0)
        with pytest.raises(ValueError):
            chebyshev_inverse_coefficients(3, 2.0, 1.0)
        with pytest.raises(ValueError):
            chebyshev_inverse_coefficients(-1, 0.5, 1.0)


class TestPolynomialPreconditioner:
    def test_apply_is_polynomial_in_a(self, spd, rng):
        coeffs = [0.5, -0.25, 0.125]
        pre = PolynomialPreconditioner(a=spd, coefficients=coeffs)
        r = rng.standard_normal(spd.n_rows)
        dense = spd.to_dense()
        expected = (coeffs[0] * r + coeffs[1] * dense @ r
                    + coeffs[2] * dense @ (dense @ r))
        np.testing.assert_allclose(pre.apply(r), expected,
                                   rtol=1e-9, atol=1e-11)
        assert pre.degree == 2
        assert pre.matrix_reads_per_apply() == pytest.approx(1.5)

    def test_chebyshev_poly_accelerates_cg(self, spd, rng):
        lo, hi = gershgorin_bounds(spd)
        lo = max(lo, hi / 100.0)
        coeffs = chebyshev_inverse_coefficients(6, lo, hi)
        pre = PolynomialPreconditioner(a=spd, coefficients=coeffs)
        b = rng.standard_normal(spd.n_rows)
        plain = conjugate_gradient(spd, b, tol=1e-10)
        pcg = conjugate_gradient(spd, b, tol=1e-10, preconditioner=pre)
        assert pcg.converged
        assert pcg.iterations < plain.iterations

    def test_shared_operator(self, spd, rng):
        op = build_fbmpk_operator(spd, strategy="abmc", block_size=1)
        pre = PolynomialPreconditioner(coefficients=[1.0, 1.0],
                                       operator=op)
        r = rng.standard_normal(spd.n_rows)
        np.testing.assert_allclose(pre(r), r + spd.matvec(r),
                                   rtol=1e-10, atol=1e-12)

    def test_validation(self, spd):
        with pytest.raises(ValueError):
            PolynomialPreconditioner(a=spd, coefficients=None)
        with pytest.raises(ValueError):
            PolynomialPreconditioner(a=spd, coefficients=[])
        with pytest.raises(ValueError):
            PolynomialPreconditioner(coefficients=[1.0])


class TestNeumann:
    def test_matches_truncated_series(self, spd, rng):
        m = 3
        pre = NeumannPreconditioner(spd, degree=m)
        r = rng.standard_normal(spd.n_rows)
        d = spd.diagonal()
        dense_b = spd.to_dense() / d[:, None]
        N = np.eye(spd.n_rows) - dense_b
        expected = np.zeros_like(r)
        term = r / d
        for _ in range(m + 1):
            expected += term
            term = N @ term
        np.testing.assert_allclose(pre(r), expected, rtol=1e-9,
                                   atol=1e-11)

    def test_improves_with_degree(self, spd, rng):
        """Higher-degree Neumann gets closer to A^{-1} on diagonally
        dominant systems."""
        x_true = rng.standard_normal(spd.n_rows)
        b = spd.matvec(x_true)
        errs = []
        for m in (1, 3, 7):
            pre = NeumannPreconditioner(spd, degree=m)
            errs.append(np.linalg.norm(pre(b) - x_true))
        assert errs[2] < errs[1] < errs[0]

    def test_accelerates_unsymmetric_krylov(self, rng):
        from repro.matrices import banded_random

        a = banded_random(250, 7, 12, symmetric=False, seed=6)
        b = rng.standard_normal(a.n_rows)
        pre = NeumannPreconditioner(a, degree=3)
        # Right-preconditioned operator A M^{-1}.
        res = gmres(lambda v: a.matvec(pre(v)), b, tol=1e-9, restart=30)
        assert res.converged
        x = pre(res.x)
        assert np.linalg.norm(a.matvec(x) - b) <= 1e-7 * np.linalg.norm(b)
        plain = gmres(a, b, tol=1e-9, restart=30)
        assert res.iterations <= plain.iterations

    def test_requires_full_diagonal(self):
        a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError, match="diagonal"):
            NeumannPreconditioner(a)
