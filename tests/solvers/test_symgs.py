"""Unit tests for SYMGS over the FBMPK partition (Section VII link)."""

import numpy as np
import pytest

from repro.core.fbmpk import build_fbmpk_operator
from repro.core.partition import split_ldu
from repro.matrices import poisson2d
from repro.reorder import permute_symmetric
from repro.solvers import conjugate_gradient
from repro.solvers.symgs import SymgsSmoother, symgs_reference, symgs_sweep
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def spd():
    return poisson2d(10, seed=6)  # SPD, full diagonal


def dense_symgs(a, b, x0=None):
    """Independent oracle: (D+L) x* = b - U x ; (D+U) x** = b - L x*."""
    dense = a.to_dense()
    n = dense.shape[0]
    low = np.tril(dense)          # D + L
    up = np.triu(dense)           # D + U
    strict_up = np.triu(dense, 1)
    strict_low = np.tril(dense, -1)
    x = np.zeros(n) if x0 is None else x0.copy()
    from scipy.linalg import solve_triangular

    x = solve_triangular(low, b - strict_up @ x, lower=True)
    x = solve_triangular(up, b - strict_low @ x, lower=False)
    return x


class TestReference:
    def test_matches_dense_oracle(self, spd, rng):
        part = split_ldu(spd)
        b = rng.standard_normal(spd.n_rows)
        np.testing.assert_allclose(symgs_reference(part, b),
                                   dense_symgs(spd, b),
                                   rtol=1e-10, atol=1e-12)

    def test_warm_start(self, spd, rng):
        part = split_ldu(spd)
        b = rng.standard_normal(spd.n_rows)
        x0 = rng.standard_normal(spd.n_rows)
        np.testing.assert_allclose(symgs_reference(part, b, x0),
                                   dense_symgs(spd, b, x0),
                                   rtol=1e-10, atol=1e-12)

    def test_fixed_point_is_solution(self, spd, rng):
        """The exact solution is a fixed point of the sweep."""
        part = split_ldu(spd)
        x_true = rng.standard_normal(spd.n_rows)
        b = spd.matvec(x_true)
        np.testing.assert_allclose(symgs_reference(part, b, x_true),
                                   x_true, rtol=1e-10, atol=1e-12)

    def test_zero_diagonal_rejected(self):
        a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError, match="diagonal"):
            symgs_reference(split_ldu(a), np.ones(2))

    def test_dimension_error(self, spd):
        with pytest.raises(ValueError):
            symgs_reference(split_ldu(spd), np.ones(3))


class TestGroupSweep:
    def test_abmc_groups_match_sequential(self, spd, rng):
        """On the ABMC-reordered system the group-wise sweep is exactly
        the sequential sweep (valid sweep groups preserve Gauss-Seidel's
        new/old value discipline)."""
        op = build_fbmpk_operator(spd, strategy="abmc", block_size=1)
        reordered_part = op.part
        b = rng.standard_normal(spd.n_rows)
        seq = symgs_reference(reordered_part, b)
        grp = symgs_sweep(reordered_part, op.groups, b)
        np.testing.assert_allclose(grp, seq, rtol=1e-12, atol=1e-13)

    def test_iteration_converges(self, spd, rng):
        part = split_ldu(spd)
        x_true = rng.standard_normal(spd.n_rows)
        b = spd.matvec(x_true)
        x = None
        for _ in range(60):
            x = symgs_reference(part, b, x)
        np.testing.assert_allclose(x, x_true, rtol=1e-6, atol=1e-8)


class TestSmoother:
    def test_matches_reference_in_original_numbering(self, spd, rng):
        op = build_fbmpk_operator(spd, strategy="abmc", block_size=1)
        sm = SymgsSmoother(operator=op)
        b = rng.standard_normal(spd.n_rows)
        # Reference computed in the reordered space, mapped back.
        perm = op.perm
        ref_perm = symgs_reference(op.part, b[perm])
        ref = np.empty_like(ref_perm)
        ref[perm] = ref_perm
        np.testing.assert_allclose(sm.smooth(b), ref, rtol=1e-12,
                                   atol=1e-13)

    def test_build_from_matrix(self, spd, rng):
        sm = SymgsSmoother(a=spd)
        b = rng.standard_normal(spd.n_rows)
        x = sm.smooth(b, iterations=30)
        assert np.linalg.norm(b - spd.matvec(x)) \
            < 0.05 * np.linalg.norm(b)

    def test_as_cg_preconditioner(self, spd, rng):
        b = rng.standard_normal(spd.n_rows)
        plain = conjugate_gradient(spd, b, tol=1e-10)
        sm = SymgsSmoother(a=spd)
        pcg = conjugate_gradient(spd, b, tol=1e-10,
                                 preconditioner=sm.as_preconditioner())
        assert pcg.converged
        assert pcg.iterations < plain.iterations

    def test_validation(self, spd):
        with pytest.raises(ValueError, match="matrix or an operator"):
            SymgsSmoother()
        sm = SymgsSmoother(a=spd)
        with pytest.raises(ValueError):
            sm.smooth(np.ones(spd.n_rows), iterations=0)
        with pytest.raises(ValueError):
            sm.smooth(np.ones(3))
