"""Unit tests for stationary iterations and block subspace iteration."""

import numpy as np
import pytest

from repro.core.fbmpk import build_fbmpk_operator
from repro.core.partition import split_ldu
from repro.matrices import banded_random, poisson2d
from repro.solvers.stationary import (
    gauss_seidel,
    jacobi,
    richardson,
    spectral_radius_jacobi,
)
from repro.solvers.subspace import subspace_iteration
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def spd():
    return poisson2d(10, seed=3)  # 100 rows, SPD, diag dominant


class TestStationary:
    def test_jacobi_converges_on_dd(self, spd, rng):
        x_true = rng.standard_normal(spd.n_rows)
        b = spd.matvec(x_true)
        x, its, ok = jacobi(spd, b, tol=1e-10)
        assert ok
        np.testing.assert_allclose(x, x_true, rtol=1e-6, atol=1e-8)

    def test_richardson_with_good_omega(self, spd, rng):
        lam_max = float(np.linalg.eigvalsh(spd.to_dense())[-1])
        x_true = rng.standard_normal(spd.n_rows)
        b = spd.matvec(x_true)
        x, its, ok = richardson(spd, b, omega=1.0 / lam_max, tol=1e-9)
        assert ok
        np.testing.assert_allclose(x, x_true, rtol=1e-5, atol=1e-7)

    def test_richardson_diverges_with_bad_omega(self, spd, rng):
        lam_max = float(np.linalg.eigvalsh(spd.to_dense())[-1])
        b = rng.standard_normal(spd.n_rows)
        x, its, ok = richardson(spd, b, omega=3.0 / lam_max * 2,
                                tol=1e-9, max_iter=200)
        assert not ok

    def test_gauss_seidel_converges_faster_than_jacobi(self, spd, rng):
        x_true = rng.standard_normal(spd.n_rows)
        b = spd.matvec(x_true)
        _, its_j, ok_j = jacobi(spd, b, tol=1e-8)
        _, its_gs, ok_gs = gauss_seidel(spd, b, tol=1e-8)
        assert ok_j and ok_gs
        assert its_gs < its_j  # classic result for consistently ordered A

    def test_gauss_seidel_reuses_partition(self, spd, rng):
        part = split_ldu(spd)
        b = rng.standard_normal(spd.n_rows)
        x1, _, _ = gauss_seidel(spd, b, tol=1e-9)
        x2, _, _ = gauss_seidel(spd, b, tol=1e-9, part=part)
        np.testing.assert_allclose(x1, x2, rtol=1e-12, atol=1e-13)

    def test_spectral_radius_estimate(self, spd):
        rho = spectral_radius_jacobi(spd)
        dense = spd.to_dense()
        exact = np.abs(np.linalg.eigvals(
            np.eye(spd.n_rows) - dense / np.diag(dense)[:, None])).max()
        assert rho == pytest.approx(exact, rel=0.05)
        assert rho < 1.0  # diagonally dominant -> Jacobi converges

    def test_validation(self, spd):
        with pytest.raises(ValueError):
            richardson(spd, np.zeros(spd.n_rows), omega=0.0)
        hollow = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            jacobi(hollow, np.ones(2))
        with pytest.raises(ValueError):
            gauss_seidel(hollow, np.ones(2))
        with pytest.raises(ValueError):
            spectral_radius_jacobi(hollow)
        with pytest.raises(ValueError):
            jacobi(spd, np.ones(3))


class TestSubspaceIteration:
    def test_finds_dominant_pairs(self, spd):
        vals, vecs, steps = subspace_iteration(spd, n_eigs=3, s=3,
                                               tol=1e-11)
        dense = np.linalg.eigvalsh(spd.to_dense())
        dominant = dense[np.argsort(-np.abs(dense))][:3]
        np.testing.assert_allclose(np.sort(np.abs(vals)),
                                   np.sort(np.abs(dominant)),
                                   rtol=1e-6)
        # Residuals ||A v - lambda v|| small.
        for j in range(3):
            r = spd.matvec(vecs[:, j]) - vals[j] * vecs[:, j]
            assert np.linalg.norm(r) < 1e-5

    def test_shares_operator(self, spd):
        op = build_fbmpk_operator(spd, strategy="abmc", block_size=1)
        vals1, _, _ = subspace_iteration(spd, n_eigs=2, operator=op)
        vals2, _, _ = subspace_iteration(spd, n_eigs=2)
        np.testing.assert_allclose(np.abs(vals1), np.abs(vals2),
                                   rtol=1e-6)

    def test_unsymmetric_magnitude_ordering(self):
        # Works for symmetric matrices only by contract; sanity-check the
        # validation instead.
        a = poisson2d(6)
        with pytest.raises(ValueError):
            subspace_iteration(a, n_eigs=0)
        with pytest.raises(ValueError):
            subspace_iteration(a, n_eigs=a.n_rows + 1)
        with pytest.raises(ValueError):
            subspace_iteration(a, n_eigs=1, s=0)

    def test_matrix_reads_advantage(self, spd):
        """One outer step advances the whole block with ~(s+1)/2 matrix
        reads — verified through the operator's counters."""
        from repro.core.fbmpk import KernelCounter
        from repro.core.plan import fbmpk_plan

        op = build_fbmpk_operator(spd, strategy="abmc", block_size=1)
        V = np.random.default_rng(0).standard_normal((spd.n_rows, 4))
        # power_block has no counter hook; spot-check via power() on one
        # column — the plan is identical per block step.
        c = KernelCounter()
        op.power(V[:, 0], 4, counter=c)
        plan = fbmpk_plan(4)
        assert (c.l_passes, c.u_passes) == (plan.l_passes, plan.u_passes)
