"""Unit tests for the application-level solvers."""

import numpy as np
import pytest

from repro import build_fbmpk_operator
from repro.matrices import poisson2d
from repro.solvers import (
    TwoLevelMultigrid,
    aggregate_rows,
    chebyshev_apply_fbmpk,
    chebyshev_apply_recurrence,
    chebyshev_coefficients_monomial,
    chebyshev_solve,
    conjugate_gradient,
    gershgorin_bounds,
    lanczos,
    power_iteration,
    power_iteration_fbmpk,
    ritz_values,
    sstep_krylov_basis,
)


@pytest.fixture(scope="module")
def spd():
    return poisson2d(12, seed=4)  # 144 rows, SPD by construction


@pytest.fixture(scope="module")
def spd_op(spd):
    return build_fbmpk_operator(spd, strategy="abmc", block_size=1)


class TestCG:
    def test_solves_spd(self, spd, rng):
        x_true = rng.standard_normal(spd.n_rows)
        b = spd.matvec(x_true)
        res = conjugate_gradient(spd, b, tol=1e-12)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, rtol=1e-6, atol=1e-8)
        assert res.final_residual <= 1e-12 * np.linalg.norm(b) * 10

    def test_residual_history_decreases_overall(self, spd, rng):
        b = rng.standard_normal(spd.n_rows)
        res = conjugate_gradient(spd, b, tol=1e-10)
        assert res.residual_norms[-1] < res.residual_norms[0]

    def test_zero_rhs(self, spd):
        res = conjugate_gradient(spd, np.zeros(spd.n_rows))
        assert res.converged and res.iterations == 0

    def test_warm_start(self, spd, rng):
        x_true = rng.standard_normal(spd.n_rows)
        b = spd.matvec(x_true)
        res = conjugate_gradient(spd, b, x0=x_true, tol=1e-10)
        assert res.iterations <= 1

    def test_max_iter_cutoff(self, spd, rng):
        b = rng.standard_normal(spd.n_rows)
        res = conjugate_gradient(spd, b, tol=1e-14, max_iter=2)
        assert not res.converged and res.iterations == 2

    def test_dimension_error(self, spd):
        with pytest.raises(ValueError):
            conjugate_gradient(spd, np.zeros(3))

    def test_non_spd_bails_cleanly(self, rng):
        from repro.sparse import CSRMatrix

        indefinite = CSRMatrix.from_dense(np.diag([1.0, -1.0, 1.0]))
        res = conjugate_gradient(indefinite, np.array([1.0, 1.0, 1.0]),
                                 max_iter=10)
        assert not res.converged


class TestChebyshev:
    def test_monomial_coefficients(self):
        # T_0..T_4 against the textbook forms.
        np.testing.assert_array_equal(chebyshev_coefficients_monomial(0),
                                      [1])
        np.testing.assert_array_equal(chebyshev_coefficients_monomial(1),
                                      [0, 1])
        np.testing.assert_array_equal(chebyshev_coefficients_monomial(2),
                                      [-1, 0, 2])
        np.testing.assert_array_equal(chebyshev_coefficients_monomial(3),
                                      [0, -3, 0, 4])
        np.testing.assert_array_equal(chebyshev_coefficients_monomial(4),
                                      [1, 0, -8, 0, 8])

    def test_coefficients_match_numpy_chebyshev(self):
        for deg in range(8):
            ours = chebyshev_coefficients_monomial(deg)
            ref = np.polynomial.chebyshev.cheb2poly(
                np.eye(deg + 1)[deg])
            np.testing.assert_allclose(ours, ref, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("degree", [0, 1, 2, 5, 8, 11])
    def test_recurrence_equals_fbmpk(self, spd, spd_op, rng, degree):
        lo, hi = gershgorin_bounds(spd)
        interval = (lo - 0.1, hi + 0.1)
        x = rng.standard_normal(spd.n_rows)
        y_rec = chebyshev_apply_recurrence(spd, x, degree, interval)
        y_fb = chebyshev_apply_fbmpk(spd_op, x, degree, interval)
        np.testing.assert_allclose(y_fb, y_rec, rtol=1e-7, atol=1e-9)

    def test_interval_validation(self, spd, spd_op):
        with pytest.raises(ValueError):
            chebyshev_apply_recurrence(spd, np.zeros(spd.n_rows), 3, (1, 1))
        with pytest.raises(ValueError):
            chebyshev_apply_fbmpk(spd_op, np.zeros(spd.n_rows), 3, (2, 1))

    def test_chebyshev_solve(self, spd, rng):
        x_true = rng.standard_normal(spd.n_rows)
        b = spd.matvec(x_true)
        dense_eigs = np.linalg.eigvalsh(spd.to_dense())
        x, it, ok = chebyshev_solve(spd, b,
                                    (dense_eigs[0] * 0.9,
                                     dense_eigs[-1] * 1.1), tol=1e-10)
        assert ok
        np.testing.assert_allclose(x, x_true, rtol=1e-5, atol=1e-7)

    def test_chebyshev_solve_bounds_validation(self, spd):
        with pytest.raises(ValueError):
            chebyshev_solve(spd, np.zeros(spd.n_rows), (0.0, 1.0))


class TestPower:
    def test_gershgorin_contains_spectrum(self, any_matrix):
        lo, hi = gershgorin_bounds(any_matrix)
        eigs = np.linalg.eigvals(any_matrix.to_dense())
        assert eigs.real.min() >= lo - 1e-9
        assert eigs.real.max() <= hi + 1e-9

    def test_power_iteration_finds_dominant(self, spd):
        lam, v, _ = power_iteration(spd, tol=1e-12, max_iter=20_000)
        dense = np.linalg.eigvalsh(spd.to_dense())
        # Dominant |eigenvalue| of an SPD matrix is lambda_max.
        assert lam == pytest.approx(dense[-1], rel=1e-6)
        # v is an eigenvector.
        np.testing.assert_allclose(spd.matvec(v), lam * v, rtol=0,
                                   atol=1e-5)

    def test_power_iteration_fbmpk_agrees(self, spd, spd_op):
        lam_plain, _, _ = power_iteration(spd, tol=1e-12, max_iter=20_000)
        lam_blk, _, _ = power_iteration_fbmpk(spd_op, spd, s=4, tol=1e-12,
                                              max_iter=5_000)
        assert lam_blk == pytest.approx(lam_plain, rel=1e-6)

    def test_power_fbmpk_validates_s(self, spd, spd_op):
        with pytest.raises(ValueError):
            power_iteration_fbmpk(spd_op, spd, s=0)


class TestLanczos:
    def test_orthonormal_basis(self, spd):
        Q, alpha, beta = lanczos(spd, 25, seed=3)
        gram = Q.T @ Q
        np.testing.assert_allclose(gram, np.eye(Q.shape[1]), atol=1e-10)
        assert alpha.shape[0] == Q.shape[1]

    def test_ritz_extremes_converge(self, spd):
        Q, alpha, beta = lanczos(spd, 40, seed=1)
        ritz = ritz_values(alpha, beta)
        dense = np.linalg.eigvalsh(spd.to_dense())
        assert ritz.max() == pytest.approx(dense[-1], rel=1e-6)
        assert ritz.min() == pytest.approx(dense[0], rel=1e-2, abs=1e-4)

    def test_sstep_basis_spans_krylov(self, spd, spd_op, rng):
        q0 = rng.standard_normal(spd.n_rows)
        B = sstep_krylov_basis(spd_op, q0, 4)
        # Orthonormal columns…
        np.testing.assert_allclose(B.T @ B, np.eye(B.shape[1]), atol=1e-8)
        # …spanning the monomial Krylov block.
        dense = spd.to_dense()
        v = q0 / np.linalg.norm(q0)
        for _ in range(4):
            v = dense @ v
        residual = v - B @ (B.T @ v)
        assert np.linalg.norm(residual) < 1e-6 * np.linalg.norm(v)

    def test_sstep_validates_s(self, spd_op, rng):
        with pytest.raises(ValueError):
            sstep_krylov_basis(spd_op, rng.standard_normal(spd_op.n), 0)


class TestMultigrid:
    def test_aggregates(self):
        np.testing.assert_array_equal(aggregate_rows(7, 3), [0, 0, 0, 1, 1, 1, 2])
        with pytest.raises(ValueError):
            aggregate_rows(4, 0)

    @pytest.mark.parametrize("smoother", ["jacobi", "chebyshev"])
    def test_vcycle_contracts_error(self, spd, rng, smoother):
        mg = TwoLevelMultigrid(spd, aggregate_size=12, smoother=smoother)
        x_true = rng.standard_normal(spd.n_rows)
        b = spd.matvec(x_true)
        x = mg.vcycle(b)
        r0 = np.linalg.norm(b)
        r1 = np.linalg.norm(b - spd.matvec(x))
        assert r1 < 0.7 * r0

    def test_solve_converges(self, spd, rng):
        mg = TwoLevelMultigrid(spd, aggregate_size=12)
        b = rng.standard_normal(spd.n_rows)
        x, cycles, ok = mg.solve(b, tol=1e-9)
        assert ok
        assert np.linalg.norm(b - spd.matvec(x)) <= 1e-8 * np.linalg.norm(b) * 10

    def test_preconditioned_cg_faster(self, spd, rng):
        b = rng.standard_normal(spd.n_rows)
        plain = conjugate_gradient(spd, b, tol=1e-10)
        mg = TwoLevelMultigrid(spd, aggregate_size=12)
        pcg = conjugate_gradient(spd, b, tol=1e-10,
                                 preconditioner=mg.as_preconditioner())
        assert pcg.converged
        assert pcg.iterations < plain.iterations

    def test_restrict_prolong_adjoint(self, spd, rng):
        mg = TwoLevelMultigrid(spd, aggregate_size=8)
        r = rng.standard_normal(spd.n_rows)
        e = rng.standard_normal(mg._h.n_coarse)
        # <P^T r, e> == <r, P e> (transfer operators are adjoint).
        assert mg.restrict(r) @ e == pytest.approx(r @ mg.prolong(e))

    def test_validation(self, rng):
        from repro.sparse import CSRMatrix

        with pytest.raises(ValueError, match="square"):
            TwoLevelMultigrid(CSRMatrix.zeros((2, 3)))
        with pytest.raises(ValueError, match="diagonal"):
            TwoLevelMultigrid(CSRMatrix.from_dense(
                np.array([[0.0, 1.0], [1.0, 0.0]])))
