"""Chaos soak: a real TCP solve server under randomized fault
injection and worker signals.

Every round of the soak picks one chaos mode — injected raises and
delays on the event loop's request path, injected raises and bounded
hangs in the batch compute thread, SIGSTOP or SIGKILL of a live
process-pool worker — then fires a wave of concurrent requests at the
server over real sockets.  The resilience layer (watchdog + bounded
barriers + ``fallback_serial``) must turn every one of those failure
shapes into one of exactly two outcomes per request:

* an ``ok`` response whose vector is **bitwise identical** to the
  serial reference, or
* a structured error envelope with a code from ``ERROR_CODES``.

No request may hang without a terminal response, no worker process may
outlive the server, and no ``/dev/shm`` segment may leak."""

import asyncio
import json
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.core import build_fbmpk_operator
from repro.parallel.procexec import SHM_PREFIX
from repro.robust.faults import (
    DelayFault,
    FaultInjector,
    HangFault,
    RaiseFault,
)
from repro.serve import ERROR_CODES, ServeConfig, SolveServer, SolveService

ROWS = 250
K = 3
WAVE = 8
READ_TIMEOUT_S = 30.0


def shm_residue():
    try:
        return {f for f in os.listdir("/dev/shm")
                if f.startswith(SHM_PREFIX)}
    except FileNotFoundError:  # non-Linux
        return set()


def make_request(rid, x, deadline_ms=None):
    req = {"id": rid, "op": "power", "k": K,
           "tenant": f"t{hash(rid) % 3}",
           "matrix": {"standin": "cant", "rows": ROWS, "seed": 0},
           "x": x.tolist()}
    if deadline_ms is not None:
        req["deadline_ms"] = deadline_ms
    return req


async def send_wave(host, port, requests):
    """One connection per ~4 requests; returns {rid: response}."""
    chunks = [requests[i::2] for i in range(2)]
    results = {}

    async def one_conn(chunk):
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for req in chunk:
                writer.write(json.dumps(req).encode() + b"\n")
            await writer.drain()
            for _ in chunk:
                line = await asyncio.wait_for(reader.readline(),
                                              READ_TIMEOUT_S)
                assert line, "server closed mid-response"
                resp = json.loads(line)
                results[resp["id"]] = resp
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    await asyncio.gather(*[one_conn(c) for c in chunks if c])
    return results


def pool_pids(service):
    """PIDs of the resident operator's process-pool workers (spawning
    the pool if the operator exists but has not run parallel yet)."""
    for entry in service.registry._entries.values():
        procs = getattr(entry.op, "_procs", None)
        if procs is not None:
            return procs.pool.start()
    return []


@pytest.mark.slow
def test_chaos_soak_every_request_terminal_and_bitwise():
    rng = np.random.default_rng(42)
    xs = {}

    config = ServeConfig(
        tune="off", executor="processes", n_workers=2,
        on_failure="fallback_serial", hang_timeout_s=1.0,
        gather_window_s=0.01, drain_timeout_s=10.0,
    )
    chaos_rounds = [
        "warmup",             # clean round; spawns operator + pool
        "raise_request",      # event-loop request path raises
        "delay_request",      # event-loop request path stalls briefly
        "raise_batch",        # compute thread raises mid-batch
        "hang_batch",         # compute thread stalls (bounded)
        "sigstop_worker",     # pool worker alive but silent -> watchdog
        "sigkill_worker",     # pool worker dies -> dead-worker path
        "deadline_storm",     # microscopic deadlines expire in queue
        "cooldown",           # clean round: service fully recovered
    ]

    async def soak():
        service = SolveService(config)
        server = SolveServer(service, port=0)
        await server.start()
        injector = FaultInjector(seed=7)
        responses = {}
        try:
            with injector:
                for rnd, mode in enumerate(chaos_rounds):
                    injector.clear()
                    if mode == "raise_request":
                        injector.install("serve.request",
                                         RaiseFault(times=3))
                    elif mode == "delay_request":
                        injector.install("serve.request",
                                         DelayFault(0.02, times=4))
                    elif mode == "raise_batch":
                        injector.install("serve.batch",
                                         RaiseFault(times=2))
                    elif mode == "hang_batch":
                        injector.install("serve.batch",
                                         HangFault(seconds=1.5, times=1))
                    elif mode in ("sigstop_worker", "sigkill_worker"):
                        # A prior fallback may have torn the pool down
                        # (it respawns lazily); one clean request
                        # guarantees live workers to signal.
                        rid = f"{mode}-{rnd}-warm"
                        xs[rid] = rng.standard_normal(ROWS)
                        responses.update(await send_wave(
                            server.host, server.port,
                            [make_request(rid, xs[rid])]))
                        pids = pool_pids(service)
                        assert pids, "pool should be live by now"
                        if mode == "sigstop_worker":
                            os.kill(pids[0], signal.SIGSTOP)
                        else:
                            os.kill(pids[-1], signal.SIGKILL)
                            await asyncio.sleep(0.05)

                    deadline_ms = 1e-6 if mode == "deadline_storm" \
                        else None
                    wave = []
                    for i in range(WAVE):
                        rid = f"{mode}-{rnd}-{i}"
                        xs[rid] = rng.standard_normal(ROWS)
                        wave.append(make_request(rid, xs[rid],
                                                 deadline_ms))
                    responses.update(
                        await send_wave(server.host, server.port, wave))

            health = await service.handle({"id": "h", "op": "health"})
            stats = await service.handle({"id": "s", "op": "stats"})
        finally:
            await server.aclose()
        return responses, health, stats

    shm_before = shm_residue()
    t0 = time.monotonic()
    responses, health, stats = asyncio.run(soak())
    elapsed = time.monotonic() - t0

    # -- every request terminal, structured ---------------------------
    n_expected = WAVE * len(chaos_rounds) + 2  # + the two warm probes
    assert len(responses) == n_expected
    ok_ids, failed = [], {}
    for rid, resp in responses.items():
        if resp.get("ok"):
            ok_ids.append(rid)
        else:
            code = resp["error"]["code"]
            assert code in ERROR_CODES, f"{rid}: unknown code {code!r}"
            failed[rid] = code

    # Clean rounds must fully succeed; the deadline storm must reject
    # with the deadline code specifically.
    for rid, code in failed.items():
        assert not rid.startswith(("warmup", "cooldown")), \
            f"clean-round request {rid} failed with {code}"
        if rid.startswith("deadline_storm"):
            assert code == "deadline_exceeded"
    assert any(rid.startswith("deadline_storm") for rid in failed)
    # Chaos must not take out more than the injected budgets allow:
    # 3 request-path raises, up to 2 whole batches (a batch fault fails
    # every request sealed into it — worst case the full wave), and the
    # WAVE deadline-storm rejections.  Delays and bounded hangs must
    # not fail anything.
    assert len(ok_ids) >= n_expected - (3 + WAVE + WAVE)

    # -- bitwise identity of every success ----------------------------
    from repro.matrices import generate_standin

    a = generate_standin("cant", n_rows=ROWS, seed=0)
    with build_fbmpk_operator(a) as ref_op:
        for rid in ok_ids:
            ref = ref_op.power(xs[rid].copy(), K)
            got = np.asarray(responses[rid]["y"])
            assert np.array_equal(got, ref), \
                f"{rid}: batched result differs from serial bits"

    # -- the service observed and survived the chaos -------------------
    assert health["ok"]
    rej = stats["stats"]["rejected_by_reason"]
    assert rej["deadline_exceeded"] >= 1

    # -- no leaked workers, no leaked shared memory --------------------
    for _ in range(50):  # close() reaps asynchronously-exiting workers
        if not multiprocessing.active_children():
            break
        time.sleep(0.1)
    assert multiprocessing.active_children() == []
    assert shm_residue() - shm_before == set()

    # Bounded soak: the whole gauntlet (including a SIGSTOP detection
    # at hang_timeout=1s and a 1.5s bounded hang) stays well under CI's
    # budget.
    assert elapsed < 60.0
