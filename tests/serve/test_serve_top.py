"""The live dashboard's frame renderer (``tools/serve_top.py``).

:func:`render` is a pure function over two stats snapshots, so the
panels — including the batched-dispatch line fed by the process
executor's ``procexec.*`` telemetry — are testable without a socket.
"""

import importlib.util
from pathlib import Path

TOOLS = Path(__file__).resolve().parents[2] / "tools"


def _load_serve_top():
    spec = importlib.util.spec_from_file_location(
        "serve_top", TOOLS / "serve_top.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _stats(enqueues=0.0, steals=0.0, wait_sum=0.0, wait_count=0):
    metrics = {
        "counters": {
            "serve.requests": {"value": 4.0},
            "serve.requests.completed": {"value": 4.0},
            "procexec.enqueues": {"value": enqueues},
            "procexec.steal_count": {"value": steals},
        },
        "histograms": {
            "procexec.dispatch_wait": {
                "unit": "s", "buckets": [0.001, 0.01],
                "counts": [wait_count, 0, 0],
                "sum": wait_sum, "count": wait_count,
            },
        },
    }
    return {"uptime_s": 1.0, "metrics": metrics}


def test_render_surfaces_dispatch_counters():
    top = _load_serve_top()
    frame = top.render(_stats(enqueues=144.0, steals=500.0,
                              wait_sum=0.25, wait_count=100),
                       health={"inflight": 0})
    line = next(l for l in frame.splitlines()
                if l.startswith("dispatch"))
    assert "enqueues       144" in line
    assert "steals       500" in line
    assert "2.50" in line  # 0.25 s over 100 waits = 2.5 ms mean


def test_render_steal_rate_from_consecutive_frames():
    top = _load_serve_top()
    prev = _stats(enqueues=100.0, steals=200.0)
    cur = _stats(enqueues=120.0, steals=300.0)
    frame = top.render(cur, health={}, prev=prev, dt=2.0)
    line = next(l for l in frame.splitlines()
                if l.startswith("dispatch"))
    assert "50.0" in line  # (300 - 200) / 2 s


def test_render_omits_dispatch_line_for_serial_servers():
    top = _load_serve_top()
    frame = top.render(_stats(), health={})
    assert not any(l.startswith("dispatch")
                   for l in frame.splitlines())
