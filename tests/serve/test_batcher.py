"""Batching-queue behaviour: gather-window batching, early sealing at
``max_batch``, admission control, the unbatchable-operator fallback,
drain semantics, and the aliasing audit — batched responses must never
share memory with the gather/result buffers."""

import asyncio

import numpy as np
import pytest

from repro.core import build_fbmpk_operator
from repro.serve import (
    Batcher,
    QueueFullError,
    ResidentOperator,
    ServeConfig,
    ServiceClosedError,
    split_block,
)
from repro.serve.spec import MatrixSpec

SPEC = MatrixSpec(standin="cant", rows=250, seed=0)


def make_entry(backend="numpy", spec=SPEC):
    a = spec.load()
    op = build_fbmpk_operator(a, backend=backend)
    return ResidentOperator(spec, op, "00", "build")


def make_batcher(**over):
    over.setdefault("tune", "off")
    over.setdefault("gather_window_s", 0.02)
    return Batcher(ServeConfig(**over).validate())


def vectors(n, m, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n) for _ in range(m)]


def reference(entry, xs, k):
    return [entry.op.power(x.copy(), k) for x in xs]


def run(coro):
    return asyncio.run(coro)


# -- batching --------------------------------------------------------------
def test_concurrent_submits_share_one_batch():
    async def main():
        entry = make_entry()
        b = make_batcher()
        xs = vectors(entry.n, 5)
        results = await asyncio.gather(
            *[b.submit(entry, x, 3) for x in xs])
        widths = {w for _, w in results}
        assert widths == {5}            # one sweep served all five
        for (y, _), ref in zip(results, reference(entry, xs, 3)):
            assert np.array_equal(y, ref)
        await b.drain()
        entry._close_op()

    run(main())


def test_different_k_never_share_a_batch():
    async def main():
        entry = make_entry()
        b = make_batcher()
        x = vectors(entry.n, 1)[0]
        (y3, w3), (y4, w4) = await asyncio.gather(
            b.submit(entry, x, 3), b.submit(entry, x, 4))
        assert (w3, w4) == (1, 1)
        assert np.array_equal(y3, entry.op.power(x.copy(), 3))
        assert np.array_equal(y4, entry.op.power(x.copy(), 4))
        await b.drain()
        entry._close_op()

    run(main())


def test_max_batch_seals_early():
    async def main():
        entry = make_entry()
        b = make_batcher(max_batch=2, gather_window_s=5.0)
        xs = vectors(entry.n, 4)
        # The window is far too long to fire in-test: only the
        # max_batch early seal can complete these.
        results = await asyncio.wait_for(
            asyncio.gather(*[b.submit(entry, x, 2) for x in xs]),
            timeout=10)
        assert [w for _, w in results] == [2, 2, 2, 2]
        await b.drain()
        entry._close_op()

    run(main())


# -- admission control -----------------------------------------------------
def test_queue_full_rejection():
    async def main():
        entry = make_entry()
        b = make_batcher(max_queue=2, gather_window_s=0.2)
        xs = vectors(entry.n, 4)
        results = await asyncio.gather(
            *[b.submit(entry, x, 2) for x in xs],
            return_exceptions=True)
        rejected = [r for r in results
                    if isinstance(r, QueueFullError)]
        served = [r for r in results if isinstance(r, tuple)]
        assert len(rejected) == 2
        assert len(served) == 2
        await b.drain()
        entry._close_op()

    run(main())


def test_global_pending_cap():
    async def main():
        entry = make_entry()
        b = make_batcher(max_pending=3, max_queue=100,
                         gather_window_s=0.2)
        xs = vectors(entry.n, 6)
        # Spread across two k values so no single queue hits max_queue.
        results = await asyncio.gather(
            *[b.submit(entry, x, 2 + (i % 2)) for i, x in enumerate(xs)],
            return_exceptions=True)
        rejected = [r for r in results if isinstance(r, QueueFullError)]
        assert len(rejected) == 3
        await b.drain()
        entry._close_op()

    run(main())


# -- unbatchable fallback --------------------------------------------------
def test_unbatchable_entry_served_per_request():
    async def main():
        entry = make_entry(backend="scipy")
        assert not entry.can_batch
        b = make_batcher()
        xs = vectors(entry.n, 3)
        results = await asyncio.gather(
            *[b.submit(entry, x, 3) for x in xs])
        # Still gathered (the queue machinery is shared) but computed
        # per-request with `power`, so results match that path exactly.
        for (y, _), ref in zip(results, reference(entry, xs, 3)):
            assert np.array_equal(y, ref)
        await b.drain()
        entry._close_op()

    run(main())


# -- failure and cancellation ----------------------------------------------
def test_nan_input_fails_batch_with_non_finite():
    async def main():
        entry = make_entry()
        b = make_batcher()
        bad = np.full(entry.n, np.nan)
        with pytest.raises(Exception) as exc_info:
            await b.submit(entry, bad, 3)
        assert getattr(exc_info.value, "code", None) == "non_finite"
        await b.drain()
        entry._close_op()

    run(main())


def test_cancelled_request_drops_out_of_batch():
    async def main():
        entry = make_entry()
        b = make_batcher(gather_window_s=0.1)
        xs = vectors(entry.n, 2)
        t_keep = asyncio.ensure_future(b.submit(entry, xs[0], 3))
        t_drop = asyncio.ensure_future(b.submit(entry, xs[1], 3))
        await asyncio.sleep(0.01)       # both queued, window open
        t_drop.cancel()
        y, width = await t_keep
        assert width == 1               # the cancelled slot was dropped
        assert np.array_equal(y, entry.op.power(xs[0].copy(), 3))
        with pytest.raises(asyncio.CancelledError):
            await t_drop
        await b.drain()
        entry._close_op()

    run(main())


# -- drain -----------------------------------------------------------------
def test_drain_rejects_new_and_flushes_queued():
    async def main():
        entry = make_entry()
        b = make_batcher(gather_window_s=30.0)   # would never self-fire
        x = vectors(entry.n, 1)[0]
        t = asyncio.ensure_future(b.submit(entry, x, 2))
        await asyncio.sleep(0.01)
        await b.drain()                  # seals the open queue
        y, _ = await t
        assert np.array_equal(y, entry.op.power(x.copy(), 2))
        with pytest.raises(ServiceClosedError):
            await b.submit(entry, x, 2)
        assert b.pending == 0
        assert b.inflight_batches == 0
        entry._close_op()

    run(main())


# -- aliasing audit --------------------------------------------------------
def test_split_block_returns_owned_copies():
    Y = np.arange(12.0).reshape(3, 4)
    cols = split_block(Y)
    for j, y in enumerate(cols):
        assert y.base is None                       # owns its data
        assert not np.shares_memory(y, Y)
        assert np.array_equal(y, Y[:, j])
    # Width-1 blocks are the trap: a "contiguous view" would alias.
    one = split_block(np.arange(3.0).reshape(3, 1))[0]
    assert one.base is None


def test_batched_outputs_never_alias_gather_or_block_buffers():
    async def main():
        entry = make_entry()
        b = make_batcher(debug_keep_last=True)
        xs = vectors(entry.n, 4)
        results = await asyncio.gather(
            *[b.submit(entry, x, 3) for x in xs])
        assert b.last_gather is not None
        assert b.last_block is not None
        for y, _ in results:
            assert y.base is None
            assert not np.shares_memory(y, b.last_gather)
            assert not np.shares_memory(y, b.last_block)
            # Nor the operator's persistent interleaved block buffer.
            blk = getattr(entry.op, "_blk_buf", None)
            if blk is not None:
                assert not np.shares_memory(y, blk)
        # Mutating the shared buffers after the fact cannot corrupt
        # responses already handed out.
        snapshot = [y.copy() for y, _ in results]
        b.last_block[:] = -1.0
        b.last_gather[:] = -1.0
        for (y, _), snap in zip(results, snapshot):
            assert np.array_equal(y, snap)
        await b.drain()
        entry._close_op()

    run(main())


def test_sequential_batches_do_not_corrupt_prior_responses():
    async def main():
        entry = make_entry()
        b = make_batcher()
        xs1 = vectors(entry.n, 3, seed=1)
        first = await asyncio.gather(
            *[b.submit(entry, x, 4) for x in xs1])
        snapshot = [y.copy() for y, _ in first]
        # A second batch reuses the operator's internal buffers.
        xs2 = vectors(entry.n, 3, seed=2)
        await asyncio.gather(*[b.submit(entry, x, 4) for x in xs2])
        for (y, _), snap in zip(first, snapshot):
            assert np.array_equal(y, snap)
        await b.drain()
        entry._close_op()

    run(main())
