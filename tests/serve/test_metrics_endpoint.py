"""The serve stack's /metrics endpoint and SLO surfaces end to end.

Starts a real :class:`SolveServer` with ``metrics_port=0`` (ephemeral),
drives power traffic over TCP, scrapes the Prometheus endpoint with
urllib and cross-checks the exposition against the ``stats`` and
``metrics`` NDJSON ops — the same numbers must appear on every surface.
"""

import asyncio
import json
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.obs.exporter import parse_prometheus
from repro.serve import ServeConfig, SolveServer, SolveService
from repro.serve.spec import MatrixSpec

SPEC = MatrixSpec(standin="cant", rows=120, seed=0)


async def _send(writer, obj):
    writer.write(json.dumps(obj).encode() + b"\n")
    await writer.drain()


async def _rpc(reader, writer, obj, timeout=30):
    await _send(writer, obj)
    line = await asyncio.wait_for(reader.readline(), timeout)
    assert line, "server closed the connection"
    return json.loads(line)


def _power_req(i, x, k=2):
    return {"id": f"r{i}", "op": "power", "k": k,
            "matrix": {"standin": SPEC.standin, "rows": SPEC.rows,
                       "seed": SPEC.seed},
            "x": x.tolist()}


def _scrape(port):
    url = f"http://127.0.0.1:{port}/metrics"
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.read().decode()


def _sample_value(fams, family, sample=None):
    sample = sample or family
    for sname, _labels, value in fams[family]["samples"]:
        if sname == sample:
            return value
    raise AssertionError(f"{sample} not in {family}")


@pytest.fixture(scope="module")
def endpoint_run():
    """One server lifetime: N power requests over TCP, scrapes taken
    before and after traffic, stats/metrics ops captured alongside."""

    async def main():
        cfg = ServeConfig(tune="off", gather_window_s=0.02,
                          metrics_port=0, slo_target_ms=60_000.0)
        server = SolveServer(SolveService(cfg), port=0)
        await server.start()
        metrics_port = server.metrics_port
        assert metrics_port not in (None, 0)
        before = _scrape(metrics_port)
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        try:
            rng = np.random.default_rng(3)
            n_req = 5
            for i in range(n_req):
                resp = await _rpc(reader, writer, _power_req(
                    i, rng.standard_normal(SPEC.rows)))
                assert resp["ok"], resp
            stats = (await _rpc(reader, writer,
                                {"id": "s", "op": "stats"}))["stats"]
            metrics_op = await _rpc(reader, writer,
                                    {"id": "m", "op": "metrics"})
            after = _scrape(metrics_port)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            await server.aclose()
        return {"before": before, "after": after, "stats": stats,
                "metrics_op": metrics_op, "n_req": n_req,
                "metrics_port": metrics_port}

    tel = obs.Telemetry()
    tel.activate()
    try:
        return asyncio.run(main())
    finally:
        tel.deactivate()


class TestScrape:
    def test_exposition_is_strictly_valid(self, endpoint_run):
        parse_prometheus(endpoint_run["before"])
        parse_prometheus(endpoint_run["after"])

    def test_serve_requests_total_increments(self, endpoint_run):
        fams_after = parse_prometheus(endpoint_run["after"])
        after = _sample_value(fams_after, "serve_requests_total")
        fams_before = parse_prometheus(endpoint_run["before"])
        before = (_sample_value(fams_before, "serve_requests_total")
                  if "serve_requests_total" in fams_before else 0.0)
        # 5 power + the stats and metrics ops themselves
        assert after >= before + endpoint_run["n_req"]

    def test_latency_histogram_counts_power_requests(self,
                                                     endpoint_run):
        fams = parse_prometheus(endpoint_run["after"])
        count = _sample_value(fams, "serve_latency_seconds",
                              "serve_latency_seconds_count")
        assert count == endpoint_run["n_req"]

    def test_quantile_gauges_exported(self, endpoint_run):
        fams = parse_prometheus(endpoint_run["after"])
        for q in ("p50", "p95", "p99"):
            assert f"serve_latency_{q}_seconds" in fams

    def test_slo_burn_counters_exported(self, endpoint_run):
        fams = parse_prometheus(endpoint_run["after"])
        assert _sample_value(fams, "serve_slo_good_total") \
            == endpoint_run["n_req"]
        assert _sample_value(fams, "serve_slo_bad_total") == 0.0


class TestCrossSurfaceConsistency:
    def test_stats_and_metrics_ops_agree_on_slo(self, endpoint_run):
        slo_stats = endpoint_run["stats"]["slo"]
        slo_op = endpoint_run["metrics_op"]["slo"]
        assert slo_stats == slo_op

    def test_scrape_agrees_with_stats_slo(self, endpoint_run):
        slo = endpoint_run["stats"]["slo"]
        fams = parse_prometheus(endpoint_run["after"])
        assert _sample_value(fams, "serve_slo_good_total") \
            == slo["good"]
        assert _sample_value(fams, "serve_slo_bad_total") == slo["bad"]
        burn = _sample_value(fams, "serve_slo_burn_rate")
        assert burn == pytest.approx(slo["burn_rate"])
        p50_s = _sample_value(fams, "serve_latency_p50_seconds")
        assert p50_s * 1000.0 == pytest.approx(slo["p50_ms"])

    def test_metrics_op_carries_full_snapshot(self, endpoint_run):
        snap = endpoint_run["metrics_op"]["metrics"]
        assert snap["counters"]["serve.requests"]["value"] >= \
            endpoint_run["n_req"]
        assert "serve.latency" in snap["histograms"]


class TestLifecycle:
    def test_endpoint_closes_with_server(self, endpoint_run):
        with pytest.raises((ConnectionError, OSError)):
            _scrape(endpoint_run["metrics_port"])

    def test_no_metrics_port_means_no_endpoint(self):
        async def main():
            cfg = ServeConfig(tune="off")
            server = SolveServer(SolveService(cfg), port=0)
            await server.start()
            try:
                return server.metrics_port
            finally:
                await server.aclose()

        assert asyncio.run(main()) is None
