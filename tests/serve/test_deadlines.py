"""Deadline propagation through the serving stack, plus the new
``health``/``ready`` ops and the extended ``stats`` payload.

The contract under test: a request whose ``deadline_ms`` budget runs
out anywhere before its batch is sealed receives a structured
``deadline_exceeded`` envelope, is never admitted into a batch, and
never delays or corrupts the batch that ran without it."""

import asyncio

import numpy as np
import pytest

from repro.core import build_fbmpk_operator
from repro.serve import ERROR_CODES, ServeConfig, SolveService
from repro.serve.protocol import parse_request, ProtocolError
from repro.serve.spec import MatrixSpec

SPEC = MatrixSpec(standin="cant", rows=250, seed=0)


def make_service(**over):
    over.setdefault("tune", "off")
    over.setdefault("gather_window_s", 0.02)
    return SolveService(ServeConfig(**over))


def power_payload(i, x, k=3, tenant="t0", **extra):
    req = {"id": f"r{i}", "op": "power", "tenant": tenant, "k": k,
           "matrix": {"standin": SPEC.standin, "rows": SPEC.rows,
                      "seed": SPEC.seed},
           "x": x.tolist()}
    req.update(extra)
    return req


def run(coro):
    return asyncio.run(coro)


# -- parse-time validation -------------------------------------------------
def test_deadline_exceeded_is_a_known_code():
    assert "deadline_exceeded" in ERROR_CODES
    assert "too_large" in ERROR_CODES


@pytest.mark.parametrize("bad", [0, -5, -0.1, "1000", True, [1]])
def test_nonpositive_or_malformed_deadline_rejected_at_parse(bad):
    x = np.ones(4)
    with pytest.raises(ProtocolError) as exc_info:
        parse_request(power_payload(0, x, deadline_ms=bad))
    assert exc_info.value.code == "bad_request"
    assert "deadline_ms" in exc_info.value.message


def test_valid_deadline_parses_to_bounded_deadline():
    x = np.ones(4)
    req = parse_request(power_payload(0, x, deadline_ms=5000))
    assert req.deadline.bounded
    assert 0 < req.deadline.remaining() <= 5.0
    req = parse_request(power_payload(0, x))
    assert not req.deadline.bounded


# -- expiry while queued ---------------------------------------------------
def test_already_expired_request_gets_structured_rejection():
    async def main():
        svc = make_service(gather_window_s=0.05)
        x = np.random.default_rng(0).standard_normal(SPEC.rows)
        # Warm the operator so the build cannot absorb the deadline.
        warm = await svc.handle(power_payload(99, x))
        assert warm["ok"]
        # A microscopic budget expires inside the gather window.
        resp = await svc.handle(power_payload(0, x, deadline_ms=1e-6))
        await svc.close()
        return resp

    resp = run(main())
    assert not resp["ok"]
    assert resp["error"]["code"] == "deadline_exceeded"


def test_expiry_mid_gather_batch_proceeds_without_expired_request():
    async def main():
        svc = make_service(gather_window_s=0.08, max_batch=32)
        rng = np.random.default_rng(1)
        xs = [rng.standard_normal(SPEC.rows) for _ in range(4)]
        warm = await svc.handle(power_payload(99, xs[0]))
        assert warm["ok"]
        # Request 0 has a deadline far shorter than the gather window:
        # it expires while queued.  The other three have none.
        coros = [svc.handle(power_payload(0, xs[0], deadline_ms=5))]
        coros += [svc.handle(power_payload(i, xs[i]))
                  for i in range(1, 4)]
        resps = await asyncio.gather(*coros)
        await svc.close()
        return resps, xs

    resps, xs = run(main())
    assert not resps[0]["ok"]
    assert resps[0]["error"]["code"] == "deadline_exceeded"
    survivors = resps[1:]
    assert all(r["ok"] for r in survivors)
    # The batch ran without the expired request...
    widths = {r["meta"]["batch_width"] for r in survivors}
    assert widths == {3}
    # ...and its results are still bitwise-identical to serial.
    a = SPEC.load()
    op = build_fbmpk_operator(a)
    try:
        for i, r in zip(range(1, 4), survivors):
            ref = op.power(xs[i].copy(), 3)
            assert np.array_equal(np.asarray(r["y"]), ref)
    finally:
        op.close()


def test_generous_deadline_is_honoured():
    async def main():
        svc = make_service()
        x = np.random.default_rng(2).standard_normal(SPEC.rows)
        resp = await svc.handle(power_payload(0, x, deadline_ms=60_000))
        await svc.close()
        return resp, x

    resp, x = run(main())
    assert resp["ok"], resp
    a = SPEC.load()
    op = build_fbmpk_operator(a)
    try:
        assert np.array_equal(np.asarray(resp["y"]),
                              op.power(x.copy(), 3))
    finally:
        op.close()


# -- health / ready / stats ------------------------------------------------
def test_health_and_ready_ops():
    async def main():
        svc = make_service()
        x = np.random.default_rng(3).standard_normal(SPEC.rows)
        await svc.handle(power_payload(0, x))
        ready = await svc.handle({"id": "h1", "op": "ready"})
        health = await svc.handle({"id": "h2", "op": "health"})
        await svc.close()
        ready_after = await svc.handle({"id": "h3", "op": "ready"})
        return ready, health, ready_after

    ready, health, ready_after = run(main())
    assert ready["ok"] and ready["ready"] is True
    assert health["ok"]
    h = health["health"]
    assert h["inflight"] == 0
    assert h["draining"] is False
    assert isinstance(h["breakers"], list)
    assert isinstance(h["workers"], dict)
    # tune="off" builds a serial operator: health still reports it.
    for info in h["workers"].values():
        assert "executor" in info
    assert ready_after["ok"] and ready_after["ready"] is False


def test_stats_reports_uptime_tenants_and_rejections():
    async def main():
        svc = make_service(max_rows=300)
        x = np.random.default_rng(4).standard_normal(SPEC.rows)
        ok = await svc.handle(power_payload(0, x, tenant="alice"))
        # One too-large rejection...
        big = power_payload(1, x, tenant="bob")
        big["matrix"]["rows"] = 10_000
        too_large = await svc.handle(big)
        # ...and one deadline rejection.
        late = await svc.handle(
            power_payload(2, x, tenant="bob", deadline_ms=1e-6))
        stats = await svc.handle({"id": "s", "op": "stats"})
        await svc.close()
        return ok, too_large, late, stats

    ok, too_large, late, stats = run(main())
    assert ok["ok"]
    assert too_large["error"]["code"] == "too_large"
    assert late["error"]["code"] == "deadline_exceeded"
    s = stats["stats"]
    assert s["uptime_s"] > 0
    assert s["inflight_by_tenant"] == {}  # nothing in flight at stats
    rej = s["rejected_by_reason"]
    assert rej["too_large"] == 1
    assert rej["deadline_exceeded"] == 1
    assert rej["queue_full"] == 0
