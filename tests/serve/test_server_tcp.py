"""End-to-end TCP tests: real sockets, concurrent NDJSON clients, the
batching proof (fewer sweeps than requests, width > 1, results bitwise
equal to the serial reference), malformed input, client disconnects,
and the remote-shutdown drain."""

import asyncio
import json

import numpy as np
import pytest

from repro import obs
from repro.core import build_fbmpk_operator
from repro.serve import ServeConfig, SolveServer, SolveService
from repro.serve.spec import MatrixSpec

SPEC = MatrixSpec(standin="cant", rows=250, seed=0)


def make_server(**over):
    over.setdefault("tune", "off")
    over.setdefault("gather_window_s", 0.05)
    service = SolveService(ServeConfig(**over))
    return SolveServer(service, port=0)


def run(coro):
    return asyncio.run(coro)


async def send_line(writer, obj):
    writer.write(json.dumps(obj).encode() + b"\n")
    await writer.drain()


async def read_line(reader, timeout=30):
    line = await asyncio.wait_for(reader.readline(), timeout)
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


async def client_power(port, reqs, timeout=30):
    """One connection: send all requests up front, read all responses
    (out-of-order safe, matched by id)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for r in reqs:
            await send_line(writer, r)
        out = {}
        for _ in reqs:
            resp = await read_line(reader, timeout)
            out[resp["id"]] = resp
        return out
    finally:
        writer.close()
        await writer.wait_closed()


def power_req(i, x, k=3, tenant="anon"):
    return {"id": f"r{i}", "op": "power", "k": k, "tenant": tenant,
            "matrix": {"standin": SPEC.standin, "rows": SPEC.rows,
                       "seed": SPEC.seed},
            "x": x.tolist()}


# -- the end-to-end batching proof -----------------------------------------
def test_concurrent_tcp_clients_are_batched_and_bitwise_correct():
    async def main():
        tel = obs.Telemetry()
        tel.activate()
        try:
            server = make_server()
            await server.start()
            n_req, n_conn = 8, 4
            rng = np.random.default_rng(7)
            xs = [rng.standard_normal(SPEC.rows) for _ in range(n_req)]
            reqs = [power_req(i, x) for i, x in enumerate(xs)]
            chunks = [reqs[c::n_conn] for c in range(n_conn)]
            results = await asyncio.gather(
                *[client_power(server.port, chunk) for chunk in chunks])
            await server.aclose()
        finally:
            tel.deactivate()
        responses = {}
        for chunk in results:
            responses.update(chunk)
        assert len(responses) == n_req
        assert all(r["ok"] for r in responses.values())

        # Batching proof 1: the report counts fewer sweeps than
        # requests served, and a batch wider than one request.
        counters = tel.metrics.snapshot()["counters"]
        gauges = tel.metrics.snapshot()["gauges"]
        assert counters["serve.requests.completed"]["value"] == n_req
        assert counters["serve.batches"]["value"] < n_req
        assert gauges["serve.batch.width.max"]["value"] > 1
        widths = [r["meta"]["batch_width"] for r in responses.values()]
        assert max(widths) > 1

        # Batching proof 2: every wire result is bitwise identical to
        # the unbatched serial reference.
        a = SPEC.load()
        op = build_fbmpk_operator(a)
        try:
            for i, x in enumerate(xs):
                ref = op.power(x.copy(), 3)
                got = np.asarray(responses[f"r{i}"]["y"])
                assert np.array_equal(got, ref)
        finally:
            op.close()

    run(main())


# -- protocol robustness over the wire -------------------------------------
def test_malformed_json_line_keeps_connection_usable():
    async def main():
        server = make_server()
        await server.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        writer.write(b"this is not json\n")
        await writer.drain()
        resp = await read_line(reader)
        assert not resp["ok"]
        assert resp["error"]["code"] == "bad_request"
        assert resp["id"] is None
        # The same connection still serves valid requests.
        await send_line(writer, {"id": "p", "op": "ping"})
        resp = await read_line(reader)
        assert resp == {"id": "p", "ok": True, "pong": True}
        writer.close()
        await writer.wait_closed()
        await server.aclose()

    run(main())


def test_bad_request_gets_structured_error_with_id():
    async def main():
        server = make_server()
        await server.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        await send_line(writer, {"id": "bad1", "op": "power",
                                 "matrix": {"standin": "no-such"},
                                 "x": [1.0]})
        resp = await read_line(reader)
        assert resp["id"] == "bad1"
        assert resp["error"]["code"] == "bad_request"
        writer.close()
        await writer.wait_closed()
        await server.aclose()

    run(main())


def test_stats_over_the_wire():
    async def main():
        server = make_server()
        await server.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        await send_line(writer, {"id": "s", "op": "stats"})
        resp = await read_line(reader)
        assert resp["ok"]
        assert resp["stats"]["residents"] == 0
        writer.close()
        await writer.wait_closed()
        await server.aclose()

    run(main())


# -- disconnects -----------------------------------------------------------
def test_client_disconnect_mid_request_does_not_break_others():
    async def main():
        server = make_server(gather_window_s=0.15)
        await server.start()
        rng = np.random.default_rng(8)
        x_stay = rng.standard_normal(SPEC.rows)
        x_gone = rng.standard_normal(SPEC.rows)

        # The deserter sends a request into the gather window and
        # vanishes without reading the response.
        _, w_gone = await asyncio.open_connection(
            "127.0.0.1", server.port)
        await send_line(w_gone, power_req(99, x_gone))
        await asyncio.sleep(0.02)
        w_gone.close()

        responses = await client_power(
            server.port, [power_req(0, x_stay)])
        assert responses["r0"]["ok"]
        a = SPEC.load()
        op = build_fbmpk_operator(a)
        try:
            ref = op.power(x_stay.copy(), 3)
        finally:
            op.close()
        assert np.array_equal(np.asarray(responses["r0"]["y"]), ref)
        await server.aclose()
        # Drained cleanly: no queued work, no in-flight batches, no
        # orphaned tasks left behind by the vanished client.
        assert server.service.batcher.pending == 0
        assert server.service.batcher.inflight_batches == 0
        lingering = [t for t in asyncio.all_tasks()
                     if t is not asyncio.current_task()
                     and not t.done()]
        assert lingering == []

    run(main())


# -- shutdown --------------------------------------------------------------
def test_remote_shutdown_drains_and_stops():
    async def main():
        server = make_server()
        await server.start()
        serve_task = asyncio.ensure_future(server.serve_forever())
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        await send_line(writer, {"id": "q", "op": "shutdown"})
        resp = await read_line(reader)
        assert resp["ok"] and resp["draining"]
        await asyncio.wait_for(serve_task, timeout=30)
        writer.close()
        # New connections are refused once the listener is gone.
        with pytest.raises(OSError):
            await asyncio.open_connection("127.0.0.1", server.port)

    run(main())


def test_shutdown_disabled_is_rejected():
    async def main():
        server = make_server(allow_shutdown=False)
        await server.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        await send_line(writer, {"id": "q", "op": "shutdown"})
        resp = await read_line(reader)
        assert not resp["ok"]
        assert resp["error"]["code"] == "bad_request"
        writer.close()
        await writer.wait_closed()
        await server.aclose()

    run(main())
