"""Operator-registry behaviour: build-once under racing first requests,
LRU eviction bounded by ``max_resident``, and refcounted eviction that
never closes an operator with requests still in flight."""

import asyncio
import threading

import pytest

from repro.core.fbmpk import FBMPKOperator
from repro.serve import (
    OperatorRegistry,
    ResidentOperator,
    ServeConfig,
    ServiceClosedError,
)
from repro.serve.spec import MatrixSpec

SPEC_A = MatrixSpec(standin="cant", rows=300, seed=0)
SPEC_B = MatrixSpec(standin="cant", rows=300, seed=1)
SPEC_C = MatrixSpec(standin="cant", rows=300, seed=2)


def make_registry(**over):
    over.setdefault("tune", "off")
    return OperatorRegistry(ServeConfig(**over).validate())


def run(coro):
    return asyncio.run(coro)


# -- build and hit ---------------------------------------------------------
def test_first_acquire_builds_then_hits():
    async def main():
        reg = make_registry()
        e1 = await reg.acquire(SPEC_A)
        assert isinstance(e1.op, FBMPKOperator)
        assert e1.source == "build"
        assert e1.can_batch          # tune=off builds the numpy backend
        assert reg.residents == 1
        e2 = await reg.acquire(SPEC_A)
        assert e2 is e1
        assert e1.refs == 2
        reg.release(e1)
        reg.release(e2)
        assert e1.refs == 0
        reg.close()
        assert e1.closed

    run(main())


def test_concurrent_first_requests_build_exactly_once():
    async def main():
        reg = make_registry()
        builds = []
        build_lock = threading.Lock()
        orig_build = reg._build

        def counting_build(spec):
            with build_lock:
                builds.append(spec.key())
            return orig_build(spec)

        reg._build = counting_build
        entries = await asyncio.gather(
            *[reg.acquire(SPEC_A) for _ in range(8)])
        assert len(builds) == 1
        assert all(e is entries[0] for e in entries)
        assert entries[0].refs == 8
        for e in entries:
            reg.release(e)
        reg.close()

    run(main())


def test_build_failure_maps_to_protocol_error():
    from repro.serve import ProtocolError

    async def main():
        reg = make_registry(allow_paths=True)
        with pytest.raises(ProtocolError) as exc_info:
            await reg.acquire(MatrixSpec(path="/no/such/file.mtx"))
        assert exc_info.value.code == "bad_request"
        assert reg.residents == 0
        # A failed build leaves no poisoned state: retrying still works
        # (with a spec that exists this time).
        entry = await reg.acquire(SPEC_A)
        reg.release(entry)
        reg.close()

    run(main())


# -- LRU eviction ----------------------------------------------------------
def test_lru_eviction_closes_idle_operator():
    async def main():
        reg = make_registry(max_resident=2)
        ea = await reg.acquire(SPEC_A)
        reg.release(ea)
        eb = await reg.acquire(SPEC_B)
        reg.release(eb)
        # Touch A so B is now the least recently used.
        ea2 = await reg.acquire(SPEC_A)
        reg.release(ea2)
        ec = await reg.acquire(SPEC_C)
        reg.release(ec)
        assert reg.residents == 2
        assert eb.evicted and eb.closed
        assert not ea.evicted
        reg.close()

    run(main())


def test_eviction_defers_close_while_borrowed():
    async def main():
        reg = make_registry(max_resident=1)
        ea = await reg.acquire(SPEC_A)      # borrowed, not released
        eb = await reg.acquire(SPEC_B)      # evicts A
        assert ea.evicted
        assert not ea.closed                # still in flight
        assert ea.op.power is not None      # usable until released
        reg.release(ea)
        assert ea.closed                    # last borrower returned it
        reg.release(eb)
        reg.close()

    run(main())


def test_request_after_eviction_rebuilds():
    async def main():
        reg = make_registry(max_resident=1)
        ea = await reg.acquire(SPEC_A)
        reg.release(ea)
        eb = await reg.acquire(SPEC_B)
        reg.release(eb)
        ea2 = await reg.acquire(SPEC_A)
        assert ea2 is not ea                # fresh instance, old one gone
        reg.release(ea2)
        reg.close()

    run(main())


# -- can_batch gate --------------------------------------------------------
def test_can_batch_requires_numpy_fbmpk():
    class FakeOp:
        backend = "numpy"
        n = 4

    entry = ResidentOperator(SPEC_A, FakeOp(), "00", "build")
    assert not entry.can_batch          # not an FBMPKOperator


def test_scipy_backend_is_not_batchable():
    a = SPEC_A.load()
    op = build = None
    try:
        from repro.core import build_fbmpk_operator

        op = build_fbmpk_operator(a, backend="scipy")
        entry = ResidentOperator(SPEC_A, op, "00", "build")
        assert not entry.can_batch
    finally:
        if op is not None:
            op.close()


# -- lifecycle -------------------------------------------------------------
def test_closed_registry_rejects_acquire():
    async def main():
        reg = make_registry()
        reg.close()
        with pytest.raises(ServiceClosedError):
            await reg.acquire(SPEC_A)

    run(main())


def test_tune_full_uses_plan_cache(tmp_path):
    async def main():
        cfg = ServeConfig(tune="full", tune_repeats=1,
                          tune_max_candidates=1,
                          plan_cache_dir=str(tmp_path)).validate()
        reg = OperatorRegistry(cfg)
        e1 = await reg.acquire(SPEC_A)
        assert e1.source == "search"    # first ever: pays the search
        assert e1.can_batch             # tuned winners stay batchable
        reg.release(e1)
        reg.evict(SPEC_A)
        e2 = await reg.acquire(SPEC_A)
        assert e2.source == "cache"     # warm structure: plan-cache hit
        reg.release(e2)
        reg.close()

    run(main())
