"""Wire-protocol unit tests: request validation, the closed error-code
set, and bit-exact float64 JSON round-trips."""

import json

import numpy as np
import pytest

from repro.serve import (
    ERROR_CODES,
    ControlRequest,
    PowerRequest,
    ProtocolError,
    QueueFullError,
    ServiceClosedError,
    encode_line,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.spec import MatrixSpec, SpecError


def power_payload(**over):
    base = {"id": "r1", "op": "power",
            "matrix": {"standin": "cant", "rows": 500},
            "k": 3, "x": [1.0, 2.0, 3.0]}
    base.update(over)
    return base


# -- happy paths -----------------------------------------------------------
def test_parse_power_request():
    req = parse_request(power_payload(tenant="alice"))
    assert isinstance(req, PowerRequest)
    assert req.id == "r1"
    assert req.spec == MatrixSpec(standin="cant", rows=500, seed=0)
    assert req.k == 3
    assert req.tenant == "alice"
    assert req.x.dtype == np.float64
    assert req.x.tolist() == [1.0, 2.0, 3.0]


def test_parse_defaults():
    req = parse_request({"op": "power",
                         "matrix": {"standin": "cant"},
                         "x": [1.0]})
    assert req.id is None
    assert req.k == 4
    assert req.tenant == "anon"
    assert req.spec.rows == 2000


@pytest.mark.parametrize("op", ["ping", "stats", "shutdown"])
def test_parse_control_requests(op):
    req = parse_request({"id": 7, "op": op})
    assert isinstance(req, ControlRequest)
    assert req.op == op
    assert req.id == 7


# -- rejections ------------------------------------------------------------
@pytest.mark.parametrize("payload", [
    "not an object",
    ["also", "not"],
    {},                                      # no op
    {"op": "frobnicate"},                    # unknown op
    power_payload(id=[1, 2]),                # bad id type
    power_payload(tenant=""),                # empty tenant
    power_payload(tenant=42),                # non-string tenant
    power_payload(k=-1),                     # negative k
    power_payload(k=2.5),                    # non-integer k
    power_payload(k=True),                   # bool is not an int here
    power_payload(x=[]),                     # empty vector
    power_payload(x="nope"),                 # non-list vector
    power_payload(x=[[1.0], [2.0]]),         # nested
    power_payload(x=[1.0, "two"]),           # non-numeric entry
    power_payload(matrix=None),              # missing matrix
    power_payload(matrix={"standin": "no-such-matrix"}),
    power_payload(matrix={"standin": "cant", "rows": 0}),
    power_payload(matrix={"path": "a.mtx"}),  # paths disabled
])
def test_parse_rejects_malformed(payload):
    with pytest.raises(ProtocolError) as exc_info:
        parse_request(payload)
    assert exc_info.value.code == "bad_request"


def test_rows_cap_enforced():
    with pytest.raises(ProtocolError, match="cap"):
        parse_request(power_payload(
            matrix={"standin": "cant", "rows": 10_000}), max_rows=5_000)


def test_paths_allowed_when_enabled():
    req = parse_request(power_payload(matrix={"path": "m.mtx"}),
                        allow_paths=True)
    assert req.spec.path == "m.mtx"
    assert req.spec.key() == "path:m.mtx"


# -- error machinery -------------------------------------------------------
def test_protocol_error_requires_known_code():
    with pytest.raises(ValueError):
        ProtocolError("not_a_code", "boom")


def test_typed_errors_carry_their_codes():
    assert QueueFullError("full").code == "queue_full"
    assert ServiceClosedError().code == "shutting_down"
    assert QueueFullError("full").code in ERROR_CODES


def test_error_response_maps_unknown_code_to_internal():
    resp = error_response("r1", "weird", "msg")
    assert resp["error"]["code"] == "internal"
    assert "weird" in resp["error"]["message"]


def test_response_envelopes():
    ok = ok_response("a", y=[1.0])
    assert ok == {"id": "a", "ok": True, "y": [1.0]}
    err = error_response("a", "queue_full", "busy")
    assert err["ok"] is False
    assert err["error"] == {"code": "queue_full", "message": "busy"}


# -- bit-exact wire round-trip ---------------------------------------------
def test_float64_survives_json_bit_exactly():
    rng = np.random.default_rng(0)
    y = rng.standard_normal(64) * np.float64(1e30)
    y[0] = np.nextafter(1.0, 2.0)      # 1 + 2^-52
    y[1] = 0.1 + 0.2                   # classic non-representable sum
    line = encode_line(ok_response("r", y=y.tolist()))
    back = np.asarray(json.loads(line)["y"])
    assert back.dtype == np.float64
    assert np.array_equal(back, y)
    assert back.tobytes() == y.tobytes()


# -- spec ------------------------------------------------------------------
def test_spec_key_distinguishes_specs():
    keys = {MatrixSpec(standin="cant", rows=100, seed=0).key(),
            MatrixSpec(standin="cant", rows=100, seed=1).key(),
            MatrixSpec(standin="cant", rows=200, seed=0).key(),
            MatrixSpec(path="x.mtx").key()}
    assert len(keys) == 4


def test_spec_load_generates_standin():
    a = MatrixSpec(standin="cant", rows=300, seed=0).load()
    assert a.n_rows == 300


def test_spec_rejects_bad_seed():
    with pytest.raises(SpecError):
        MatrixSpec.from_payload({"standin": "cant", "seed": "zero"})
