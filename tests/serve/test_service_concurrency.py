"""Service-level concurrency: many async clients, mid-flight
cancellation, structured rejection under load, LRU eviction with
requests still in flight — no deadlock, no orphaned tasks, and every
completed answer bitwise-identical to the unbatched serial reference."""

import asyncio

import numpy as np
import pytest

from repro import obs
from repro.core import build_fbmpk_operator
from repro.serve import ServeConfig, SolveService
from repro.serve.spec import MatrixSpec

SPEC = MatrixSpec(standin="cant", rows=250, seed=0)


def make_service(**over):
    over.setdefault("tune", "off")
    over.setdefault("gather_window_s", 0.02)
    return SolveService(ServeConfig(**over))


def reference_results(spec, xs, k):
    a = spec.load()
    op = build_fbmpk_operator(a)
    try:
        return [op.power(x.copy(), k) for x in xs]
    finally:
        op.close()


def power_payload(i, x, spec=SPEC, k=3, tenant="t0"):
    return {"id": f"r{i}", "op": "power", "tenant": tenant, "k": k,
            "matrix": {"standin": spec.standin, "rows": spec.rows,
                       "seed": spec.seed},
            "x": x.tolist()}


def run(coro):
    return asyncio.run(coro)


# -- many clients, batched, bitwise-correct --------------------------------
def test_many_concurrent_clients_batched_and_bitwise_correct():
    async def main():
        tel = obs.Telemetry()
        tel.activate()
        try:
            svc = make_service()
            n_req = 12
            rng = np.random.default_rng(5)
            xs = [rng.standard_normal(SPEC.rows) for _ in range(n_req)]
            resps = await asyncio.gather(*[
                svc.handle(power_payload(i, x,
                                         tenant=f"tenant{i % 3}"))
                for i, x in enumerate(xs)])
            await svc.close()
        finally:
            tel.deactivate()
        assert all(r["ok"] for r in resps)
        refs = reference_results(SPEC, xs, 3)
        for r, ref in zip(resps, refs):
            assert np.array_equal(np.asarray(r["y"]), ref)
        counters = tel.metrics.snapshot()["counters"]
        # The batching proof: fewer sweeps than requests served, and
        # at least one batch wider than a single request.
        assert counters["serve.requests.completed"]["value"] == n_req
        assert counters["serve.batches"]["value"] < n_req
        assert counters["serve.operator.builds"]["value"] == 1
        widths = [r["meta"]["batch_width"] for r in resps]
        assert max(widths) > 1
        # Per-tenant accounting saw all three tenants.
        for t in range(3):
            assert counters[f"serve.tenant.tenant{t}.requests"][
                "value"] == n_req / 3

    run(main())


def test_concurrent_first_requests_single_build_no_deadlock():
    async def main():
        tel = obs.Telemetry()
        tel.activate()
        try:
            svc = make_service()
            rng = np.random.default_rng(1)
            xs = [rng.standard_normal(SPEC.rows) for _ in range(6)]
            results = await asyncio.wait_for(
                asyncio.gather(*[svc.power(SPEC, x, 2) for x in xs]),
                timeout=60)
            await svc.close()
        finally:
            tel.deactivate()
        counters = tel.metrics.snapshot()["counters"]
        assert counters["serve.operator.builds"]["value"] == 1
        refs = reference_results(SPEC, xs, 2)
        for (y, _), ref in zip(results, refs):
            assert np.array_equal(y, ref)

    run(main())


# -- cancellation ----------------------------------------------------------
def test_mid_flight_cancellation_leaves_no_orphans():
    async def main():
        svc = make_service(gather_window_s=0.1)
        rng = np.random.default_rng(2)
        xs = [rng.standard_normal(SPEC.rows) for _ in range(4)]
        keep = [asyncio.ensure_future(svc.power(SPEC, x, 3))
                for x in xs[:2]]
        drop = [asyncio.ensure_future(svc.power(SPEC, x, 3))
                for x in xs[2:]]
        await asyncio.sleep(0.02)       # all queued inside the window
        for t in drop:
            t.cancel()
        done = await asyncio.gather(*keep)
        for t in drop:
            with pytest.raises(asyncio.CancelledError):
                await t
        refs = reference_results(SPEC, xs[:2], 3)
        for (y, _), ref in zip(done, refs):
            assert np.array_equal(y, ref)
        # Survivors' batch did not include the cancelled slots.
        assert all(meta["batch_width"] == 2 for _, meta in done)
        await svc.close()
        # Nothing orphaned: queues empty, no in-flight batch tasks.
        assert svc.batcher.pending == 0
        assert svc.batcher.inflight_batches == 0
        lingering = [t for t in asyncio.all_tasks()
                     if t is not asyncio.current_task()
                     and not t.done()]
        assert lingering == []

    run(main())


# -- rejection under load --------------------------------------------------
def test_queue_full_is_structured_rejection():
    async def main():
        tel = obs.Telemetry()
        tel.activate()
        try:
            svc = make_service(max_queue=2, gather_window_s=0.2)
            rng = np.random.default_rng(3)
            xs = [rng.standard_normal(SPEC.rows) for _ in range(5)]
            resps = await asyncio.gather(*[
                svc.handle(power_payload(i, x))
                for i, x in enumerate(xs)])
            await svc.close()
        finally:
            tel.deactivate()
        ok = [r for r in resps if r["ok"]]
        rejected = [r for r in resps if not r["ok"]]
        assert len(ok) == 2
        assert len(rejected) == 3
        assert all(r["error"]["code"] == "queue_full" for r in rejected)
        counters = tel.metrics.snapshot()["counters"]
        assert counters["serve.requests.rejected"]["value"] == 3

    run(main())


# -- eviction with requests in flight --------------------------------------
def test_lru_eviction_mid_flight_completes_and_then_closes():
    async def main():
        spec_b = MatrixSpec(standin="cant", rows=250, seed=9)
        svc = make_service(max_resident=1, gather_window_s=0.15)
        rng = np.random.default_rng(4)
        xa = rng.standard_normal(SPEC.rows)
        xb = rng.standard_normal(spec_b.rows)
        # A's request sits in its gather window while B's first request
        # builds a new operator and evicts A's.
        ta = asyncio.ensure_future(svc.power(SPEC, xa, 3))
        # Bounded wait for A's operator to register: a fixed sleep
        # races the build on a loaded host, and a StopIteration from
        # next() inside a coroutine surfaces as an opaque RuntimeError.
        for _ in range(1000):
            if svc.registry._entries:
                break
            await asyncio.sleep(0.005)
        entry_a = next(iter(svc.registry._entries.values()))
        (ya, _), (yb, _) = await asyncio.gather(
            ta, svc.power(spec_b, xb, 3))
        assert entry_a.evicted
        ref_a = reference_results(SPEC, [xa], 3)[0]
        ref_b = reference_results(spec_b, [xb], 3)[0]
        assert np.array_equal(ya, ref_a)    # finished on the evictee
        assert np.array_equal(yb, ref_b)
        assert entry_a.closed               # closed only after release
        assert svc.registry.resident_keys() == [spec_b.key()]
        await svc.close()

    run(main())


# -- shutdown semantics ----------------------------------------------------
def test_requests_after_close_get_shutting_down():
    async def main():
        svc = make_service()
        x = np.ones(SPEC.rows)
        await svc.close()
        resp = await svc.handle(power_payload(0, x))
        assert not resp["ok"]
        assert resp["error"]["code"] == "shutting_down"

    run(main())


def test_shutdown_request_gated_by_config():
    async def main():
        svc = make_service(allow_shutdown=False)
        resp = await svc.handle({"id": "q", "op": "shutdown"})
        assert not resp["ok"]
        assert not svc.shutdown_requested.is_set()
        svc2 = make_service(allow_shutdown=True)
        resp = await svc2.handle({"id": "q", "op": "shutdown"})
        assert resp["ok"] and resp["draining"]
        assert svc2.shutdown_requested.is_set()
        await svc.close()
        await svc2.close()

    run(main())


def test_stats_reports_live_state():
    async def main():
        svc = make_service()
        x = np.ones(SPEC.rows)
        await svc.power(SPEC, x, 2)
        resp = await svc.handle({"id": "s", "op": "stats"})
        assert resp["ok"]
        st = resp["stats"]
        assert st["residents"] == 1
        assert st["resident_keys"] == [SPEC.key()]
        assert st["pending"] == 0
        assert st["draining"] is False
        await svc.close()

    run(main())
