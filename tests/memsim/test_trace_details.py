"""Deeper trace-simulation tests: layouts, index widths, ordering."""

import numpy as np
import pytest

from repro.core.partition import split_ldu
from repro.matrices import poisson2d
from repro.memsim.cache import CacheConfig
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.trace import (
    ArrayLayout,
    trace_fbmpk_pair,
    trace_mpk_standard,
    trace_spmv,
)


def hierarchy(l2=2048):
    return MemoryHierarchy([
        CacheConfig(size_bytes=512, line_bytes=64, associativity=2,
                    name="L1"),
        CacheConfig(size_bytes=l2, line_bytes=64, associativity=4,
                    name="L2"),
    ])


@pytest.fixture()
def matrix():
    return poisson2d(7, seed=1)  # 49 rows


class TestArrayLayout:
    def test_vector_bytes(self):
        assert ArrayLayout().vector_bytes(10) == 80
        assert ArrayLayout(value_bytes=4).vector_bytes(10) == 40

    def test_int32_indices_reduce_traffic(self, matrix):
        t64 = trace_spmv(matrix, hierarchy(),
                         layout=ArrayLayout(index_bytes=8))
        t32 = trace_spmv(matrix, hierarchy(),
                         layout=ArrayLayout(index_bytes=4))
        assert t32.total_bytes < t64.total_bytes


class TestTraceProperties:
    def test_spmv_traffic_deterministic(self, matrix):
        t1 = trace_spmv(matrix, hierarchy())
        t2 = trace_spmv(matrix, hierarchy())
        assert t1.read_bytes == t2.read_bytes
        assert t1.write_bytes == t2.write_bytes

    def test_mpk_k0_is_free(self, matrix):
        t = trace_mpk_standard(matrix, 0, hierarchy())
        assert t.total_bytes == 0

    def test_writes_recorded(self, matrix):
        t = trace_spmv(matrix, hierarchy())
        assert t.write_bytes > 0  # y writes leak through the tiny cache

    def test_fbmpk_pair_without_head_cheaper(self, matrix):
        part = split_ldu(matrix)
        with_head = trace_fbmpk_pair(part, hierarchy(),
                                     include_head=True).total_bytes
        without = trace_fbmpk_pair(part, hierarchy(),
                                   include_head=False).total_bytes
        assert without < with_head

    def test_bigger_cache_never_more_traffic(self, matrix):
        small = trace_mpk_standard(matrix, 3, hierarchy(l2=1024))
        large = trace_mpk_standard(matrix, 3, hierarchy(l2=64 * 1024))
        assert large.total_bytes <= small.total_bytes

    def test_ratio_approaches_theory_with_k(self, matrix):
        """Longer power sequences amortise the head: the simulated
        FBMPK/std ratio at larger k is at most the k=2 ratio."""
        part = split_ldu(matrix)

        def fb_total(pairs):
            # head + `pairs` fwd/bwd iterations, fresh hierarchy.
            h = hierarchy(l2=1024)
            total = trace_fbmpk_pair(part, h, include_head=True).total_bytes
            for _ in range(pairs - 1):
                h2 = hierarchy(l2=1024)
                total += trace_fbmpk_pair(part, h2,
                                          include_head=False).total_bytes
            return total

        def std_total(k):
            h = hierarchy(l2=1024)
            return trace_mpk_standard(matrix, k, h).total_bytes

        r2 = fb_total(1) / std_total(2)
        r6 = fb_total(3) / std_total(6)
        assert r6 <= r2 + 1e-9
        assert r6 < 1.0
