"""Unit tests for the memory hierarchy and kernel trace generators."""

import numpy as np
import pytest

from repro.core.partition import split_ldu
from repro.matrices import poisson2d
from repro.memsim.cache import CacheConfig
from repro.memsim.hierarchy import MemoryHierarchy
from repro.memsim.trace import (
    ArrayLayout,
    trace_fbmpk_pair,
    trace_mpk_standard,
    trace_spmv,
)


def tiny_hierarchy(l1=512, l2=2048):
    return MemoryHierarchy([
        CacheConfig(size_bytes=l1, line_bytes=64, associativity=2, name="L1"),
        CacheConfig(size_bytes=l2, line_bytes=64, associativity=4, name="L2"),
    ])


class TestHierarchy:
    def test_miss_propagates_and_counts_dram(self):
        h = tiny_hierarchy()
        level = h.access(0)
        assert level == 2  # DRAM
        assert h.dram.read_bytes == 64
        assert h.access(0) == 0  # L1 hit now

    def test_write_traffic(self):
        h = tiny_hierarchy()
        h.access(0, write=True)
        assert h.dram.write_bytes == 64
        assert h.dram.total_bytes == 128

    def test_access_run_counts_lines(self):
        h = tiny_hierarchy()
        h.access_run(10, 100)  # spans lines 0 and 64
        assert h.dram.read_bytes == 128
        h.access_run(0, 0)
        assert h.dram.read_bytes == 128

    def test_access_many(self):
        h = tiny_hierarchy()
        h.access_many([0, 64, 0])
        assert h.dram.read_bytes == 128

    def test_reset_stats_keeps_contents(self):
        h = tiny_hierarchy()
        h.access(0)
        h.reset_stats()
        assert h.dram.total_bytes == 0
        assert h.access(0) == 0  # still cached

    def test_stats_table(self):
        h = tiny_hierarchy()
        h.access(0)
        rows = h.stats_table()
        assert [r[0] for r in rows] == ["L1", "L2"]

    def test_mismatched_lines_rejected(self):
        with pytest.raises(ValueError, match="line size"):
            MemoryHierarchy([
                CacheConfig(size_bytes=512, line_bytes=64, associativity=2),
                CacheConfig(size_bytes=1024, line_bytes=32, associativity=2),
            ])
        with pytest.raises(ValueError):
            MemoryHierarchy([])


class TestTraces:
    @pytest.fixture()
    def tiny_matrix(self):
        return poisson2d(6, seed=2)  # 36 rows

    def test_spmv_trace_at_least_matrix_stream(self, tiny_matrix):
        h = tiny_hierarchy()
        traffic = trace_spmv(tiny_matrix, h)
        layout = ArrayLayout()
        matrix_bytes = tiny_matrix.nnz * (layout.value_bytes
                                          + layout.index_bytes)
        # Cold caches must fetch at least the matrix stream (line
        # granularity makes it >=).
        assert traffic.read_bytes >= matrix_bytes

    def test_huge_cache_gives_compulsory_only(self, tiny_matrix):
        h = MemoryHierarchy([CacheConfig(size_bytes=2 ** 20,
                                         associativity=16, line_bytes=64)])
        t1 = trace_mpk_standard(tiny_matrix, 1, h).total_bytes
        h2 = MemoryHierarchy([CacheConfig(size_bytes=2 ** 20,
                                          associativity=16, line_bytes=64)])
        t4 = trace_mpk_standard(tiny_matrix, 4, h2).total_bytes
        # With everything cached, extra powers add almost nothing.
        assert t4 < 1.2 * t1

    def test_standard_mpk_scales_with_k_when_thrashing(self, tiny_matrix):
        h = tiny_hierarchy(l1=512, l2=1024)
        t1 = trace_mpk_standard(tiny_matrix, 1, h).total_bytes
        h2 = tiny_hierarchy(l1=512, l2=1024)
        t3 = trace_mpk_standard(tiny_matrix, 3, h2).total_bytes
        assert t3 > 2.5 * t1

    def test_fbmpk_pair_beats_two_standard_passes(self, tiny_matrix):
        """One FBMPK forward+backward (2 powers) moves less DRAM data
        than two standard passes when the matrix exceeds the cache."""
        part = split_ldu(tiny_matrix)
        h = tiny_hierarchy(l1=512, l2=1024)
        fb = trace_fbmpk_pair(part, h, btb=True,
                              include_head=False).total_bytes
        h2 = tiny_hierarchy(l1=512, l2=1024)
        std2 = trace_mpk_standard(tiny_matrix, 2, h2).total_bytes
        assert fb < std2

    def test_btb_helps_loop_stages(self):
        """BtB reduces loop-stage traffic when the iterate pair exceeds
        the cache: each line fetched for a gather serves both vectors.

        (The head/tail passes, which touch only *one* vector, actually
        prefer split storage — interleaving wastes half of each fetched
        line there — so the comparison excludes the head, as the paper's
        Section III-C motivation does.)"""
        a = poisson2d(12, seed=5)  # 144 rows; xy pair = 2.3 KB > L2
        part = split_ldu(a)
        h_btb = tiny_hierarchy(l1=512, l2=1024)
        t_btb = trace_fbmpk_pair(part, h_btb, btb=True,
                                 include_head=False).total_bytes
        h_split = tiny_hierarchy(l1=512, l2=1024)
        t_split = trace_fbmpk_pair(part, h_split, btb=False,
                                   include_head=False).total_bytes
        assert t_btb < t_split
