"""Unit tests for the analytic traffic model."""

import numpy as np
import pytest

from repro.core.plan import theoretical_ratio
from repro.memsim.traffic import (
    MatrixTrafficStats,
    TrafficParams,
    fbmpk_traffic,
    levels_blocked_crossover,
    levels_blocked_traffic,
    miss_fraction,
    mpk_standard_traffic,
    spmv_traffic,
    traffic_ratio,
)

BIG = MatrixTrafficStats(n=1_000_000, nnz=60_000_000, bandwidth=10_000)
SPARSE = MatrixTrafficStats(n=1_000_000, nnz=5_000_000, bandwidth=1_000)
MB32 = 32 * 2 ** 20


class TestMissFraction:
    def test_fits_means_zero(self):
        assert miss_fraction(1000, 10_000) == 0.0

    def test_saturates_towards_one(self):
        assert 0.9 < miss_fraction(1e9, 1e6) < 1.0

    def test_monotone_in_working_set(self):
        cache = 1e6
        vals = [miss_fraction(ws, cache) for ws in (1e5, 1e6, 1e7, 1e9)]
        assert vals == sorted(vals)

    def test_utilization_discount(self):
        assert miss_fraction(900_000, 1_000_000, utilization=0.8) > 0.0
        assert miss_fraction(900_000, 1_000_000, utilization=1.0) == 0.0


class TestSpmv:
    def test_matrix_stream_exact(self):
        params = TrafficParams()
        t = spmv_traffic(BIG, MB32, params)
        expected = BIG.nnz * 12 + (BIG.n + 1) * 4
        assert t.matrix_bytes == pytest.approx(expected)

    def test_vector_reads_at_least_compulsory(self):
        t = spmv_traffic(BIG, MB32)
        assert t.vector_read_bytes >= BIG.n * 8

    def test_from_csr(self, small_sym):
        stats = MatrixTrafficStats.from_csr(small_sym)
        assert stats.n == small_sym.n_rows
        assert stats.nnz == small_sym.nnz
        assert stats.bandwidth >= 1


class TestPipelines:
    @pytest.mark.parametrize("k", [1, 3, 5, 9])
    def test_standard_matrix_scales_linearly(self, k):
        one = mpk_standard_traffic(BIG, 1, MB32).matrix_bytes
        assert mpk_standard_traffic(BIG, k, MB32).matrix_bytes \
            == pytest.approx(k * one)

    @pytest.mark.parametrize("k", [2, 3, 5, 6, 9])
    def test_ratio_between_theory_and_one(self, k):
        r = traffic_ratio(BIG, k, MB32)
        assert theoretical_ratio(k) - 0.02 <= r <= 1.05

    def test_ratio_improves_with_k(self):
        rs = [traffic_ratio(BIG, k, MB32) for k in (3, 5, 7, 9)]
        assert rs == sorted(rs, reverse=True)

    def test_sparse_matrix_has_worse_ratio(self):
        # Vector overhead weighs more when nnz/row is small (G3_circuit
        # vs ML_Geer in Fig 9).
        assert traffic_ratio(SPARSE, 9, MB32) > traffic_ratio(BIG, 9, MB32)

    def test_btb_helps_when_window_exceeds_cache(self):
        tight_cache = 64 * 1024
        wide = MatrixTrafficStats(n=1_000_000, nnz=60_000_000,
                                  bandwidth=100_000)
        with_btb = fbmpk_traffic(wide, 5, tight_cache, btb=True).total_bytes
        without = fbmpk_traffic(wide, 5, tight_cache, btb=False).total_bytes
        assert with_btb < without

    def test_btb_irrelevant_when_cached(self):
        huge_cache = 1e12
        with_btb = fbmpk_traffic(BIG, 5, huge_cache, btb=True).total_bytes
        without = fbmpk_traffic(BIG, 5, huge_cache, btb=False).total_bytes
        assert with_btb == pytest.approx(without)

    def test_k0_is_free(self):
        assert fbmpk_traffic(BIG, 0, MB32).total_bytes == 0.0

    def test_residency_cache_controls_leak(self):
        # Same window cache, but a large residency cache suppresses the
        # per-pass vector leak.
        small_res = mpk_standard_traffic(BIG, 5, MB32,
                                         residency_cache_bytes=1e6)
        big_res = mpk_standard_traffic(BIG, 5, MB32,
                                       residency_cache_bytes=1e12)
        assert big_res.vector_read_bytes < small_res.vector_read_bytes

    def test_write_allocate_doubles_writes(self):
        wa = TrafficParams(write_allocate=True)
        nwa = TrafficParams(write_allocate=False)
        t_wa = mpk_standard_traffic(BIG, 3, 1e3, params=wa)
        t_nwa = mpk_standard_traffic(BIG, 3, 1e3, params=nwa)
        assert t_wa.vector_write_bytes > t_nwa.vector_write_bytes

    def test_breakdown_iadd(self):
        a = mpk_standard_traffic(BIG, 1, MB32)
        total_before = a.total_bytes
        a += mpk_standard_traffic(BIG, 1, MB32)
        assert a.total_bytes == pytest.approx(2 * total_before)


class TestLevelsBlocked:
    def test_single_stream_when_window_fits(self):
        # Window fits: the matrix streams from DRAM exactly once no
        # matter how many powers reuse it — the residency win.
        t1 = levels_blocked_traffic(BIG, 1, 1e12, block_rows=4096)
        t8 = levels_blocked_traffic(BIG, 8, 1e12, block_rows=4096)
        assert t8.matrix_bytes < 1.5 * t1.matrix_bytes

    def test_reload_when_window_exceeds_cache(self):
        # Window blown: every extra power pays a reload, approaching
        # standard MPK's k matrix streams.
        tiny_cache = 64 * 1024
        t1 = levels_blocked_traffic(BIG, 1, tiny_cache, block_rows=4096)
        t8 = levels_blocked_traffic(BIG, 8, tiny_cache, block_rows=4096)
        assert t8.matrix_bytes > 4 * t1.matrix_bytes

    def test_window_grows_with_k_and_block_rows(self):
        cache = MB32
        by_k = [levels_blocked_traffic(BIG, k, cache,
                                       block_rows=4096).matrix_bytes
                for k in (2, 8, 32)]
        assert by_k == sorted(by_k)
        small = levels_blocked_traffic(BIG, 8, cache, block_rows=256)
        large = levels_blocked_traffic(BIG, 8, cache, block_rows=65536)
        assert small.matrix_bytes <= large.matrix_bytes

    def test_k0_is_free(self):
        assert levels_blocked_traffic(BIG, 0, MB32).total_bytes == 0.0

    def test_beats_fbmpk_in_residency_regime(self):
        # One matrix stream vs FBMPK's (k+1)/2: with a fitting window
        # the blocked schedule must win for k >= 2.
        lb = levels_blocked_traffic(BIG, 8, 1e12, block_rows=4096)
        fb = fbmpk_traffic(BIG, 8, 1e12)
        assert lb.total_bytes < fb.total_bytes

    def test_crossover_prediction(self):
        # A generous cache predicts an early crossover; a cache too
        # small for even one block's window predicts none up to max_k.
        assert levels_blocked_crossover(BIG, 1e12, block_rows=4096) is not None
        tight = levels_blocked_crossover(BIG, 16 * 1024, block_rows=65536,
                                         max_k=8)
        if tight is not None:  # if it exists it must be within range
            assert 1 <= tight <= 8

    def test_crossover_is_first_winning_k(self):
        cache = 1e12
        k = levels_blocked_crossover(BIG, cache, block_rows=4096)
        lb = levels_blocked_traffic(BIG, k, cache,
                                    block_rows=4096).total_bytes
        fb = fbmpk_traffic(BIG, k, cache).total_bytes
        assert lb < fb
        if k > 1:
            lb_prev = levels_blocked_traffic(BIG, k - 1, cache,
                                             block_rows=4096).total_bytes
            fb_prev = fbmpk_traffic(BIG, k - 1, cache).total_bytes
            assert lb_prev >= fb_prev

    def test_traffic_ratio_method_dispatch(self):
        r_fb = traffic_ratio(BIG, 8, MB32)
        r_lb = traffic_ratio(BIG, 8, MB32, method="levels-blocked",
                             block_rows=4096)
        assert r_fb > 0 and r_lb > 0 and r_fb != r_lb
        with pytest.raises(ValueError):
            traffic_ratio(BIG, 8, MB32, method="nope")
