"""Unit tests for the set-associative LRU cache simulator."""

import pytest

from repro.memsim.cache import CacheConfig, CacheLevel


def make_level(size=1024, line=64, assoc=2, name="t"):
    return CacheLevel(CacheConfig(size_bytes=size, line_bytes=line,
                                  associativity=assoc, name=name))


class TestConfig:
    def test_geometry(self):
        cfg = CacheConfig(size_bytes=1024, line_bytes=64, associativity=2)
        assert cfg.n_sets == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, line_bytes=64, associativity=2)
        with pytest.raises(ValueError, match="multiple"):
            CacheConfig(size_bytes=1000, line_bytes=64, associativity=2)


class TestLRU:
    def test_cold_miss_then_hit(self):
        c = make_level()
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)       # same line
        assert not c.access(64)   # next line
        assert c.stats.hits == 2 and c.stats.misses == 2

    def test_lru_eviction_order(self):
        # 2-way, 8 sets: lines mapping to set 0 are multiples of 8*64=512.
        c = make_level()
        a, b, d = 0, 512, 1024
        c.access(a)
        c.access(b)
        c.access(a)      # a most recent; LRU is b
        c.access(d)      # evicts b
        assert c.access(a)
        assert not c.access(b)   # b was evicted
        assert c.stats.evictions >= 1

    def test_dirty_writeback_counted(self):
        c = make_level()
        c.access(0, write=True)
        c.access(512, write=False)
        c.access(1024)   # evicts line 0 (dirty) -> writeback
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = make_level()
        c.access(0)
        c.access(512)
        c.access(1024)
        assert c.stats.writebacks == 0

    def test_contains_is_non_mutating(self):
        c = make_level()
        c.access(0)
        hits_before = c.stats.hits
        assert c.contains(0)
        assert not c.contains(4096)
        assert c.stats.hits == hits_before

    def test_flush(self):
        c = make_level()
        c.access(0, write=True)
        c.access(64)
        dirty = c.flush()
        assert dirty == 1
        assert not c.contains(0)
        assert not c.access(0)  # miss again after flush

    def test_working_set_within_capacity_all_hits_after_warmup(self):
        c = make_level(size=2048, line=64, assoc=4)
        lines = list(range(0, 2048, 64))
        for addr in lines:
            c.access(addr)
        c.stats.__init__()
        for _ in range(3):
            for addr in lines:
                assert c.access(addr)
        assert c.stats.miss_rate == 0.0

    def test_thrashing_set(self):
        # 2-way set with 3 conflicting lines accessed round-robin: always
        # misses (classic LRU worst case).
        c = make_level()
        conflicting = [0, 512, 1024]
        for _ in range(5):
            for addr in conflicting:
                c.access(addr)
        assert c.stats.hits == 0

    def test_miss_rate_property(self):
        c = make_level()
        assert c.stats.miss_rate == 0.0
        c.access(0)
        c.access(0)
        assert c.stats.miss_rate == pytest.approx(0.5)
