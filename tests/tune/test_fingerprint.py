"""Structure fingerprints: same structure hits, perturbed structure
misses, value changes don't matter, platform and kind partition keys."""

import numpy as np

from repro.matrices import banded_random, poisson2d
from repro.tune import StructureFingerprint, fingerprint_matrix
from repro.sparse.csr import CSRMatrix


def test_same_structure_same_key(grid):
    assert fingerprint_matrix(grid).key() == fingerprint_matrix(grid).key()


def test_identical_structure_different_object(grid):
    twin = CSRMatrix(grid.indptr.copy(), grid.indices.copy(),
                     grid.data.copy(), grid.shape)
    assert fingerprint_matrix(twin).key() == fingerprint_matrix(grid).key()


def test_value_change_same_key(grid):
    scaled = CSRMatrix(grid.indptr, grid.indices, grid.data * 3.5,
                       grid.shape)
    # The SSpMV-sequence setting: coefficients evolve, plan survives.
    assert fingerprint_matrix(scaled).key() == fingerprint_matrix(grid).key()


def test_perturbed_indices_different_key(grid):
    indices = grid.indices.copy()
    # Swap two column indices inside one row: same shape, same nnz,
    # different pattern.
    row = np.argmax(np.diff(grid.indptr) >= 2)
    lo = grid.indptr[row]
    indices[lo], indices[lo + 1] = indices[lo + 1], indices[lo]
    other = CSRMatrix(grid.indptr, indices, grid.data, grid.shape,
                      check=False)
    assert fingerprint_matrix(other).key() != fingerprint_matrix(grid).key()


def test_different_matrices_different_keys():
    a = poisson2d(8, seed=1)
    b = banded_random(64, 3, 7, symmetric=True, seed=2)
    assert fingerprint_matrix(a).key() != fingerprint_matrix(b).key()


def test_kind_partitions_key_space(grid):
    assert fingerprint_matrix(grid, kind="power").key() \
        != fingerprint_matrix(grid, kind="spmv").key()


def test_platform_partitions_key_space(grid):
    here = fingerprint_matrix(grid)
    there = fingerprint_matrix(grid, platform="elsewhere-x86_64")
    assert here.platform != "elsewhere-x86_64"
    assert here.key() != there.key()


def test_matches_roundtrip_and_rejects(grid):
    fp = fingerprint_matrix(grid)
    assert fp.matches(fp.to_dict())
    tampered = dict(fp.to_dict(), nnz=fp.nnz + 1)
    assert not fp.matches(tampered)
    assert not fp.matches({})
    assert not fp.matches(None)


def test_key_is_filesystem_safe(grid):
    key = fingerprint_matrix(grid).key()
    assert len(key) == 32
    assert all(c in "0123456789abcdef" for c in key)
