"""The tune circuit breaker and per-search budget: repeated search
failures or budget blowouts open the breaker, after which cold
structures get the default plan immediately (``source="breaker"``)
instead of re-paying a search that keeps losing; the plan-cache file
lock degrades to an unlocked section rather than blocking past the
budget."""

import time

import numpy as np
import pytest

from repro import obs
from repro.matrices import banded_random
from repro.robust.resilience import CircuitBreaker
from repro.tune import (
    ExecutionPlan,
    PlanCache,
    SEARCH_BREAKER,
    autotune_power,
    autotune_spmv,
    default_power_plan,
    fingerprint_matrix,
)

FAST_CANDIDATES = [
    default_power_plan(),
    ExecutionPlan("power", {"variant": "fused", "strategy": "levels",
                            "block_size": 1, "backend": "numpy",
                            "executor": "serial"}),
]


@pytest.fixture(scope="module")
def mat():
    return banded_random(150, 7, 12, symmetric=True, seed=9)


def _tune(a, **kw):
    kw.setdefault("cache", False)
    kw.setdefault("repeats", 1)
    kw.setdefault("warmup", 0)
    kw.setdefault("candidates", FAST_CANDIDATES)
    return autotune_power(a, k=3, **kw)


def test_module_breaker_exists_and_is_shared():
    assert isinstance(SEARCH_BREAKER, CircuitBreaker)
    assert SEARCH_BREAKER.name == "tune"


def test_open_breaker_short_circuits_to_default_plan(mat):
    brk = CircuitBreaker("tune", failure_threshold=1)
    brk.record_failure()
    tel = obs.Telemetry()
    with tel:
        t0 = time.monotonic()
        op, result = _tune(mat, breaker=brk)
        elapsed = time.monotonic() - t0
    try:
        assert result.source == "breaker"
        assert result.plan.params == default_power_plan().params
        assert elapsed < 1.0
        # The degraded path still computes correctly.
        x = np.random.default_rng(0).standard_normal(mat.n_rows)
        assert np.isfinite(op.power(x, 3)).all()
    finally:
        op.close()
    counters = tel.metrics.snapshot()["counters"]
    assert counters["tune.breaker.short_circuit"]["value"] == 1


def test_successful_search_closes_the_failure_run(mat):
    brk = CircuitBreaker("tune", failure_threshold=3)
    brk.record_failure()
    brk.record_failure()
    op, result = _tune(mat, breaker=brk)
    op.close()
    assert result.source == "search"
    assert brk.snapshot()["consecutive_failures"] == 0


def test_budget_blowout_counts_as_breaker_failure(mat):
    brk = CircuitBreaker("tune", failure_threshold=2)
    tel = obs.Telemetry()
    with tel:
        # A zero-ish budget: candidate 0 (the default) is always
        # measured, everything after is skipped.
        op, result = _tune(mat, breaker=brk, search_budget_s=1e-9)
    op.close()
    assert result.source == "search"
    assert result.budget_exhausted
    assert result.plan.params == default_power_plan().params
    assert brk.snapshot()["consecutive_failures"] == 1
    counters = tel.metrics.snapshot()["counters"]
    assert counters["tune.budget_exhausted"]["value"] == 1
    # A second blowout trips the threshold.
    op, result = _tune(mat, breaker=brk, search_budget_s=1e-9)
    op.close()
    assert brk.state == "open"
    # Third call: served from the breaker, no search at all.
    op, result = _tune(mat, breaker=brk)
    op.close()
    assert result.source == "breaker"


def test_raising_search_records_failure(mat):
    brk = CircuitBreaker("tune", failure_threshold=1)
    # A candidate set whose every plan fails makes the search raise.
    with pytest.raises(RuntimeError):
        autotune_power(mat, k=3, cache=False, candidates=[
            ExecutionPlan("power", {"variant": "nonsense"})],
            breaker=brk, repeats=1, warmup=0)
    assert brk.state == "open"


def test_breaker_false_opts_out(mat):
    SEARCH_BREAKER.reset()
    op, result = _tune(mat, breaker=False)
    op.close()
    assert result.source == "search"


def test_spmv_breaker_short_circuit(mat):
    brk = CircuitBreaker("tune", failure_threshold=1)
    brk.record_failure()
    fn, result = autotune_spmv(mat, cache=False, breaker=brk)
    assert result.source == "breaker"
    x = np.random.default_rng(1).standard_normal(mat.n_cols)
    np.testing.assert_array_equal(fn(x), mat.matvec(x))


def test_cache_hit_never_consults_breaker(mat, tmp_path):
    cache = PlanCache(tmp_path / "plans")
    op, warm = _tune(mat, cache=cache, breaker=False)
    op.close()
    assert warm.source == "search"
    brk = CircuitBreaker("tune", failure_threshold=1)
    brk.record_failure()  # open
    op, result = _tune(mat, cache=cache, breaker=brk)
    op.close()
    # The hit is the fast path the breaker protects: it wins.
    assert result.source == "cache"


def test_plan_cache_lock_times_out_instead_of_blocking(mat, tmp_path):
    import fcntl
    import threading

    cache = PlanCache(tmp_path / "plans")
    fp = fingerprint_matrix(mat, kind="power")
    cache.root.mkdir(parents=True, exist_ok=True)
    holder = open(cache.root / f"{fp.key()}.lock", "a+")
    fcntl.flock(holder.fileno(), fcntl.LOCK_EX)
    tel = obs.Telemetry()
    try:
        entered = threading.Event()

        def contender():
            with cache.lock(fp, timeout_s=0.2):
                entered.set()

        with tel:
            t = threading.Thread(target=contender)
            t0 = time.monotonic()
            t.start()
            assert entered.wait(5.0), \
                "lock(timeout_s=...) blocked behind the holder"
            t.join(5.0)
            elapsed = time.monotonic() - t0
        assert elapsed < 3.0
        counters = tel.metrics.snapshot()["counters"]
        assert counters["plan_cache.lock_timeout"]["value"] == 1
    finally:
        fcntl.flock(holder.fileno(), fcntl.LOCK_UN)
        holder.close()
