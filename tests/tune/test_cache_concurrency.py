"""Concurrent plan-cache access: two simultaneous first-tuners of the
same structure must not corrupt the cache or both pay the search.

The contract under test (``PlanCache.lock`` + the double-checked
locking in ``autotune_power``/``autotune_spmv``): starting from an
empty cache, any number of concurrent tuners produce exactly ONE
``source == "search"`` — the race's losers block on the entry's file
lock and find the winner's entry on their in-lock re-check — and the
cache ends up with one valid, loadable entry.
"""

import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.matrices.generators import banded_random
from repro.tune import (
    PlanCache,
    autotune_power,
    autotune_spmv,
    default_power_plan,
    fingerprint_matrix,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture
def mat():
    return banded_random(150, bandwidth=5, nnz_per_row=8,
                         symmetric=True, seed=7)


# -- the lock itself -------------------------------------------------------
def test_lock_is_mutually_exclusive_across_threads(tmp_path, mat):
    cache = PlanCache(tmp_path)
    fp = fingerprint_matrix(mat, kind="power")
    in_section = []
    overlaps = []
    barrier = threading.Barrier(2)

    def worker():
        barrier.wait()
        with cache.lock(fp):
            in_section.append(threading.get_ident())
            if len(in_section) > 1:
                overlaps.append(tuple(in_section))
            time.sleep(0.05)
            in_section.remove(threading.get_ident())

    threads = [threading.Thread(target=worker) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert overlaps == []


def test_lock_file_cleared_by_clear(tmp_path, mat):
    cache = PlanCache(tmp_path)
    fp = fingerprint_matrix(mat, kind="power")
    with cache.lock(fp):
        pass
    assert list(tmp_path.glob("*.lock"))
    cache.clear()
    assert not list(tmp_path.glob("*.lock"))


# -- concurrent autotune_power (threads) -----------------------------------
def test_concurrent_power_tuners_search_exactly_once(tmp_path, mat):
    cache = PlanCache(tmp_path)
    candidates = [default_power_plan()]
    barrier = threading.Barrier(2)
    results = {}

    def worker(name):
        barrier.wait()
        op, res = autotune_power(mat, k=3, cache=cache, repeats=1,
                                 warmup=0, candidates=candidates)
        op.close()
        results[name] = res

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    sources = sorted(r.source for r in results.values())
    assert sources == ["cache", "search"]
    # Both got the same winning plan, and the entry on disk is intact.
    plans = [r.plan for r in results.values()]
    assert plans[0] == plans[1]
    fp = fingerprint_matrix(mat, kind="power")
    entry = cache.load(fp)
    assert entry is not None
    assert entry.plan == plans[0]


def test_concurrent_spmv_tuners_search_exactly_once(tmp_path, mat):
    cache = PlanCache(tmp_path)
    barrier = threading.Barrier(2)
    results = {}

    def worker(name):
        barrier.wait()
        _, res = autotune_spmv(mat, cache=cache, repeats=1, warmup=0)
        results[name] = res

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sorted(r.source for r in results.values()) == \
        ["cache", "search"]
    assert cache.load(fingerprint_matrix(mat, kind="spmv")) is not None


# -- concurrent autotune_power (separate processes) ------------------------
WORKER_SCRIPT = """
import sys
from repro.matrices.generators import banded_random
from repro.tune import autotune_power, default_power_plan

a = banded_random(150, bandwidth=5, nnz_per_row=8, symmetric=True, seed=7)
op, res = autotune_power(a, k=3, cache=sys.argv[1], repeats=1, warmup=0,
                         candidates=[default_power_plan()])
op.close()
print(res.source)
"""


def test_concurrent_processes_search_exactly_once(tmp_path):
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", WORKER_SCRIPT, str(tmp_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env={**__import__("os").environ,
                 "PYTHONPATH": str(REPO_SRC)})
        for _ in range(2)
    ]
    sources = []
    for p in procs:
        out, err = p.communicate(timeout=120)
        assert p.returncode == 0, err
        sources.append(out.strip())
    # Exactly one process paid the search; the other loaded its entry
    # (strictly: at most one searches — with lock-free timing luck the
    # second may even hit the fast path — and at least one must).
    assert sorted(sources) == ["cache", "search"]
    # The shared cache directory holds one valid entry, not a torn one.
    entries = list(tmp_path.glob("*.json"))
    assert len(entries) == 1
