"""The autotuner loop: winner selection, the bit-identity gate, cache
amortisation (second call skips the search), trimmed-mean timing."""

import numpy as np
import pytest

from repro import obs
from repro.core import build_fbmpk_operator
from repro.tune import (
    ExecutionPlan,
    PlanCache,
    autotune_power,
    autotune_spmv,
    default_power_plan,
    power_candidates,
    trimmed_mean,
    tuned_matvec,
)

# A small candidate set keeping search-path tests fast: the default,
# a serial alternative, and a threaded plan (the executor dimension).
FAST_POWER_CANDIDATES = [
    default_power_plan(),
    ExecutionPlan("power", {"variant": "fused", "strategy": "levels",
                            "block_size": 1, "backend": "numpy",
                            "executor": "serial"}),
    ExecutionPlan("power", {"variant": "fused", "strategy": "abmc",
                            "block_size": 1, "backend": "numpy",
                            "executor": "threads", "n_threads": 2}),
]


def _tune(a, k=4, **kw):
    # racing=False: these tests assert on complete per-candidate
    # measurements (scripted or real); the racing fast path has its own
    # tests below.
    kw.setdefault("cache", False)
    kw.setdefault("repeats", 1)
    kw.setdefault("warmup", 0)
    kw.setdefault("candidates", FAST_POWER_CANDIDATES)
    kw.setdefault("racing", False)
    return autotune_power(a, k=k, **kw)


# -- trimmed mean ----------------------------------------------------------
def test_trimmed_mean_drops_extremes():
    assert trimmed_mean([1.0, 100.0, 2.0, 3.0, 0.0]) == 2.0


def test_trimmed_mean_small_samples():
    assert trimmed_mean([4.0]) == 4.0
    assert trimmed_mean([2.0, 4.0]) == 3.0
    with pytest.raises(ValueError):
        trimmed_mean([])


# -- search protocol -------------------------------------------------------
def test_search_measures_default_and_winner_not_slower(grid):
    op, res = _tune(grid, repeats=3)
    try:
        assert res.source == "search"
        assert res.trials[0].plan == default_power_plan()
        assert res.trials[0].accepted
        assert res.best_time_s <= res.default_time_s
    finally:
        op.close()


def test_winner_is_bit_identical_to_default(grid, rng):
    op, res = _tune(grid)
    ref = build_fbmpk_operator(grid)
    try:
        x = rng.standard_normal(grid.n_rows)
        assert np.array_equal(op.power(x, 4), ref.power(x, 4))
    finally:
        op.close()
        ref.close()


def test_non_identical_candidates_are_rejected(grid):
    unfused = ExecutionPlan("power", {"variant": "unfused",
                                      "strategy": "none", "block_size": 1,
                                      "backend": "numpy",
                                      "executor": "serial"})
    op, res = _tune(grid, candidates=[default_power_plan(), unfused])
    try:
        trial = next(t for t in res.trials if t.plan == unfused)
        # The unfused variant's summation order differs; the gate must
        # catch that empirically and keep it from winning.
        assert trial.identical is False
        assert not trial.accepted
        assert res.plan == default_power_plan()
    finally:
        op.close()


@pytest.mark.parametrize("params, expected", [
    ({"variant": "fused", "strategy": "abmc", "block_size": 1,
      "backend": "numpy", "executor": "serial"}, True),
    # The executor dimension reschedules, never re-rounds.
    ({"variant": "fused", "strategy": "abmc", "block_size": 1,
      "backend": "numpy", "executor": "threads", "n_threads": 2}, True),
    # A different grouping permutes the matrix and with it every row's
    # accumulation order.
    ({"variant": "fused", "strategy": "levels", "block_size": 1,
      "backend": "numpy", "executor": "serial"}, False),
    ({"variant": "fused", "strategy": "abmc", "block_size": 256,
      "backend": "numpy", "executor": "serial"}, False),
    ({"variant": "fused", "strategy": "abmc", "block_size": 1,
      "backend": "scipy", "executor": "serial"}, False),
    ({"variant": "unfused", "strategy": "none", "block_size": 1,
      "backend": "numpy", "executor": "serial"}, False),
])
def test_power_plan_design_identity_classification(params, expected):
    from repro.tune import plan_is_bit_identical_by_design
    assert plan_is_bit_identical_by_design(
        ExecutionPlan("power", params)) is expected


@pytest.mark.parametrize("params, expected", [
    ({"kernel": "vectorised"}, True),
    ({"kernel": "blocked", "block_rows": 4096}, True),
    ({"kernel": "scipy"}, False),
    ({"kernel": "sell", "c": 8, "sigma": 64}, False),
    ({"kernel": "bsr", "r": 2}, False),
])
def test_spmv_plan_design_identity_classification(params, expected):
    from repro.tune import plan_is_bit_identical_by_design
    assert plan_is_bit_identical_by_design(
        ExecutionPlan("spmv", params)) is expected


def test_probe_coincidence_cannot_win():
    """A plan that happens to match the default on every probe but does
    not share its arithmetic by construction (e.g. the unfused variant
    on a tiny matrix — the rounding coincidence the property suite
    found) must still be ineligible."""
    from repro.tune import Trial

    unfused = ExecutionPlan("power", {"variant": "unfused",
                                      "strategy": "none", "block_size": 1,
                                      "backend": "numpy",
                                      "executor": "serial"})
    trial = Trial(plan=unfused, time_s=0.0, identical=True,
                  by_design=False)
    assert not trial.accepted


PROCESSES_PLAN = ExecutionPlan("power", {
    "variant": "fused", "strategy": "abmc", "block_size": 1,
    "backend": "numpy", "executor": "processes", "n_threads": 2})


def _scripted_times(monkeypatch, times):
    """Replace the timing probe with scripted wall-clocks (one per
    candidate, in search order) while still running the real operator
    once so bit-identity checks stay genuine."""
    from repro.tune import autotuner

    queue = list(times)

    def fake(fn, repeats, warmup):
        return queue.pop(0), fn()

    monkeypatch.setattr(autotuner, "_time_candidate", fake)


def test_slow_processes_plan_never_selected(grid, monkeypatch):
    """Efficiency guard: a processes plan measured no faster than the
    serial default (speedup_vs_serial < 1) must be disqualified even
    though it is bit-identical and ran without error."""
    _scripted_times(monkeypatch, [1.0, 2.0])
    with obs.Telemetry() as tel:
        op, res = _tune(grid, candidates=[default_power_plan(),
                                          PROCESSES_PLAN])
    counters = {name: c["value"] for name, c
                in tel.metrics.snapshot()["counters"].items()}
    try:
        trial = next(t for t in res.trials if t.plan == PROCESSES_PLAN)
        assert trial.identical and trial.by_design and trial.error is None
        assert trial.efficient is False
        assert not trial.accepted
        assert res.plan == default_power_plan()
        assert counters["tune.rejected_inefficient"] == 1
    finally:
        op.close()


def test_fast_processes_plan_still_eligible(grid, monkeypatch):
    """The guard only fires on a measured slowdown: a processes plan
    that beats the serial default stays eligible and wins."""
    _scripted_times(monkeypatch, [1.0, 0.5])
    op, res = _tune(grid, candidates=[default_power_plan(),
                                      PROCESSES_PLAN])
    try:
        trial = next(t for t in res.trials if t.plan == PROCESSES_PLAN)
        assert trial.efficient is None
        assert trial.accepted
        assert res.plan == PROCESSES_PLAN
    finally:
        op.close()


def test_inefficient_trial_not_accepted():
    from repro.tune import Trial

    trial = Trial(plan=PROCESSES_PLAN, time_s=2.0, identical=True,
                  by_design=True, efficient=False)
    assert not trial.accepted


def test_broken_candidate_recorded_not_fatal(grid):
    broken = ExecutionPlan("power", {"variant": "fused",
                                     "strategy": "no-such-strategy",
                                     "block_size": 1, "backend": "numpy",
                                     "executor": "serial"})
    op, res = _tune(grid, candidates=[default_power_plan(), broken])
    try:
        trial = next(t for t in res.trials if t.plan == broken)
        assert trial.error is not None
        assert res.plan == default_power_plan()
    finally:
        op.close()


def test_full_candidate_space_runs(grid):
    """The real (untrimmed) enumeration must survive end to end."""
    op, res = autotune_power(grid, k=3, cache=False, repeats=1, warmup=0)
    try:
        assert len(res.trials) == len(power_candidates())
        assert res.trials[0].accepted
    finally:
        op.close()


def test_max_candidates_keeps_default(grid):
    op, res = _tune(grid, candidates=None, max_candidates=2)
    try:
        assert len(res.trials) == 2
        assert res.trials[0].plan == default_power_plan()
    finally:
        op.close()


# -- cache amortisation ----------------------------------------------------
def test_second_call_hits_cache(tmp_path, grid, rng):
    cache = PlanCache(tmp_path)
    op1, res1 = _tune(grid, cache=cache)
    assert res1.source == "search"
    x = rng.standard_normal(grid.n_rows)
    y1 = op1.power(x, 4)
    op1.close()

    with obs.Telemetry() as tel:
        op2, res2 = _tune(grid, cache=cache)
    counters = {name: c["value"] for name, c
                in tel.metrics.snapshot()["counters"].items()}
    try:
        assert res2.source == "cache"
        assert res2.plan == res1.plan
        assert res2.trials == []  # no candidate was re-measured
        assert counters["plan_cache.hit"] == 1
        assert "tune.candidates" not in counters
        assert np.array_equal(op2.power(x, 4), y1)
    finally:
        op2.close()


def test_force_reruns_search(tmp_path, grid):
    cache = PlanCache(tmp_path)
    op1, _ = _tune(grid, cache=cache)
    op1.close()
    op2, res2 = _tune(grid, cache=cache, force=True)
    try:
        assert res2.source == "search"
    finally:
        op2.close()


def test_cache_dir_as_path_argument(tmp_path, grid):
    op1, res1 = _tune(grid, cache=str(tmp_path))
    op1.close()
    assert res1.cache_path is not None
    op2, res2 = _tune(grid, cache=str(tmp_path))
    op2.close()
    assert res2.source == "cache"


def test_unusable_cached_plan_falls_back_to_search(tmp_path, grid):
    """A stored plan that no longer instantiates must trigger a fresh
    search, not an error."""
    import json

    cache = PlanCache(tmp_path)
    op1, _ = _tune(grid, cache=cache)
    op1.close()
    from repro.tune import fingerprint_matrix
    fp = fingerprint_matrix(grid)
    payload = json.loads(cache.entry_path(fp).read_text())
    payload["plan"]["params"]["variant"] = "retired-variant"
    cache.entry_path(fp).write_text(json.dumps(payload))
    op2, res2 = _tune(grid, cache=cache)
    try:
        assert res2.source == "search"
    finally:
        op2.close()


# -- spmv ------------------------------------------------------------------
def test_autotune_spmv_identical_and_cached(tmp_path, grid, rng):
    cache = PlanCache(tmp_path)
    fn, res = autotune_spmv(grid, cache=cache, repeats=1, warmup=0)
    assert res.source == "search"
    x = rng.standard_normal(grid.n_cols)
    assert np.array_equal(fn(x), grid.matvec(x))
    fn2, res2 = autotune_spmv(grid, cache=cache)
    assert res2.source == "cache"
    assert np.array_equal(fn2(x), grid.matvec(x))


def test_tuned_matvec_bit_identical(grid, rng):
    fn = tuned_matvec(grid, cache=False, repeats=1, warmup=0)
    for _ in range(3):
        x = rng.standard_normal(grid.n_cols)
        assert np.array_equal(fn(x), grid.matvec(x))


def test_tune_telemetry_counters(grid):
    with obs.Telemetry() as tel:
        op, res = _tune(grid)
        op.close()
    snap = tel.metrics.snapshot()
    counters = {name: c["value"] for name, c in snap["counters"].items()}
    assert counters["tune.candidates"] == len(res.trials)
    assert "tune.best_time_s" in snap["gauges"]
    span_names = {r.name for r in tel.recorder.records()}
    assert "tune.autotune" in span_names
    assert "tune.candidate" in span_names


# -- racing ----------------------------------------------------------------
def test_racing_drops_hopeless_candidate(grid):
    """A processes plan on a 64-row grid pays per-call dispatch far
    beyond the racing margin over serial: with racing on, its first
    timed repeat disqualifies it — no further repeats, no identity
    probes — and the default still wins."""
    with obs.Telemetry() as tel:
        op, res = _tune(grid, racing=True, repeats=3,
                        candidates=[default_power_plan(), PROCESSES_PLAN])
    counters = {name: c["value"] for name, c
                in tel.metrics.snapshot()["counters"].items()}
    try:
        trial = next(t for t in res.trials if t.plan == PROCESSES_PLAN)
        assert trial.raced is True
        assert trial.time_s is not None  # the pessimistic single repeat
        assert trial.identical is None   # probes were skipped
        assert not trial.accepted
        assert res.plan == default_power_plan()
        assert counters["tune.candidates_raced"] == 1
    finally:
        op.close()


def test_racing_never_races_the_default(grid):
    """Candidate 0 defines the reference outputs, so it is always fully
    measured regardless of racing."""
    op, res = _tune(grid, racing=True, repeats=2)
    try:
        assert res.trials[0].raced is None
        assert res.trials[0].identical is True
    finally:
        op.close()


def test_racing_keeps_competitive_candidates(grid):
    """A serial candidate within the margin survives racing and is
    fully measured and identity-gated like before."""
    op, res = _tune(grid, racing=True, repeats=2,
                    candidates=FAST_POWER_CANDIDATES[:2])
    try:
        survivor = res.trials[1]
        if survivor.raced is not True:  # survived the first repeat
            assert survivor.raced is False
            assert survivor.identical is not None
    finally:
        op.close()


def test_search_s_recorded(grid):
    for racing in (False, True):
        op, res = _tune(grid, racing=racing)
        try:
            assert res.source == "search"
            assert res.search_s is not None and res.search_s > 0.0
        finally:
            op.close()


def test_search_s_in_cache_meta(tmp_path, grid):
    import json

    cache = PlanCache(tmp_path)
    op, res = _tune(grid, cache=cache, racing=True)
    op.close()
    payload = json.loads(res.cache_path.read_text())
    assert payload["meta"]["search_s"] > 0.0
    assert payload["meta"]["raced"] >= 0
