"""Plan serialisation and the persistent cache: roundtrips, the
corrupt/forward-version tolerance contract, counters, env override."""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.core import build_fbmpk_operator
from repro.tune import (
    CACHE_DIR_ENV_VAR,
    ExecutionPlan,
    PlanCache,
    PlanFormatError,
    default_cache_dir,
    default_power_plan,
    fingerprint_matrix,
    instantiate_power,
)


# -- ExecutionPlan envelope ------------------------------------------------
def test_plan_roundtrip():
    plan = ExecutionPlan("power", {"variant": "fused", "strategy": "abmc",
                                   "block_size": 1, "backend": "numpy",
                                   "executor": "serial"})
    assert ExecutionPlan.from_dict(plan.to_dict()) == plan


@pytest.mark.parametrize("payload", [
    None,
    "not a mapping",
    {},
    {"schema_version": 999, "kind": "power", "params": {}},
    {"schema_version": 1, "kind": "warp-drive", "params": {}},
    {"schema_version": 1, "kind": "power", "params": "no"},
    {"schema_version": 1, "params": {}},
])
def test_plan_from_dict_rejects(payload):
    with pytest.raises(PlanFormatError):
        ExecutionPlan.from_dict(payload)


def test_unknown_kind_rejected_at_construction():
    with pytest.raises(PlanFormatError):
        ExecutionPlan("warp-drive", {})


# -- cache roundtrip -------------------------------------------------------
def test_store_then_load(tmp_path, grid):
    cache = PlanCache(tmp_path)
    fp = fingerprint_matrix(grid)
    plan = default_power_plan()
    path = cache.store(fp, plan, meta={"time_s": 0.5})
    assert path.is_file()
    entry = cache.load(fp)
    assert entry is not None
    assert entry.plan == plan
    assert entry.meta["time_s"] == 0.5


def test_miss_on_empty_cache(tmp_path, grid):
    assert PlanCache(tmp_path).load(fingerprint_matrix(grid)) is None


def test_different_structure_misses(tmp_path, grid, small_sym):
    cache = PlanCache(tmp_path)
    cache.store(fingerprint_matrix(grid), default_power_plan())
    assert cache.load(fingerprint_matrix(small_sym)) is None


def test_invalidate(tmp_path, grid):
    cache = PlanCache(tmp_path)
    fp = fingerprint_matrix(grid)
    cache.store(fp, default_power_plan())
    cache.invalidate(fp)
    assert cache.load(fp) is None
    cache.invalidate(fp)  # idempotent


# -- robustness: corrupt and foreign entries never crash -------------------
@pytest.mark.parametrize("garbage", [
    "",                                  # truncated to nothing
    "{ not json",                        # invalid JSON
    "[1, 2, 3]",                         # JSON but not an object
    json.dumps({"schema_version": 999}),  # future envelope version
    json.dumps({"schema_version": 1, "fingerprint": {},
                "plan": {"schema_version": 1, "kind": "power",
                         "params": {}}}),  # fingerprint mismatch
    json.dumps({"schema_version": 1}),   # missing everything else
])
def test_corrupt_entry_is_a_miss(tmp_path, grid, garbage):
    cache = PlanCache(tmp_path)
    fp = fingerprint_matrix(grid)
    cache.entry_path(fp).parent.mkdir(parents=True, exist_ok=True)
    cache.entry_path(fp).write_text(garbage)
    assert cache.load(fp) is None


def test_forward_plan_version_is_a_miss(tmp_path, grid):
    """Envelope is current but the inner plan is from the future."""
    cache = PlanCache(tmp_path)
    fp = fingerprint_matrix(grid)
    cache.store(fp, default_power_plan())
    payload = json.loads(cache.entry_path(fp).read_text())
    payload["plan"]["schema_version"] = 999
    cache.entry_path(fp).write_text(json.dumps(payload))
    assert cache.load(fp) is None


def test_corrupt_entry_can_be_overwritten(tmp_path, grid):
    cache = PlanCache(tmp_path)
    fp = fingerprint_matrix(grid)
    cache.entry_path(fp).parent.mkdir(parents=True, exist_ok=True)
    cache.entry_path(fp).write_text("garbage")
    cache.store(fp, default_power_plan())
    assert cache.load(fp) is not None


# -- telemetry counters ----------------------------------------------------
def test_hit_miss_counters(tmp_path, grid):
    cache = PlanCache(tmp_path)
    fp = fingerprint_matrix(grid)
    with obs.Telemetry() as tel:
        assert cache.load(fp) is None
        cache.store(fp, default_power_plan())
        assert cache.load(fp) is not None
        cache.entry_path(fp).write_text("garbage")
        assert cache.load(fp) is None
        counters = {name: c["value"] for name, c
                    in tel.metrics.snapshot()["counters"].items()}
    assert counters["plan_cache.miss"] == 2
    assert counters["plan_cache.hit"] == 1
    assert counters["plan_cache.store"] == 1
    assert counters["plan_cache.corrupt"] == 1


def test_counters_noop_without_session(tmp_path, grid):
    cache = PlanCache(tmp_path)
    cache.load(fingerprint_matrix(grid))  # must not raise


# -- directory resolution --------------------------------------------------
def test_env_var_overrides_default_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "custom"))
    assert default_cache_dir() == tmp_path / "custom"
    assert PlanCache().root == tmp_path / "custom"


def test_xdg_fallback(tmp_path, monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro" / "plans"


# -- operator artefact -----------------------------------------------------
def test_operator_artefact_roundtrip(tmp_path, grid):
    cache = PlanCache(tmp_path)
    fp = fingerprint_matrix(grid)
    op = build_fbmpk_operator(grid)
    cache.store(fp, default_power_plan(), operator=op)
    entry = cache.load(fp)
    assert entry.operator_path is not None
    loaded = instantiate_power(entry.plan, grid,
                               operator_path=entry.operator_path)
    x = np.linspace(-1.0, 1.0, grid.n_rows)
    assert np.array_equal(loaded.power(x, 5), op.power(x, 5))
    op.close()
    loaded.close()


def test_corrupt_operator_artefact_falls_back(tmp_path, grid):
    cache = PlanCache(tmp_path)
    fp = fingerprint_matrix(grid)
    op = build_fbmpk_operator(grid)
    cache.store(fp, default_power_plan(), operator=op)
    cache.operator_path(fp).write_bytes(b"not an npz")
    entry = cache.load(fp)
    rebuilt = instantiate_power(entry.plan, grid,
                                operator_path=entry.operator_path)
    x = np.linspace(-1.0, 1.0, grid.n_rows)
    assert np.array_equal(rebuilt.power(x, 3), op.power(x, 3))
    op.close()
    rebuilt.close()
