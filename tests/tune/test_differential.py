"""Differential matrix: tuned execution must be bit-identical to the
default path for every (matrix class x k x executor) combination.

This is the acceptance property of the whole tuner: whatever plan wins,
``tuned`` and ``default`` produce the same bits — because the autotuner
refuses to accept anything else.  The executor dimension is driven by
pinning the candidate list to a single plan per executor, so both the
serial and the threaded tuned paths are exercised even when neither
would win a free search on this host.
"""

import numpy as np
import pytest

from repro.core import build_fbmpk_operator
from repro.solvers import bicgstab, conjugate_gradient, gmres
from repro.solvers.chebyshev import chebyshev_solve
from repro.tune import ExecutionPlan, autotune_power, default_power_plan

POWERS = [1, 2, 3, 8]

CANDIDATES = {
    "serial": [default_power_plan()],
    "threads": [
        default_power_plan(),  # reference for the identity gate
        ExecutionPlan("power", {"variant": "fused", "strategy": "abmc",
                                "block_size": 1, "backend": "numpy",
                                "executor": "threads", "n_threads": 2}),
    ],
}


@pytest.mark.parametrize("executor", ["serial", "threads"])
@pytest.mark.parametrize("k", POWERS)
def test_tuned_power_bit_identical(any_matrix, k, executor, rng):
    a = any_matrix
    op, res = autotune_power(a, k=k, cache=False, repeats=1, warmup=0,
                             candidates=CANDIDATES[executor],
                             racing=False)
    ref = build_fbmpk_operator(a)
    try:
        for _ in range(2):  # fresh inputs, not the tuning probe
            x = rng.standard_normal(a.n_rows)
            assert np.array_equal(op.power(x, k), ref.power(x, k))
    finally:
        op.close()
        ref.close()


def test_threaded_winner_forced(grid, rng):
    """When only a threaded plan competes against the default and both
    are identical, whichever wins still matches the default bits."""
    op, res = autotune_power(grid, k=8, cache=False, repeats=1, warmup=0,
                             candidates=CANDIDATES["threads"],
                             racing=False)
    ref = build_fbmpk_operator(grid)
    try:
        threaded = next(t for t in res.trials
                        if t.plan.params.get("executor") == "threads")
        assert threaded.identical is True  # bit-identical by design
        x = rng.standard_normal(grid.n_rows)
        assert np.array_equal(op.power(x, 8), ref.power(x, 8))
    finally:
        op.close()
        ref.close()


# -- solver-level differential --------------------------------------------
def test_cg_tuned_identical_iterates(small_sym, rng):
    b = rng.standard_normal(small_sym.n_rows)
    plain = conjugate_gradient(small_sym, b, tol=1e-10)
    tuned = conjugate_gradient(small_sym, b, tol=1e-10, tuned=True,
                               plan_cache_dir=False)
    assert tuned.iterations == plain.iterations
    assert np.array_equal(tuned.x, plain.x)
    assert tuned.residual_norms == plain.residual_norms


def test_gmres_tuned_identical_iterates(small_unsym, rng):
    b = rng.standard_normal(small_unsym.n_rows)
    plain = gmres(small_unsym, b, tol=1e-10)
    tuned = gmres(small_unsym, b, tol=1e-10, tuned=True,
                  plan_cache_dir=False)
    assert tuned.iterations == plain.iterations
    assert np.array_equal(tuned.x, plain.x)


def test_bicgstab_tuned_identical_iterates(small_unsym, rng):
    b = rng.standard_normal(small_unsym.n_rows)
    plain = bicgstab(small_unsym, b, tol=1e-10)
    tuned = bicgstab(small_unsym, b, tol=1e-10, tuned=True,
                     plan_cache_dir=False)
    assert tuned.iterations == plain.iterations
    assert np.array_equal(tuned.x, plain.x)


def test_chebyshev_tuned_identical(small_sym, rng):
    from repro.solvers.power import gershgorin_bounds

    b = rng.standard_normal(small_sym.n_rows)
    lo, hi = gershgorin_bounds(small_sym)
    lo = max(lo, 1e-3)
    x_p, it_p, conv_p = chebyshev_solve(small_sym, b, (lo, hi),
                                        max_iter=50)
    x_t, it_t, conv_t = chebyshev_solve(small_sym, b, (lo, hi),
                                        max_iter=50, tuned=True,
                                        plan_cache_dir=False)
    assert (it_t, conv_t) == (it_p, conv_p)
    assert np.array_equal(x_t, x_p)
