"""Unit tests for the ABMC ordering (Section III-D)."""

import numpy as np
import pytest

from repro.reorder.abmc import abmc_ordering
from repro.reorder.graph import adjacency_from_matrix
from repro.reorder.permute import is_permutation, permute_symmetric


@pytest.mark.parametrize("block_size", [1, 4, 16, 1000])
@pytest.mark.parametrize("strategy", ["consecutive", "bfs"])
def test_ordering_invariants(any_matrix, block_size, strategy):
    o = abmc_ordering(any_matrix, block_size=block_size, strategy=strategy)
    n = any_matrix.n_rows
    assert is_permutation(o.perm)
    # Colour ranges tile [0, n) in order.
    assert o.color_ranges[0][0] == 0
    assert o.color_ranges[-1][1] == n
    for (a0, a1), (b0, b1) in zip(o.color_ranges, o.color_ranges[1:]):
        assert a1 == b0
    # Block ranges tile [0, n).
    assert o.block_ranges[0][0] == 0
    assert o.block_ranges[-1][1] == n
    assert sum(e - s for s, e in o.block_ranges) == n
    # blocks_of_color covers everything exactly once.
    covered = sorted(
        rng for c in range(o.n_colors) for rng in o.blocks_of_color(c)
    )
    assert covered == sorted(o.block_ranges)


def test_same_color_blocks_are_independent(small_sym):
    """The parallel-safety property: no matrix entry connects two
    different blocks of the same colour."""
    o = abmc_ordering(small_sym, block_size=8)
    reordered = permute_symmetric(small_sym, o.perm)
    n = small_sym.n_rows
    # Map each new row to (colour, block id in new numbering).
    block_id = np.empty(n, dtype=np.int64)
    for b, (s, e) in enumerate(o.block_ranges):
        block_id[s:e] = b
    g = adjacency_from_matrix(reordered)
    src = np.repeat(np.arange(n), g.degree())
    dst = g.indices
    color_of_row = np.empty(n, dtype=np.int64)
    for c, (s, e) in enumerate(o.color_ranges):
        color_of_row[s:e] = c
    same_color_cross_block = (
        (color_of_row[src] == color_of_row[dst])
        & (block_id[src] != block_id[dst])
    )
    assert not same_color_cross_block.any()


def test_block_size_one_is_point_coloring(grid):
    o = abmc_ordering(grid, block_size=1)
    assert o.n_blocks == grid.n_rows
    assert all(e - s == 1 for s, e in o.block_ranges)
    # The 5-point grid is bipartite: exactly two colours.
    assert o.n_colors == 2


def test_max_parallel_blocks(small_sym):
    o = abmc_ordering(small_sym, block_size=4)
    counts = np.bincount(o.color_of_block)
    assert o.max_parallel_blocks() == counts.max()


def test_single_block_degenerate(grid):
    o = abmc_ordering(grid, block_size=grid.n_rows)
    assert o.n_blocks == 1
    assert o.n_colors == 1
    np.testing.assert_array_equal(o.perm, np.arange(grid.n_rows))


def test_validation(grid):
    with pytest.raises(ValueError, match="square"):
        from repro.sparse import CSRMatrix

        abmc_ordering(CSRMatrix.zeros((2, 3)))
    with pytest.raises(ValueError, match="positive"):
        abmc_ordering(grid, block_size=0)
    with pytest.raises(ValueError, match="strategy"):
        abmc_ordering(grid, strategy="nope")


def test_bfs_blocking_groups_neighbours(small_sym):
    """BFS blocking must produce blocks that are connected more often
    than random chunking of a shuffled matrix would be."""
    from repro.reorder.permute import invert_permutation

    rng = np.random.default_rng(0)
    shuffle = rng.permutation(small_sym.n_rows)
    shuffled = permute_symmetric(small_sym, shuffle)
    o = abmc_ordering(shuffled, block_size=8, strategy="bfs")
    assert is_permutation(o.perm)
    assert o.n_colors >= 2
