"""Additional reordering behaviours: RCM quality, ABMC options,
permutation algebra laws."""

import numpy as np
import pytest

from repro.matrices import banded_random, poisson2d
from repro.reorder import (
    abmc_ordering,
    adjacency_from_matrix,
    compose_permutations,
    greedy_coloring,
    invert_permutation,
    is_permutation,
    matrix_bandwidth,
    permute_symmetric,
    pseudo_peripheral_vertex,
    rcm_ordering,
)


class TestRCMQuality:
    def test_grid_bandwidth_near_optimal(self):
        """RCM on an nx x nx grid should land near the optimal bandwidth
        nx (level sets of the grid)."""
        nx = 12
        a = poisson2d(nx, seed=0)
        perm = rcm_ordering(a)
        bw = matrix_bandwidth(permute_symmetric(a, perm))
        assert bw <= 2 * nx

    def test_idempotent_quality(self):
        """Applying RCM twice should not make bandwidth worse."""
        a = banded_random(150, 5, 40, symmetric=True, seed=4)
        p1 = rcm_ordering(a)
        b = permute_symmetric(a, p1)
        p2 = rcm_ordering(b)
        c = permute_symmetric(b, p2)
        assert matrix_bandwidth(c) <= matrix_bandwidth(b) * 1.3

    def test_pseudo_peripheral_on_path(self):
        # Path graph: the peripheral vertex from the middle is an end.
        n = 15
        dense = np.eye(n) * 2
        for i in range(n - 1):
            dense[i, i + 1] = dense[i + 1, i] = -1.0
        from repro.sparse import CSRMatrix

        g = adjacency_from_matrix(CSRMatrix.from_dense(dense))
        v = pseudo_peripheral_vertex(g, start=n // 2)
        assert v in (0, n - 1)


class TestABMCOptions:
    def test_largest_first_color_order(self, small_sym):
        o = abmc_ordering(small_sym, block_size=4,
                          color_order="largest_first")
        assert is_permutation(o.perm)
        assert o.n_colors >= 2

    def test_color_count_shrinks_with_block_size(self, small_sym):
        """Bigger blocks -> denser quotient but far fewer vertices; the
        colour count stays small either way and the block count drops."""
        o1 = abmc_ordering(small_sym, block_size=2)
        o2 = abmc_ordering(small_sym, block_size=30)
        assert o2.n_blocks < o1.n_blocks

    def test_reordering_preserves_spectrum(self, small_sym):
        o = abmc_ordering(small_sym, block_size=8)
        b = permute_symmetric(small_sym, o.perm)
        e1 = np.sort(np.linalg.eigvalsh(small_sym.to_dense()))
        e2 = np.sort(np.linalg.eigvalsh(b.to_dense()))
        np.testing.assert_allclose(e1, e2, rtol=1e-9, atol=1e-11)


class TestPermutationLaws:
    def test_identity_composition(self, rng):
        n = 17
        p = rng.permutation(n)
        ident = np.arange(n)
        np.testing.assert_array_equal(compose_permutations(p, ident), p)
        np.testing.assert_array_equal(compose_permutations(ident, p), p)

    def test_inverse_composition_is_identity(self, rng):
        p = rng.permutation(23)
        inv = invert_permutation(p)
        np.testing.assert_array_equal(compose_permutations(p, inv),
                                      np.arange(23))
        np.testing.assert_array_equal(compose_permutations(inv, p),
                                      np.arange(23))

    def test_double_symmetric_permutation(self, grid, rng):
        p = rng.permutation(grid.n_rows)
        q = rng.permutation(grid.n_rows)
        two_step = permute_symmetric(permute_symmetric(grid, q), p)
        one_step = permute_symmetric(grid, compose_permutations(p, q))
        np.testing.assert_array_equal(two_step.to_dense(),
                                      one_step.to_dense())


class TestColoringQuality:
    def test_greedy_on_dense_clique(self):
        from repro.sparse import CSRMatrix

        n = 6
        dense = np.ones((n, n))
        g = adjacency_from_matrix(CSRMatrix.from_dense(dense))
        colors = greedy_coloring(g)
        # A clique needs exactly n colours.
        assert colors.max() + 1 == n

    def test_greedy_color_count_bounded_by_degree(self, small_unsym):
        g = adjacency_from_matrix(small_unsym)
        colors = greedy_coloring(g)
        assert colors.max() + 1 <= g.max_degree() + 1
