"""Unit tests for RCM, level scheduling and permutation algebra."""

import numpy as np
import pytest

from repro.reorder.levels import (
    check_levels,
    compute_levels,
    levels_sequential,
    levels_to_groups,
    levels_vectorised,
)
from repro.reorder.permute import (
    compose_permutations,
    invert_permutation,
    is_permutation,
    permute_symmetric,
    permute_vector,
    unpermute_vector,
)
from repro.reorder.rcm import matrix_bandwidth, rcm_ordering
from repro.core.partition import split_ldu
from repro.sparse import CSRMatrix


class TestPermute:
    def test_is_permutation(self):
        assert is_permutation(np.array([2, 0, 1]))
        assert not is_permutation(np.array([0, 0, 1]))
        assert not is_permutation(np.array([0, 3, 1]))
        assert not is_permutation(np.array([[0, 1]]))

    def test_invert(self, rng):
        perm = rng.permutation(20)
        inv = invert_permutation(perm)
        np.testing.assert_array_equal(perm[inv], np.arange(20))
        np.testing.assert_array_equal(inv[perm], np.arange(20))

    def test_compose(self, rng):
        p = rng.permutation(15)
        q = rng.permutation(15)
        x = rng.standard_normal(15)
        two_step = permute_vector(permute_vector(x, q), p)
        one_step = permute_vector(x, compose_permutations(p, q))
        np.testing.assert_array_equal(two_step, one_step)

    def test_vector_roundtrip(self, rng):
        perm = rng.permutation(10)
        x = rng.standard_normal(10)
        np.testing.assert_array_equal(
            unpermute_vector(permute_vector(x, perm), perm), x)

    def test_symmetric_permutation_commutes_with_matvec(self, any_matrix,
                                                        rng):
        """P A P^T (P x) == P (A x): the identity FBMPK's perm handling
        relies on."""
        perm = rng.permutation(any_matrix.n_rows)
        b = permute_symmetric(any_matrix, perm)
        x = rng.standard_normal(any_matrix.n_rows)
        np.testing.assert_allclose(
            b.matvec(permute_vector(x, perm)),
            permute_vector(any_matrix.matvec(x), perm),
            rtol=1e-12, atol=1e-13,
        )

    def test_symmetric_permutation_validation(self, grid):
        with pytest.raises(ValueError, match="square"):
            permute_symmetric(CSRMatrix.zeros((2, 3)), np.array([0, 1]))
        with pytest.raises(ValueError, match="length"):
            permute_symmetric(grid, np.arange(3))


class TestRCM:
    def test_reduces_bandwidth_of_shuffled_banded(self, rng):
        from repro.matrices import banded_random

        a = banded_random(150, 5, 6, symmetric=True, seed=8)
        shuffled = permute_symmetric(a, rng.permutation(a.n_rows))
        bw_shuffled = matrix_bandwidth(shuffled)
        perm = rcm_ordering(shuffled)
        assert is_permutation(perm)
        bw_rcm = matrix_bandwidth(permute_symmetric(shuffled, perm))
        assert bw_rcm < bw_shuffled / 2

    def test_handles_disconnected_components(self):
        dense = np.zeros((6, 6))
        dense[0, 1] = dense[1, 0] = 1.0
        dense[4, 5] = dense[5, 4] = 1.0
        np.fill_diagonal(dense, 2.0)
        perm = rcm_ordering(CSRMatrix.from_dense(dense))
        assert is_permutation(perm)

    def test_bandwidth_of_diagonal_is_zero(self):
        assert matrix_bandwidth(CSRMatrix.identity(5)) == 0
        assert matrix_bandwidth(CSRMatrix.zeros((4, 4))) == 0


class TestLevels:
    @pytest.mark.parametrize("direction", ["forward", "backward"])
    def test_sequential_equals_vectorised(self, any_matrix, direction):
        part = split_ldu(any_matrix)
        tri = part.lower if direction == "forward" else part.upper
        seq = levels_sequential(tri, direction)
        vec = levels_vectorised(tri, direction)
        np.testing.assert_array_equal(seq, vec)
        assert check_levels(tri, seq)

    def test_chain_has_n_levels(self):
        # Strictly-lower bidiagonal: a pure dependency chain.
        n = 10
        dense = np.zeros((n, n))
        for i in range(1, n):
            dense[i, i - 1] = 1.0
        tri = CSRMatrix.from_dense(dense)
        levels = levels_sequential(tri, "forward")
        np.testing.assert_array_equal(levels, np.arange(n))

    def test_vectorised_round_budget(self):
        n = 50
        dense = np.zeros((n, n))
        for i in range(1, n):
            dense[i, i - 1] = 1.0
        tri = CSRMatrix.from_dense(dense)
        with pytest.raises(RuntimeError, match="converge"):
            levels_vectorised(tri, "forward", max_rounds=5)
        # compute_levels falls back to sequential transparently.
        np.testing.assert_array_equal(compute_levels(tri), np.arange(n))

    def test_levels_to_groups_partition(self, small_sym):
        part = split_ldu(small_sym)
        levels = compute_levels(part.lower)
        groups = levels_to_groups(levels)
        flat = np.concatenate(groups)
        assert sorted(flat.tolist()) == list(range(small_sym.n_rows))
        # Groups ordered by ascending level.
        for g, rows in enumerate(groups):
            assert (levels[rows] == levels[groups[g][0]]).all()

    def test_empty(self):
        assert levels_to_groups(np.array([], dtype=np.int64)) == []
        tri = CSRMatrix.zeros((3, 3))
        np.testing.assert_array_equal(levels_vectorised(tri), [0, 0, 0])

    def test_direction_validation(self, grid):
        part = split_ldu(grid)
        with pytest.raises(ValueError):
            levels_sequential(part.lower, "sideways")
        with pytest.raises(ValueError):
            levels_vectorised(part.lower, "sideways")

    def test_check_levels_negative(self, small_sym):
        part = split_ldu(small_sym)
        if part.lower.nnz:
            bad = np.zeros(small_sym.n_rows, dtype=np.int64)
            assert not check_levels(part.lower, bad)

    def test_empty_matrix_all_paths_agree(self):
        tri = CSRMatrix.zeros((0, 0))
        for direction in ("forward", "backward"):
            seq = levels_sequential(tri, direction)
            vec = levels_vectorised(tri, direction)
            assert seq.shape == (0,) and vec.shape == (0,)
            np.testing.assert_array_equal(seq, vec)
            assert check_levels(tri, seq)
        assert levels_to_groups(levels_sequential(tri)) == []

    def test_empty_matrix_still_validates_direction(self):
        # The direction check must fire before any row iteration, so a
        # 0-row matrix with a bogus direction raises instead of
        # silently returning.
        tri = CSRMatrix.zeros((0, 0))
        with pytest.raises(ValueError):
            levels_sequential(tri, "sideways")
        with pytest.raises(ValueError):
            levels_vectorised(tri, "sideways")

    def test_single_dense_row(self):
        # One row depending on every other: it sits alone at level 1,
        # everything else at level 0 — two groups.
        n = 6
        dense = np.zeros((n, n))
        dense[n - 1, : n - 1] = 1.0
        tri = CSRMatrix.from_dense(dense)
        levels = levels_sequential(tri, "forward")
        np.testing.assert_array_equal(levels, [0] * (n - 1) + [1])
        np.testing.assert_array_equal(levels, levels_vectorised(tri))
        groups = levels_to_groups(levels)
        assert len(groups) == 2
        assert groups[1].tolist() == [n - 1]
        assert check_levels(tri, levels)

    def test_sequential_chain_groups_singletons(self):
        # The worst case for level parallelism: a strict chain yields n
        # singleton groups in dependency order.
        n = 8
        dense = np.zeros((n, n))
        for i in range(1, n):
            dense[i, i - 1] = 1.0
        tri = CSRMatrix.from_dense(dense)
        groups = levels_to_groups(levels_sequential(tri, "forward"))
        assert [g.tolist() for g in groups] == [[i] for i in range(n)]
        assert check_levels(tri, np.arange(n))
        # A level assignment that breaks one edge must be rejected.
        broken = np.arange(n)
        broken[-1] = 0
        assert not check_levels(tri, broken)
