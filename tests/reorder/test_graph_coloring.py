"""Unit tests for adjacency graphs and colouring."""

import numpy as np
import pytest

from repro.reorder.coloring import (
    check_coloring,
    color_counts,
    greedy_coloring,
    luby_coloring,
)
from repro.reorder.graph import adjacency_from_matrix, quotient_graph
from repro.sparse import CSRMatrix


def path_graph_matrix(n):
    """Tridiagonal matrix whose adjacency is the n-path."""
    dense = np.eye(n) * 2
    for i in range(n - 1):
        dense[i, i + 1] = dense[i + 1, i] = -1.0
    return CSRMatrix.from_dense(dense)


class TestAdjacency:
    def test_symmetrised_no_self_loops(self, small_unsym):
        g = adjacency_from_matrix(small_unsym)
        src = np.repeat(np.arange(g.n), g.degree())
        assert not (src == g.indices).any(), "self-loop found"
        # Every edge appears in both directions.
        edges = set(zip(src.tolist(), g.indices.tolist()))
        assert all((b, a) in edges for a, b in edges)

    def test_matches_dense_pattern(self, grid):
        g = adjacency_from_matrix(grid)
        dense = grid.to_dense()
        pattern = (dense != 0) | (dense.T != 0)
        np.fill_diagonal(pattern, False)
        assert g.indices.shape[0] == int(pattern.sum())

    def test_path_graph_degrees(self):
        g = adjacency_from_matrix(path_graph_matrix(5))
        np.testing.assert_array_equal(g.degree(), [1, 2, 2, 2, 1])
        assert g.n_edges == 4
        assert g.max_degree() == 2
        np.testing.assert_array_equal(g.neighbours(2), [1, 3])

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            adjacency_from_matrix(CSRMatrix.zeros((2, 3)))


class TestQuotient:
    def test_path_blocks(self):
        g = adjacency_from_matrix(path_graph_matrix(6))
        q = quotient_graph(g, np.array([0, 0, 1, 1, 2, 2]), 3)
        # Blocks form a path 0-1-2.
        assert q.n == 3
        np.testing.assert_array_equal(q.degree(), [1, 2, 1])

    def test_intra_block_edges_vanish(self):
        g = adjacency_from_matrix(path_graph_matrix(4))
        q = quotient_graph(g, np.zeros(4, dtype=np.int64), 1)
        assert q.n_edges == 0

    def test_validation(self, grid):
        g = adjacency_from_matrix(grid)
        with pytest.raises(ValueError, match="length"):
            quotient_graph(g, np.zeros(3, dtype=np.int64), 1)
        with pytest.raises(ValueError, match="out of range"):
            quotient_graph(g, np.full(g.n, 5, dtype=np.int64), 2)


class TestColoring:
    @pytest.mark.parametrize("order", ["natural", "largest_first"])
    def test_greedy_valid(self, any_matrix, order):
        g = adjacency_from_matrix(any_matrix)
        colors = greedy_coloring(g, order=order)
        assert check_coloring(g, colors)
        assert colors.max() <= g.max_degree()

    def test_greedy_path_uses_two_colors(self):
        g = adjacency_from_matrix(path_graph_matrix(10))
        assert greedy_coloring(g).max() + 1 == 2

    def test_greedy_unknown_order(self, grid):
        with pytest.raises(ValueError):
            greedy_coloring(adjacency_from_matrix(grid), order="nope")

    def test_luby_valid_and_deterministic(self, any_matrix):
        g = adjacency_from_matrix(any_matrix)
        c1 = luby_coloring(g, seed=7)
        c2 = luby_coloring(g, seed=7)
        assert check_coloring(g, c1)
        np.testing.assert_array_equal(c1, c2)

    def test_luby_different_seeds_both_valid(self, small_sym):
        g = adjacency_from_matrix(small_sym)
        for seed in range(3):
            assert check_coloring(g, luby_coloring(g, seed=seed))

    def test_check_coloring_negatives(self, grid):
        g = adjacency_from_matrix(grid)
        assert not check_coloring(g, np.zeros(g.n, dtype=np.int64))  # clash
        assert not check_coloring(g, np.full(g.n, -1))               # unset
        assert not check_coloring(g, np.zeros(3, dtype=np.int64))    # shape

    def test_color_counts(self):
        np.testing.assert_array_equal(
            color_counts(np.array([0, 1, 1, 2, 0])), [2, 2, 1])
        assert color_counts(np.array([], dtype=np.int64)).size == 0

    def test_empty_graph(self):
        g = adjacency_from_matrix(CSRMatrix.zeros((5, 5)))
        colors = greedy_coloring(g)
        assert check_coloring(g, colors)
        assert colors.max() == 0  # all vertices share one colour
