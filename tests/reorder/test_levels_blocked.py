"""Levels-blocked (RACE-style) scheduling: blocking construction, the
skewed wavefront schedule, descriptor expansion, and bitwise identity of
the operator against serial FBMPK across all three executors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LevelsBlockedOperator, build_fbmpk_operator
from repro.core.partition import split_ldu
from repro.reorder import (
    blocked_descriptors,
    build_blocked_schedule,
    build_level_blocking,
    check_blocked_schedule,
)
from repro.reorder.levels_blocked import (
    OP_EVEN,
    OP_FINAL_ODD,
    OP_ODD,
    _op_for_power,
)
from repro.sparse import CSRMatrix


def _blocking(a, block_rows=8):
    part = split_ldu(a)
    return part, build_level_blocking(part.lower, part.upper, block_rows)


def _chain(n):
    """Tridiagonal matrix: one dependency level per row."""
    dense = 2.0 * np.eye(n) + np.eye(n, k=-1) + np.eye(n, k=1)
    return CSRMatrix.from_dense(dense)


# -- blocking construction -------------------------------------------------
class TestBlocking:
    def test_blocks_partition_rows(self, any_matrix):
        _, blk = _blocking(any_matrix)
        rows = np.concatenate(blk.blocks)
        assert np.array_equal(np.sort(rows), np.arange(any_matrix.n_rows))
        for b, block in enumerate(blk.blocks):
            assert (blk.block_of[block] == b).all()

    def test_block_sizes_respect_knob(self, grid):
        _, blk = _blocking(grid, block_rows=8)
        # Every block except possibly the last reached the threshold.
        assert all(b.size >= 8 for b in blk.blocks[:-1])

    def test_neighbours_symmetric_with_self_loops(self, any_matrix):
        _, blk = _blocking(any_matrix)
        for b in range(blk.n_blocks):
            assert b in blk.neighbours[b]
            for nb in blk.neighbours[b]:
                assert b in blk.neighbours[int(nb)]

    def test_neighbours_cover_matrix_references(self, grid):
        part, blk = _blocking(grid)
        for tri in (part.lower, part.upper):
            r = np.repeat(np.arange(grid.n_rows), tri.row_nnz())
            for src, dst in zip(blk.block_of[r],
                                blk.block_of[tri.indices]):
                assert dst in blk.neighbours[int(src)]

    def test_nnz_weights_sum_to_triangles(self, any_matrix):
        part, blk = _blocking(any_matrix)
        assert int(blk.nnz.sum()) == part.lower.nnz + part.upper.nnz

    def test_empty_matrix(self):
        a = CSRMatrix.from_dense(np.zeros((0, 0)))
        _, blk = _blocking(a)
        assert blk.n_blocks == 0 and blk.n == 0
        sched = build_blocked_schedule(blk, 3)
        assert check_blocked_schedule(blk, sched)
        assert sched.n_phases == 0

    def test_diagonal_matrix_single_level(self):
        a = CSRMatrix.from_dense(np.diag(np.arange(1.0, 6.0)))
        _, blk = _blocking(a, block_rows=2)
        # No off-diagonal dependencies: one level, hence one block.
        assert blk.n_blocks == 1
        assert blk.neighbours[0].tolist() == [0]

    def test_sequential_chain_one_level_per_row(self):
        # Tridiagonal chain: row i depends on i-1, so with block_rows=1
        # each level (= each row) is its own block and adjacency is the
        # path graph.
        a = _chain(12)
        _, blk = _blocking(a, block_rows=1)
        assert blk.n_blocks == 12
        assert blk.neighbours[0].tolist() == [0, 1]
        assert blk.neighbours[5].tolist() == [4, 5, 6]

    def test_block_rows_validated(self, grid):
        part = split_ldu(grid)
        with pytest.raises(ValueError):
            build_level_blocking(part.lower, part.upper, 0)


# -- schedule --------------------------------------------------------------
class TestSchedule:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_schedule_valid(self, any_matrix, k):
        _, blk = _blocking(any_matrix)
        sched = build_blocked_schedule(blk, k)
        assert check_blocked_schedule(blk, sched)

    def test_every_pair_scheduled_once(self, grid):
        _, blk = _blocking(grid)
        sched = build_blocked_schedule(blk, 4)
        items = [bp for phase in sched.phases for bp in phase]
        assert sorted(items) == [(b, p) for b in range(blk.n_blocks)
                                 for p in range(1, 5)]

    def test_wavefront_phase_count_on_chain(self):
        # On the path graph the skewed wavefront drains in at most
        # nb + 2(k-1) phases (boundary blocks close the diamond a touch
        # earlier) — crucially NOT the k * nb a phase-per-(block, power)
        # schedule would need, which is what makes residency pay.
        a = _chain(16)
        _, blk = _blocking(a, block_rows=1)
        for k in (1, 2, 4):
            sched = build_blocked_schedule(blk, k)
            assert blk.n_blocks <= sched.n_phases \
                <= blk.n_blocks + 2 * (k - 1)

    def test_k_validated(self, grid):
        _, blk = _blocking(grid)
        with pytest.raises(ValueError):
            build_blocked_schedule(blk, 0)

    def test_validator_rejects_broken_schedules(self, grid):
        from repro.reorder.levels_blocked import BlockedSchedule

        _, blk = _blocking(grid)
        good = build_blocked_schedule(blk, 2)
        # Dropping the last phase leaves blocks short of power k.
        assert not check_blocked_schedule(
            blk, BlockedSchedule(k=2, phases=good.phases[:-1]))
        # Flattening everything into one phase violates the neighbour
        # window (a block and its neighbour at different powers).
        flat = tuple([tuple(bp for ph in good.phases for bp in ph)])
        if blk.n_blocks > 1:
            assert not check_blocked_schedule(
                blk, BlockedSchedule(k=2, phases=flat))


# -- descriptors -----------------------------------------------------------
class TestDescriptors:
    def test_ops_follow_power_parity(self):
        assert _op_for_power(2, 4) == OP_EVEN
        assert _op_for_power(1, 4) == OP_ODD
        assert _op_for_power(3, 3) == OP_FINAL_ODD
        assert _op_for_power(1, 1) == OP_FINAL_ODD
        assert _op_for_power(4, 4) == OP_EVEN

    def test_descriptors_cover_each_power_once(self, any_matrix):
        part, blk = _blocking(any_matrix)
        k = 3
        sched = build_blocked_schedule(blk, k)
        descs = blocked_descriptors(blk, sched, part.lower, part.upper)
        assert len(descs) == sched.n_phases
        covered = np.zeros(any_matrix.n_rows, dtype=np.int64)
        for phase in descs:
            for start, stop, nnz, op in phase:
                assert 0 <= start < stop <= any_matrix.n_rows
                assert op in (OP_ODD, OP_EVEN, OP_FINAL_ODD)
                covered[start:stop] += 1
        assert (covered == k).all()

    def test_descriptor_nnz_matches_weights(self, grid):
        part, blk = _blocking(grid)
        sched = build_blocked_schedule(blk, 1)
        descs = blocked_descriptors(blk, sched, part.lower, part.upper)
        w = part.lower.row_nnz() + part.upper.row_nnz()
        for phase in descs:
            for start, stop, nnz, _ in phase:
                assert nnz == int(w[start:stop].sum())


# -- operator bit-identity -------------------------------------------------
class TestOperator:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("block_rows", [1, 8, 1000])
    def test_serial_matches_fbmpk_levels(self, any_matrix, k, block_rows,
                                         rng):
        x = rng.standard_normal(any_matrix.n_rows)
        ref = build_fbmpk_operator(any_matrix, strategy="levels")
        op = build_fbmpk_operator(any_matrix, strategy="levels-blocked",
                                  block_size=block_rows)
        try:
            assert isinstance(op, LevelsBlockedOperator)
            assert np.array_equal(op.power(x, k), ref.power(x, k))
        finally:
            op.close()
            ref.close()

    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_threads_match_serial(self, grid, k, rng):
        x = rng.standard_normal(grid.n_rows)
        serial = build_fbmpk_operator(grid, strategy="levels-blocked",
                                      block_size=8)
        threaded = build_fbmpk_operator(grid, strategy="levels-blocked",
                                        block_size=8, executor="threads",
                                        n_threads=2)
        try:
            assert np.array_equal(threaded.power(x, k), serial.power(x, k))
        finally:
            serial.close()
            threaded.close()

    def test_processes_match_serial(self, grid, rng):
        x = rng.standard_normal(grid.n_rows)
        serial = build_fbmpk_operator(grid, strategy="levels-blocked",
                                      block_size=8)
        procs = build_fbmpk_operator(grid, strategy="levels-blocked",
                                     block_size=8, executor="processes",
                                     n_threads=2)
        try:
            for k in (1, 2, 5):
                assert np.array_equal(procs.power(x, k), serial.power(x, k))
        finally:
            serial.close()
            procs.close()

    def test_power_zero_copies_input(self, grid, rng):
        x = rng.standard_normal(grid.n_rows)
        with build_fbmpk_operator(grid, strategy="levels-blocked") as op:
            y = op.power(x, 0)
        assert np.array_equal(y, x)
        assert y is not x

    def test_counter_counts_full_passes(self, grid, rng):
        from repro.core import KernelCounter

        counter = KernelCounter()
        with build_fbmpk_operator(grid, strategy="levels-blocked") as op:
            op.power(rng.standard_normal(grid.n_rows), 5, counter=counter)
        # Residency reuses cached blocks but every power still *applies*
        # L and U once: the counter reports logical passes.
        assert counter.l_passes == 5
        assert counter.u_passes == 5


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_property_blocked_matches_levels_serial(data):
    """On random matrices and any block size, the levels-blocked
    operator is bit-identical to serial FBMPK with the levels
    strategy."""
    n = data.draw(st.integers(min_value=1, max_value=24), label="n")
    density = data.draw(st.floats(min_value=0.0, max_value=0.5),
                        label="density")
    seed = data.draw(st.integers(min_value=0, max_value=2 ** 31),
                     label="seed")
    k = data.draw(st.integers(min_value=1, max_value=6), label="k")
    block_rows = data.draw(st.integers(min_value=1, max_value=32),
                           label="block_rows")
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n))
    dense = np.where(rng.random((n, n)) < density, dense, 0.0)
    np.fill_diagonal(dense, rng.standard_normal(n))
    a = CSRMatrix.from_dense(dense)
    x = rng.standard_normal(n)
    ref = build_fbmpk_operator(a, strategy="levels")
    op = build_fbmpk_operator(a, strategy="levels-blocked",
                              block_size=block_rows)
    try:
        assert np.array_equal(op.power(x, k), ref.power(x, k))
    finally:
        op.close()
        ref.close()
