"""Unit tests for the MKL-like and LB-MPK baselines."""

import numpy as np
import pytest

from repro.baselines import (
    LevelBlockedMPK,
    MklLikeMPK,
    bfs_levels,
    lbmpk,
    lbmpk_traffic_estimate,
    mpk_mkl_like,
)
from repro.core.mpk import mpk_reference_dense
from repro.memsim.traffic import MatrixTrafficStats
from repro.sparse import CSRMatrix


class TestMklLike:
    @pytest.mark.parametrize("k", [0, 1, 3, 5])
    def test_matches_dense(self, any_matrix, rng, k):
        x = rng.standard_normal(any_matrix.n_rows)
        np.testing.assert_allclose(mpk_mkl_like(any_matrix, x, k),
                                   mpk_reference_dense(any_matrix, x, k),
                                   rtol=1e-9, atol=1e-11)

    def test_reusable_handle(self, grid, rng):
        op = MklLikeMPK(grid)
        for seed in range(3):
            x = np.random.default_rng(seed).standard_normal(grid.n_rows)
            np.testing.assert_allclose(op.power(x, 2),
                                       mpk_reference_dense(grid, x, 2),
                                       rtol=1e-9, atol=1e-11)

    def test_sequence(self, grid, rng):
        x = rng.standard_normal(grid.n_rows)
        seq = MklLikeMPK(grid).sequence(x, 3)
        assert len(seq) == 4
        np.testing.assert_array_equal(seq[0], x)

    def test_negative_k(self, grid):
        with pytest.raises(ValueError):
            MklLikeMPK(grid).power(np.zeros(grid.n_rows), -1)


class TestLBMPK:
    def test_bfs_levels_property(self, any_matrix):
        levels = bfs_levels(any_matrix)
        assert (levels >= 0).all()
        # Level property: stored entries connect only adjacent levels.
        rows = np.repeat(np.arange(any_matrix.n_rows, dtype=np.int64),
                         any_matrix.row_nnz())
        gap = np.abs(levels[rows] - levels[any_matrix.indices])
        assert gap.max(initial=0) <= 1

    def test_bfs_levels_disconnected(self):
        dense = np.eye(4)
        dense[0, 1] = dense[1, 0] = 1.0
        levels = bfs_levels(CSRMatrix.from_dense(dense))
        # Components get disjoint level ranges.
        assert len(set(levels.tolist())) == 4 or levels.max() >= 2

    @pytest.mark.parametrize("k", [0, 1, 2, 3, 5, 6])
    def test_matches_dense(self, any_matrix, rng, k):
        x = rng.standard_normal(any_matrix.n_rows)
        np.testing.assert_allclose(lbmpk(any_matrix, x, k),
                                   mpk_reference_dense(any_matrix, x, k),
                                   rtol=1e-9, atol=1e-11)

    def test_reusable_and_validates(self, small_sym, rng):
        op = LevelBlockedMPK(small_sym)
        assert op._validate_levels()
        x = rng.standard_normal(small_sym.n_rows)
        np.testing.assert_allclose(op.power(x, 4),
                                   mpk_reference_dense(small_sym, x, 4),
                                   rtol=1e-9, atol=1e-11)

    def test_input_validation(self, grid):
        op = LevelBlockedMPK(grid)
        with pytest.raises(ValueError):
            op.power(np.zeros(grid.n_rows), -1)
        with pytest.raises(ValueError):
            op.power(np.zeros(3), 1)
        with pytest.raises(ValueError):
            LevelBlockedMPK(CSRMatrix.zeros((2, 3)))

    def test_traffic_estimate_degrades_with_k(self):
        stats = MatrixTrafficStats(n=1_000_000, nnz=60_000_000,
                                   bandwidth=10_000)
        cache = 32 * 2 ** 20
        per_power = [
            lbmpk_traffic_estimate(stats, k, cache).total_bytes / k
            for k in (2, 4, 8, 12)
        ]
        # The per-power cost grows as the k-deep wavefront outgrows the
        # cache — the scaling failure FBMPK avoids (Section VI).
        assert per_power[-1] > per_power[0]

    def test_traffic_estimate_hot_window_is_single_pass(self):
        stats = MatrixTrafficStats(n=100_000, nnz=2_000_000, bandwidth=500)
        huge = 1e12
        t = lbmpk_traffic_estimate(stats, 8, huge)
        single = stats.nnz * 12 + (stats.n + 1) * 4
        assert t.matrix_bytes == pytest.approx(single)
