"""Deeper tests of platform/bandwidth/model mechanics."""

import dataclasses

import numpy as np
import pytest

from repro.machine import (
    A64FX,
    FT2000P,
    KP920,
    PLATFORMS,
    THUNDERX2,
    XEON_6230R,
    get_platform,
    predict_mpk_time,
    predict_speedup,
)
from repro.memsim.traffic import MatrixTrafficStats, TrafficParams

STATS = MatrixTrafficStats(n=1_000_000, nnz=50_000_000, bandwidth=10_000)


class TestBandwidthMechanics:
    def test_single_node_gating_on_ft(self):
        """4 compact threads on FT 2000+ see only one NUMA link."""
        node_bw = FT2000P.stream_bw_gbs / FT2000P.numa_nodes
        bw4 = FT2000P.bandwidth_bytes_per_s(4) / 1e9
        assert bw4 <= node_bw * FT2000P.numa_penalty + 1e-9

    def test_spawned_threads_open_links(self):
        """Idle-but-spawned threads keep their nodes' links active."""
        active_only = FT2000P.bandwidth_bytes_per_s(8)
        with_spawned = FT2000P.bandwidth_bytes_per_s(8, spawned=64)
        assert with_spawned > active_only

    def test_spawned_never_below_threads(self):
        # spawned < threads is clamped up.
        a = FT2000P.bandwidth_bytes_per_s(16, spawned=2)
        b = FT2000P.bandwidth_bytes_per_s(16)
        assert a == b

    def test_single_numa_platforms_unaffected(self):
        for p in (THUNDERX2, KP920):
            assert p.bandwidth_bytes_per_s(4, spawned=p.cores) \
                == p.bandwidth_bytes_per_s(4)

    def test_thread_clamping(self):
        assert FT2000P.bandwidth_bytes_per_s(0) \
            == FT2000P.bandwidth_bytes_per_s(1)
        assert FT2000P.bandwidth_bytes_per_s(1000) \
            == FT2000P.bandwidth_bytes_per_s(64)

    def test_a64fx_registry(self):
        assert get_platform("A64FX (what-if)") is A64FX
        assert A64FX.stream_bw_gbs > 2.5 * max(p.stream_bw_gbs
                                               for p in PLATFORMS)


class TestModelConsistency:
    def test_more_threads_never_slower_baseline(self):
        for p in PLATFORMS:
            times = [predict_mpk_time(p, STATS, 5, threads=t,
                                      method="standard").total
                     for t in (1, 2, 4, 8, 16)]
            assert all(b <= a * 1.001 for a, b in zip(times, times[1:])), \
                (p.name, times)

    def test_time_scales_with_matrix_size(self):
        small = MatrixTrafficStats(n=10_000, nnz=500_000, bandwidth=500)
        t_small = predict_mpk_time(XEON_6230R, small, 5).total
        t_big = predict_mpk_time(XEON_6230R, STATS, 5).total
        assert t_big > 10 * t_small

    def test_time_scales_with_k(self):
        t3 = predict_mpk_time(FT2000P, STATS, 3).total
        t9 = predict_mpk_time(FT2000P, STATS, 9).total
        assert 2.0 < t9 / t3 < 4.0  # ~3x the passes, plus fixed costs

    def test_custom_traffic_params_plumbed(self):
        fat_indices = TrafficParams(index_bytes=8)
        t_fat = predict_mpk_time(FT2000P, STATS, 5, params=fat_indices)
        t_std = predict_mpk_time(FT2000P, STATS, 5)
        assert t_fat.t_memory > t_std.t_memory

    def test_speedup_threads_parameter(self):
        s1 = predict_speedup(FT2000P, STATS, 5, threads=1)
        s64 = predict_speedup(FT2000P, STATS, 5, threads=64)
        # FBMPK helps at any thread count on a big matrix.
        assert s1 > 1.0 and s64 > 1.0

    def test_platform_immutability(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FT2000P.cores = 128
