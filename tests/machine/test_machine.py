"""Unit tests for platform descriptions and the performance model."""

import numpy as np
import pytest

from repro.machine import (
    FT2000P,
    KP920,
    PLATFORMS,
    THUNDERX2,
    XEON_6230R,
    ParallelShape,
    estimate_parallel_shape,
    get_platform,
    list_platform_names,
    predict_mpk_time,
    predict_speedup,
)
from repro.memsim.traffic import MatrixTrafficStats

STATS = MatrixTrafficStats(n=1_000_000, nnz=60_000_000, bandwidth=10_000)
SMALL = MatrixTrafficStats(n=62_451, nnz=4_007_383, bandwidth=1_500)


class TestPlatform:
    def test_table1_attributes(self):
        assert (FT2000P.cores, FT2000P.sockets, FT2000P.numa_nodes) \
            == (64, 1, 8)
        assert FT2000P.l3_bytes == 0 and FT2000P.l2_shared_cores == 4
        assert (THUNDERX2.cores, THUNDERX2.sockets) == (32, 2)
        assert (KP920.cores, KP920.freq_ghz) == (64, 2.6)
        assert (XEON_6230R.cores, XEON_6230R.numa_nodes) == (26, 2)
        assert XEON_6230R.baseline_slowdown == pytest.approx(1.13)

    def test_bandwidth_monotone_and_capped(self):
        for p in PLATFORMS:
            bws = [p.bandwidth_bytes_per_s(t) for t in (1, 2, 4, 8, 16,
                                                        p.cores)]
            assert all(b2 >= b1 for b1, b2 in zip(bws, bws[1:]))
            assert bws[-1] <= p.stream_bw_gbs * 1e9

    def test_ft_numa_link_gating(self):
        """On FT 2000+, 4 threads only occupy one NUMA node, so they see
        a fraction of the full-machine bandwidth (the Fig 12 shape)."""
        bw4 = FT2000P.bandwidth_bytes_per_s(4)
        bw64 = FT2000P.bandwidth_bytes_per_s(64)
        assert bw64 > 5 * bw4

    def test_effective_cache(self):
        # FT: no L3, 2MB L2 per 4 cores.
        assert FT2000P.effective_cache_bytes(1) == FT2000P.l2_bytes / 4
        # Xeon: L2 + share of L3 shrinks with threads.
        assert XEON_6230R.effective_cache_bytes(1) \
            > XEON_6230R.effective_cache_bytes(26)

    def test_total_last_level(self):
        assert XEON_6230R.total_last_level_bytes() == XEON_6230R.l3_bytes
        assert FT2000P.total_last_level_bytes() \
            == FT2000P.l2_bytes * (64 // 4)

    def test_barrier_grows_with_threads(self):
        for p in PLATFORMS:
            assert p.barrier_seconds(64) > p.barrier_seconds(2) > 0

    def test_registry_lookup(self):
        assert get_platform("FT 2000+") is FT2000P
        assert list_platform_names() == [p.name for p in PLATFORMS]
        with pytest.raises(KeyError):
            get_platform("M1 Max")


class TestPerfModel:
    def test_speedup_positive_and_sane(self):
        for p in PLATFORMS:
            s = predict_speedup(p, STATS, k=5)
            assert 0.5 < s < 3.0

    def test_fbmpk_beats_baseline_on_large_matrices(self):
        for p in PLATFORMS:
            assert predict_speedup(p, STATS, k=5) > 1.0

    def test_speedup_grows_with_k_same_parity(self):
        for p in PLATFORMS:
            assert predict_speedup(p, STATS, k=9) \
                > predict_speedup(p, STATS, k=3)

    def test_xeon_baseline_slowdown_applied(self):
        import dataclasses

        t_std = predict_mpk_time(XEON_6230R, STATS, 5, method="standard")
        # Memory and compute terms carry the 1.13 factor.
        p_noslow = dataclasses.replace(XEON_6230R, baseline_slowdown=1.0)
        t_plain = predict_mpk_time(p_noslow, STATS, 5, method="standard")
        assert t_std.t_memory == pytest.approx(1.13 * t_plain.t_memory)

    def test_methods_ordering_btb(self):
        # fb+btb never slower than fb in the model.
        for p in PLATFORMS:
            t_btb = predict_mpk_time(p, SMALL, 5, method="fb+btb").total
            t_fb = predict_mpk_time(p, SMALL, 5, method="fb").total
            assert t_btb <= t_fb * 1.0001

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            predict_mpk_time(FT2000P, STATS, 5, method="magic")
        with pytest.raises(ValueError):
            predict_mpk_time(FT2000P, STATS, 0)

    def test_parallelism_cap_hurts_small_matrices(self):
        shape = estimate_parallel_shape(SMALL.n)
        cap = shape.max_parallel_blocks
        assert cap < 64
        t_capped = predict_mpk_time(FT2000P, SMALL, 5, threads=64).total
        t_at_cap = predict_mpk_time(FT2000P, SMALL, 5, threads=cap).total
        # Spawning beyond the cap still helps a little on FT 2000+ (idle
        # threads keep their NUMA links active) but the scaling is far
        # below ideal — the cant flattening.
        assert t_capped <= t_at_cap
        assert t_at_cap / t_capped < (64 / cap) * 0.7

    def test_estimate_parallel_shape(self):
        big = estimate_parallel_shape(1_500_000)
        assert big.max_parallel_blocks > 64
        tiny = estimate_parallel_shape(100)
        assert tiny.max_parallel_blocks >= 1

    def test_explicit_shape_respected(self):
        shape = ParallelShape(n_colors=3, max_parallel_blocks=2)
        t = predict_mpk_time(FT2000P, STATS, 4, threads=64, shape=shape)
        t_free = predict_mpk_time(FT2000P, STATS, 4, threads=64)
        assert t.total > t_free.total  # 2-block cap throttles everything

    def test_prediction_total(self):
        pred = predict_mpk_time(FT2000P, STATS, 5)
        assert pred.total == pytest.approx(
            max(pred.t_memory, pred.t_compute) + pred.t_sync)
