"""Integration tests: full workflows across subsystem boundaries."""

import runpy
import sys

import numpy as np
import pytest

from repro import build_fbmpk_operator, mpk_standard
from repro.baselines import LevelBlockedMPK, MklLikeMPK
from repro.core.partition import split_ldu
from repro.matrices import TABLE2, generate_standin
from repro.memsim import (
    CacheConfig,
    MemoryHierarchy,
    MatrixTrafficStats,
    trace_mpk_standard,
    traffic_ratio,
)
from repro.machine import PLATFORMS, predict_speedup
from repro.parallel import block_cost_model, build_phases, simulate_phases
from repro.reorder import abmc_ordering, permute_symmetric
from repro.solvers import conjugate_gradient, gershgorin_bounds


@pytest.mark.parametrize("name", ["cant", "G3_circuit", "cage14", "pwtk"])
def test_standin_through_all_pipelines(name, rng):
    """Registry stand-in -> every MPK pipeline agrees."""
    a = generate_standin(name, n_rows=2500)
    x = rng.standard_normal(a.n_rows)
    k = 5
    reference = mpk_standard(a, x, k)
    op = build_fbmpk_operator(a, strategy="abmc", block_size=1)
    np.testing.assert_allclose(op.power(x, k), reference,
                               rtol=1e-8, atol=1e-10)
    np.testing.assert_allclose(MklLikeMPK(a).power(x, k), reference,
                               rtol=1e-8, atol=1e-10)
    np.testing.assert_allclose(LevelBlockedMPK(a).power(x, k), reference,
                               rtol=1e-8, atol=1e-10)


def test_reordered_operator_feeds_solver(rng):
    """ABMC-preprocessed operator inside a solver loop: CG on the
    original numbering, with spectrum bounds from the same matrix."""
    a = generate_standin("G3_circuit", n_rows=2500)
    lo, hi = gershgorin_bounds(a)
    assert lo >= -1e-9  # generators produce (near-)SPD matrices
    x_true = rng.standard_normal(a.n_rows)
    res = conjugate_gradient(a, a.matvec(x_true), tol=1e-10)
    assert res.converged
    np.testing.assert_allclose(res.x, x_true, rtol=1e-5, atol=1e-7)


def test_model_and_simulation_agree_on_direction():
    """The analytic model and the trace-driven simulator agree that
    FBMPK reduces traffic, across two structurally different inputs."""
    from repro.core.plan import theoretical_ratio

    for name in ("cant", "pwtk"):
        a = generate_standin(name, n_rows=500)
        stats = MatrixTrafficStats.from_csr(a)
        analytic = traffic_ratio(stats, 6, cache_bytes=8 * 1024)
        assert theoretical_ratio(6) - 0.05 < analytic < 1.1


def test_schedule_simulation_from_real_ordering():
    """ABMC ordering -> phases -> simulated run on a platform model."""
    a = generate_standin("shipsec1", n_rows=3000)
    o = abmc_ordering(a, block_size=32)
    part = split_ldu(permute_symmetric(a, o.perm))
    phases = build_phases(o, part.lower)
    for p in PLATFORMS:
        run = simulate_phases(phases, 8, block_cost_model(p, 8),
                              barrier_s=p.barrier_seconds(8))
        assert run.total_time > 0
        assert 0 < run.efficiency <= 1.0


def test_full_figure_pipeline_smoke():
    """Paper-scale stats -> model predictions for every platform/matrix
    pair produce finite, positive speedups."""
    for m in TABLE2:
        stats = m.traffic_stats()
        for p in PLATFORMS:
            s = predict_speedup(p, stats, k=5)
            assert np.isfinite(s) and s > 0.3


class TestExamples:
    """The shipped examples run end to end (reduced problem sizes)."""

    def _run(self, path, argv, monkeypatch):
        monkeypatch.setattr(sys, "argv", [path] + argv)
        runpy.run_path(path, run_name="__main__")

    def test_quickstart(self, monkeypatch, capsys):
        self._run("examples/quickstart.py", ["2000", "4"], monkeypatch)
        out = capsys.readouterr().out
        assert "done." in out

    def test_eigensolver(self, monkeypatch, capsys):
        self._run("examples/eigensolver_chebyshev.py", ["24"], monkeypatch)
        assert "both pipelines agree" in capsys.readouterr().out

    def test_multigrid(self, monkeypatch, capsys):
        self._run("examples/multigrid_poisson.py", ["24"], monkeypatch)
        assert "multigrid pipeline verified" in capsys.readouterr().out

    def test_sstep(self, monkeypatch, capsys):
        self._run("examples/sstep_krylov.py", ["1200", "3", "4"],
                  monkeypatch)
        assert "s-step pipeline verified" in capsys.readouterr().out

    def test_platform_study(self, monkeypatch, capsys):
        self._run("examples/platform_study.py", ["pwtk"], monkeypatch)
        assert "dataset-wide average speedups" in capsys.readouterr().out

    def test_distributed(self, monkeypatch, capsys):
        self._run("examples/distributed_mpk.py", ["1500", "4", "4"],
                  monkeypatch)
        assert "distributed pipeline verified" in capsys.readouterr().out

    def test_preconditioned_gmres(self, monkeypatch, capsys):
        self._run("examples/preconditioned_gmres.py", ["1500", "3"],
                  monkeypatch)
        assert "preconditioned pipeline verified" in capsys.readouterr().out
