"""Final coverage batch: small public behaviours not exercised
elsewhere."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import SSpMVProblem
from repro.core.sspmv import sspmv_fbmpk, sspmv_standard
from repro.core.fbmpk import build_fbmpk_operator
from repro.matrices import poisson2d
from repro.sparse import (
    CSRMatrix,
    ELLMatrix,
    SellCSigmaMatrix,
    spgemm_product_count,
)


class TestComplexCoefficients:
    """Section I: 'alpha_i are real or complex constants'."""

    def test_complex_combination_both_pipelines(self, small_sym, rng):
        x = rng.standard_normal(small_sym.n_rows)
        alphas = [1.0 + 1.0j, -2.0j, 0.5]
        y_std = sspmv_standard(small_sym, x, alphas)
        op = build_fbmpk_operator(small_sym, strategy="abmc", block_size=1)
        y_fb = sspmv_fbmpk(op, x, alphas)
        assert np.iscomplexobj(y_std) and np.iscomplexobj(y_fb)
        np.testing.assert_allclose(y_fb, y_std, rtol=1e-9, atol=1e-11)
        dense = small_sym.to_dense()
        expected = (alphas[0] * x + alphas[1] * dense @ x
                    + alphas[2] * dense @ (dense @ x))
        np.testing.assert_allclose(y_fb, expected, rtol=1e-9, atol=1e-11)

    def test_real_coefficients_stay_real(self, grid, rng):
        x = rng.standard_normal(grid.n_rows)
        y = sspmv_standard(grid, x, [1.0, 2.0])
        assert y.dtype == np.float64


class TestFormatAccounting:
    def test_ell_memory_index_width(self, grid):
        ell = ELLMatrix.from_csr(grid)
        assert ell.memory_bytes(index_bytes=4) < ell.memory_bytes()

    def test_sell_memory_includes_row_ids(self, grid):
        sell = SellCSigmaMatrix(grid, c=4, sigma=16)
        bare_panels = sum(s.indices.size * 8 + s.data.size * 8
                          for s in sell.slices)
        assert sell.memory_bytes() > bare_panels

    def test_spgemm_count_rectangular(self, rng):
        a = CSRMatrix.from_dense(np.ones((3, 5)))
        b = CSRMatrix.from_dense(np.ones((5, 2)))
        assert spgemm_product_count(a, b) == 3 * 5 * 2


class TestSSpMVProblemWrapper:
    def test_custom_operator_injection(self, small_sym, rng):
        op = build_fbmpk_operator(small_sym, strategy="levels")
        prob = SSpMVProblem(small_sym, operator=op)
        assert prob.operator is op
        x = rng.standard_normal(small_sym.n_rows)
        np.testing.assert_allclose(prob.evaluate(x, [0.0, 1.0]),
                                   small_sym.matvec(x),
                                   rtol=1e-10, atol=1e-12)


class TestCliExtras:
    def test_power_ones_flag(self, capsys):
        assert cli_main(["power", "--standin", "G3_circuit",
                         "--rows", "600", "-k", "2", "--ones"]) == 0
        assert "checksum" in capsys.readouterr().out

    def test_power_scipy_backend(self, capsys):
        assert cli_main(["power", "--standin", "pwtk", "--rows", "600",
                         "-k", "3", "--backend", "scipy"]) == 0
        assert "L x2, U x2" in capsys.readouterr().out

    def test_reorder_standin_rcm(self, tmp_path, capsys):
        out = str(tmp_path / "r.mtx")
        assert cli_main(["reorder", "--standin", "pwtk", "--rows", "600",
                         "-o", out, "--method", "rcm"]) == 0
        assert "bandwidth" in capsys.readouterr().out

    def test_info_rejects_missing_input(self):
        with pytest.raises(SystemExit, match="MatrixMarket"):
            cli_main(["info"])


class TestHasSortedIndices:
    def test_multi_row_detection(self):
        a = CSRMatrix([0, 2, 4], [0, 1, 1, 0], [1.0] * 4, (2, 2))
        assert not a.has_sorted_indices()
        assert a.sort_indices().has_sorted_indices()

    def test_grid_sorted_by_construction(self, grid):
        assert grid.has_sorted_indices()
