"""Integration tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.matrices import generate_standin
from repro.sparse import read_matrix_market, write_matrix_market


@pytest.fixture()
def mtx_file(tmp_path):
    a = generate_standin("pwtk", n_rows=800)
    path = tmp_path / "m.mtx"
    write_matrix_market(a, str(path))
    return str(path)


def test_info_standin(capsys):
    assert main(["info", "--standin", "G3_circuit", "--rows", "900"]) == 0
    out = capsys.readouterr().out
    assert "bandwidth" in out and "symmetric pattern" in out


def test_info_file(mtx_file, capsys):
    assert main(["info", mtx_file]) == 0
    assert "nnz" in capsys.readouterr().out


def test_power_methods_agree(mtx_file, capsys):
    checksums = {}
    for method in ("fbmpk", "standard", "mkl", "lbmpk", "explicit"):
        assert main(["power", mtx_file, "-k", "4", "--method", method,
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        checksums[method] = out.split("checksum = ")[1].split()[0]
    values = {float(v) for v in checksums.values()}
    ref = float(checksums["standard"])
    for v in values:
        assert v == pytest.approx(ref, rel=1e-9)


def test_power_reports_pass_counts(mtx_file, capsys):
    assert main(["power", mtx_file, "-k", "6"]) == 0
    out = capsys.readouterr().out
    assert "L x3, U x4" in out


def test_preprocess_then_power(mtx_file, tmp_path, capsys):
    op_path = str(tmp_path / "op.npz")
    assert main(["preprocess", mtx_file, "-o", op_path]) == 0
    assert "saved to" in capsys.readouterr().out
    assert main(["power", "--operator", op_path, "-k", "5",
                 "--seed", "3"]) == 0
    out_op = capsys.readouterr().out
    assert main(["power", mtx_file, "-k", "5", "--method", "standard",
                 "--seed", "3"]) == 0
    out_std = capsys.readouterr().out
    c1 = float(out_op.split("checksum = ")[1].split()[0])
    c2 = float(out_std.split("checksum = ")[1].split()[0])
    assert c1 == pytest.approx(c2, rel=1e-9)


@pytest.mark.parametrize("method", ["abmc", "rcm"])
def test_reorder_roundtrip(mtx_file, tmp_path, capsys, method):
    out_path = str(tmp_path / "re.mtx")
    assert main(["reorder", mtx_file, "-o", out_path,
                 "--method", method]) == 0
    assert "bandwidth" in capsys.readouterr().out
    original = read_matrix_market(mtx_file).to_csr()
    reordered = read_matrix_market(out_path).to_csr()
    assert reordered.nnz == original.nnz
    # Symmetric permutation preserves the spectrum's trace.
    assert float(reordered.diagonal().sum()) \
        == pytest.approx(float(original.diagonal().sum()), rel=1e-12)


def test_predict(capsys):
    assert main(["predict", "cant"]) == 0
    out = capsys.readouterr().out
    assert "FT 2000+" in out and "speedup vs k" in out


def test_missing_matrix_argument():
    with pytest.raises(SystemExit):
        main(["info"])
