"""Integration tests for the ``python -m repro.bench`` runner and the
API-doc generator tool."""

import runpy
import sys

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestBenchRunner:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for key in ("fig7", "fig9", "table1"):
            assert key in out

    def test_single_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "FT 2000+" in out and "None" in out  # FT has no L3

    def test_fig9_with_reference_rows(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "mean (paper)" in out and "theory" not in out.lower() \
            or "mean (model)" in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig12",
        }

    def test_every_experiment_runs(self, capsys):
        for name, fn in EXPERIMENTS.items():
            out = fn()
            assert isinstance(out, str) and len(out) > 50, name


class TestApiDocTool:
    def test_run_via_runpy(self, monkeypatch, capsys):
        monkeypatch.setattr(sys, "argv", ["gen_api_docs.py"])
        with pytest.raises(SystemExit) as exc:
            runpy.run_path("tools/gen_api_docs.py", run_name="__main__")
        assert exc.value.code == 0
        assert "api.md" in capsys.readouterr().out


def test_api_doc_file_current():
    """docs/api.md exists and mentions the headline classes."""
    text = open("docs/api.md").read()
    for name in ("FBMPKOperator", "CSRMatrix", "abmc_ordering",
                 "predict_speedup", "MultilevelAMG"):
        assert name in text, name
