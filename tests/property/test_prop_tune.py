"""Property-based tests of the autotuner's central invariant: whatever
plan wins, tuned execution is bit-identical to the default path — on
arbitrary square sparse matrices, vectors and powers.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fbmpk import build_fbmpk_operator
from repro.sparse import CSRMatrix
from repro.tune import (
    ExecutionPlan,
    autotune_power,
    autotune_spmv,
    default_power_plan,
    default_spmv_plan,
    fingerprint_matrix,
)

# Small but exercising candidate set: default, a grouping alternative,
# the threaded executor, and the (rejectable) unfused variant.
PROP_CANDIDATES = [
    default_power_plan(),
    ExecutionPlan("power", {"variant": "fused", "strategy": "levels",
                            "block_size": 1, "backend": "numpy",
                            "executor": "serial"}),
    ExecutionPlan("power", {"variant": "fused", "strategy": "abmc",
                            "block_size": 1, "backend": "numpy",
                            "executor": "threads", "n_threads": 2}),
    ExecutionPlan("power", {"variant": "unfused", "strategy": "none",
                            "block_size": 1, "backend": "numpy",
                            "executor": "serial"}),
]


@st.composite
def square_csr_with_vector(draw, max_n=20):
    n = draw(st.integers(min_value=2, max_value=max_n))
    density = draw(st.floats(min_value=0.05, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    rng = np.random.default_rng(seed)
    dense = rng.uniform(-1.0, 1.0, size=(n, n))
    mask = rng.random((n, n)) < density
    dense = np.where(mask, dense, 0.0)
    np.fill_diagonal(dense, rng.uniform(0.5, 1.5, size=n))
    x = rng.uniform(-1.0, 1.0, size=n)
    return CSRMatrix.from_dense(dense), x


@settings(max_examples=25, deadline=None)
@given(data=square_csr_with_vector(),
       k=st.integers(min_value=1, max_value=6))
def test_tuned_power_always_bit_identical(data, k):
    a, x = data
    op, res = autotune_power(a, k=k, cache=False, repeats=1, warmup=0,
                             candidates=PROP_CANDIDATES)
    ref = build_fbmpk_operator(a)
    try:
        assert np.array_equal(op.power(x, k), ref.power(x, k))
        # Whatever won, the default trial must have been measured.
        assert res.trials[0].plan == default_power_plan()
    finally:
        op.close()
        ref.close()


@settings(max_examples=25, deadline=None)
@given(data=square_csr_with_vector())
def test_tuned_spmv_always_bit_identical(data):
    a, x = data
    fn, res = autotune_spmv(a, cache=False, repeats=1, warmup=0)
    assert np.array_equal(fn(x), a.matvec(x))
    assert res.trials[0].plan == default_spmv_plan()


@settings(max_examples=30, deadline=None)
@given(data=square_csr_with_vector(), seed=st.integers(0, 2 ** 31))
def test_fingerprint_value_invariance(data, seed):
    """Fingerprints ignore values and track structure, on arbitrary
    matrices."""
    a, _ = data
    rng = np.random.default_rng(seed)
    same_structure = CSRMatrix(a.indptr, a.indices,
                               rng.uniform(-1, 1, size=a.nnz), a.shape,
                               check=False)
    assert fingerprint_matrix(same_structure).key() \
        == fingerprint_matrix(a).key()
