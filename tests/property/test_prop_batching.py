"""Differential tests of the serving path's batching invariant: a
stacked multi-RHS ``power_block`` sweep must be **bitwise identical**,
column for column, to per-request ``power`` calls — across input
dtypes, k values, batch widths and all three executors.  This is the
property that lets the solve service batch concurrent tenants' requests
without changing a single bit of anyone's answer.

Restricted to the ``numpy`` backend: that is exactly the set of
operators the service batches (``ResidentOperator.can_batch``), and
the tuner's bit-identical-by-design gate guarantees every tuned
serving plan lands in it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fbmpk import build_fbmpk_operator
from repro.matrices.generators import banded_random, poisson2d
from repro.sparse import CSRMatrix

EXECUTORS = ["serial", "threads", "processes"]
K_VALUES = [0, 1, 2, 3, 5, 8]


def _block_matches_per_vector(op, X, k):
    Y = op.power_block(X.copy(), k)
    for j in range(X.shape[1]):
        y = op.power(X[:, j].copy(), k)
        if not np.array_equal(Y[:, j], y):
            return False, j
    return True, None


@pytest.fixture(scope="module")
def mat():
    return banded_random(140, bandwidth=6, nnz_per_row=9,
                         symmetric=True, seed=11)


# -- executors × k ---------------------------------------------------------
@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("k", K_VALUES)
def test_block_bitwise_identical_per_executor(mat, executor, k):
    kwargs = {"n_threads": 2} if executor != "serial" else {}
    op = build_fbmpk_operator(mat, backend="numpy", executor=executor,
                              **kwargs)
    try:
        rng = np.random.default_rng(k)
        X = rng.standard_normal((mat.n_rows, 5))
        ok, col = _block_matches_per_vector(op, X, k)
        assert ok, f"column {col} differs (executor={executor}, k={k})"
    finally:
        op.close()


# -- strategies and widths -------------------------------------------------
@pytest.mark.parametrize("strategy", ["abmc", "levels"])
@pytest.mark.parametrize("width", [1, 2, 3, 7])
def test_block_bitwise_identical_per_strategy_and_width(strategy, width):
    a = poisson2d(7, seed=2)
    op = build_fbmpk_operator(a, strategy=strategy, backend="numpy")
    try:
        X = np.random.default_rng(width).standard_normal(
            (a.n_rows, width))
        ok, col = _block_matches_per_vector(op, X, 4)
        assert ok, f"column {col} differs (strategy={strategy})"
    finally:
        op.close()


# -- input dtypes ----------------------------------------------------------
@pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int32])
def test_block_bitwise_identical_across_input_dtypes(mat, dtype):
    """Inputs of any dtype are converted to float64 once, identically
    on both paths — a float32 or integer RHS batches bit-exactly too."""
    op = build_fbmpk_operator(mat, backend="numpy")
    try:
        rng = np.random.default_rng(0)
        if np.issubdtype(dtype, np.integer):
            X = rng.integers(-5, 5, size=(mat.n_rows, 4)).astype(dtype)
        else:
            X = rng.standard_normal((mat.n_rows, 4)).astype(dtype)
        Y = op.power_block(X, 3)
        assert Y.dtype == np.float64
        for j in range(X.shape[1]):
            y = op.power(np.asarray(X[:, j], dtype=np.float64), 3)
            assert np.array_equal(Y[:, j], y)
    finally:
        op.close()


# -- hypothesis sweep ------------------------------------------------------
@st.composite
def square_csr(draw, max_n=20):
    n = draw(st.integers(min_value=1, max_value=max_n))
    density = draw(st.floats(min_value=0.0, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    rng = np.random.default_rng(seed)
    dense = rng.uniform(-1.0, 1.0, size=(n, n))
    mask = rng.random((n, n)) < density
    return CSRMatrix.from_dense(np.where(mask, dense, 0.0))


@settings(max_examples=40, deadline=None)
@given(a=square_csr(), k=st.integers(min_value=0, max_value=6),
       width=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=2 ** 31))
def test_block_bitwise_identical_arbitrary_matrices(a, k, width, seed):
    op = build_fbmpk_operator(a, backend="numpy")
    try:
        X = np.random.default_rng(seed).uniform(
            -1.0, 1.0, size=(a.n_rows, width))
        ok, col = _block_matches_per_vector(op, X, k)
        assert ok, f"column {col} differs (n={a.n_rows}, k={k})"
    finally:
        op.close()


# -- deadline-annotated batching -------------------------------------------
@settings(max_examples=15, deadline=None)
@given(width=st.integers(min_value=1, max_value=6),
       k=st.integers(min_value=0, max_value=5),
       seed=st.integers(min_value=0, max_value=2 ** 31))
def test_deadline_annotated_batching_bitwise_identical(width, k, seed):
    """Attaching generous ``deadline_ms`` budgets to batched requests
    must not change a single bit of any response: the deadline is pure
    admission control, never arithmetic."""
    import asyncio

    from repro.serve import ServeConfig, SolveService

    spec_rows = 64
    payloads = []
    rng = np.random.default_rng(seed)
    xs = [rng.standard_normal(spec_rows) for _ in range(width)]
    for i, x in enumerate(xs):
        req = {"id": f"r{i}", "op": "power", "k": k,
               "tenant": f"t{i % 2}",
               "matrix": {"standin": "cant", "rows": spec_rows,
                          "seed": 1},
               "x": x.tolist()}
        if i % 2 == 0:  # mix annotated and unannotated in one batch
            req["deadline_ms"] = 600_000
        payloads.append(req)

    async def main():
        svc = SolveService(ServeConfig(tune="off",
                                       gather_window_s=0.02))
        resps = await asyncio.gather(*[svc.handle(p) for p in payloads])
        await svc.close()
        return resps

    resps = asyncio.run(main())
    assert all(r["ok"] for r in resps), resps

    from repro.matrices import generate_standin

    a = generate_standin("cant", n_rows=spec_rows, seed=1)
    op = build_fbmpk_operator(a)
    try:
        for x, r in zip(xs, resps):
            ref = op.power(x.copy(), k)
            assert np.array_equal(np.asarray(r["y"]), ref)
    finally:
        op.close()
