"""Property-based tests: distributed MPK equals serial MPK for any
partitioning, any power, any matrix."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mpk import mpk_reference_dense
from repro.distributed import (
    distributed_mpk,
    distributed_mpk_ca,
    distributed_spmv,
    partition_rows,
)
from repro.sparse import CSRMatrix, matrix_power_explicit, spgemm


@st.composite
def square_csr_with_vector(draw, max_n=26):
    n = draw(st.integers(min_value=2, max_value=max_n))
    density = draw(st.floats(min_value=0.0, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    rng = np.random.default_rng(seed)
    dense = rng.uniform(-1.0, 1.0, size=(n, n))
    dense = np.where(rng.random((n, n)) < density, dense, 0.0)
    a = CSRMatrix.from_dense(dense)
    x = rng.uniform(-1.0, 1.0, size=n)
    return a, x


@settings(max_examples=50, deadline=None)
@given(data=square_csr_with_vector(),
       ranks=st.integers(min_value=1, max_value=6),
       k=st.integers(min_value=0, max_value=5))
def test_distributed_strategies_equal_serial(data, ranks, k):
    a, x = data
    ranks = min(ranks, a.n_rows)
    part = partition_rows(a, ranks)
    ref = mpk_reference_dense(a, x, k)
    y_std, s_std = distributed_mpk(part, x, k)
    y_ca, s_ca = distributed_mpk_ca(part, x, k)
    np.testing.assert_allclose(y_std, ref, rtol=1e-9, atol=1e-11)
    np.testing.assert_allclose(y_ca, ref, rtol=1e-9, atol=1e-11)
    # Round accounting invariants.
    assert s_std.rounds == k
    assert s_ca.rounds == (1 if k else 0)
    assert s_std.volume_doubles >= 0 and s_ca.volume_doubles >= 0


@settings(max_examples=50, deadline=None)
@given(data=square_csr_with_vector(max_n=18))
def test_spgemm_associativity_with_matvec(data):
    """(A @ A) @ x == A @ (A @ x) — SpGEMM agrees with repeated SpMV."""
    a, x = data
    a2 = spgemm(a, a)
    np.testing.assert_allclose(a2.matvec(x), a.matvec(a.matvec(x)),
                               rtol=1e-9, atol=1e-11)
    a3 = matrix_power_explicit(a, 3)
    np.testing.assert_allclose(a3.matvec(x),
                               a.matvec(a.matvec(a.matvec(x))),
                               rtol=1e-9, atol=1e-11)
