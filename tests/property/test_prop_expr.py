"""Property-based tests of the expression algebra: the coefficient
representation must satisfy the vector-space laws (up to floating-point
rounding — coefficient addition is float addition) and evaluation must
be linear in the expression."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expr import A, SSpMVExpression, from_coefficients

coeff_lists = st.lists(
    st.floats(min_value=-4.0, max_value=4.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=6,
)


def approx_equal(e1: SSpMVExpression, e2: SSpMVExpression) -> bool:
    """Coefficient-wise comparison with FP tolerance (exact __eq__ is
    intentionally strict; algebra laws only hold up to rounding)."""
    a, b = e1.alphas, e2.alphas
    n = max(a.shape[0], b.shape[0])
    pa = np.zeros(n, dtype=np.result_type(a, b))
    pb = np.zeros(n, dtype=np.result_type(a, b))
    pa[: a.shape[0]] = a
    pb[: b.shape[0]] = b
    return bool(np.allclose(pa, pb, rtol=1e-12, atol=1e-12))


@settings(max_examples=80, deadline=None)
@given(a=coeff_lists, b=coeff_lists, c=coeff_lists)
def test_vector_space_laws(a, b, c):
    ea, eb, ec = (from_coefficients(v) for v in (a, b, c))
    assert approx_equal(ea + eb, eb + ea)                 # commutative
    assert approx_equal((ea + eb) + ec, ea + (eb + ec))   # associative
    assert approx_equal(ea - ea, from_coefficients([0.0]))
    assert approx_equal(ea + from_coefficients([0.0]), ea)
    assert approx_equal(-(-ea), ea)


@settings(max_examples=80, deadline=None)
@given(a=coeff_lists, s=st.floats(min_value=-3.0, max_value=3.0,
                                  allow_nan=False),
       t=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False))
def test_scalar_distributivity(a, s, t):
    ea = from_coefficients(a)
    assert approx_equal((s + t) * ea, s * ea + t * ea)
    assert approx_equal(s * (t * ea), (s * t) * ea)


@settings(max_examples=80, deadline=None)
@given(a=coeff_lists, b=coeff_lists)
def test_matrix_application_is_linear(a, b):
    ea, eb = from_coefficients(a), from_coefficients(b)
    assert approx_equal(A(ea + eb), A(ea) + A(eb))
    assert approx_equal(A(2.0 * ea), 2.0 * A(ea))
    # Shifting twice equals A^2 application — exact (pure index shifts).
    assert A(A(ea)) == (A ** 2) @ ea


@settings(max_examples=80, deadline=None)
@given(a=coeff_lists)
def test_exact_equality_for_identical_construction(a):
    """Strict __eq__ is reliable for identically constructed values."""
    assert from_coefficients(a) == from_coefficients(a)
    assert A(from_coefficients(a)) == from_coefficients([0.0] + list(a))


@settings(max_examples=30, deadline=None)
@given(a=coeff_lists, b=coeff_lists,
       seed=st.integers(min_value=0, max_value=2 ** 31))
def test_evaluation_respects_algebra(a, b, seed):
    """(p + q)(A) x == p(A) x + q(A) x through the FBMPK evaluator."""
    from repro.core.fbmpk import build_fbmpk_operator
    from repro.matrices import poisson2d

    mat = poisson2d(5, seed=1)
    op = build_fbmpk_operator(mat, strategy="levels")
    x = np.random.default_rng(seed).standard_normal(mat.n_rows)
    ea, eb = from_coefficients(a), from_coefficients(b)
    combined = (ea + eb).evaluate(op, x)
    separate = ea.evaluate(op, x) + eb.evaluate(op, x)
    np.testing.assert_allclose(combined, separate, rtol=1e-9, atol=1e-10)
