"""Property-based tests of the FBMPK equivalence — the library's central
invariant: every pipeline computes exactly the standard MPK result on
*arbitrary* square sparse matrices and vectors.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.fbmpk import (
    build_fbmpk_operator,
    fbmpk_reference,
    fbmpk_unfused,
)
from repro.core.mpk import mpk_reference_dense
from repro.core.partition import split_ldu
from repro.core.sspmv import sspmv_fbmpk, sspmv_standard
from repro.sparse import CSRMatrix


@st.composite
def square_csr(draw, max_n=24):
    """Random square CSR matrix with bounded values (entries in
    [-1, 1] so powers cannot overflow for small k)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    density = draw(st.floats(min_value=0.0, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    rng = np.random.default_rng(seed)
    dense = rng.uniform(-1.0, 1.0, size=(n, n))
    mask = rng.random((n, n)) < density
    dense = np.where(mask, dense, 0.0)
    return CSRMatrix.from_dense(dense)


@st.composite
def csr_with_vector(draw, max_n=24):
    a = draw(square_csr(max_n=max_n))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    x = np.random.default_rng(seed).uniform(-1.0, 1.0, size=a.n_rows)
    return a, x


@settings(max_examples=60, deadline=None)
@given(data=csr_with_vector(), k=st.integers(min_value=0, max_value=6))
def test_reference_and_unfused_match_dense(data, k):
    a, x = data
    expected = mpk_reference_dense(a, x, k)
    part = split_ldu(a)
    np.testing.assert_allclose(fbmpk_reference(part, x, k), expected,
                               rtol=1e-9, atol=1e-11)
    np.testing.assert_allclose(fbmpk_unfused(part, x, k), expected,
                               rtol=1e-9, atol=1e-11)


@settings(max_examples=40, deadline=None)
@given(data=csr_with_vector(), k=st.integers(min_value=0, max_value=6),
       strategy=st.sampled_from(["abmc", "levels"]),
       block_size=st.sampled_from([1, 3, 8]))
def test_fused_operator_matches_dense(data, k, strategy, block_size):
    a, x = data
    op = build_fbmpk_operator(a, strategy=strategy, block_size=block_size)
    np.testing.assert_allclose(op.power(x, k),
                               mpk_reference_dense(a, x, k),
                               rtol=1e-9, atol=1e-11)


@settings(max_examples=40, deadline=None)
@given(data=csr_with_vector(),
       alphas=st.lists(st.floats(min_value=-2.0, max_value=2.0),
                       min_size=1, max_size=6))
def test_sspmv_combination_equivalence(data, alphas):
    a, x = data
    op = build_fbmpk_operator(a, strategy="levels")
    np.testing.assert_allclose(sspmv_fbmpk(op, x, alphas),
                               sspmv_standard(a, x, alphas),
                               rtol=1e-8, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(data=csr_with_vector(), k=st.integers(min_value=1, max_value=6))
def test_iterate_callback_yields_prefix_powers(data, k):
    """Every intermediate iterate reported by on_iterate equals the
    corresponding standard power."""
    a, x = data
    op = build_fbmpk_operator(a, strategy="levels")
    seen = {}
    op.power(x, k, on_iterate=lambda i, xi: seen.setdefault(i, xi))
    assert sorted(seen) == list(range(1, k + 1))
    for i, xi in seen.items():
        np.testing.assert_allclose(xi, mpk_reference_dense(a, x, i),
                                   rtol=1e-9, atol=1e-11)
