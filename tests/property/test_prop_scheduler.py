"""Property-based tests of the block-to-thread assignment policies.

The invariant every policy must hold: :func:`assign_tasks` is a pure
*partition* of the phase's tasks — the union of the per-thread bins is
exactly the input multiset, nothing dropped, nothing duplicated.  A
violation would make the threaded executor silently skip (or re-run)
blocks, which the differential tests would catch only probabilistically;
here it is checked directly on arbitrary task lists.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import BlockTask, assign_tasks

POLICIES = ["round_robin", "lpt", "dynamic"]


@st.composite
def task_lists(draw, max_tasks=40):
    """Arbitrary task lists: row ranges need not tile [0, n) here —
    assign_tasks only reads nnz — but duplicates of an identical task
    are allowed and must survive as duplicates."""
    n_tasks = draw(st.integers(min_value=0, max_value=max_tasks))
    tasks = []
    for _ in range(n_tasks):
        start = draw(st.integers(min_value=0, max_value=10_000))
        rows = draw(st.integers(min_value=1, max_value=512))
        nnz = draw(st.integers(min_value=0, max_value=100_000))
        tasks.append(BlockTask(start, start + rows, nnz))
    return tasks


policy_st = st.sampled_from(POLICIES)
threads_st = st.integers(min_value=1, max_value=12)


@settings(max_examples=200, deadline=None)
@given(tasks=task_lists(), n_threads=threads_st, policy=policy_st)
def test_bins_partition_the_task_multiset(tasks, n_threads, policy):
    bins = assign_tasks(tasks, n_threads, policy=policy)
    assert len(bins) == n_threads
    assigned = [t for b in bins for t in b]
    # BlockTask is frozen/hashable, so Counter compares true multisets.
    assert Counter(assigned) == Counter(tasks)


@settings(max_examples=100, deadline=None)
@given(tasks=task_lists(), n_threads=threads_st, policy=policy_st)
def test_no_thread_starves_while_another_hoards(tasks, n_threads, policy):
    """Static assignment spreads work: with ``t`` tasks, exactly
    ``min(t, n_threads)`` bins are non-empty (round-robin by
    construction; lpt/dynamic because an empty bin has load 0 and argmin
    would pick it before any loaded bin)."""
    bins = assign_tasks(tasks, n_threads, policy=policy)
    non_empty = sum(1 for b in bins if b)
    assert non_empty == min(len(tasks), n_threads)


@settings(max_examples=100, deadline=None)
@given(tasks=task_lists(), n_threads=threads_st)
def test_round_robin_layout(tasks, n_threads):
    bins = assign_tasks(tasks, n_threads, policy="round_robin")
    for i, t in enumerate(tasks):
        assert bins[i % n_threads][i // n_threads] == t


@settings(max_examples=100, deadline=None)
@given(tasks=task_lists(), n_threads=threads_st,
       policy=st.sampled_from(["round_robin", "dynamic"]))
def test_order_preserved_within_bins(tasks, n_threads, policy):
    """round_robin and dynamic consume tasks in input order, so each
    bin's tasks appear in their original relative order (lpt is exempt:
    it sorts by descending nnz first)."""
    def is_subsequence(sub, seq):
        it = iter(seq)
        return all(any(t == s for s in it) for t in sub)

    for b in assign_tasks(tasks, n_threads, policy=policy):
        assert is_subsequence(b, tasks)


@settings(max_examples=50, deadline=None)
@given(n_threads=threads_st, policy=policy_st)
def test_empty_phase(n_threads, policy):
    bins = assign_tasks([], n_threads, policy=policy)
    assert bins == [[] for _ in range(n_threads)]


@settings(max_examples=50, deadline=None)
@given(n_threads=threads_st, policy=policy_st,
       nnz=st.integers(min_value=0, max_value=1000))
def test_single_task_phase(n_threads, policy, nnz):
    task = BlockTask(0, 8, nnz)
    bins = assign_tasks([task], n_threads, policy=policy)
    assert sum(len(b) for b in bins) == 1
    assert [t for b in bins for t in b] == [task]


@settings(max_examples=100, deadline=None)
@given(tasks=task_lists(max_tasks=20), policy=policy_st)
def test_one_thread_gets_everything(tasks, policy):
    (bin0,) = assign_tasks(tasks, 1, policy=policy)
    assert Counter(bin0) == Counter(tasks)


def test_unknown_policy_rejected():
    import pytest

    with pytest.raises(ValueError, match="policy"):
        assign_tasks([BlockTask(0, 1, 1)], 2, policy="guided")
    with pytest.raises(ValueError, match="n_threads"):
        assign_tasks([BlockTask(0, 1, 1)], 0)
