"""Property-based fuzzing of the storage-format conversions: every
format must reproduce the same dense matrix and the same SpMV result for
arbitrary structures and format parameters."""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    CSRMatrix,
    ELLMatrix,
    SellCSigmaMatrix,
    read_matrix_market,
    write_matrix_market,
)
from repro.sparse.bsr import BSRMatrix


@st.composite
def any_csr(draw, max_n=24):
    rows = draw(st.integers(min_value=1, max_value=max_n))
    cols = draw(st.integers(min_value=1, max_value=max_n))
    density = draw(st.floats(min_value=0.0, max_value=0.7))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    rng = np.random.default_rng(seed)
    dense = rng.uniform(-2.0, 2.0, size=(rows, cols))
    dense = np.where(rng.random((rows, cols)) < density, dense, 0.0)
    return CSRMatrix.from_dense(dense)


@settings(max_examples=60, deadline=None)
@given(a=any_csr(), c=st.integers(min_value=1, max_value=9),
       sigma=st.integers(min_value=1, max_value=32),
       seed=st.integers(min_value=0, max_value=2 ** 31))
def test_ell_sell_fuzz(a, c, sigma, seed):
    dense = a.to_dense()
    x = np.random.default_rng(seed).standard_normal(a.n_cols)
    ell = ELLMatrix.from_csr(a)
    sell = SellCSigmaMatrix(a, c=c, sigma=sigma)
    np.testing.assert_array_equal(ell.to_csr().to_dense(), dense)
    np.testing.assert_array_equal(sell.to_csr().to_dense(), dense)
    expected = dense @ x
    np.testing.assert_allclose(ell.matvec(x), expected, rtol=1e-9,
                               atol=1e-10)
    np.testing.assert_allclose(sell.matvec(x), expected, rtol=1e-9,
                               atol=1e-10)
    # Padding accounting is consistent.
    assert ell.nnz == a.nnz
    assert sell.nnz == a.nnz
    assert sell.padding >= 0 and ell.padding >= 0


@settings(max_examples=60, deadline=None)
@given(nodes=st.integers(min_value=1, max_value=8),
       r=st.integers(min_value=1, max_value=4),
       density=st.floats(min_value=0.0, max_value=0.8),
       seed=st.integers(min_value=0, max_value=2 ** 31))
def test_bsr_fuzz(nodes, r, density, seed):
    rng = np.random.default_rng(seed)
    n = nodes * r
    dense = rng.uniform(-1.0, 1.0, size=(n, n))
    dense = np.where(rng.random((n, n)) < density, dense, 0.0)
    a = CSRMatrix.from_dense(dense)
    bsr = BSRMatrix.from_csr(a, r)
    np.testing.assert_allclose(bsr.to_csr().to_dense(), dense, rtol=0,
                               atol=0)
    x = rng.standard_normal(n)
    np.testing.assert_allclose(bsr.matvec(x), dense @ x, rtol=1e-9,
                               atol=1e-10)
    assert bsr.nnz >= a.nnz  # zero fill only adds


@settings(max_examples=40, deadline=None)
@given(a=any_csr(max_n=16))
def test_matrix_market_roundtrip_fuzz(a):
    buf = io.StringIO()
    write_matrix_market(a, buf)
    buf.seek(0)
    back = read_matrix_market(buf).to_csr()
    np.testing.assert_array_equal(back.to_dense(), a.to_dense())
