"""Property-based tests of the cache simulator and traffic model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import theoretical_ratio
from repro.memsim.cache import CacheConfig, CacheLevel
from repro.memsim.traffic import (
    MatrixTrafficStats,
    fbmpk_traffic,
    miss_fraction,
    mpk_standard_traffic,
    traffic_ratio,
)


@settings(max_examples=60, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=2 ** 16),
                      min_size=1, max_size=300),
       assoc=st.sampled_from([1, 2, 4, 8]))
def test_cache_accounting_invariants(addrs, assoc):
    c = CacheLevel(CacheConfig(size_bytes=64 * 8 * assoc, line_bytes=64,
                               associativity=assoc))
    for a in addrs:
        c.access(a)
    stats = c.stats
    assert stats.hits + stats.misses == len(addrs)
    assert stats.evictions <= stats.misses
    assert stats.writebacks <= stats.evictions
    # Immediately repeating the last access must hit.
    assert c.access(addrs[-1])


@settings(max_examples=60, deadline=None)
@given(addrs=st.lists(st.integers(min_value=0, max_value=2 ** 14),
                      min_size=1, max_size=200))
def test_bigger_cache_never_misses_more(addrs):
    """LRU with more ways at the same set count is inclusion-monotone."""
    small = CacheLevel(CacheConfig(size_bytes=64 * 4 * 2, line_bytes=64,
                                   associativity=2))
    large = CacheLevel(CacheConfig(size_bytes=64 * 4 * 8, line_bytes=64,
                                   associativity=8))
    for a in addrs:
        small.access(a)
        large.access(a)
    assert large.stats.misses <= small.stats.misses


@settings(max_examples=80, deadline=None)
@given(ws=st.floats(min_value=1, max_value=1e12),
       cache=st.floats(min_value=1, max_value=1e12))
def test_miss_fraction_bounded(ws, cache):
    mf = miss_fraction(ws, cache)
    assert 0.0 <= mf < 1.0


@settings(max_examples=60, deadline=None)
@given(n=st.integers(min_value=100, max_value=10 ** 7),
       nnz_per_row=st.floats(min_value=4.0, max_value=120.0),
       band=st.floats(min_value=10.0, max_value=1e6),
       k=st.integers(min_value=1, max_value=12),
       cache_mb=st.floats(min_value=0.1, max_value=256.0))
def test_traffic_model_invariants(n, nnz_per_row, band, k, cache_mb):
    stats = MatrixTrafficStats(n=n, nnz=int(n * nnz_per_row),
                               bandwidth=band)
    cache = cache_mb * 2 ** 20
    std = mpk_standard_traffic(stats, k, cache)
    fb = fbmpk_traffic(stats, k, cache)
    # All components non-negative.
    for t in (std, fb):
        assert t.matrix_bytes >= 0
        assert t.vector_read_bytes >= 0
        assert t.vector_write_bytes >= 0
    # Over the paper's evaluation domain (k >= 2, nnz/row >= 4.8) the
    # FBMPK matrix stream never exceeds the baseline's and respects the
    # (k+1)/2k plan up to the extra row_ptr/diagonal streams.  (For k=1
    # or ultra-sparse matrices the split's bookkeeping overhead can win,
    # which is why the paper evaluates k >= 3.)
    if k >= 2:
        assert fb.matrix_bytes <= std.matrix_bytes * 1.05
        assert fb.matrix_bytes / std.matrix_bytes \
            <= theoretical_ratio(k) + 0.25
    # BtB never increases traffic.
    fb_split = fbmpk_traffic(stats, k, cache, btb=False)
    assert fb.total_bytes <= fb_split.total_bytes + 1e-9
    # Ratio definition consistency.
    r = traffic_ratio(stats, k, cache)
    assert r == fb.total_bytes / std.total_bytes
