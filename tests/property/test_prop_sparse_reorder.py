"""Property-based tests of sparse-format and reordering invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reorder import (
    abmc_ordering,
    adjacency_from_matrix,
    check_coloring,
    compute_levels,
    greedy_coloring,
    invert_permutation,
    is_permutation,
    luby_coloring,
    permute_symmetric,
    permute_vector,
    unpermute_vector,
)
from repro.reorder.levels import check_levels
from repro.core.partition import split_ldu
from repro.core.btb import deinterleave, interleave
from repro.sparse import CSRMatrix, ELLMatrix, SellCSigmaMatrix


@st.composite
def square_csr(draw, max_n=28):
    n = draw(st.integers(min_value=1, max_value=max_n))
    density = draw(st.floats(min_value=0.0, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n))
    dense = np.where(rng.random((n, n)) < density, dense, 0.0)
    return CSRMatrix.from_dense(dense)


@settings(max_examples=60, deadline=None)
@given(a=square_csr())
def test_format_roundtrips_preserve_dense(a):
    dense = a.to_dense()
    np.testing.assert_array_equal(ELLMatrix.from_csr(a).to_csr().to_dense(),
                                  dense)
    np.testing.assert_array_equal(
        SellCSigmaMatrix(a, c=4, sigma=8).to_csr().to_dense(), dense)
    np.testing.assert_array_equal(a.transpose().transpose().to_dense(),
                                  dense)


@settings(max_examples=60, deadline=None)
@given(a=square_csr(), seed=st.integers(min_value=0, max_value=2 ** 31))
def test_matvec_consistent_across_formats(a, seed):
    x = np.random.default_rng(seed).standard_normal(a.n_cols)
    reference = a.to_dense() @ x
    np.testing.assert_allclose(a.matvec(x), reference, rtol=1e-9,
                               atol=1e-10)
    np.testing.assert_allclose(ELLMatrix.from_csr(a).matvec(x), reference,
                               rtol=1e-9, atol=1e-10)
    np.testing.assert_allclose(SellCSigmaMatrix(a, c=4).matvec(x),
                               reference, rtol=1e-9, atol=1e-10)


@settings(max_examples=60, deadline=None)
@given(a=square_csr())
def test_partition_is_exact_decomposition(a):
    part = split_ldu(a)
    np.testing.assert_array_equal(part.reassemble().to_dense(),
                                  a.to_dense())
    assert check_levels(part.lower, compute_levels(part.lower, "forward"))
    assert check_levels(part.upper, compute_levels(part.upper, "backward"))


@settings(max_examples=60, deadline=None)
@given(a=square_csr())
def test_level_computations_agree(a):
    """The sequential and vectorised level sweeps are two algorithms
    for the same fixpoint: they must agree exactly on any triangle, in
    both directions (including n=0 and empty-triangle inputs)."""
    from repro.reorder.levels import levels_sequential, levels_vectorised

    part = split_ldu(a)
    for tri, direction in ((part.lower, "forward"),
                           (part.upper, "backward")):
        np.testing.assert_array_equal(
            levels_sequential(tri, direction),
            levels_vectorised(tri, direction))


@settings(max_examples=60, deadline=None)
@given(a=square_csr(),
       block_size=st.integers(min_value=1, max_value=10))
def test_abmc_produces_valid_ordering(a, block_size):
    o = abmc_ordering(a, block_size=block_size)
    assert is_permutation(o.perm)
    # Reordering twice with the inverse restores the matrix.
    b = permute_symmetric(a, o.perm)
    back = permute_symmetric(b, invert_permutation(o.perm))
    np.testing.assert_array_equal(back.to_dense(), a.to_dense())


@settings(max_examples=60, deadline=None)
@given(a=square_csr(), seed=st.integers(min_value=0, max_value=2 ** 31))
def test_colorings_always_valid(a, seed):
    g = adjacency_from_matrix(a)
    assert check_coloring(g, greedy_coloring(g))
    assert check_coloring(g, luby_coloring(g, seed=seed % 100))


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 31),
       n=st.integers(min_value=1, max_value=64))
def test_permutation_and_btb_roundtrips(seed, n):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    x = rng.standard_normal(n)
    np.testing.assert_array_equal(
        unpermute_vector(permute_vector(x, perm), perm), x)
    even, odd = rng.standard_normal(n), rng.standard_normal(n)
    e, o = deinterleave(interleave(even, odd))
    np.testing.assert_array_equal(e, even)
    np.testing.assert_array_equal(o, odd)


@settings(max_examples=40, deadline=None)
@given(a=square_csr(), seed=st.integers(min_value=0, max_value=2 ** 31))
def test_select_rows_any_subset(a, seed):
    rng = np.random.default_rng(seed)
    size = rng.integers(0, a.n_rows + 1)
    rows = rng.integers(0, a.n_rows, size=size)
    sub = a.select_rows(rows)
    np.testing.assert_array_equal(sub.to_dense(), a.to_dense()[rows])
