"""Property-based tests on solver-level invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import split_ldu
from repro.solvers import conjugate_gradient, gershgorin_bounds
from repro.solvers.krylov import bicgstab, gmres
from repro.solvers.symgs import symgs_reference
from repro.sparse import CSRMatrix


@st.composite
def dd_system(draw, max_n=24):
    """Random diagonally-dominant system (guaranteed solvable) with an
    exact solution."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    symmetric = draw(st.booleans())
    rng = np.random.default_rng(seed)
    dense = rng.uniform(-1.0, 1.0, size=(n, n))
    dense = np.where(rng.random((n, n)) < 0.4, dense, 0.0)
    if symmetric:
        dense = 0.5 * (dense + dense.T)
    np.fill_diagonal(dense, 0.0)
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    a = CSRMatrix.from_dense(dense)
    x_true = rng.uniform(-1.0, 1.0, size=n)
    return a, x_true, symmetric


@settings(max_examples=40, deadline=None)
@given(system=dd_system())
def test_krylov_solvers_recover_solution(system):
    a, x_true, symmetric = system
    b = a.matvec(x_true)
    res_g = gmres(a, b, tol=1e-11, restart=min(30, a.n_rows))
    assert res_g.converged
    np.testing.assert_allclose(res_g.x, x_true, rtol=1e-6, atol=1e-8)
    res_b = bicgstab(a, b, tol=1e-11)
    if res_b.converged:  # BiCGSTAB may break down; then no claim
        np.testing.assert_allclose(res_b.x, x_true, rtol=1e-5, atol=1e-7)
    if symmetric:
        res_c = conjugate_gradient(a, b, tol=1e-11)
        assert res_c.converged
        np.testing.assert_allclose(res_c.x, x_true, rtol=1e-6, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(system=dd_system())
def test_symgs_is_contraction_on_dd_systems(system):
    """For strictly diagonally dominant A, Gauss-Seidel (hence SYMGS)
    contracts the error, and the true solution is a fixed point."""
    a, x_true, _ = system
    part = split_ldu(a)
    b = a.matvec(x_true)
    # Fixed point.
    np.testing.assert_allclose(symgs_reference(part, b, x_true), x_true,
                               rtol=1e-9, atol=1e-11)
    # Contraction from zero.
    x1 = symgs_reference(part, b)
    x2 = symgs_reference(part, b, x1)
    e0 = np.linalg.norm(x_true)
    e1 = np.linalg.norm(x1 - x_true)
    e2 = np.linalg.norm(x2 - x_true)
    assert e1 <= e0 + 1e-12
    assert e2 <= e1 + 1e-12


@settings(max_examples=40, deadline=None)
@given(system=dd_system())
def test_gershgorin_encloses_spectrum(system):
    a, _, _ = system
    lo, hi = gershgorin_bounds(a)
    eigs = np.linalg.eigvals(a.to_dense())
    assert eigs.real.min() >= lo - 1e-9
    assert eigs.real.max() <= hi + 1e-9
