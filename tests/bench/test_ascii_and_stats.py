"""Unit tests for ASCII chart rendering and matrix statistics."""

import numpy as np
import pytest

from repro.bench.ascii_plot import bar_chart, line_chart
from repro.matrices import banded_random, poisson2d
from repro.matrices.stats import analyze_matrix
from repro.sparse import CSRMatrix


class TestBarChart:
    def test_basic_rendering(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a ")
        assert "2.00" in lines[2]
        # Full-scale bar fills the width.
        assert lines[2].count("#") == 10

    def test_reference_marker(self):
        out = bar_chart(["x"], [2.0], width=10, reference=1.0)
        assert "|" in out or "+" in out

    def test_empty_and_errors(self):
        assert bar_chart([], [], title="empty") == "empty"
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_negative_values_clamped(self):
        out = bar_chart(["neg"], [-1.0], width=8)
        assert "#" not in out


class TestLineChart:
    def test_series_rendering(self):
        out = line_chart([1, 2, 3], {"s1": [1.0, 2.0, 3.0],
                                     "s2": [3.0, 2.0, 1.0]},
                         height=6, width=20, title="sweep")
        assert "sweep" in out
        assert "* s1" in out and "o s2" in out
        assert "3.00" in out and "1.00" in out

    def test_constant_series(self):
        out = line_chart([1, 2], {"flat": [5.0, 5.0]}, height=4, width=10)
        assert "flat" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"bad": [1.0]})

    def test_empty(self):
        assert line_chart([], {}, title="t") == "t"


class TestAnalyzeMatrix:
    def test_symmetric_banded(self):
        a = banded_random(200, 7, 10, symmetric=True, seed=1)
        r = analyze_matrix(a)
        assert r.n_rows == r.n_cols == 200
        assert r.nnz == a.nnz
        assert r.symmetric_pattern and r.symmetric_values
        assert r.full_diagonal
        assert 1 <= r.nnz_per_row_min <= r.nnz_per_row_mean \
            <= r.nnz_per_row_max
        assert r.gershgorin_hi >= r.gershgorin_lo
        # Generated matrices are scaled to inf-norm 1.
        assert r.gershgorin_hi <= 1.0 + 1e-9

    def test_unsymmetric_detected(self):
        a = banded_random(100, 5, 8, symmetric=False, seed=2)
        r = analyze_matrix(a)
        assert not r.symmetric_values

    def test_pattern_symmetric_values_not(self):
        dense = np.array([[1.0, 2.0], [3.0, 1.0]])
        r = analyze_matrix(CSRMatrix.from_dense(dense))
        assert r.symmetric_pattern and not r.symmetric_values

    def test_bandwidth_and_density(self):
        a = poisson2d(6)
        r = analyze_matrix(a)
        assert r.bandwidth == 6  # grid row stride
        assert 0 < r.density < 1

    def test_missing_diagonal(self):
        dense = np.array([[0.0, 1.0], [1.0, 0.0]])
        r = analyze_matrix(CSRMatrix.from_dense(dense))
        assert r.diagonal_nonzeros == 0
        assert not r.full_diagonal

    def test_as_dict_keys(self):
        r = analyze_matrix(poisson2d(4))
        d = r.as_dict()
        assert "bandwidth" in d and "Gershgorin" in d

    def test_requires_square(self):
        with pytest.raises(ValueError):
            analyze_matrix(CSRMatrix.zeros((2, 3)))
