"""Unit tests for the benchmark harness utilities."""

import numpy as np
import pytest

from repro.bench import bench_rows, format_table, geomean
from repro.bench.paper_data import (
    FIG7_AVERAGE_SPEEDUP,
    FIG9_MEAN_MEASURED_RATIO,
    TABLE3_ABMC_RATIO,
)


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([3.0]) == pytest.approx(3.0)
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, -1.0])


def test_bench_rows_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert bench_rows(1234) == 1234
    monkeypatch.setenv("REPRO_BENCH_SCALE", "777")
    assert bench_rows() == 777


def test_format_table_alignment():
    out = format_table(["name", "value"], [["a", 1.5], ["bb", 10.25]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "1.50" in out and "10.25" in out


def test_format_table_empty_rows():
    out = format_table(["h1", "h2"], [])
    assert "h1" in out


def test_paper_data_integrity():
    assert set(FIG7_AVERAGE_SPEEDUP) == {
        "FT 2000+", "Thunder X2", "KP 920", "Intel Xeon"}
    assert len(TABLE3_ABMC_RATIO) == 14
    assert FIG9_MEAN_MEASURED_RATIO[9] < FIG9_MEAN_MEASURED_RATIO[3]
