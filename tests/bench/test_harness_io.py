"""Unit tests for the remaining harness utilities (report tee, timer,
matrix cache)."""

import time

import numpy as np
import pytest

from repro.bench.harness import Timer, fbmpk_operator, standin, write_report


def test_timer_measures_elapsed():
    with Timer() as t:
        time.sleep(0.01)
    assert t.elapsed >= 0.009


def test_write_report_creates_file(capsys):
    path = write_report("selftest_report", "hello\ntable")
    out = capsys.readouterr().out
    assert "hello" in out and str(path) in out
    assert path.read_text() == "hello\ntable\n"
    # Every table comes with a schema-valid RunReport next to it.
    report_path = path.with_name("selftest_report.report.json")
    from repro.obs import load_report, validate_report

    assert validate_report(load_report(report_path)) == []
    path.unlink()  # keep benchmarks/out tidy
    report_path.unlink()


def test_standin_cache_returns_same_object():
    a1 = standin("pwtk", 1000)
    a2 = standin("pwtk", 1000)
    assert a1 is a2  # lru_cache identity
    a3 = standin("pwtk", 1200)
    assert a3 is not a1


def test_standin_respects_suitesparse_env(monkeypatch, tmp_path):
    """When REPRO_SUITESPARSE_DIR holds the real file, the harness uses
    it (verified through a tiny fake 'real' matrix)."""
    from repro.matrices import poisson2d
    from repro.sparse import write_matrix_market

    fake = poisson2d(5, seed=9)
    write_matrix_market(fake, str(tmp_path / "Serena.mtx"))
    monkeypatch.setenv("REPRO_SUITESPARSE_DIR", str(tmp_path))
    standin.cache_clear()
    try:
        a = standin("Serena", 4000)
        assert a.n_rows == fake.n_rows  # the file won over the stand-in
        np.testing.assert_allclose(a.to_dense(), fake.to_dense())
    finally:
        standin.cache_clear()


def test_fbmpk_operator_cache(monkeypatch):
    standin.cache_clear()
    fbmpk_operator.cache_clear()
    op1 = fbmpk_operator("G3_circuit", 900)
    op2 = fbmpk_operator("G3_circuit", 900)
    assert op1 is op2
    x = np.ones(op1.n)
    from repro.core import mpk_standard

    np.testing.assert_allclose(op1.power(x, 3),
                               mpk_standard(standin("G3_circuit", 900), x, 3),
                               rtol=1e-9, atol=1e-11)
