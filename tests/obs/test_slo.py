"""SLO tracker: good/bad classification, burn math, snapshots."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import QUANTILES, SLOTracker


def _tracker(**kw):
    return SLOTracker(MetricsRegistry(), **kw)


class TestClassification:
    def test_fast_ok_request_is_good(self):
        t = _tracker(target_ms=100.0)
        assert t.record(0.050) is True

    def test_slow_request_is_bad_even_if_ok(self):
        t = _tracker(target_ms=100.0)
        assert t.record(0.500, ok=True) is False

    def test_failed_request_is_bad_even_if_fast(self):
        t = _tracker(target_ms=100.0)
        assert t.record(0.001, ok=False) is False

    def test_request_at_exactly_target_is_good(self):
        t = _tracker(target_ms=100.0)
        assert t.record(0.100) is True


class TestBurnMath:
    def test_burn_rate_one_when_error_budget_exactly_spent(self):
        # goal 0.99 -> 1% budget; 1 bad in 100 burns exactly 1.0.
        t = _tracker(target_ms=100.0, goal=0.99)
        for _ in range(99):
            t.record(0.010)
        t.record(0.500)
        snap = t.snapshot()
        assert snap["burn_rate"] == pytest.approx(1.0)
        assert snap["budget_remaining"] == pytest.approx(0.0)
        assert snap["compliance"] == pytest.approx(0.99)

    def test_burn_rate_scales_with_bad_fraction(self):
        t = _tracker(target_ms=100.0, goal=0.99)
        for _ in range(90):
            t.record(0.010)
        for _ in range(10):
            t.record(0.500)
        # 10% bad against a 1% budget: burning 10x too fast.
        assert t.snapshot()["burn_rate"] == pytest.approx(10.0)
        assert t.snapshot()["budget_remaining"] == 0.0

    def test_all_good_means_zero_burn(self):
        t = _tracker(target_ms=100.0, goal=0.99)
        for _ in range(50):
            t.record(0.010)
        snap = t.snapshot()
        assert snap["burn_rate"] == 0.0
        assert snap["budget_remaining"] == pytest.approx(1.0)
        assert snap["compliance"] == 1.0


class TestSnapshot:
    def test_empty_tracker_snapshot(self):
        snap = _tracker().snapshot()
        assert snap["total"] == 0
        assert snap["good"] == 0 and snap["bad"] == 0
        assert snap["compliance"] is None
        assert snap["burn_rate"] is None
        assert snap["p50_ms"] is None

    def test_quantiles_reported_in_milliseconds(self):
        t = _tracker(target_ms=1000.0)
        for _ in range(100):
            t.record(0.020)
        snap = t.snapshot()
        # 20ms observations land in a small bucket; the estimate must
        # be on the millisecond scale, not the seconds scale.
        assert 1.0 <= snap["p50_ms"] <= 100.0
        assert snap["p99_ms"] >= snap["p50_ms"]

    def test_snapshot_mirrors_config(self):
        snap = _tracker(target_ms=42.0, goal=0.9).snapshot()
        assert snap["target_ms"] == 42.0
        assert snap["goal"] == 0.9

    def test_snapshot_is_json_safe(self):
        import json

        t = _tracker()
        t.record(0.010)
        t.record(9.0, ok=False)
        json.dumps(t.snapshot())


class TestGaugesAndInstruments:
    def test_registry_carries_latency_histogram_and_gauges(self):
        reg = MetricsRegistry()
        t = SLOTracker(reg, target_ms=100.0)
        for _ in range(10):
            t.record(0.010)
        snap = reg.snapshot()
        assert "serve.latency" in snap["histograms"]
        for qname, _ in QUANTILES:
            assert snap["gauges"][f"serve.latency.{qname}"]["value"] \
                is not None
        assert snap["counters"]["serve.slo.good"]["value"] == 10
        assert snap["gauges"]["serve.slo.target_ms"]["value"] == 100.0

    def test_quantile_gauges_track_histogram_quantiles(self):
        reg = MetricsRegistry()
        t = SLOTracker(reg, target_ms=100.0)
        for _ in range(100):
            t.record(0.020)
        snap = reg.snapshot()
        for qname, q in QUANTILES:
            assert snap["gauges"][f"serve.latency.{qname}"]["value"] \
                == pytest.approx(t.quantile(q))


class TestValidation:
    def test_rejects_nonpositive_target(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="target"):
                _tracker(target_ms=bad)

    def test_rejects_goal_outside_open_interval(self):
        for bad in (0.0, 1.0, 1.5, -0.1):
            with pytest.raises(ValueError, match="goal"):
                _tracker(goal=bad)
