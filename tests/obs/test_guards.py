"""The two contracts of the telemetry layer:

* **zero overhead by default** — with no active session, every
  instrumentation point reduces to a global check (and :func:`span`
  returns the shared ``NULL_SPAN`` singleton), recording nothing;
* **observation changes nothing** — enabling telemetry must leave every
  numerical result *bit-identical*: the instrumented code paths wrap the
  computation, they never touch it.
"""

import numpy as np

import repro.obs as obs
from repro.core import build_fbmpk_operator, mpk_standard
from repro.matrices import banded_random, poisson2d
from repro.obs import NULL_SPAN, Telemetry
from repro.solvers import conjugate_gradient
from repro.solvers.chebyshev import chebyshev_solve
from repro.solvers.power import gershgorin_bounds


class TestZeroOverhead:
    def test_span_returns_shared_singleton_when_inactive(self):
        assert obs.current() is None
        assert obs.span("x", a=1) is NULL_SPAN
        assert obs.span("y") is NULL_SPAN  # same object every call

    def test_helpers_are_noops_when_inactive(self):
        # None of these may raise or record anywhere.
        obs.event("e", i=1)
        obs.add_counter("c", 2.0)
        obs.set_gauge("g", 1.0)
        obs.observe("h", 0.5)

    def test_nothing_recorded_while_inactive(self):
        a = poisson2d(8, seed=1)
        x = np.ones(a.n_rows)
        op = build_fbmpk_operator(a, block_size=8)
        op.power(x, 3)
        mpk_standard(a, x, 3)
        tel = Telemetry()  # constructed but never activated
        assert len(tel.recorder) == 0
        assert len(tel.metrics) == 0

    def test_session_stack_nests_and_restores(self):
        outer, inner = Telemetry(), Telemetry()
        with outer:
            assert obs.current() is outer
            with inner:
                assert obs.current() is inner
            assert obs.current() is outer
        assert obs.current() is None


class TestBitIdentity:
    """Recorder on vs off must be invisible in every result bit."""

    def _matrix(self):
        return banded_random(120, 6, 11, symmetric=True, seed=7)

    def test_fbmpk_power_serial(self):
        a = self._matrix()
        x = np.random.default_rng(0).standard_normal(a.n_rows)
        op = build_fbmpk_operator(a, block_size=8)
        y_off = op.power(x, 4)
        with Telemetry() as tel:
            y_on = op.power(x, 4)
        assert y_on.tobytes() == y_off.tobytes()
        # ... and the run actually was observed.
        assert tel.metrics.counter("fbmpk.powers").value == 1

    def test_fbmpk_power_threaded_sweep(self):
        a = self._matrix()
        x = np.random.default_rng(1).standard_normal(a.n_rows)
        op = build_fbmpk_operator(a, block_size=8, executor="threads",
                                  n_threads=4)
        try:
            y_off = op.power(x, 4)
            with Telemetry() as tel:
                y_on = op.power(x, 4)
        finally:
            op.close()
        assert y_on.tobytes() == y_off.tobytes()
        assert tel.metrics.counter("executor.barriers").value > 0

    def test_cg_solve(self):
        a = self._matrix()
        b = a.matvec(np.random.default_rng(2).standard_normal(a.n_rows))
        r_off = conjugate_gradient(a, b, tol=1e-10)
        with Telemetry() as tel:
            r_on = conjugate_gradient(a, b, tol=1e-10)
        assert r_on.x.tobytes() == r_off.x.tobytes()
        assert r_on.iterations == r_off.iterations
        assert r_on.residual_norms == r_off.residual_norms
        assert r_on.status == r_off.status
        assert tel.metrics.counter("solver.cg.runs").value == 1

    def test_chebyshev_solve(self):
        a = self._matrix()
        b = a.matvec(np.ones(a.n_rows))
        bounds = gershgorin_bounds(a)
        x_off, it_off, conv_off = chebyshev_solve(a, b, bounds, tol=1e-8)
        with Telemetry() as tel:
            x_on, it_on, conv_on = chebyshev_solve(a, b, bounds, tol=1e-8)
        assert x_on.tobytes() == x_off.tobytes()
        assert (it_on, conv_on) == (it_off, conv_off)
        assert tel.metrics.counter("solver.chebyshev.runs").value == 1

    def test_mpk_standard(self):
        a = self._matrix()
        x = np.random.default_rng(3).standard_normal(a.n_rows)
        y_off = mpk_standard(a, x, 4)
        with Telemetry() as tel:
            y_on = mpk_standard(a, x, 4)
        assert y_on.tobytes() == y_off.tobytes()
        c = tel.metrics.counter("mpk.matrix_read_equivalents")
        assert c.value == 4


class TestMemoryClaim:
    """The paper's headline number, observable from one instrumented run:
    FBMPK streams ~(k+1)/2 matrix-read equivalents against standard
    MPK's k."""

    def test_k4_read_equivalents_beat_baseline(self):
        a = poisson2d(24, seed=5)
        x = np.ones(a.n_rows)
        op = build_fbmpk_operator(a, block_size=8)
        with Telemetry() as tel:
            op.power(x, 4)
            mpk_standard(a, x, 4)
        counters = tel.metrics.snapshot()["counters"]
        fb = counters["fbmpk.matrix_read_equivalents"]["value"]
        std = counters["mpk.matrix_read_equivalents"]["value"]
        assert std == 4.0
        assert fb <= 3.5  # ~(k+1)/2 + k*n/nnz diagonal traffic
        # The modelled DRAM traffic agrees in direction.
        assert (counters["fbmpk.model.dram_bytes"]["value"]
                < counters["fbmpk.model.baseline_dram_bytes"]["value"])
