"""CLI telemetry surface: ``--trace``/``--metrics``/``--report`` flags,
the ``report`` subcommand, and the exit-code-7 contract for export
failures.
"""

import json

import pytest

from repro.cli import (
    EXIT_IO,
    EXIT_TELEMETRY,
    EXIT_VALIDATION,
    main,
)
from repro.obs import load_report, validate_report

POWER = ["power", "--standin", "pwtk", "--rows", "600", "-k", "4", "--ones"]


@pytest.fixture
def artefacts(tmp_path):
    return {
        "trace": tmp_path / "run.trace.json",
        "metrics": tmp_path / "run.metrics.json",
        "report": tmp_path / "run.report.json",
    }


class TestFlags:
    def test_power_writes_all_three_artefacts(self, artefacts, capsys):
        rc = main(POWER + ["--trace", str(artefacts["trace"]),
                           "--metrics", str(artefacts["metrics"]),
                           "--report", str(artefacts["report"])])
        assert rc == 0
        err = capsys.readouterr().err
        for kind, path in artefacts.items():
            assert path.exists(), kind
            assert str(path) in err  # one confirmation line each

        trace = json.loads(artefacts["trace"].read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "fbmpk.power" in names
        assert "fbmpk.sweep" in names

        metrics = json.loads(artefacts["metrics"].read_text())
        assert "fbmpk.powers" in metrics["counters"]

        report = load_report(artefacts["report"])
        assert validate_report(report) == []
        assert report["command"] == "power"
        assert report["config"]["k"] == 4
        # The acceptance number: k=4 FBMPK streams <= 3.5 matrix-read
        # equivalents where standard MPK streams 4.
        fb = report["metrics"]["counters"][
            "fbmpk.matrix_read_equivalents"]["value"]
        assert fb <= 3.5

    def test_threaded_power_report_has_executor_metrics(self, tmp_path):
        report = tmp_path / "r.json"
        rc = main(POWER + ["--executor", "threads", "--threads", "2",
                           "--report", str(report)])
        assert rc == 0
        counters = load_report(report)["metrics"]["counters"]
        assert counters["executor.barriers"]["value"] > 0
        assert "faults.injected_delay_s" not in counters

    def test_solve_report_has_convergence_history(self, tmp_path):
        report = tmp_path / "r.json"
        trace = tmp_path / "t.json"
        rc = main(["solve", "--standin", "pwtk", "--rows", "400",
                   "--solver", "cg", "--report", str(report),
                   "--trace", str(trace)])
        assert rc == 0
        rep = load_report(report)
        assert validate_report(rep) == []
        counters = rep["metrics"]["counters"]
        assert counters["solver.cg.runs"]["value"] == 1
        assert counters["solver.cg.iterations"]["value"] >= 1
        events = json.loads(trace.read_text())["traceEvents"]
        residuals = [e for e in events if e["name"] == "solver.residual"]
        assert len(residuals) >= 1  # per-iteration convergence events

    def test_no_flags_no_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(POWER) == 0
        assert list(tmp_path.iterdir()) == []


class TestExportFailure:
    def test_unwritable_trace_path_exits_7(self, capsys):
        rc = main(POWER + ["--trace", "/nonexistent_dir/t.json"])
        assert rc == EXIT_TELEMETRY
        err = capsys.readouterr().err
        assert "telemetry export failed" in err

    def test_command_failure_beats_export_failure(self, tmp_path):
        # A failing command keeps its own exit code even when the
        # export path is also broken.
        rc = main(["power", str(tmp_path / "missing.mtx"),
                   "--trace", "/nonexistent_dir/t.json"])
        assert rc == EXIT_IO


class TestReportSubcommand:
    def _write_report(self, tmp_path, name="a.json"):
        path = tmp_path / name
        rc = main(POWER + ["--report", str(path)])
        assert rc == 0
        return path

    def test_pretty_print(self, tmp_path, capsys):
        path = self._write_report(tmp_path)
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "RunReport v1" in out
        assert "fbmpk.matrix_read_equivalents" in out

    def test_diff_two_reports(self, tmp_path, capsys):
        a = self._write_report(tmp_path, "a.json")
        b = tmp_path / "b.json"
        rc = main(["power", "--standin", "pwtk", "--rows", "600", "-k",
                   "6", "--ones", "--report", str(b)])
        assert rc == 0
        capsys.readouterr()
        assert main(["report", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "diff:" in out
        assert "fbmpk.standard_matrix_reads: 4 -> 6" in out

    def test_missing_file_exits_3(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == EXIT_IO
        assert "error:" in capsys.readouterr().err

    def test_malformed_json_exits_3(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["report", str(bad)]) == EXIT_IO
        assert "not valid JSON" in capsys.readouterr().err

    def test_schema_violation_exits_4(self, tmp_path, capsys):
        path = self._write_report(tmp_path)
        rep = json.loads(path.read_text())
        rep["schema_version"] = 99
        path.write_text(json.dumps(rep))
        assert main(["report", str(path)]) == EXIT_VALIDATION
        assert "newer than" in capsys.readouterr().err
