"""Tracing core: recorder semantics, nesting, thread safety, exporters."""

import json
import threading

from repro.obs import (
    NULL_SPAN,
    TraceRecorder,
    chrome_trace_events,
    write_chrome_trace,
    write_jsonl,
)


class TestRecorder:
    def test_span_records_on_exit(self):
        rec = TraceRecorder()
        with rec.span("outer", phase=1):
            pass
        assert len(rec) == 1
        (r,) = rec.records()
        assert r.name == "outer"
        assert r.kind == "span"
        assert r.attrs == {"phase": 1}
        assert r.ts >= 0.0 and r.dur >= 0.0
        assert r.parent_id is None

    def test_nesting_sets_parent_ids(self):
        rec = TraceRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        by_name = {r.name: r for r in rec.records()}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_child_interval_nests_in_parent(self):
        rec = TraceRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        by_name = {r.name: r for r in rec.records()}
        o, i = by_name["outer"], by_name["inner"]
        assert i.ts >= o.ts
        assert i.ts + i.dur <= o.ts + o.dur
        assert i.dur <= o.dur

    def test_set_attaches_attrs_to_open_span(self):
        rec = TraceRecorder()
        with rec.span("s", a=1) as sp:
            sp.set(b=2, a=3)
        (r,) = rec.records()
        assert r.attrs == {"a": 3, "b": 2}

    def test_event_is_instant_and_parented(self):
        rec = TraceRecorder()
        with rec.span("outer"):
            rec.event("tick", i=0)
        by_name = {r.name: r for r in rec.records()}
        ev = by_name["tick"]
        assert ev.kind == "event"
        assert ev.dur == 0.0
        assert ev.parent_id == by_name["outer"].span_id

    def test_records_sorted_by_start_time(self):
        rec = TraceRecorder()
        with rec.span("a"):
            with rec.span("b"):
                pass
        # Exit order is b, a; records() must re-sort by start time.
        names = [r.name for r in rec.records()]
        assert names == ["a", "b"]

    def test_sibling_spans_share_parent(self):
        rec = TraceRecorder()
        with rec.span("root"):
            with rec.span("s1"):
                pass
            with rec.span("s2"):
                pass
        by_name = {r.name: r for r in rec.records()}
        root = by_name["root"]
        assert by_name["s1"].parent_id == root.span_id
        assert by_name["s2"].parent_id == root.span_id

    def test_threads_have_independent_stacks(self):
        rec = TraceRecorder()
        barrier = threading.Barrier(2)

        def work(name):
            with rec.span(name):
                barrier.wait()  # both spans open concurrently

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        recs = rec.records()
        assert len(recs) == 2
        # Concurrent spans in different threads must not parent each
        # other, whatever the interleaving.
        assert all(r.parent_id is None for r in recs)
        assert len({r.thread for r in recs}) == 2

    def test_summary_aggregates_per_name(self):
        rec = TraceRecorder()
        for _ in range(3):
            with rec.span("phase"):
                pass
        rec.event("marker")
        s = rec.summary()
        assert s["phase"]["count"] == 3
        assert s["phase"]["total_s"] >= s["phase"]["max_s"] >= 0.0
        assert "marker" not in s  # events excluded from span summary


class TestNullSpan:
    def test_shared_singleton_noop(self):
        with NULL_SPAN as sp:
            sp.set(anything="goes")
        assert sp is NULL_SPAN


class TestExporters:
    def _recorder(self):
        rec = TraceRecorder()
        with rec.span("outer", colour=2):
            rec.event("iterate", power_step=1)
            with rec.span("inner", block=0):
                pass
        return rec

    def test_chrome_trace_shape(self):
        doc = chrome_trace_events(self._recorder())
        evs = doc["traceEvents"]
        assert len(evs) == 3
        assert all(e["ph"] in ("X", "i") for e in evs)
        assert all(e["ts"] >= 0 for e in evs)
        ts = [e["ts"] for e in evs]
        assert ts == sorted(ts)
        for e in evs:
            if e["ph"] == "X":
                assert e["dur"] >= 0
            else:
                assert e["s"] == "t"

    def test_write_chrome_trace_roundtrips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._recorder(), path)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 3

    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(self._recorder(), path)
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert len(lines) == 3
        assert {ln["name"] for ln in lines} == {"outer", "inner", "iterate"}
        assert all("span_id" in ln for ln in lines)

    def test_non_json_attrs_are_coerced(self, tmp_path):
        import numpy as np

        rec = TraceRecorder()
        with rec.span("s", count=np.int64(3), obj=object(),
                      seq=(np.float64(1.5), "x")):
            pass
        doc = chrome_trace_events(rec)
        # Must be serialisable as-is.
        text = json.dumps(doc)
        args = json.loads(text)["traceEvents"][0]["args"]
        assert args["count"] == 3
        assert isinstance(args["obj"], str)
        assert args["seq"] == [1.5, "x"]
