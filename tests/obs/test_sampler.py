"""Sampling profiler: accumulation, collapsed format, span tagging."""

import io
import threading
import time

from repro import obs
from repro.obs import Telemetry
from repro.obs.sampler import StackSampler, write_collapsed


def _spin_in(name_event, stop_event):
    """Busy-wait inside a recognisably-named frame."""

    def distinctive_sampler_target_frame():
        name_event.set()
        while not stop_event.is_set():
            sum(range(100))

    distinctive_sampler_target_frame()


class TestStackSampler:
    def test_samples_accumulate_while_running(self):
        with StackSampler(hz=200.0) as s:
            t0 = time.monotonic()
            while s.sample_count < 5 and time.monotonic() - t0 < 10:
                time.sleep(0.01)
        assert s.sample_count >= 5
        assert s.collapsed()

    def test_stop_is_idempotent_and_halts_sampling(self):
        s = StackSampler(hz=500.0)
        s.start()
        s.stop()
        s.stop()
        assert not s.running
        n = s.sample_count
        time.sleep(0.05)
        assert s.sample_count == n

    def test_collapsed_stacks_are_root_first(self):
        ready, stop = threading.Event(), threading.Event()
        t = threading.Thread(target=_spin_in, args=(ready, stop))
        t.start()
        ready.wait(5)
        try:
            with StackSampler(hz=500.0) as s:
                t0 = time.monotonic()
                while time.monotonic() - t0 < 5:
                    if any("distinctive_sampler_target_frame" in st
                           for st in s.collapsed()):
                        break
                    time.sleep(0.01)
        finally:
            stop.set()
            t.join()
        hits = [st for st in s.collapsed()
                if "distinctive_sampler_target_frame" in st]
        assert hits, "never sampled the spinning thread"
        frames = hits[0].split(";")
        outer = [i for i, f in enumerate(frames) if "_spin_in" in f]
        inner = [i for i, f in enumerate(frames)
                 if "distinctive_sampler_target_frame" in f]
        assert outer and inner
        # root-first: the caller appears before the callee
        assert outer[0] < inner[0]

    def test_own_thread_is_excluded(self):
        with StackSampler(hz=500.0) as s:
            t0 = time.monotonic()
            while s.sample_count < 10 and time.monotonic() - t0 < 10:
                time.sleep(0.01)
        # The sampler thread's own loop frames must never be sampled
        # (other threads may legitimately be caught inside start()).
        assert not any("_sample_once (sampler.py" in st
                       or "_run (sampler.py" in st
                       for st in s.collapsed())

    def test_span_prefix_tags_active_span(self):
        ready, stop = threading.Event(), threading.Event()
        with Telemetry() as tel:
            def work():
                with obs.span("profiled.section"):
                    _spin_in(ready, stop)

            t = threading.Thread(target=work)
            t.start()
            ready.wait(5)
            try:
                with StackSampler(hz=500.0,
                                  recorder=tel.recorder) as s:
                    t0 = time.monotonic()
                    while time.monotonic() - t0 < 5:
                        if any(st.startswith("span:profiled.section;")
                               for st in s.collapsed()):
                            break
                        time.sleep(0.01)
            finally:
                stop.set()
                t.join()
        tagged = [st for st in s.collapsed()
                  if st.startswith("span:profiled.section;")]
        assert tagged, "no sample carried the active span tag"

    def test_reset_clears_tally(self):
        with StackSampler(hz=500.0) as s:
            t0 = time.monotonic()
            while s.sample_count < 3 and time.monotonic() - t0 < 10:
                time.sleep(0.01)
        s.reset()
        assert s.sample_count == 0
        assert s.collapsed() == {}


class TestWriteCollapsed:
    def test_format_and_ordering(self, tmp_path):
        tally = {"main;hot": 10, "main;cold": 2, "alt": 2}
        path = tmp_path / "profile.txt"
        n = write_collapsed(tally, path)
        assert n == 3
        lines = path.read_text().splitlines()
        # sorted by count desc, then stack
        assert lines[0] == "main;hot 10"
        assert lines[1:] == ["alt 2", "main;cold 2"]

    def test_accepts_file_object(self):
        buf = io.StringIO()
        assert write_collapsed({"a;b": 1}, buf) == 1
        assert buf.getvalue() == "a;b 1\n"

    def test_empty_tally(self, tmp_path):
        path = tmp_path / "empty.txt"
        assert write_collapsed({}, path) == 0
        assert path.read_text() == ""
