"""Injected chaos must not masquerade as work: a ``DelayFault`` at the
``executor.task`` hook slows the wall clock but is *excluded* from
``thread_busy_s`` and booked under the ``faults.injected_delay_s``
counter instead, keeping fault-injection runs comparable to clean ones.
"""

import contextlib

import numpy as np

from repro.obs import Telemetry
from repro.parallel import BlockTask, Phase, ThreadedPhaseExecutor
from repro.robust import DelayFault, FaultInjector

DELAY = 0.05


def _phases(n_blocks=4, width=8):
    tasks = [BlockTask(i * width, (i + 1) * width, width)
             for i in range(n_blocks)]
    return [Phase(color=0, tasks=tasks)]


def _run(with_delay):
    y = np.zeros(32)

    def run(task):
        y[task.start:task.stop] = task.start

    # No active injector at all on the clean run: with nobody listening,
    # fire_timed must not even touch the clock (or the counter).
    inj = (FaultInjector().install("executor.task", DelayFault(DELAY))
           if with_delay else contextlib.nullcontext())
    with Telemetry() as tel, inj, ThreadedPhaseExecutor(n_threads=1) as ex:
        stats = ex.run_phases(_phases(), run)
    return y, stats, tel


def test_delay_excluded_from_busy_time():
    y_clean, clean, _ = _run(with_delay=False)
    y_chaos, chaos, tel = _run(with_delay=True)

    # Containment: the result is untouched.
    assert np.array_equal(y_chaos, y_clean)

    # One delay per task fired; none of it may count as busy time.
    injected = tel.metrics.counter("faults.injected_delay_s").value
    assert injected >= 4 * DELAY * 0.9
    assert chaos.busy_s < injected
    # Busy time stays in the clean run's ballpark rather than absorbing
    # the ~0.2 s of injected sleep.
    assert chaos.busy_s < clean.busy_s + DELAY


def test_no_delay_counter_on_clean_runs():
    _, _, tel = _run(with_delay=False)
    assert "faults.injected_delay_s" not in (
        tel.metrics.snapshot()["counters"])
