"""RunReport: build/validate/write/load roundtrip, formatting, diffing."""

import json

import pytest

from repro.obs import (
    RUN_REPORT_SCHEMA,
    RUN_REPORT_SCHEMA_VERSION,
    MetricsRegistry,
    Telemetry,
    TraceRecorder,
    build_run_report,
    diff_reports,
    format_report,
    load_report,
    platform_info,
    validate_report,
    write_report_file,
)


def _session_report(command="power", config=None):
    tel = Telemetry()
    with tel:
        import repro.obs as obs

        with obs.span("fbmpk.power", k=4):
            obs.add_counter("fbmpk.powers")
            obs.observe("executor.phase_wall_s", 0.002, unit="s")
        obs.set_gauge("fbmpk.model.traffic_ratio", 0.62)
    return tel.run_report(command=command, config=config or {"k": 4})


class TestBuild:
    def test_fresh_report_is_schema_valid(self):
        rep = _session_report()
        assert validate_report(rep) == []
        assert rep["schema"] == RUN_REPORT_SCHEMA
        assert rep["schema_version"] == RUN_REPORT_SCHEMA_VERSION
        assert rep["metrics"]["counters"]["fbmpk.powers"]["value"] == 1.0
        assert rep["spans"]["summary"]["fbmpk.power"]["count"] == 1

    def test_empty_report_is_schema_valid(self):
        # The bench harness emits reports with no live session.
        rep = build_run_report(None, None, command="bench:fig9")
        assert validate_report(rep) == []
        assert rep["spans"] == {"total": 0, "summary": {}}

    def test_report_is_json_serialisable(self):
        json.dumps(_session_report(config={"rows": 2000, "ones": True}))

    def test_platform_info_fields(self):
        info = platform_info()
        for key in ("python", "implementation", "os", "machine",
                    "cpu_count", "numpy", "repro_version"):
            assert key in info


class TestRoundtrip:
    def test_write_then_load(self, tmp_path):
        rep = _session_report()
        path = tmp_path / "run.report.json"
        write_report_file(rep, path)
        back = load_report(path)
        assert validate_report(back) == []
        assert back["metrics"] == rep["metrics"]

    def test_load_rejects_non_object_root(self, tmp_path):
        path = tmp_path / "arr.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="JSON object"):
            load_report(path)

    def test_load_missing_file_is_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_report(tmp_path / "nope.json")


class TestValidate:
    def test_wrong_schema_id(self):
        rep = _session_report()
        rep["schema"] = "other"
        assert any("schema: expected" in e for e in validate_report(rep))

    def test_newer_version_rejected(self):
        rep = _session_report()
        rep["schema_version"] = RUN_REPORT_SCHEMA_VERSION + 1
        assert any("newer than" in e for e in validate_report(rep))

    def test_all_problems_reported(self):
        errors = validate_report({})
        # Every top-level section should be flagged, not just the first.
        assert len(errors) >= 6

    def test_non_dict_root(self):
        assert validate_report([1]) == ["report root must be a JSON object"]

    def test_negative_counter_rejected(self):
        rep = _session_report()
        rep["metrics"]["counters"]["fbmpk.powers"]["value"] = -1
        assert any("cannot be negative" in e for e in validate_report(rep))

    def test_histogram_counts_length_checked(self):
        rep = _session_report()
        hist = rep["metrics"]["histograms"]["executor.phase_wall_s"]
        hist["counts"] = hist["counts"][:-1]
        assert any("slots" in e for e in validate_report(rep))

    def test_histogram_bucket_order_checked(self):
        rep = _session_report()
        hist = rep["metrics"]["histograms"]["executor.phase_wall_s"]
        hist["buckets"] = list(reversed(hist["buckets"]))
        assert any("strictly increasing" in e for e in validate_report(rep))

    def test_never_set_gauge_is_valid(self):
        tel = Telemetry()
        tel.metrics.gauge("g")
        rep = tel.run_report()
        assert validate_report(rep) == []


class TestFormatAndDiff:
    def test_format_mentions_command_and_metrics(self):
        text = format_report(_session_report())
        assert "command `power`" in text
        assert "fbmpk.powers = 1" in text
        assert "fbmpk.power: x1" in text

    def test_diff_reports_changed_counter(self):
        a = _session_report()
        tel = Telemetry()
        with tel:
            import repro.obs as obs

            obs.add_counter("fbmpk.powers", 3)
        b = tel.run_report(command="power")
        text = diff_reports(a, b)
        assert "fbmpk.powers: 1 -> 3" in text

    def test_diff_identical_reports(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        rec = TraceRecorder()
        a = build_run_report(reg, rec, command="x")
        b = build_run_report(reg, rec, command="x")
        assert "(no metric differences)" in diff_reports(a, b)
