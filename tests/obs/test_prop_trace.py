"""Property-based tests: the Chrome trace export is well-formed for
*arbitrary* span trees.

For randomized nested span/event programs executed against a live
recorder, the exported ``chrome://tracing`` document must always be
valid JSON whose events have monotonically non-decreasing, non-negative
microsecond timestamps, valid phase codes (``"X"`` complete events with
a non-negative ``dur``, ``"i"`` instants), and child spans whose
duration never exceeds their parent's — the structural invariants any
trace viewer assumes.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import TraceRecorder, chrome_trace_events

# A span-tree program: each node is (has_event, [children]).  Recursive
# strategy bounded to keep executions fast.
span_trees = st.recursive(
    st.tuples(st.booleans(), st.just([])),
    lambda node: st.tuples(st.booleans(), st.lists(node, max_size=3)),
    max_leaves=12,
)


def _execute(rec, node, depth=0, index=0):
    has_event, children = node
    with rec.span(f"n{depth}.{index}", depth=depth):
        if has_event:
            rec.event(f"e{depth}.{index}", depth=depth)
        for i, child in enumerate(children):
            _execute(rec, child, depth + 1, i)


def _run_program(forest):
    rec = TraceRecorder()
    for i, tree in enumerate(forest):
        _execute(rec, tree, 0, i)
    return rec


@given(st.lists(span_trees, min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_chrome_export_is_wellformed(forest):
    rec = _run_program(forest)
    doc = chrome_trace_events(rec)

    # Valid JSON end to end.
    doc = json.loads(json.dumps(doc))
    events = doc["traceEvents"]
    assert len(events) == len(rec.records())

    last_ts = 0.0
    for ev in events:
        assert ev["ph"] in ("X", "i")
        assert ev["ts"] >= 0.0
        assert ev["ts"] >= last_ts  # sorted
        last_ts = ev["ts"]
        assert isinstance(ev["name"], str) and ev["name"]
        assert isinstance(ev["pid"], int)
        assert isinstance(ev["tid"], int)
        if ev["ph"] == "X":
            assert ev["dur"] >= 0.0
        else:
            assert ev["s"] == "t"
            assert "dur" not in ev


@given(st.lists(span_trees, min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_children_nest_inside_parents(forest):
    rec = _run_program(forest)
    records = rec.records()
    by_id = {r.span_id: r for r in records}
    for r in records:
        if r.parent_id is None:
            continue
        parent = by_id[r.parent_id]
        assert parent.kind == "span"
        assert r.ts >= parent.ts
        if r.kind == "span":
            assert r.dur <= parent.dur
            assert r.ts + r.dur <= parent.ts + parent.dur
        else:
            assert r.ts <= parent.ts + parent.dur


@given(st.lists(span_trees, min_size=1, max_size=3))
@settings(max_examples=40, deadline=None)
def test_span_ids_unique_and_parents_exist(forest):
    rec = _run_program(forest)
    records = rec.records()
    ids = [r.span_id for r in records]
    assert len(ids) == len(set(ids))
    known = set(ids)
    for r in records:
        assert r.parent_id is None or r.parent_id in known
