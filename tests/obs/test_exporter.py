"""Prometheus exposition: name mapping, golden format, parser, HTTP."""

import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry
from repro.obs.exporter import (
    CONTENT_TYPE,
    MetricsHTTPServer,
    escape_help,
    escape_label_value,
    parse_prometheus,
    prometheus_name,
    render_prometheus,
)


class TestPrometheusName:
    def test_dots_become_underscores(self):
        assert prometheus_name("serve.requests") == "serve_requests"

    def test_counter_gains_total_suffix(self):
        assert prometheus_name("serve.requests", kind="counter") \
            == "serve_requests_total"

    def test_total_suffix_not_doubled(self):
        assert prometheus_name("x.total", kind="counter") == "x_total"

    def test_seconds_unit_suffix(self):
        assert prometheus_name("serve.latency", unit="s",
                               kind="histogram") == "serve_latency_seconds"

    def test_trailing_s_shorthand_rewritten_not_doubled(self):
        assert prometheus_name("executor.phase_wall_s", unit="s") \
            == "executor_phase_wall_seconds"

    def test_leading_digit_prefixed(self):
        assert prometheus_name("2norm") == "_2norm"

    def test_bytes_unit(self):
        assert prometheus_name("arena.size", unit="bytes") \
            == "arena_size_bytes"


class TestEscaping:
    def test_help_escapes_backslash_and_newline(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_label_value_escapes_quote_too(self):
        assert escape_label_value('say "hi"\n') == 'say \\"hi\\"\\n'


class TestRenderGolden:
    """Golden-format assertions for every instrument kind."""

    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests").inc(7)
        reg.gauge("serve.latency.p50", unit="s").set(0.125)
        h = reg.histogram("serve.latency", unit="s",
                          buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        return reg

    def test_counter_block(self):
        text = render_prometheus(self._registry())
        assert "# TYPE serve_requests_total counter" in text
        assert "\nserve_requests_total 7.0\n" in text
        assert "# HELP serve_requests_total repro instrument " \
               "serve.requests" in text

    def test_gauge_block(self):
        text = render_prometheus(self._registry())
        assert "# TYPE serve_latency_p50_seconds gauge" in text
        assert "\nserve_latency_p50_seconds 0.125\n" in text

    def test_unset_gauge_is_omitted(self):
        reg = MetricsRegistry()
        reg.gauge("never.set")
        assert "never_set" not in render_prometheus(reg)

    def test_histogram_expansion_is_cumulative(self):
        text = render_prometheus(self._registry())
        assert "# TYPE serve_latency_seconds histogram" in text
        assert 'serve_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'serve_latency_seconds_bucket{le="1"} 3' in text
        assert 'serve_latency_seconds_bucket{le="10"} 4' in text
        assert 'serve_latency_seconds_bucket{le="+Inf"} 4' in text
        assert "serve_latency_seconds_sum 6.05" in text
        assert "serve_latency_seconds_count 4" in text

    def test_every_sample_has_a_type_line(self):
        # The strict parser enforces this; a render that emits samples
        # before their TYPE line would be rejected here.
        parse_prometheus(render_prometheus(self._registry()))

    def test_output_is_stable_across_renders(self):
        reg = self._registry()
        assert render_prometheus(reg) == render_prometheus(reg)

    def test_none_renders_empty_exposition(self):
        assert render_prometheus(None) == "\n"


class TestParser:
    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc(3)
        reg.histogram("lat", unit="s").observe(0.02)
        fams = parse_prometheus(render_prometheus(reg))
        assert fams["a_b_total"]["type"] == "counter"
        assert fams["a_b_total"]["samples"][0][2] == 3.0
        hist = fams["lat_seconds"]
        names = {s[0] for s in hist["samples"]}
        assert "lat_seconds_sum" in names
        assert "lat_seconds_count" in names

    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_prometheus("orphan_metric 1\n")

    def test_rejects_malformed_sample(self):
        text = "# TYPE x gauge\nx one_point_five\n"
        with pytest.raises(ValueError):
            parse_prometheus(text)

    def test_rejects_duplicate_series(self):
        text = "# TYPE x gauge\nx 1\nx 2\n"
        with pytest.raises(ValueError, match="duplicate series"):
            parse_prometheus(text)

    def test_rejects_non_cumulative_buckets(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1.0\nh_count 3\n")
        with pytest.raises(ValueError, match="not cumulative"):
            parse_prometheus(text)

    def test_rejects_histogram_missing_sum(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 1\n'
                "h_count 1\n")
        with pytest.raises(ValueError, match="missing _sum"):
            parse_prometheus(text)

    def test_rejects_histogram_missing_inf_bucket(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 1\n'
                "h_sum 0.5\nh_count 1\n")
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_prometheus(text)

    def test_label_values_unescaped(self):
        text = ('# TYPE x gauge\n'
                'x{path="C:\\\\tmp",msg="a\\nb"} 1\n')
        fams = parse_prometheus(text)
        _, labels, _ = fams["x"]["samples"][0]
        assert labels["path"] == "C:\\tmp"
        assert labels["msg"] == "a\nb"


class TestMetricsHTTPServer:
    def test_scrape_renders_provided_registry(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(5)
        with MetricsHTTPServer(port=0, provider=lambda: reg) as srv:
            with urllib.request.urlopen(srv.url, timeout=10) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                body = resp.read().decode()
        assert "hits_total 5.0" in body
        parse_prometheus(body)

    def test_scrape_reflects_live_updates(self):
        reg = MetricsRegistry()
        with MetricsHTTPServer(port=0, provider=lambda: reg) as srv:
            reg.counter("n").inc()
            first = urllib.request.urlopen(srv.url, timeout=10).read()
            reg.counter("n").inc()
            second = urllib.request.urlopen(srv.url, timeout=10).read()
        assert b"n_total 1.0" in first
        assert b"n_total 2.0" in second

    def test_healthz(self):
        with MetricsHTTPServer(port=0, provider=lambda: None) as srv:
            url = f"http://{srv.host}:{srv.port}/healthz"
            with urllib.request.urlopen(url, timeout=10) as resp:
                assert resp.status == 200
                assert resp.read() == b"ok\n"

    def test_unknown_path_is_404(self):
        with MetricsHTTPServer(port=0, provider=lambda: None) as srv:
            url = f"http://{srv.host}:{srv.port}/nope"
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(url, timeout=10)
            assert exc.value.code == 404

    def test_no_session_renders_empty(self):
        # Default provider with no active telemetry session: empty
        # exposition, not an error.
        with MetricsHTTPServer(port=0) as srv:
            body = urllib.request.urlopen(srv.url, timeout=10).read()
        assert body == b"\n"

    def test_stop_is_idempotent(self):
        srv = MetricsHTTPServer(port=0, provider=lambda: None).start()
        srv.stop()
        srv.stop()
