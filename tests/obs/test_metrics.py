"""Metrics registry: instrument semantics, thread safety, snapshot shape."""

import threading

import pytest

from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)

    def test_concurrent_increments(self):
        c = Counter("c")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        assert g.value is None
        g.set(1.0)
        g.set(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0, 0.1):
            h.observe(v)
        # counts: <=1, <=10, <=100, overflow
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(555.6)

    def test_edge_value_lands_in_its_bucket(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_default_buckets_are_valid(self):
        # Regression: the strictly-increasing validation was inverted
        # and rejected every valid bucket list, including the default.
        h = Histogram("h")
        assert h.buckets == DEFAULT_TIME_BUCKETS

    def test_rejects_non_increasing_buckets(self):
        for bad in [(), (1.0, 1.0), (2.0, 1.0), (1.0, 3.0, 2.0)]:
            with pytest.raises(ValueError, match="strictly increasing"):
                Histogram("h", buckets=bad)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_type_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", unit="s").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", unit="s").observe(0.05)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["c"] == {"value": 2.0, "unit": "s"}
        assert snap["gauges"]["g"] == {"value": 1.5, "unit": ""}
        hist = snap["histograms"]["h"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(0.05)
        assert len(hist["counts"]) == len(hist["buckets"]) + 1
        assert sum(hist["counts"]) == 1

    def test_snapshot_is_json_safe(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g")  # never set -> null
        reg.histogram("h").observe(1.0)
        json.dumps(reg.snapshot())  # must not raise
