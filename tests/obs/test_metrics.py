"""Metrics registry: instrument semantics, thread safety, snapshot shape."""

import threading

import pytest

from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)

    def test_concurrent_increments(self):
        c = Counter("c")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        assert g.value is None
        g.set(1.0)
        g.set(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0, 0.1):
            h.observe(v)
        # counts: <=1, <=10, <=100, overflow
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(555.6)

    def test_edge_value_lands_in_its_bucket(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_default_buckets_are_valid(self):
        # Regression: the strictly-increasing validation was inverted
        # and rejected every valid bucket list, including the default.
        h = Histogram("h")
        assert h.buckets == DEFAULT_TIME_BUCKETS

    def test_rejects_non_increasing_buckets(self):
        for bad in [(), (1.0, 1.0), (2.0, 1.0), (1.0, 3.0, 2.0)]:
            with pytest.raises(ValueError, match="strictly increasing"):
                Histogram("h", buckets=bad)

    def test_state_is_one_consistent_triple(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        counts, total, count = h.state()
        assert counts == [1, 1, 0]
        assert total == pytest.approx(5.5)
        assert count == 2
        assert sum(counts) == count

    def test_state_consistent_under_concurrent_observe(self):
        # A scrape racing observe() must see sum(counts) == count: the
        # bucket slot, running sum and count move under one lock.
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                counts, _, count = h.state()
                if sum(counts) != count:
                    torn.append((counts, count))
                    return

        t = threading.Thread(target=reader)
        t.start()
        for i in range(20_000):
            h.observe(float(i % 200))
        stop.set()
        t.join()
        assert not torn


class TestHistogramQuantile:
    def test_empty_histogram_has_no_quantile(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        assert h.quantile(0.5) is None
        assert h.quantile(0.0) is None
        assert h.quantile(1.0) is None

    def test_rejects_out_of_range_q(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(0.5)
        for bad in (-0.01, 1.01, 2.0):
            with pytest.raises(ValueError, match="quantile"):
                h.quantile(bad)

    def test_linear_interpolation_within_bucket(self):
        # 10 observations all in (1, 10]: the q-quantile interpolates
        # linearly across that bucket's width.
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for _ in range(10):
            h.observe(5.0)
        assert h.quantile(0.5) == pytest.approx(1.0 + 9.0 * 0.5)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_underflow_bucket_interpolates_from_zero(self):
        # Observations below the first edge: the lower bound of the
        # first bucket is 0 (there is no previous edge).
        h = Histogram("h", buckets=(10.0, 100.0))
        for _ in range(4):
            h.observe(2.0)
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_overflow_bucket_saturates_at_last_edge(self):
        # All mass above the last edge: no upper bound to interpolate
        # toward, so the estimate saturates (Prometheus semantics).
        h = Histogram("h", buckets=(1.0, 10.0))
        for _ in range(3):
            h.observe(1000.0)
        assert h.quantile(0.5) == 10.0
        assert h.quantile(0.99) == 10.0

    def test_negative_first_edge_keeps_lower_bound(self):
        # With a negative first edge, 0 is not a lower bound for the
        # first bucket; the edge itself is used instead (interpolating
        # from 0 would estimate *above* the bucket's upper edge).
        h = Histogram("h", buckets=(-10.0, 10.0))
        h.observe(-15.0)
        assert h.quantile(0.5) == pytest.approx(-10.0)

    def test_quantiles_split_mixed_mass(self):
        # 90 fast + 10 slow observations: p50 sits in the fast bucket,
        # p99 in the slow one.
        h = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for _ in range(90):
            h.observe(0.05)
        for _ in range(10):
            h.observe(5.0)
        assert h.quantile(0.5) < 0.1
        assert 1.0 < h.quantile(0.99) <= 10.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_type_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", unit="s").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", unit="s").observe(0.05)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["c"] == {"value": 2.0, "unit": "s"}
        assert snap["gauges"]["g"] == {"value": 1.5, "unit": ""}
        hist = snap["histograms"]["h"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(0.05)
        assert len(hist["counts"]) == len(hist["buckets"]) + 1
        assert sum(hist["counts"]) == 1

    def test_snapshot_is_json_safe(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g")  # never set -> null
        reg.histogram("h").observe(1.0)
        json.dumps(reg.snapshot())  # must not raise
