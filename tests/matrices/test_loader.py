"""Unit tests for the SuiteSparse-or-standin loader."""

import numpy as np
import pytest

from repro.matrices import poisson2d
from repro.matrices.loader import find_matrix_file, load_matrix, suitesparse_dir
from repro.sparse import write_matrix_market


def test_no_env_falls_back_to_standin(monkeypatch):
    monkeypatch.delenv("REPRO_SUITESPARSE_DIR", raising=False)
    monkeypatch.delenv("REPRO_SUITESSPARSE_DIR", raising=False)
    assert suitesparse_dir() is None
    a, source = load_matrix("pwtk", n_rows=1500)
    assert source == "standin"
    assert a.n_rows == 1500


def test_real_file_preferred(monkeypatch, tmp_path):
    fake = poisson2d(6, seed=3)
    write_matrix_market(fake, str(tmp_path / "pwtk.mtx"))
    monkeypatch.setenv("REPRO_SUITESPARSE_DIR", str(tmp_path))
    assert find_matrix_file("pwtk") == tmp_path / "pwtk.mtx"
    a, source = load_matrix("pwtk")
    assert source == "suitesparse"
    np.testing.assert_allclose(a.to_dense(), fake.to_dense())


def test_nested_layout(monkeypatch, tmp_path):
    nested = tmp_path / "cant"
    nested.mkdir()
    write_matrix_market(poisson2d(4), str(nested / "cant.mtx"))
    monkeypatch.setenv("REPRO_SUITESPARSE_DIR", str(tmp_path))
    assert find_matrix_file("cant") == nested / "cant.mtx"
    _, source = load_matrix("cant")
    assert source == "suitesparse"


def test_missing_file_falls_back(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SUITESPARSE_DIR", str(tmp_path))
    a, source = load_matrix("ldoor", n_rows=1200)
    assert source == "standin"


def test_unknown_name_rejected(monkeypatch):
    monkeypatch.delenv("REPRO_SUITESPARSE_DIR", raising=False)
    with pytest.raises(KeyError):
        load_matrix("not_a_matrix")
