"""Unit tests for synthetic generators and the Table II registry."""

import numpy as np
import pytest

from repro.matrices import (
    TABLE2,
    banded_random,
    generate_cage_digraph,
    generate_circuit,
    generate_fem_shell,
    generate_fem_solid,
    generate_kkt,
    generate_ship_structure,
    generate_standin,
    get_matrix_info,
    list_matrix_names,
    poisson2d,
    poisson3d,
    stencil27,
)
from repro.matrices.synth import random_rectangular
from repro.sparse.csr import reduce_rows


def assert_well_conditioned(a):
    """Generator contract: full diagonal, diagonally dominant rows,
    infinity norm <= 1 (so powers stay bounded)."""
    n = a.n_rows
    diag = a.diagonal()
    assert (diag > 0).all()
    rows = np.repeat(np.arange(n, dtype=np.int64), a.row_nnz())
    off = rows != a.indices
    off_sum = reduce_rows(np.where(off, np.abs(a.data), 0.0), a.indptr)
    assert (diag >= off_sum - 1e-12).all(), "not diagonally dominant"
    row_abs = reduce_rows(np.abs(a.data), a.indptr)
    assert row_abs.max() <= 1.0 + 1e-12


class TestGrids:
    def test_poisson2d_structure(self):
        a = poisson2d(5)
        assert a.shape == (25, 25)
        # Interior nodes have 5 entries, corners 3.
        assert a.row_nnz().max() == 5
        assert a.row_nnz().min() == 3
        assert a.is_symmetric(tol=1e-12)
        assert_well_conditioned(a)

    def test_poisson2d_rectangular_grid(self):
        assert poisson2d(3, 7).shape == (21, 21)

    def test_poisson3d(self):
        a = poisson3d(4)
        assert a.shape == (64, 64)
        assert a.row_nnz().max() == 7
        assert a.is_symmetric(tol=1e-12)
        assert_well_conditioned(a)

    def test_stencil27(self):
        a = stencil27(4)
        assert a.shape == (64, 64)
        assert a.row_nnz().max() == 27
        assert a.is_symmetric(tol=1e-12)

    def test_determinism(self):
        a1, a2 = poisson2d(6, seed=5), poisson2d(6, seed=5)
        np.testing.assert_array_equal(a1.data, a2.data)
        a3 = poisson2d(6, seed=6)
        assert not np.array_equal(a1.data, a3.data)


class TestBandedRandom:
    @pytest.mark.parametrize("symmetric", [True, False])
    def test_basic_contract(self, symmetric):
        a = banded_random(300, 9, 20, symmetric=symmetric, seed=1)
        assert a.shape == (300, 300)
        assert a.is_symmetric(tol=1e-12) == symmetric
        assert_well_conditioned(a)

    def test_nnz_per_row_near_target(self):
        a = banded_random(2000, 20, 200, symmetric=True, seed=2)
        assert a.nnz / a.n_rows == pytest.approx(20, rel=0.5)

    def test_bandwidth_respected_statistically(self):
        from repro.reorder.rcm import matrix_bandwidth

        narrow = banded_random(500, 7, 5, symmetric=True, seed=3)
        wide = banded_random(500, 7, 100, symmetric=True, seed=3)
        assert matrix_bandwidth(narrow) < matrix_bandwidth(wide)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            banded_random(0, 5, 5)

    def test_random_rectangular(self):
        b = random_rectangular(10, 40, 3.0, seed=4)
        assert b.shape == (10, 40)
        assert b.nnz == 30


class TestDomainGenerators:
    @pytest.mark.parametrize("gen,symmetric", [
        (generate_fem_shell, True),
        (generate_fem_solid, True),
        (generate_ship_structure, True),
        (generate_cage_digraph, False),
    ])
    def test_symmetry_contract(self, gen, symmetric):
        a = gen(1500, seed=0)
        assert a.is_symmetric(tol=1e-12) == symmetric
        assert_well_conditioned(a)

    def test_circuit_sparsity(self):
        a = generate_circuit(2500, seed=0)
        assert a.nnz / a.n_rows < 8  # G3_circuit-like: very sparse
        assert a.is_symmetric(tol=1e-12)

    def test_kkt_saddle_structure(self):
        a = generate_kkt(1500, seed=0)
        assert a.is_symmetric(tol=1e-12)
        n_h = (2 * 1500) // 3
        # The (constraint, constraint) block is diagonal-only.
        dense = a.to_dense()
        cc = dense[n_h:, n_h:]
        off_diag = cc - np.diag(np.diag(cc))
        assert np.abs(off_diag).max() == 0.0


class TestRegistry:
    def test_fourteen_entries_in_paper_order(self):
        assert list_matrix_names()[0] == "af_shell10"
        assert list_matrix_names()[-1] == "shipsec1"
        assert len(TABLE2) == 14

    def test_published_statistics(self):
        audikw = get_matrix_info("audikw_1")
        assert audikw.rows == 943_695
        assert audikw.nnz_per_row == pytest.approx(82.28, abs=0.01)
        g3 = get_matrix_info("G3_circuit")
        assert g3.nnz_per_row == pytest.approx(4.83, abs=0.01)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown matrix"):
            get_matrix_info("not_a_matrix")

    def test_traffic_stats_scaling(self):
        info = get_matrix_info("pwtk")
        full = info.traffic_stats()
        assert full.n == info.rows
        assert full.nnz_per_row == pytest.approx(info.nnz_per_row, rel=1e-6)
        small = info.traffic_stats(rows=10_000)
        assert small.n == 10_000
        assert small.nnz_per_row == pytest.approx(info.nnz_per_row, rel=1e-3)
        assert small.bandwidth < full.bandwidth

    @pytest.mark.parametrize("name", ["cant", "G3_circuit", "cage14"])
    def test_standins_match_character(self, name):
        info = get_matrix_info(name)
        a = generate_standin(name, n_rows=4000)
        assert a.is_symmetric(tol=1e-12) == info.symmetric
        assert a.nnz / a.n_rows == pytest.approx(info.nnz_per_row, rel=0.45)

    def test_standin_determinism(self):
        a1 = generate_standin("pwtk", n_rows=2000)
        a2 = generate_standin("pwtk", n_rows=2000)
        np.testing.assert_array_equal(a1.data, a2.data)
