"""Shared test fixtures: small deterministic matrices and RNGs."""

import numpy as np
import pytest

from repro.matrices import banded_random, poisson2d


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_sym():
    """Small symmetric diagonally-dominant matrix (120 rows)."""
    return banded_random(120, 7, 12, symmetric=True, seed=3)


@pytest.fixture
def small_unsym():
    """Small unsymmetric matrix (90 rows)."""
    return banded_random(90, 5, 9, symmetric=False, seed=4)


@pytest.fixture
def grid():
    """5-point grid matrix (64 rows)."""
    return poisson2d(8, seed=1)


@pytest.fixture(params=["sym", "unsym", "grid"])
def any_matrix(request, small_sym, small_unsym, grid):
    """Parametrised across the three structural families."""
    return {"sym": small_sym, "unsym": small_unsym, "grid": grid}[request.param]
