"""Differential tests of the shared-memory process-pool executor.

The contract under test: ``executor="processes"`` must produce
**bit-for-bit** the serial fused pipeline's result for every assignment
policy and worker count — workers run the identical per-row
``reduce_rows`` arithmetic over the *same physical memory* (the
shared-memory arena), and phases only reorder independent work.  As in
the threaded suite, ``np.array_equal`` therefore doubles as a race
detector across process boundaries: a stale mapping, a dropped
descriptor, or a missed barrier perturbs at least one summand.

On top of the differential layer this module exercises what only a
process backend can break: a SIGKILL'd worker (dead-worker detection,
``fallback_serial`` recovery, pool respawn) and the shared-memory
lifecycle (no ``/dev/shm`` residue after close, crash paths, or a
process that exits without cleaning up).

The default worker count is 2 and can be widened via the
``REPRO_PROC_WORKERS`` environment variable (the CI differential step
pins it to 2 explicitly).
"""

import os
import pickle
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core import FBMPKOperator, build_fbmpk_operator
from repro.core.partition import split_ldu
from repro.matrices import banded_random, poisson2d
from repro.parallel import (
    BlockTask,
    Phase,
    PhaseExecutionError,
    ProcessPhaseExecutor,
    SharedArena,
)
from repro.parallel.procexec import SHM_PREFIX
from repro.robust.faults import FaultInjector, RaiseFault

POLICIES = ["round_robin", "lpt", "dynamic"]
KS = [1, 2, 3, 4, 5, 6]
BLOCK = 8
N_WORKERS = int(os.environ.get("REPRO_PROC_WORKERS", "2"))


def shm_residue():
    """Names of live segments this backend created."""
    try:
        return {f for f in os.listdir("/dev/shm")
                if f.startswith(SHM_PREFIX)}
    except FileNotFoundError:  # non-Linux: rely on finalizers only
        return set()


@pytest.fixture
def shm_leaked():
    """Segments created during the test that outlive it.

    Module-scoped operator fixtures keep their arenas legitimately open
    across tests, so leak checks must be deltas against a baseline, not
    absolute ``/dev/shm`` emptiness.
    """
    base = shm_residue()
    return lambda: shm_residue() - base


def _matrices():
    return {
        "sym": banded_random(110, 6, 11, symmetric=True, seed=11),
        "unsym": banded_random(97, 5, 9, symmetric=False, seed=12),
        "grid": poisson2d(9, seed=13),
    }


@pytest.fixture(scope="module")
def matrices():
    return _matrices()


@pytest.fixture(scope="module")
def x_vectors(matrices):
    return {name: np.random.default_rng(100 + i).standard_normal(a.n_rows)
            for i, (name, a) in enumerate(matrices.items())}


@pytest.fixture(scope="module")
def serial_results(matrices, x_vectors):
    """Serial fused results, the bitwise oracle: one per (matrix, k)."""
    out = {}
    for name, a in matrices.items():
        op = build_fbmpk_operator(a, block_size=BLOCK)
        for k in KS:
            out[name, k] = op.power(x_vectors[name], k)
    return out


@pytest.fixture(scope="module")
def process_ops(matrices):
    """Process-backed operators cached per (matrix, policy) — pools are
    persistent, so the whole module reuses a handful of worker sets."""
    cache = {}

    def get(name, policy):
        key = (name, policy)
        if key not in cache:
            cache[key] = build_fbmpk_operator(
                matrices[name], block_size=BLOCK, executor="processes",
                n_threads=N_WORKERS, assign_policy=policy)
        return cache[key]

    yield get
    for op in cache.values():
        op.close()


class TestDifferential:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("k", KS)
    @pytest.mark.parametrize("name", ["sym", "unsym", "grid"])
    def test_processes_match_serial_bitwise(self, name, k, policy,
                                            process_ops, x_vectors,
                                            serial_results):
        op = process_ops(name, policy)
        y = op.power(x_vectors[name], k)
        np.testing.assert_array_equal(y, serial_results[name, k])

    def test_more_workers_than_blocks(self, matrices, x_vectors,
                                      serial_results):
        """Workers far beyond the block count: most bins stay empty
        every phase, the rest must still cover all blocks."""
        with build_fbmpk_operator(matrices["grid"], block_size=32,
                                  executor="processes", n_threads=6) as op:
            y = op.power(x_vectors["grid"], 4)
        serial = build_fbmpk_operator(matrices["grid"], block_size=32)
        np.testing.assert_array_equal(y, serial.power(x_vectors["grid"], 4))

    def test_levels_strategy(self, matrices, x_vectors):
        a = matrices["grid"]
        serial = build_fbmpk_operator(a, strategy="levels")
        with build_fbmpk_operator(a, strategy="levels",
                                  executor="processes",
                                  n_threads=N_WORKERS) as op:
            for k in (1, 4, 5):
                np.testing.assert_array_equal(
                    op.power(x_vectors["grid"], k),
                    serial.power(x_vectors["grid"], k))

    @pytest.mark.parametrize("m", [1, 2, 3, 5])
    @pytest.mark.parametrize("k", [1, 4, 5])
    def test_power_block_matches_serial(self, matrices, process_ops, m, k):
        """Block sweeps cover both SpMM width branches (2m <= 4 uses the
        per-column kernel, wider blocks the 2-D reduction)."""
        a = matrices["sym"]
        X = np.random.default_rng(50 + m).standard_normal((a.n_rows, m))
        serial = build_fbmpk_operator(a, block_size=BLOCK)
        op = process_ops("sym", "lpt")
        np.testing.assert_array_equal(op.power_block(X, k),
                                      serial.power_block(X, k))

    def test_on_iterate_matches_serial(self, matrices, x_vectors):
        a = matrices["sym"]
        x = x_vectors["sym"]
        serial_seen, proc_seen = {}, {}
        build_fbmpk_operator(a, block_size=BLOCK).power(
            x, 5, on_iterate=lambda i, xi: serial_seen.setdefault(i, xi))
        with build_fbmpk_operator(a, block_size=BLOCK,
                                  executor="processes",
                                  n_threads=N_WORKERS) as op:
            op.power(x, 5,
                     on_iterate=lambda i, xi: proc_seen.setdefault(i, xi))
        assert sorted(serial_seen) == sorted(proc_seen) == [1, 2, 3, 4, 5]
        for i in serial_seen:
            np.testing.assert_array_equal(serial_seen[i], proc_seen[i])

    def test_out_param_is_filled_in_place(self, matrices, x_vectors,
                                          serial_results):
        with build_fbmpk_operator(matrices["sym"], block_size=BLOCK,
                                  executor="processes",
                                  n_threads=N_WORKERS) as op:
            out = np.empty(matrices["sym"].n_rows)
            y = op.power(x_vectors["sym"], 4, out=out)
            assert y is out
            np.testing.assert_array_equal(out, serial_results["sym", 4])


class TestDeterminism:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_repeated_runs_bitwise_identical(self, process_ops, x_vectors,
                                             serial_results, policy):
        x = x_vectors["grid"]
        op = process_ops("grid", policy)
        first = op.power(x, 5)
        np.testing.assert_array_equal(first, serial_results["grid", 5])
        for _ in range(9):
            np.testing.assert_array_equal(op.power(x, 5), first)

    def test_worker_count_does_not_change_bits(self, matrices, x_vectors):
        x = x_vectors["unsym"]
        results = []
        for nt in (1, 3):
            with build_fbmpk_operator(matrices["unsym"], block_size=BLOCK,
                                      executor="processes",
                                      n_threads=nt) as op:
                results.append(op.power(x, 6))
        np.testing.assert_array_equal(results[0], results[1])


class TestFailureContainment:
    def _operator(self, matrices, **kw):
        return build_fbmpk_operator(matrices["grid"], block_size=BLOCK,
                                    executor="processes",
                                    n_threads=2, **kw)

    def test_sigkilled_worker_raises_with_context(self, matrices,
                                                  x_vectors, shm_leaked):
        op = self._operator(matrices)
        op.power(x_vectors["grid"], 2)  # spawn the pool
        pids = op._procs.pool.start()
        os.kill(pids[0], signal.SIGKILL)
        time.sleep(0.05)
        with pytest.raises(PhaseExecutionError, match="died"):
            op.power(x_vectors["grid"], 2)
        op.close()
        assert shm_leaked() == set()

    def test_sigkilled_worker_fallback_serial(self, matrices, x_vectors,
                                              serial_results, shm_leaked):
        op = self._operator(matrices, on_failure="fallback_serial")
        y0 = op.power(x_vectors["grid"], 4)
        np.testing.assert_array_equal(y0, serial_results["grid", 4])
        pids = op._procs.pool.start()
        os.kill(pids[1], signal.SIGKILL)
        time.sleep(0.05)
        with pytest.warns(RuntimeWarning, match="fallback_serial"):
            y1 = op.power(x_vectors["grid"], 4)
        np.testing.assert_array_equal(y1, serial_results["grid", 4])
        # The pool respawns transparently on the next call.
        y2 = op.power(x_vectors["grid"], 4)
        np.testing.assert_array_equal(y2, serial_results["grid", 4])
        assert op.last_stats is not None and op.last_stats.barriers > 0
        op.close()
        assert shm_leaked() == set()

    def test_injected_dispatch_fault_raises(self, matrices, x_vectors,
                                            shm_leaked):
        """The "executor.task" chaos hook fires parent-side at dispatch;
        a RaiseFault there aborts the phase with full context after the
        barrier has drained."""
        op = self._operator(matrices)
        inj = FaultInjector().install("executor.task", RaiseFault(times=1))
        with inj:
            with pytest.raises(PhaseExecutionError, match="injected"):
                op.power(x_vectors["grid"], 2)
        op.close()
        assert shm_leaked() == set()

    def test_injected_dispatch_fault_fallback(self, matrices, x_vectors,
                                              serial_results):
        op = self._operator(matrices, on_failure="fallback_serial")
        inj = FaultInjector().install("executor.task", RaiseFault(times=1))
        with inj:
            with pytest.warns(RuntimeWarning, match="fallback_serial"):
                y = op.power(x_vectors["grid"], 4)
        np.testing.assert_array_equal(y, serial_results["grid", 4])
        op.close()

    def test_worker_crash_carries_context_and_pickles(self, matrices,
                                                      shm_leaked):
        """An exception raised inside a worker crosses the process
        boundary chained into a PhaseExecutionError whose scheduling
        context survives a further pickle round-trip."""
        part = split_ldu(matrices["grid"])
        n = part.n
        phases = [Phase(color=0, tasks=(BlockTask(0, n, part.lower.nnz),))]
        with ProcessPhaseExecutor(part, n_workers=2,
                                  task_hook=_hook_boom) as ex:
            with pytest.raises(PhaseExecutionError,
                               match="hook boom") as info:
                ex.run_phases(phases, "forward")
        err = info.value
        assert err.phase_index == 0 and err.color == 0
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, PhaseExecutionError)
        assert clone.phase_index == err.phase_index
        assert clone.color == err.color
        assert clone.block == err.block
        assert clone.thread == err.thread
        assert shm_leaked() == set()

    def test_block_call_fallback_serial(self, matrices, serial_results,
                                        shm_leaked):
        op = self._operator(matrices, on_failure="fallback_serial")
        a = matrices["grid"]
        X = np.random.default_rng(5).standard_normal((a.n_rows, 2))
        serial = build_fbmpk_operator(a, block_size=BLOCK)
        ref = serial.power_block(X, 4)
        np.testing.assert_array_equal(op.power_block(X, 4), ref)
        pids = op._procs.pool.start()
        os.kill(pids[0], signal.SIGKILL)
        time.sleep(0.05)
        with pytest.warns(RuntimeWarning, match="fallback_serial"):
            np.testing.assert_array_equal(op.power_block(X, 4), ref)
        op.close()
        assert shm_leaked() == set()


def _hook_boom(**ctx):
    """Module-level (hence picklable) in-worker chaos hook."""
    raise RuntimeError("hook boom")


class TestSharedMemoryLifecycle:
    def test_close_unlinks_everything(self, matrices, x_vectors,
                                      shm_leaked):
        op = build_fbmpk_operator(matrices["sym"], block_size=BLOCK,
                                  executor="processes", n_threads=2)
        op.power(x_vectors["sym"], 4)
        op.power_block(np.ones((matrices["sym"].n_rows, 2)), 2)
        assert shm_leaked() != set()  # arena is live while the op is open
        op.close()
        assert shm_leaked() == set()
        # Idempotent, and the operator remains usable afterwards.
        op.close()
        y = op.power(x_vectors["sym"], 2)
        op.close()
        assert shm_leaked() == set()

    def test_block_regrow_reallocates_segments(self, matrices, shm_leaked):
        """Changing m drops the old block segments before creating the
        new ones — segment count stays bounded across reshapes."""
        a = matrices["sym"]
        with build_fbmpk_operator(a, block_size=BLOCK,
                                  executor="processes",
                                  n_threads=2) as op:
            serial = build_fbmpk_operator(a, block_size=BLOCK)
            for m in (4, 1, 3):
                X = np.random.default_rng(m).standard_normal((a.n_rows, m))
                np.testing.assert_array_equal(op.power_block(X, 4),
                                              serial.power_block(X, 4))
                # 9 core + hb + 3 span rings + 4 dispatch slabs
                # (ctrl/wdone/wsteal/wbusy) + 2 descriptor plans
                # (fw/bw) + xyb + tmpb
                assert len(shm_leaked()) == 21
        assert shm_leaked() == set()

    def test_arena_finalizer_runs_on_gc(self, shm_leaked):
        arena = SharedArena()
        arena.add("x", np.zeros(8))
        assert len(shm_leaked()) == 1
        del arena
        import gc

        gc.collect()
        assert shm_leaked() == set()

    def test_unlink_survives_process_exit_without_close(self, tmp_path,
                                                        shm_leaked):
        """A process that builds a pool and exits without calling close
        must still leave /dev/shm clean (finalizer doubles as an atexit
        hook)."""
        script = tmp_path / "leaky.py"
        script.write_text(
            "import numpy as np\n"
            "from repro.matrices import poisson2d\n"
            "from repro.core import build_fbmpk_operator\n"
            "a = poisson2d(8, seed=1)\n"
            "op = build_fbmpk_operator(a, block_size=8,"
            " executor='processes', n_threads=2)\n"
            "y = op.power(np.ones(a.n_rows), 4)\n"
            "print('done', float(y.sum()))\n"  # exit WITHOUT op.close()
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        res = subprocess.run([sys.executable, str(script)], env=env,
                             capture_output=True, text=True, timeout=120)
        assert res.returncode == 0, res.stderr
        assert "done" in res.stdout
        assert shm_leaked() == set()

    def test_segments_survive_sigkilled_worker(self, matrices, x_vectors,
                                               shm_leaked):
        """Killing a worker must not take the arena down with it — the
        parent owns the segments and cleans them up at close."""
        op = build_fbmpk_operator(matrices["grid"], block_size=BLOCK,
                                  executor="processes", n_threads=2,
                                  on_failure="fallback_serial")
        op.power(x_vectors["grid"], 2)
        pids = op._procs.pool.start()
        os.kill(pids[0], signal.SIGKILL)
        time.sleep(0.05)
        with pytest.warns(RuntimeWarning):
            op.power(x_vectors["grid"], 2)
        op.close()
        assert shm_leaked() == set()


class TestObservability:
    def test_stats_shape(self, matrices, x_vectors):
        k = 6
        with build_fbmpk_operator(matrices["sym"], block_size=BLOCK,
                                  executor="processes",
                                  n_threads=2) as op:
            fw, bw = op.block_phases()
            op.power(x_vectors["sym"], k)
            stats = op.last_stats
        assert stats is not None
        assert stats.n_threads == 2 and stats.policy == "lpt"
        assert stats.barriers == (len(fw) + len(bw)) * (k // 2)
        assert len(stats.phases) == stats.barriers
        assert all(w >= 0.0 for w in stats.phase_wall_s)
        assert len(stats.thread_busy_s) == 2
        assert stats.busy_s > 0.0
        assert stats.efficiency > 0.0
        fw_nnz = sum(p.nnz for p in stats.phases[:len(fw)])
        assert fw_nnz == op.part.lower.nnz

    def test_executor_phase_spans_emitted(self, matrices, x_vectors):
        from repro import obs

        with build_fbmpk_operator(matrices["sym"], block_size=BLOCK,
                                  executor="processes",
                                  n_threads=2) as op:
            with obs.Telemetry() as tel:
                op.power(x_vectors["sym"], 2)
            modes = {r.attrs.get("mode") for r in tel.recorder.records()
                     if r.name == "executor.phase"}
            assert modes == {"processes"}
            snap = tel.metrics.snapshot()
            assert snap["counters"]["executor.barriers"]["value"] > 0

    def test_serial_run_clears_stats(self, matrices, x_vectors):
        op = build_fbmpk_operator(matrices["sym"], block_size=BLOCK,
                                  executor="processes", n_threads=2)
        op.power(x_vectors["sym"], 2)
        assert op.last_stats is not None
        op.configure_executor(executor="serial")
        op.power(x_vectors["sym"], 2)
        assert op.last_stats is None
        op.close()


class TestLifecycle:
    def test_configure_switches_between_all_backends(self, matrices,
                                                     x_vectors,
                                                     serial_results,
                                                     shm_leaked):
        op = build_fbmpk_operator(matrices["sym"], block_size=BLOCK)
        x = x_vectors["sym"]
        for backend in ("processes", "threads", "serial", "processes"):
            op.configure_executor(executor=backend, n_threads=2)
            np.testing.assert_array_equal(op.power(x, 4),
                                          serial_results["sym", 4])
        op.close()
        assert shm_leaked() == set()

    def test_save_load_processes(self, matrices, x_vectors, serial_results,
                                 tmp_path, shm_leaked):
        path = tmp_path / "op.npz"
        build_fbmpk_operator(matrices["sym"], block_size=BLOCK).save(path)
        with FBMPKOperator.load(path, executor="processes",
                                n_threads=2) as op:
            y = op.power(x_vectors["sym"], 5)
        np.testing.assert_array_equal(y, serial_results["sym", 5])
        assert shm_leaked() == set()

    def test_executor_rejects_bad_worker_count(self, matrices):
        part = split_ldu(matrices["sym"])
        with pytest.raises(ValueError, match="n_workers"):
            ProcessPhaseExecutor(part, n_workers=0)

    def test_executor_rejects_unpicklable_hook(self, matrices):
        part = split_ldu(matrices["sym"])
        with pytest.raises(ValueError, match="picklable"):
            ProcessPhaseExecutor(part, n_workers=1,
                                 task_hook=lambda **kw: None)

    def test_executor_rejects_unknown_sweep(self, matrices):
        part = split_ldu(matrices["sym"])
        with ProcessPhaseExecutor(part, n_workers=1) as ex:
            with pytest.raises(ValueError, match="sweep"):
                ex.run_phases([], "sideways")
