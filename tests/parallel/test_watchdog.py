"""Executor watchdogs: a worker that hangs (rather than dies) must not
wedge a sweep forever.

Process pools: workers stamp a shared-memory heartbeat slab per block;
the dispatcher's bounded barrier wait detects a worker that is alive
but silent past ``hang_timeout``, SIGKILLs it, and the existing
dead-worker machinery (teardown, lazy respawn, ``fallback_serial``)
takes over.  ``SIGSTOP`` is the canonical hang: the process is alive,
consumes no CPU, and responds to nothing but SIGKILL.

Thread pools: Python threads cannot be killed, so a bin still running
``hang_timeout`` seconds after the phase barrier was entered fails the
phase and the *pool* is abandoned — daemon worker threads keep the hung
kernel from blocking interpreter exit, and the operator drops its
persistent buffers so an abandoned zombie writer can no longer touch
memory any later sweep reads."""

import os
import signal
import time

import numpy as np
import pytest

from repro.core import build_fbmpk_operator
from repro.matrices import poisson2d
from repro.parallel import PhaseExecutionError
from repro.parallel.procexec import SHM_PREFIX
from repro.robust.faults import FaultInjector, HangFault

BLOCK = 8


def shm_residue():
    try:
        return {f for f in os.listdir("/dev/shm")
                if f.startswith(SHM_PREFIX)}
    except FileNotFoundError:  # non-Linux
        return set()


@pytest.fixture
def shm_leaked():
    base = shm_residue()
    return lambda: shm_residue() - base


@pytest.fixture(scope="module")
def grid():
    return poisson2d(9, seed=3)


@pytest.fixture(scope="module")
def x(grid):
    return np.random.default_rng(8).standard_normal(grid.n_rows)


@pytest.fixture(scope="module")
def serial_ref(grid, x):
    with build_fbmpk_operator(grid, block_size=BLOCK) as op:
        return {k: op.power(x.copy(), k) for k in (2, 4)}


# -- process pool: SIGSTOP -------------------------------------------------
class TestProcessWatchdog:
    def _operator(self, grid, **kw):
        kw.setdefault("hang_timeout", 1.0)
        return build_fbmpk_operator(grid, block_size=BLOCK,
                                    executor="processes", n_threads=2,
                                    **kw)

    def test_sigstopped_worker_detected_and_killed(self, grid, x,
                                                   shm_leaked):
        op = self._operator(grid)
        op.power(x.copy(), 2)  # spawn the pool
        pids = op._procs.pool.start()
        os.kill(pids[0], signal.SIGSTOP)
        t0 = time.monotonic()
        with pytest.raises(PhaseExecutionError, match="watchdog"):
            op.power(x.copy(), 2)
        elapsed = time.monotonic() - t0
        # Bounded: hang_timeout plus scan/kill slack, nowhere near a
        # barrier that waits forever.
        assert elapsed < 10.0
        op.close()
        assert shm_leaked() == set()

    def test_sigstopped_worker_fallback_serial_bitwise(self, grid, x,
                                                       serial_ref,
                                                       shm_leaked):
        op = self._operator(grid, on_failure="fallback_serial")
        y0 = op.power(x.copy(), 4)
        np.testing.assert_array_equal(y0, serial_ref[4])
        pids = op._procs.pool.start()
        os.kill(pids[1], signal.SIGSTOP)
        with pytest.warns(RuntimeWarning, match="fallback_serial"):
            y1 = op.power(x.copy(), 4)
        np.testing.assert_array_equal(y1, serial_ref[4])
        # The pool respawns transparently and parallel service resumes.
        y2 = op.power(x.copy(), 4)
        np.testing.assert_array_equal(y2, serial_ref[4])
        op.close()
        assert shm_leaked() == set()

    def test_in_worker_hang_fault_detected(self, grid, x, serial_ref,
                                           shm_leaked):
        """A HangFault at the in-worker ``procexec.heartbeat`` site
        stalls a worker between its heartbeat stamp and the kernel —
        exactly the silent-worker shape the watchdog exists for.

        Fault state is inherited per-worker at fork, so the injector
        must be active when the pool spawns: each worker gets its own
        ``times=1`` copy and stalls on its first block."""
        op = self._operator(grid, on_failure="fallback_serial")
        inj = FaultInjector().install(
            "procexec.heartbeat", HangFault(seconds=None, times=1))
        with inj:
            with pytest.warns(RuntimeWarning, match="fallback_serial"):
                y = op.power(x.copy(), 2)
        np.testing.assert_array_equal(y, serial_ref[2])
        # The respawned pool (spawned outside the injector) is clean.
        y2 = op.power(x.copy(), 2)
        np.testing.assert_array_equal(y2, serial_ref[2])
        op.close()
        assert shm_leaked() == set()

    def test_hang_timeout_validation(self, grid):
        with pytest.raises(ValueError, match="hang_timeout"):
            build_fbmpk_operator(grid, executor="processes",
                                 n_threads=2, hang_timeout=0.0)

    def test_worker_health_reports_liveness(self, grid, x):
        op = self._operator(grid)
        health = op.worker_health()
        assert health["hang_timeout_s"] == 1.0
        assert health["process_workers"] is None  # pool not spawned yet
        op.power(x.copy(), 2)
        health = op.worker_health()
        assert health["process_workers"] == [True, True]
        op.close()


# -- thread pool: bounded phase barrier ------------------------------------
class TestThreadedWatchdog:
    def _operator(self, grid, **kw):
        kw.setdefault("hang_timeout", 0.5)
        return build_fbmpk_operator(grid, block_size=BLOCK,
                                    executor="threads", n_threads=2,
                                    **kw)

    def test_hung_bin_fails_phase_within_bound(self, grid, x):
        op = self._operator(grid)
        inj = FaultInjector().install("executor.task",
                                      HangFault(seconds=30.0, times=1))
        t0 = time.monotonic()
        with inj:
            with pytest.raises(PhaseExecutionError,
                               match="still running"):
                op.power(x.copy(), 2)
        assert time.monotonic() - t0 < 10.0
        op.close()

    def test_hung_bin_fallback_serial_bitwise(self, grid, x,
                                              serial_ref):
        op = self._operator(grid, on_failure="fallback_serial")
        y0 = op.power(x.copy(), 4)
        np.testing.assert_array_equal(y0, serial_ref[4])
        inj = FaultInjector().install("executor.task",
                                      HangFault(seconds=30.0, times=1))
        with inj:
            with pytest.warns(RuntimeWarning, match="fallback_serial"):
                y1 = op.power(x.copy(), 4)
        np.testing.assert_array_equal(y1, serial_ref[4])
        # A fresh pool serves the next call; the abandoned one is gone.
        y2 = op.power(x.copy(), 4)
        np.testing.assert_array_equal(y2, serial_ref[4])
        op.close()

    def test_no_hang_timeout_keeps_plain_pool(self, grid, x,
                                              serial_ref):
        with build_fbmpk_operator(grid, block_size=BLOCK,
                                  executor="threads",
                                  n_threads=2) as op:
            np.testing.assert_array_equal(op.power(x.copy(), 2),
                                          serial_ref[2])
