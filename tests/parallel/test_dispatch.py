"""Dispatch primitives behind the batched phase executors.

Three contracts, each tested in isolation from the sweeps they drive:

* **Cursor atomicity** — chunked claims from :class:`ThreadCursor`
  (8 threads) and :class:`SharedCursor` (8 processes over a real
  shared-memory control slab) partition ``[0, n_blocks)`` exactly: the
  claimed ranges are disjoint, contiguous, and sum to ``n_blocks`` —
  no descriptor is ever double-claimed or dropped.
* **Completion-counter barrier** — the last arrival (and only the
  last) sets the event; a poisoned lock is reported, not blocked on;
  a worker SIGKILL'd mid-phase (between claim and arrival) still
  closes the barrier through the dispatcher's liveness scan and
  surfaces as the ordinary dead-worker failure.
* **Order preservation** — the batched descriptor order is a
  permutation of the legacy per-block dispatch order within each
  colour, for every assignment policy (hypothesis property).
"""

import multiprocessing as mp
import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import split_ldu
from repro.matrices import poisson2d
from repro.parallel import (
    BlockTask,
    CompletionBarrier,
    DescriptorBatch,
    ExecutionStats,
    Phase,
    PhaseExecutionError,
    ProcessPhaseExecutor,
    SharedArena,
    SharedCursor,
    ThreadCursor,
    default_claim_chunk,
    pin_worker,
)
from repro.parallel.dispatch import CTRL_CURSOR, CTRL_SLOTS, ordered_tasks
from repro.parallel.procexec import SHM_PREFIX, _AttachedSegments
from repro.parallel.scheduler import assign_tasks

POLICIES = ["round_robin", "lpt", "dynamic"]


def _ctx():
    return mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                          else "spawn")


def shm_residue():
    try:
        return {f for f in os.listdir("/dev/shm")
                if f.startswith(SHM_PREFIX)}
    except FileNotFoundError:  # non-Linux
        return set()


@pytest.fixture
def shm_leaked():
    base = shm_residue()
    return lambda: shm_residue() - base


# -- descriptor packing ----------------------------------------------------
def _phases():
    return [
        Phase(color=0, tasks=[BlockTask(0, 4, 10), BlockTask(4, 8, 30),
                              BlockTask(8, 12, 20)]),
        Phase(color=1, tasks=[BlockTask(12, 16, 5)]),
        Phase(color=0, tasks=[]),
    ]


def test_ordered_tasks_policies():
    tasks = [BlockTask(0, 1, 10), BlockTask(1, 2, 30), BlockTask(2, 3, 30),
             BlockTask(3, 4, 20)]
    # lpt: largest first, stable among equals (the 30s keep their order).
    assert ordered_tasks(tasks, "lpt") == [tasks[1], tasks[2], tasks[3],
                                           tasks[0]]
    assert ordered_tasks(tasks, "round_robin") == tasks
    assert ordered_tasks(tasks, "dynamic") == tasks
    with pytest.raises(ValueError, match="policy"):
        ordered_tasks(tasks, "sideways")


def test_descriptor_batch_layout():
    phases = _phases()
    batch = DescriptorBatch.from_phases(phases, "round_robin")
    assert batch.n_phases == 3
    assert batch.n_blocks == 4
    assert batch.phase_range(0) == (0, 3)
    assert batch.phase_range(1) == (3, 4)
    assert batch.phase_range(2) == (4, 4)  # empty phase: zero-width range
    assert batch.phase_nnz(0) == 60
    assert [batch.phase_color(p) for p in range(3)] == [0, 1, 0]
    assert batch.phases == tuple(phases)
    rows = batch.pack_rows()
    assert rows.shape == (2, 4) and rows.dtype == np.int64
    np.testing.assert_array_equal(rows[0], [0, 4, 8, 12])
    np.testing.assert_array_equal(rows[1], [4, 8, 12, 16])


@settings(deadline=None, max_examples=60)
@given(
    raw=st.lists(
        st.lists(st.tuples(st.integers(0, 512), st.integers(1, 64),
                           st.integers(0, 1 << 20)),
                 min_size=0, max_size=10),
        min_size=1, max_size=5),
    policy=st.sampled_from(POLICIES),
    n_workers=st.integers(1, 8),
)
def test_batched_order_is_permutation_of_legacy(raw, policy, n_workers):
    """Within each colour, the descriptor slice holds exactly the blocks
    the legacy per-bin dispatch would have shipped — a permutation,
    never a leak across phase boundaries."""
    phases = [Phase(color=ci,
                    tasks=[BlockTask(s, s + r, z) for s, r, z in spec])
              for ci, spec in enumerate(raw)]
    batch = DescriptorBatch.from_phases(phases, policy)
    assert batch.n_phases == len(phases)
    assert batch.n_blocks == sum(len(p.tasks) for p in phases)
    for pi, phase in enumerate(phases):
        lo, hi = batch.phase_range(pi)
        assert hi - lo == len(phase.tasks)
        got = sorted((int(batch.starts[g]), int(batch.stops[g]),
                      int(batch.nnz[g])) for g in range(lo, hi))
        legacy = sorted((t.start, t.stop, t.nnz)
                        for bin_ in assign_tasks(phase.tasks, n_workers,
                                                 policy)
                        for t in bin_)
        assert got == legacy
        assert batch.phase_color(pi) == phase.color


def test_default_claim_chunk():
    assert default_claim_chunk(0, 4) == 1
    assert default_claim_chunk(3, 4) == 1
    assert default_claim_chunk(320, 4) == 20
    with pytest.raises(ValueError, match="positive"):
        default_claim_chunk(16, 0)


# -- cursors ---------------------------------------------------------------
def _check_partition(claims, n_blocks, chunk):
    """Claimed ranges must tile [0, n_blocks) exactly, in cursor order,
    each at most one chunk wide."""
    claims = sorted(claims)
    assert sum(hi - lo for lo, hi in claims) == n_blocks
    pos = 0
    for lo, hi in claims:
        assert lo == pos, f"gap or double-claim at {pos}: got {lo}"
        assert 0 < hi - lo <= chunk
        pos = hi
    assert pos == n_blocks


def test_thread_cursor_chunk_semantics():
    cur = ThreadCursor(0)
    assert cur.claim(5, 3) == (0, 3)
    assert cur.claim(5, 3) == (3, 5)  # truncated at hi
    assert cur.claim(5, 3) == (5, 5)  # drained: empty range
    cur.reset(2)
    assert cur.claim(5, 10) == (2, 5)


def test_thread_cursor_eight_way_hammer():
    import threading

    n_blocks, chunk = 997, 3
    cur = ThreadCursor(0)
    claims = [[] for _ in range(8)]

    def worker(wid):
        while True:
            lo, hi = cur.claim(n_blocks, chunk)
            if lo >= hi:
                return
            claims[wid].append((lo, hi))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    _check_partition([c for per in claims for c in per], n_blocks, chunk)


def _hammer_main(spec, lock, n_blocks, chunk, start, outq, wid):
    seg = _AttachedSegments({"ctrl": spec})
    cursor = SharedCursor(seg.view("ctrl"), lock)
    start.wait()
    claims = []
    while True:
        lo, hi = cursor.claim(n_blocks, chunk)
        if lo >= hi:
            break
        claims.append((lo, hi))
    outq.put((wid, claims))
    seg.close()


def test_shared_cursor_eight_way_hammer(shm_leaked):
    """Eight processes hammer one shared-memory cursor: every descriptor
    index is claimed exactly once and the chunk bound holds."""
    ctx = _ctx()
    arena = SharedArena()
    arena.add("ctrl", np.zeros(CTRL_SLOTS, dtype=np.int64))
    lock, start, outq = ctx.Lock(), ctx.Event(), ctx.Queue()
    n_blocks, chunk = 1000, 7
    procs = [ctx.Process(target=_hammer_main,
                         args=(arena.spec["ctrl"], lock, n_blocks, chunk,
                               start, outq, i), daemon=True)
             for i in range(8)]
    for p in procs:
        p.start()
    start.set()
    results = [outq.get(timeout=60) for _ in range(8)]
    for p in procs:
        p.join(10)
    arena.close()
    assert shm_leaked() == set()
    assert sorted(wid for wid, _ in results) == list(range(8))
    _check_partition([c for _, claims in results for c in claims],
                     n_blocks, chunk)


def test_shared_cursor_reset_rearms():
    arena = SharedArena()
    ctrl = arena.add("ctrl", np.zeros(CTRL_SLOTS, dtype=np.int64))
    cur = SharedCursor(ctrl, mp.get_context().Lock())
    assert cur.claim(4, 8) == (0, 4)
    assert cur.claim(4, 8) == (4, 4)
    cur.reset(1)
    assert int(ctrl[CTRL_CURSOR]) == 1
    assert cur.claim(4, 8) == (1, 4)
    arena.close()


# -- completion barrier ----------------------------------------------------
def test_completion_barrier_last_arrival_sets_event():
    ctx = _ctx()
    ctrl = np.zeros(CTRL_SLOTS, dtype=np.int64)
    bar = CompletionBarrier(ctrl, ctx.Lock(), ctx.Event())
    bar.arm(3)
    assert bar.remaining() == 3
    assert not bar.wait(0)
    assert bar.arrive() and not bar.wait(0)
    assert bar.arrive() and not bar.wait(0)
    assert bar.arrive() and bar.wait(0)
    assert bar.remaining() == 0
    bar.arm(1)  # re-arm clears the event for the next phase
    assert not bar.wait(0)


def test_completion_barrier_poisoned_lock_reports_not_blocks():
    ctx = _ctx()
    lock = ctx.Lock()
    bar = CompletionBarrier(np.zeros(CTRL_SLOTS, dtype=np.int64), lock,
                            ctx.Event())
    bar.arm(1)
    lock.acquire()  # simulate a worker SIGKILL'd inside the section
    assert bar.arrive(timeout=0.05) is False
    assert bar.remaining() == 1  # the failed arrival must not decrement
    lock.release()
    assert bar.arrive(timeout=0.05) is True
    assert bar.wait(0)


def _hook_suicide(**kw):
    os.kill(os.getpid(), signal.SIGKILL)


def test_sigkill_mid_phase_trips_liveness_scan(shm_leaked):
    """A worker SIGKILL'd between claiming a descriptor and arriving at
    the barrier never decrements the completion counter; the
    dispatcher's watchdog/liveness scan must arrive on its behalf and
    fail the phase instead of hanging on the event."""
    a = poisson2d(8, seed=2)
    part = split_ldu(a)
    n = part.n
    step = max(1, n // 8)
    tasks = [BlockTask(i, min(i + step, n), step)
             for i in range(0, n, step)]
    phases = [Phase(color=0, tasks=tasks)]
    with ProcessPhaseExecutor(part, n_workers=2,
                              task_hook=_hook_suicide) as ex:
        with pytest.raises(PhaseExecutionError, match="died"):
            ex.run_phases(phases, "forward")
    assert shm_leaked() == set()


# -- batched accounting ----------------------------------------------------
def test_one_enqueue_per_phase_per_worker(shm_leaked):
    """The tentpole invariant: a sweep costs n_phases x n_workers
    enqueues — never one per block."""
    a = poisson2d(8, seed=2)
    part = split_ldu(a)
    n = part.n
    tasks = [BlockTask(i, min(i + 4, n), 4) for i in range(0, n, 4)]
    phases = [Phase(color=0, tasks=tasks)]
    stats = ExecutionStats(n_threads=2, policy="lpt")
    with ProcessPhaseExecutor(part, n_workers=2, claim_chunk=1) as ex:
        ex.run_phases(phases, "forward", stats)
    assert stats.enqueues == len(phases) * 2
    assert stats.enqueues < len(tasks)  # strictly below per-block cost
    assert stats.barriers == len(phases)
    assert shm_leaked() == set()


# -- pinning ---------------------------------------------------------------
def test_pin_worker_modes():
    if not hasattr(os, "sched_getaffinity"):
        pytest.skip("platform has no affinity API")
    saved = os.sched_getaffinity(0)
    try:
        assert pin_worker(0, enable=False) is None
        if len(saved) < 2:
            # Auto mode must refuse to serialise a 1-CPU host.
            assert pin_worker(0, enable=None) is None
        cpu = pin_worker(1, enable=True)
        if cpu is not None:  # best-effort: syscall may be denied
            assert os.sched_getaffinity(0) == {cpu}
            assert cpu in saved
    finally:
        os.sched_setaffinity(0, saved)


def test_pin_worker_round_robin_is_deterministic():
    if not hasattr(os, "sched_getaffinity"):
        pytest.skip("platform has no affinity API")
    saved = sorted(os.sched_getaffinity(0))
    try:
        first = pin_worker(0, enable=True)
        os.sched_setaffinity(0, set(saved))
        again = pin_worker(0, enable=True)
        assert first == again
        os.sched_setaffinity(0, set(saved))
        wrapped = pin_worker(len(saved), enable=True)
        assert wrapped == first  # slot wraps around the CPU list
    finally:
        os.sched_setaffinity(0, set(saved))
