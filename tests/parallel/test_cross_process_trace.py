"""Cross-process trace correlation through the span rings.

Workers publish their phase spans into per-worker shared-memory rings;
the dispatcher drains them after each ``run_phases`` into the ambient
:class:`~repro.obs.tracing.TraceRecorder`.  These tests assert the
merged timeline is *one* trace: worker spans carry the dispatcher's
trace id, parent onto real ``executor.phase`` spans, and land on
per-pid lanes in the Chrome export.
"""

import os

import numpy as np
import pytest

from repro import obs
from repro.core import build_fbmpk_operator
from repro.matrices import poisson2d
from repro.obs import Telemetry
from repro.obs.spanring import KIND_NAMES, RingWriter, ring_shapes
from repro.obs.tracing import chrome_trace_events

N_WORKERS = int(os.environ.get("REPRO_PROC_WORKERS", "2"))
WORKER_SPAN_NAMES = set(KIND_NAMES.values())


@pytest.fixture(scope="module")
def traced_run():
    """One traced power sweep on the process backend; yields
    ``(telemetry, op_pid_set)`` after the operator is closed."""
    a = poisson2d(12, seed=3)
    x = np.random.default_rng(7).standard_normal(a.n_rows)
    op = build_fbmpk_operator(a, block_size=8, executor="processes",
                              n_threads=N_WORKERS)
    try:
        with Telemetry() as tel:
            op.power(x, 4)
    finally:
        op.close()
    return tel


def _worker_records(tel):
    return [r for r in tel.recorder.records()
            if r.name in WORKER_SPAN_NAMES]


class TestMergedTrace:
    def test_spans_from_at_least_two_worker_pids(self, traced_run):
        recs = _worker_records(traced_run)
        assert recs, "no worker spans were merged"
        pids = {r.pid for r in recs}
        assert None not in pids
        assert len(pids) >= 2
        assert os.getpid() not in pids

    def test_all_worker_spans_share_dispatcher_trace_id(self,
                                                        traced_run):
        expected = f"{traced_run.recorder.trace_id:016x}"
        recs = _worker_records(traced_run)
        assert recs
        assert {r.attrs["trace_id"] for r in recs} == {expected}

    def test_worker_spans_parent_onto_phase_spans(self, traced_run):
        phase_ids = {r.span_id for r in traced_run.recorder.records()
                     if r.name == "executor.phase"}
        assert phase_ids
        for r in _worker_records(traced_run):
            assert r.parent_id in phase_ids

    def test_exec_and_wait_spans_both_present(self, traced_run):
        names = {r.name for r in _worker_records(traced_run)}
        assert names == WORKER_SPAN_NAMES

    def test_exec_spans_carry_block_counts(self, traced_run):
        execs = [r for r in _worker_records(traced_run)
                 if r.name == "procexec.worker.exec"]
        assert execs
        assert all(r.attrs.get("n_blocks", 0) >= 1 for r in execs)

    def test_worker_spans_fit_inside_the_trace(self, traced_run):
        # Clock conversion sanity: merged spans use the dispatcher's
        # clock, so they must land within the trace's overall window.
        recs = traced_run.recorder.records()
        t_lo = min(r.ts for r in recs)
        t_hi = max(r.ts + r.dur for r in recs)
        for r in _worker_records(traced_run):
            assert t_lo <= r.ts <= r.ts + r.dur <= t_hi

    def test_barrier_wait_histogram_recorded(self, traced_run):
        hists = traced_run.metrics.snapshot()["histograms"]
        assert "procexec.barrier_wait" in hists
        assert hists["procexec.barrier_wait"]["count"] >= 1

    def test_barrier_wait_exported_to_prometheus(self, traced_run):
        from repro.obs.exporter import parse_prometheus, \
            render_prometheus

        fams = parse_prometheus(render_prometheus(traced_run.metrics))
        assert "procexec_barrier_wait_seconds" in fams
        assert fams["procexec_barrier_wait_seconds"]["type"] \
            == "histogram"

    def test_span_merge_counters(self, traced_run):
        counters = traced_run.metrics.snapshot()["counters"]
        assert counters["procexec.spans_merged"]["value"] \
            == len(_worker_records(traced_run))

    def test_heartbeat_and_liveness_gauges(self, traced_run):
        gauges = traced_run.metrics.snapshot()["gauges"]
        assert gauges["procexec.workers_alive"]["value"] == N_WORKERS
        for i in range(N_WORKERS):
            age = gauges[f"procexec.heartbeat_age_s.w{i}"]["value"]
            assert age is not None and age >= 0.0


class TestChromeExport:
    def test_pid_lanes_and_process_names(self, traced_run):
        trace = chrome_trace_events(traced_run.recorder)
        events = trace["traceEvents"]
        meta = [e for e in events if e.get("ph") == "M"
                and e.get("name") == "process_name"]
        names = {e["args"]["name"] for e in meta}
        assert any(n.startswith("dispatcher") for n in names)
        assert sum(n.startswith("worker") for n in names) >= 2

    def test_worker_events_use_worker_pid(self, traced_run):
        trace = chrome_trace_events(traced_run.recorder)
        worker_pids = {r.pid for r in _worker_records(traced_run)}
        event_pids = {e["pid"] for e in trace["traceEvents"]
                      if e.get("name") in WORKER_SPAN_NAMES}
        assert event_pids == worker_pids


class TestNoTelemetryNoRecording:
    def test_untraced_run_stays_silent(self):
        # Without an active session the trace tuple is None: workers
        # must not write ring records that a later session could drain.
        a = poisson2d(10, seed=5)
        x = np.random.default_rng(8).standard_normal(a.n_rows)
        op = build_fbmpk_operator(a, block_size=8,
                                  executor="processes",
                                  n_threads=N_WORKERS)
        try:
            op.power(x, 2)  # untraced: nothing should be recorded
            with Telemetry() as tel:
                op.power(x, 2)
        finally:
            op.close()
        recs = _worker_records(tel)
        assert recs, "traced run produced no worker spans"
        expected = f"{tel.recorder.trace_id:016x}"
        assert {r.attrs["trace_id"] for r in recs} == {expected}


class TestRingMechanics:
    def test_ring_overwrite_reports_drops(self):
        # A writer lapping the reader must surface a drop count, not
        # silently replay stale spans.
        import numpy as np

        from repro.obs.spanring import KIND_EXEC, RingReader
        from repro.obs.tracing import TraceRecorder

        shp_i, shp_f, shp_n = ring_shapes(1, 4)
        ints = np.zeros(shp_i, dtype=np.int64)
        floats = np.zeros(shp_f, dtype=np.float64)
        counts = np.zeros(shp_n, dtype=np.int64)
        rec = TraceRecorder()
        w = RingWriter(ints, floats, counts, 0)
        for i in range(10):  # capacity 4 -> 6 dropped
            w.record(KIND_EXEC, phase=i, color=0, n_blocks=1,
                     parent_id=1, trace_id=rec.trace_id, sweep=-1,
                     pid=123, t0=0.0, dur=0.001)
        merged, dropped = RingReader(ints, floats, counts).drain(rec)
        assert dropped == 6
        assert merged == 4
