"""Differential tests of the real threaded colour-phase executor.

The contract under test: ``executor="threads"`` must produce **bit-for-
bit** the serial fused pipeline's result for every assignment policy and
thread count, because the per-block kernels perform the identical
floating-point operations and phases only reorder *independent* work.
Any data race, missed barrier, mis-assigned or dropped block perturbs at
least one summand and breaks bitwise equality with overwhelming
probability — which makes ``np.array_equal`` a race detector, not just a
correctness check.  Against the pure-Python Algorithm 2 transcription
(:func:`fbmpk_reference`) results agree to reassociation tolerance.
"""

import numpy as np
import pytest

from repro.core import FBMPKOperator, build_fbmpk_operator, fbmpk_reference
from repro.core.partition import split_ldu
from repro.matrices import banded_random, poisson2d
from repro.parallel import (
    BlockTask,
    Phase,
    ThreadedPhaseExecutor,
    check_phases,
    phases_from_groups,
)

POLICIES = ["round_robin", "lpt", "dynamic"]
THREAD_COUNTS = [1, 2, 4, 8]
KS = [1, 2, 3, 4, 5, 6]
BLOCK = 8


def _matrices():
    return {
        "sym": banded_random(110, 6, 11, symmetric=True, seed=11),
        "unsym": banded_random(97, 5, 9, symmetric=False, seed=12),
        "grid": poisson2d(9, seed=13),
    }


@pytest.fixture(scope="module")
def matrices():
    return _matrices()


@pytest.fixture(scope="module")
def x_vectors(matrices):
    return {name: np.random.default_rng(100 + i).standard_normal(a.n_rows)
            for i, (name, a) in enumerate(matrices.items())}


@pytest.fixture(scope="module")
def serial_results(matrices, x_vectors):
    """Serial fused results, the bitwise oracle: one per (matrix, k)."""
    out = {}
    for name, a in matrices.items():
        op = build_fbmpk_operator(a, block_size=BLOCK)
        for k in KS:
            out[name, k] = op.power(x_vectors[name], k)
    return out


@pytest.fixture(scope="module")
def reference_results(matrices, x_vectors):
    """Pure-Python Algorithm 2 results: one per (matrix, k)."""
    return {(name, k): fbmpk_reference(split_ldu(a), x_vectors[name], k)
            for name, a in matrices.items() for k in KS}


@pytest.fixture(scope="module")
def threaded_ops(matrices):
    """Threaded operators cached per (matrix, policy, thread count)."""
    cache = {}

    def get(name, policy, n_threads):
        key = (name, policy, n_threads)
        if key not in cache:
            cache[key] = build_fbmpk_operator(
                matrices[name], block_size=BLOCK, executor="threads",
                n_threads=n_threads, assign_policy=policy)
        return cache[key]

    yield get
    for op in cache.values():
        op.close()


class TestDifferential:
    """216 randomized cases: 3 matrices x k in 1..6 x 3 policies x
    {1, 2, 4, 8} threads (8 exceeds the widest colour's block count on
    every test matrix, so thread starvation is always exercised)."""

    @pytest.mark.parametrize("n_threads", THREAD_COUNTS)
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("k", KS)
    @pytest.mark.parametrize("name", ["sym", "unsym", "grid"])
    def test_threads_match_serial_bitwise(self, name, k, policy, n_threads,
                                          threaded_ops, x_vectors,
                                          serial_results,
                                          reference_results):
        op = threaded_ops(name, policy, n_threads)
        y = op.power(x_vectors[name], k)
        np.testing.assert_array_equal(y, serial_results[name, k])
        np.testing.assert_allclose(y, reference_results[name, k],
                                   rtol=1e-9, atol=1e-12)

    def test_more_threads_than_total_blocks(self, matrices, x_vectors,
                                            serial_results):
        """n_threads far beyond the total block count: most bins stay
        empty every phase, the rest must still cover all blocks."""
        with build_fbmpk_operator(matrices["grid"], block_size=32,
                                  executor="threads", n_threads=64) as op:
            y = op.power(x_vectors["grid"], 4)
        serial = build_fbmpk_operator(matrices["grid"], block_size=32)
        np.testing.assert_array_equal(y, serial.power(x_vectors["grid"], 4))

    def test_levels_strategy_threaded(self, matrices, x_vectors):
        """The executor also covers the no-reordering levels strategy
        (one phase per dependency level, run-split tasks)."""
        a = matrices["grid"]
        serial = build_fbmpk_operator(a, strategy="levels")
        with build_fbmpk_operator(a, strategy="levels", executor="threads",
                                  n_threads=4) as op:
            for k in (1, 4, 5):
                np.testing.assert_array_equal(
                    op.power(x_vectors["grid"], k),
                    serial.power(x_vectors["grid"], k))

    def test_on_iterate_matches_serial(self, matrices, x_vectors):
        """Every intermediate power surfaced by on_iterate is bitwise
        equal between backends (and in original numbering)."""
        a = matrices["sym"]
        x = x_vectors["sym"]
        serial_seen, threaded_seen = {}, {}
        build_fbmpk_operator(a, block_size=BLOCK).power(
            x, 5, on_iterate=lambda i, xi: serial_seen.setdefault(i, xi))
        with build_fbmpk_operator(a, block_size=BLOCK, executor="threads",
                                  n_threads=4) as op:
            op.power(x, 5,
                     on_iterate=lambda i, xi: threaded_seen.setdefault(i, xi))
        assert sorted(serial_seen) == sorted(threaded_seen) == [1, 2, 3, 4, 5]
        for i in serial_seen:
            np.testing.assert_array_equal(serial_seen[i], threaded_seen[i])


class TestDeterminism:
    """Races manifest as run-to-run variation: a block of a later colour
    starting before its barrier reads half-updated iterates and changes
    bits.  Twenty identical runs must produce twenty identical results."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_repeated_runs_bitwise_identical(self, matrices, x_vectors,
                                             serial_results, policy):
        x = x_vectors["grid"]
        with build_fbmpk_operator(matrices["grid"], block_size=BLOCK,
                                  executor="threads", n_threads=4,
                                  assign_policy=policy) as op:
            first = op.power(x, 5)
            np.testing.assert_array_equal(first, serial_results["grid", 5])
            for _ in range(19):
                np.testing.assert_array_equal(op.power(x, 5), first)

    def test_thread_count_does_not_change_bits(self, matrices, x_vectors):
        """The schedule's arithmetic is independent of how blocks are
        dealt out, so every (policy, threads) combination agrees."""
        x = x_vectors["unsym"]
        results = []
        for policy in POLICIES:
            for nt in (1, 3, 8):
                with build_fbmpk_operator(
                        matrices["unsym"], block_size=BLOCK,
                        executor="threads", n_threads=nt,
                        assign_policy=policy) as op:
                    results.append(op.power(x, 6))
        for y in results[1:]:
            np.testing.assert_array_equal(y, results[0])


class TestObservability:
    def test_stats_shape(self, matrices, x_vectors):
        k = 6
        with build_fbmpk_operator(matrices["sym"], block_size=BLOCK,
                                  executor="threads", n_threads=4) as op:
            fw, bw = op.block_phases()
            op.power(x_vectors["sym"], k)
            stats = op.last_stats
        assert stats is not None
        assert stats.n_threads == 4 and stats.policy == "lpt"
        assert stats.barriers == (len(fw) + len(bw)) * (k // 2)
        assert len(stats.phases) == stats.barriers
        assert len(stats.phase_wall_s) == stats.barriers
        assert all(w >= 0.0 for w in stats.phase_wall_s)
        assert stats.total_wall_s == pytest.approx(sum(stats.phase_wall_s))
        assert len(stats.thread_busy_s) == 4
        assert stats.busy_s > 0.0
        assert stats.efficiency > 0.0
        # Phase nnz accounting covers each triangle once per stage.
        fw_nnz = sum(p.nnz for p in stats.phases[:len(fw)])
        assert fw_nnz == op.part.lower.nnz

    def test_serial_run_clears_stats(self, matrices, x_vectors):
        op = build_fbmpk_operator(matrices["sym"], block_size=BLOCK,
                                  executor="threads", n_threads=2)
        op.power(x_vectors["sym"], 2)
        assert op.last_stats is not None
        op.configure_executor(executor="serial")
        op.power(x_vectors["sym"], 2)
        assert op.last_stats is None
        op.close()

    def test_k0_and_k1_stats(self, matrices, x_vectors):
        """k=0 shortcuts out; k=1 (tail only) runs zero phases — the
        stats must reflect that no barriers were crossed."""
        with build_fbmpk_operator(matrices["sym"], block_size=BLOCK,
                                  executor="threads", n_threads=2) as op:
            op.power(x_vectors["sym"], 0)
            assert op.last_stats is None
            op.power(x_vectors["sym"], 1)
            assert op.last_stats is not None
            assert op.last_stats.barriers == 0


class TestLifecycle:
    def test_unknown_executor_rejected(self, matrices):
        with pytest.raises(ValueError, match="executor"):
            build_fbmpk_operator(matrices["sym"], executor="openmp")

    def test_configure_rejects_unknown(self, matrices):
        op = build_fbmpk_operator(matrices["sym"], block_size=BLOCK)
        with pytest.raises(ValueError, match="executor"):
            op.configure_executor(executor="gpu")

    def test_configure_reuses_preprocessing(self, matrices, x_vectors,
                                            serial_results):
        """Thread/policy sweeps over one operator: phases and kernels
        are built once, only the pool is replaced."""
        op = build_fbmpk_operator(matrices["sym"], block_size=BLOCK,
                                  executor="threads", n_threads=1)
        fw0, _ = op.block_phases()
        op.configure_executor(n_threads=8, assign_policy="round_robin")
        fw1, _ = op.block_phases()
        assert fw0 is fw1
        y = op.power(x_vectors["sym"], 4)
        np.testing.assert_array_equal(y, serial_results["sym", 4])
        op.close()

    def test_close_then_reuse(self, matrices, x_vectors, serial_results):
        op = build_fbmpk_operator(matrices["sym"], block_size=BLOCK,
                                  executor="threads", n_threads=2)
        op.power(x_vectors["sym"], 2)
        op.close()
        op.close()  # idempotent
        y = op.power(x_vectors["sym"], 2)  # respawns workers
        np.testing.assert_array_equal(y, serial_results["sym", 2])
        op.close()

    def test_save_load_threads(self, matrices, x_vectors, serial_results,
                               tmp_path):
        """A persisted operator rebuilt with the threaded backend still
        matches the serial oracle bitwise (phases derived from groups)."""
        path = tmp_path / "op.npz"
        build_fbmpk_operator(matrices["sym"], block_size=BLOCK).save(path)
        with FBMPKOperator.load(path, executor="threads",
                                n_threads=4) as op:
            y = op.power(x_vectors["sym"], 5)
        np.testing.assert_array_equal(y, serial_results["sym", 5])

    def test_worker_exception_propagates(self):
        phases = [Phase(color=0, tasks=[BlockTask(0, 4, 7)])]

        def boom(task):
            raise RuntimeError("kernel exploded")

        with ThreadedPhaseExecutor(n_threads=2) as ex:
            with pytest.raises(RuntimeError, match="kernel exploded"):
                ex.run_phases(phases, boom)

    def test_executor_rejects_bad_thread_count(self):
        with pytest.raises(ValueError, match="n_threads"):
            ThreadedPhaseExecutor(n_threads=0)


class TestPhaseValidation:
    def test_operator_phases_are_executable(self, matrices):
        for strategy in ("abmc", "levels"):
            op = build_fbmpk_operator(matrices["grid"], strategy=strategy,
                                      block_size=BLOCK, executor="threads",
                                      n_threads=1)
            fw, bw = op.block_phases()
            assert check_phases(op.part.lower, fw)
            assert check_phases(op.part.upper, bw)
            op.close()

    def test_check_phases_rejects_gap(self, matrices):
        part = split_ldu(matrices["grid"])
        n = part.n
        phases = [Phase(0, [BlockTask(0, n - 1, 0)])]  # last row missing
        assert not check_phases(part.lower, phases)

    def test_check_phases_rejects_overlap(self, matrices):
        part = split_ldu(matrices["grid"])
        n = part.n
        phases = [Phase(0, [BlockTask(0, n, 0), BlockTask(n - 1, n, 0)])]
        assert not check_phases(part.lower, phases)

    def test_check_phases_rejects_cross_task_dependency(self, matrices):
        """All rows in one phase, split into two tasks: any L entry
        crossing the split is a same-phase cross-task race."""
        part = split_ldu(matrices["grid"])
        n = part.n
        phases = [Phase(0, [BlockTask(0, n // 2, 0),
                            BlockTask(n // 2, n, 0)])]
        assert not check_phases(part.lower, phases)
        # As a single task the intra-task ordering handles it.
        assert check_phases(part.lower, [Phase(0, [BlockTask(0, n, 0)])])

    def test_invalid_plan_rejected_at_power_time(self, matrices):
        from repro.core import make_sweep_groups_levels

        part = split_ldu(matrices["grid"])
        groups = make_sweep_groups_levels(part)
        n = part.n
        bad_plan = ([Phase(0, [BlockTask(0, n // 2, 0),
                               BlockTask(n // 2, n, 0)])],
                    [Phase(0, [BlockTask(0, n, 0)])])
        op = FBMPKOperator(part, groups, executor="threads", n_threads=2,
                           phase_plan=bad_plan)
        with pytest.raises(ValueError, match="phases"):
            op.power(np.ones(n), 2)

    def test_phases_from_groups_runs(self, matrices):
        part = split_ldu(matrices["grid"])
        groups = [np.array([0, 1, 2, 5, 6]), np.array([3, 4]),
                  np.arange(7, part.n)]
        phases = phases_from_groups(part.lower, groups)
        assert [len(p.tasks) for p in phases] == [2, 1, 1]
        assert phases[0].tasks[0] == BlockTask(
            0, 3, int(part.lower.indptr[3]))
        total = sum(t.rows for p in phases for t in p.tasks)
        assert total == part.n
