"""Unit tests for the scheduler and the simulated thread executor."""

import numpy as np
import pytest

from repro.core.partition import split_ldu
from repro.machine import FT2000P
from repro.parallel import ExecutionStats
from repro.parallel.scheduler import BlockTask, Phase, assign_tasks, build_phases
from repro.parallel.simthread import block_cost_model, simulate_phases
from repro.reorder import abmc_ordering, permute_symmetric


class TestExecutionStats:
    def test_efficiency_zero_without_phases(self):
        """An executor that never ran a phase (e.g. k=0, or stats
        snapshotted before the first barrier) has zero wall time; the
        efficiency ratio must degrade to 0.0, not divide by zero."""
        stats = ExecutionStats(n_threads=4, policy="lpt")
        assert stats.total_wall_s == 0.0
        assert stats.efficiency == 0.0

    def test_efficiency_zero_wall_time_with_busy(self):
        stats = ExecutionStats(n_threads=2, policy="lpt")
        stats.thread_busy_s[0] = 1.0  # busy but no recorded phases
        assert stats.efficiency == 0.0


def make_tasks(nnzs):
    start = 0
    tasks = []
    for nnz in nnzs:
        tasks.append(BlockTask(start=start, stop=start + 10, nnz=nnz))
        start += 10
    return tasks


class TestScheduler:
    def test_build_phases_covers_all_blocks(self, small_sym):
        o = abmc_ordering(small_sym, block_size=8)
        part = split_ldu(permute_symmetric(small_sym, o.perm))
        phases = build_phases(o, part.lower)
        assert len(phases) == o.n_colors
        total_rows = sum(t.rows for ph in phases for t in ph.tasks)
        assert total_rows == small_sym.n_rows
        total_nnz = sum(ph.total_nnz for ph in phases)
        assert total_nnz == part.lower.nnz

    def test_build_phases_dimension_check(self, small_sym, grid):
        o = abmc_ordering(small_sym, block_size=8)
        with pytest.raises(ValueError):
            build_phases(o, split_ldu(grid).lower)

    def test_round_robin_assignment(self):
        tasks = make_tasks([5, 5, 5, 5, 5])
        bins = assign_tasks(tasks, 2, policy="round_robin")
        assert [len(b) for b in bins] == [3, 2]

    def test_lpt_balances_skewed_loads(self):
        tasks = make_tasks([100, 1, 1, 1, 1, 1])
        lpt = assign_tasks(tasks, 2, policy="lpt")
        rr = assign_tasks(tasks, 2, policy="round_robin")

        def makespan(bins):
            return max(sum(t.nnz for t in b) for b in bins)

        assert makespan(lpt) <= makespan(rr)
        assert makespan(lpt) == 100  # the big task alone on one thread

    def test_assignment_errors(self):
        with pytest.raises(ValueError):
            assign_tasks([], 0)
        with pytest.raises(ValueError):
            assign_tasks(make_tasks([1]), 2, policy="nope")

    def test_more_threads_than_tasks(self):
        bins = assign_tasks(make_tasks([1, 2]), 8)
        non_empty = [b for b in bins if b]
        assert len(non_empty) == 2


class TestSimThread:
    def test_makespan_hand_computed(self):
        # Phase with loads [3, 1] on 2 threads at cost = nnz seconds:
        # makespan = 3 (LPT puts the 3 alone) + barrier.
        phase = Phase(color=0, tasks=make_tasks([3, 1]))
        run = simulate_phases([phase], 2, cost=lambda t: float(t.nnz),
                              barrier_s=0.5)
        assert run.total_time == pytest.approx(3.5)
        assert run.busy_time == pytest.approx(4.0)
        assert run.efficiency == pytest.approx(4.0 / (2 * 3.5))

    def test_single_thread_serialises(self):
        phase = Phase(color=0, tasks=make_tasks([2, 2, 2]))
        run = simulate_phases([phase], 1, cost=lambda t: float(t.nnz))
        assert run.total_time == pytest.approx(6.0)
        assert run.efficiency == pytest.approx(1.0)

    def test_barrier_accumulates_per_phase(self):
        phases = [Phase(color=c, tasks=make_tasks([1])) for c in range(4)]
        run = simulate_phases(phases, 2, cost=lambda t: 0.0, barrier_s=1.0)
        assert run.total_time == pytest.approx(4.0)

    def test_quantisation_inefficiency(self):
        # 3 equal tasks on 2 threads: one thread does 2 -> efficiency 75%.
        phase = Phase(color=0, tasks=make_tasks([1, 1, 1]))
        run = simulate_phases([phase], 2, cost=lambda t: 1.0)
        assert run.total_time == pytest.approx(2.0)
        assert run.efficiency == pytest.approx(0.75)

    def test_block_cost_model_scales(self):
        cost1 = block_cost_model(FT2000P, threads=1)
        cost64 = block_cost_model(FT2000P, threads=64)
        task = BlockTask(0, 100, nnz=10_000)
        # Per-core bandwidth shrinks under contention -> block costs more.
        assert cost64(task) >= cost1(task) * 0.99

    def test_empty_phase(self):
        run = simulate_phases([Phase(color=0, tasks=[])], 4,
                              cost=lambda t: 1.0, barrier_s=0.25)
        assert run.total_time == pytest.approx(0.25)


class TestDynamicPolicy:
    def test_dynamic_preserves_arrival_order_per_thread(self):
        tasks = make_tasks([1, 1, 1, 1])
        bins = assign_tasks(tasks, 2, policy="dynamic")
        # Online list scheduling with equal costs alternates threads.
        assert [t.start for t in bins[0]] == [0, 20]
        assert [t.start for t in bins[1]] == [10, 30]

    def test_dynamic_vs_lpt_on_adversarial_order(self):
        # Small tasks first, giant last: dynamic gets stuck with the
        # giant on an already-loaded thread less often than round robin,
        # but LPT (which sorts) is never worse.
        tasks = make_tasks([1, 1, 1, 100])

        def makespan(policy):
            bins = assign_tasks(tasks, 2, policy=policy)
            return max(sum(t.nnz for t in b) for b in bins)

        assert makespan("lpt") <= makespan("dynamic") <= makespan(
            "round_robin") + 100

    def test_simulator_accepts_dynamic(self):
        phase = Phase(color=0, tasks=make_tasks([3, 1, 2]))
        run = simulate_phases([phase], 2, cost=lambda t: float(t.nnz),
                              policy="dynamic")
        assert run.total_time > 0
