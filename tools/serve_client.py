#!/usr/bin/env python
"""Concurrent NDJSON client for ``python -m repro serve``.

Fires many ``power`` requests at a running solve server over one or
more TCP connections *concurrently* (so they land inside the server's
gather window and get batched), collects the responses, and reports
the batching the server actually achieved.

With ``--verify``, every returned vector is compared **bitwise**
against a locally computed reference (the default serial FBMPK
operator) — the service's batched, tuned, possibly parallel sweep must
produce the identical float64 bits.

Used by the CI serving-smoke step::

    python -m repro serve --port 0 --port-file port.txt &
    python tools/serve_client.py --port-file port.txt \
        --requests 8 --verify --shutdown

Exit code 0 only if every request succeeded (and verified).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def make_x(n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(n)


async def connect(host: str, port: int, timeout_s: float,
                  connect_timeout_s: float = 5.0):
    """Dial with full-jitter exponential backoff: the server may still
    be starting up, and a thundering herd of clients retrying in
    lockstep would only make that worse.

    ``connect_timeout_s`` caps one dial attempt (a SYN to a firewalled
    or SIGSTOPped server can otherwise hang for minutes); ``timeout_s``
    bounds the whole retry loop.
    """
    from repro.robust.resilience import Deadline, RetryPolicy

    deadline = Deadline.after(timeout_s)
    policy = RetryPolicy(base_delay_s=0.05, max_delay_s=1.0)
    delays = policy.delays(deadline)
    while True:
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(host, port),
                timeout=min(connect_timeout_s,
                            max(0.001, deadline.remaining_or(
                                connect_timeout_s))))
        except (OSError, asyncio.TimeoutError):
            delay = next(delays, None)
            if delay is None:
                raise
            await asyncio.sleep(delay)


async def run_connection(host: str, port: int, requests: list,
                         timeout_s: float,
                         connect_timeout_s: float = 5.0) -> dict:
    """Send all assigned requests immediately, then read the responses
    (they may arrive out of order — matched by id)."""
    reader, writer = await connect(host, port, timeout_s,
                                   connect_timeout_s)
    responses = {}
    try:
        for req in requests:
            writer.write(json.dumps(req).encode() + b"\n")
        await writer.drain()
        for _ in requests:
            line = await asyncio.wait_for(reader.readline(), timeout_s)
            if not line:
                raise ConnectionError("server closed the connection")
            resp = json.loads(line)
            responses[resp.get("id")] = resp
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass
    return responses


async def amain(args) -> int:
    port = args.port
    if args.port_file:
        deadline = time.monotonic() + args.timeout
        path = Path(args.port_file)
        while True:
            if path.exists() and path.read_text().strip():
                port = int(path.read_text().strip())
                break
            if time.monotonic() >= deadline:
                print(f"error: {path} never appeared", file=sys.stderr)
                return 1
            await asyncio.sleep(0.1)

    matrix = {"standin": args.standin, "rows": args.rows,
              "seed": args.matrix_seed}
    requests = [
        {"id": f"r{i}", "op": "power", "matrix": matrix, "k": args.k,
         "tenant": f"tenant{i % args.tenants}",
         "x": make_x(args.rows, args.seed + i).tolist()}
        for i in range(args.requests)
    ]
    if args.deadline_ms is not None:
        for req in requests:
            req["deadline_ms"] = args.deadline_ms
    per_conn = [requests[c::args.connections]
                for c in range(args.connections)]
    t0 = time.perf_counter()
    results = await asyncio.gather(*[
        run_connection(args.host, port, chunk, args.timeout,
                       args.connect_timeout)
        for chunk in per_conn if chunk])
    elapsed = time.perf_counter() - t0
    responses = {}
    for chunk in results:
        responses.update(chunk)

    failures = 0
    widths = []
    for i in range(args.requests):
        resp = responses.get(f"r{i}")
        if resp is None or not resp.get("ok"):
            err = (resp or {}).get("error", {})
            print(f"r{i}: FAILED {err.get('code')}: {err.get('message')}",
                  file=sys.stderr)
            failures += 1
            continue
        widths.append(resp.get("meta", {}).get("batch_width", 1))

    verified = None
    if args.verify and failures == 0:
        from repro.core import build_fbmpk_operator
        from repro.matrices import generate_standin

        a = generate_standin(args.standin, n_rows=args.rows,
                             seed=args.matrix_seed)
        op = build_fbmpk_operator(a)
        verified = True
        for i in range(args.requests):
            ref = op.power(make_x(args.rows, args.seed + i), args.k)
            got = np.asarray(responses[f"r{i}"]["y"])
            if not np.array_equal(ref, got):
                print(f"r{i}: result differs from serial reference "
                      f"(max abs diff {np.abs(ref - got).max():.3e})",
                      file=sys.stderr)
                verified = False
        op.close()

    if args.shutdown:
        reader, writer = await connect(args.host, port, args.timeout)
        writer.write(json.dumps({"id": "bye", "op": "shutdown"}).encode()
                     + b"\n")
        await writer.drain()
        await asyncio.wait_for(reader.readline(), args.timeout)
        writer.close()

    ok = args.requests - failures
    max_width = max(widths) if widths else 0
    print(f"{ok}/{args.requests} ok in {elapsed:.2f}s over "
          f"{args.connections} connection(s); "
          f"max batch width {max_width}"
          + ("" if verified is None else
             f"; bitwise vs serial reference: "
             f"{'MATCH' if verified else 'MISMATCH'}"))
    if failures or verified is False:
        return 1
    if args.expect_batching and max_width < 2:
        print("error: expected batching (max batch width < 2)",
              file=sys.stderr)
        return 1
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=7654)
    ap.add_argument("--port-file",
                    help="read the port from this file (server's "
                         "--port-file)")
    ap.add_argument("--requests", type=int, default=8)
    ap.add_argument("--connections", type=int, default=4)
    ap.add_argument("--tenants", type=int, default=2)
    ap.add_argument("--standin", default="cant")
    ap.add_argument("--rows", type=int, default=2000)
    ap.add_argument("--matrix-seed", type=int, default=0)
    ap.add_argument("-k", type=int, default=4)
    ap.add_argument("--seed", type=int, default=100,
                    help="base seed for the request vectors")
    ap.add_argument("--timeout", type=float, default=60.0)
    ap.add_argument("--connect-timeout", type=float, default=5.0,
                    help="cap on one TCP dial attempt; the backoff "
                         "retry loop as a whole is bounded by --timeout")
    ap.add_argument("--deadline-ms", type=float, default=None,
                    help="attach this per-request deadline_ms budget; "
                         "expired requests get structured "
                         "deadline_exceeded errors")
    ap.add_argument("--verify", action="store_true",
                    help="compare every result bitwise against a local "
                         "serial FBMPK reference")
    ap.add_argument("--expect-batching", action="store_true",
                    help="fail unless some response was served from a "
                         "batch of width >= 2")
    ap.add_argument("--shutdown", action="store_true",
                    help="send a shutdown request when done (lets the "
                         "server drain and write its telemetry)")
    args = ap.parse_args()
    return asyncio.run(amain(args))


if __name__ == "__main__":
    raise SystemExit(main())
