#!/usr/bin/env python3
"""Generate docs/api.md from the package's public surface.

Walks every ``repro`` subpackage, collects ``__all__`` with each item's
signature and first docstring line, and writes a markdown index.  Run
after changing the public API:

    python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

PACKAGES = [
    "repro.core",
    "repro.sparse",
    "repro.reorder",
    "repro.memsim",
    "repro.machine",
    "repro.parallel",
    "repro.matrices",
    "repro.distributed",
    "repro.baselines",
    "repro.solvers",
    "repro.tune",
    "repro.serve",
    "repro.robust",
    "repro.obs",
    "repro.bench",
]


def first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    line = doc.split("\n", 1)[0].strip()
    return line


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return ""


def document_package(name: str) -> str:
    mod = importlib.import_module(name)
    lines = [f"## `{name}`", ""]
    pkg_doc = first_line(mod)
    if pkg_doc:
        lines += [pkg_doc, ""]
    exported = getattr(mod, "__all__", [])
    rows = []
    for item_name in exported:
        obj = getattr(mod, item_name, None)
        if obj is None:
            continue
        kind = ("class" if inspect.isclass(obj)
                else "function" if callable(obj)
                else "data")
        sig = signature_of(obj) if kind == "function" else ""
        rows.append((item_name, kind, sig, first_line(obj)))
    lines.append("| name | kind | summary |")
    lines.append("|---|---|---|")
    for item_name, kind, sig, summary in rows:
        shown = f"`{item_name}{sig}`" if sig and len(sig) < 60 \
            else f"`{item_name}`"
        lines.append(f"| {shown} | {kind} | {summary} |")
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    out = Path(__file__).resolve().parents[1] / "docs" / "api.md"
    parts = [
        "# API reference (generated)",
        "",
        "One line per public item; regenerate with "
        "`python tools/gen_api_docs.py`. Full documentation lives in the "
        "docstrings (`help(repro.core.FBMPKOperator)` etc.).",
        "",
    ]
    for pkg in PACKAGES:
        parts.append(document_package(pkg))
    out.write_text("\n".join(parts))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
