#!/usr/bin/env python
"""Live terminal dashboard for ``python -m repro serve``.

Polls a running solve server's ``stats``/``health`` NDJSON ops over
one persistent TCP connection and renders a ``top``-style view:

* request totals (completed / failed / rejected) with rates derived
  between polls,
* latency quantiles and the SLO error-budget panel (burn rate,
  compliance, budget remaining),
* live load: in-flight requests, pending queue depth, in-flight
  batches, batch-width histogram,
* batched-dispatch counters from the process executor — enqueues,
  work-steal claims (``procexec.steal_count``) and mean dispatch-wait
  latency (``procexec.dispatch_wait``) — when a resident operator runs
  on the processes backend,
* resident operators, circuit-breaker states and pool-worker liveness.

Usage::

    python tools/serve_top.py --port-file port.txt          # live view
    python tools/serve_top.py --port 7654 --once            # one frame

``--once`` prints a single frame and exits 0 (the CI smoke step uses
it as a "dashboard renders against a real server" assertion).  The
rendering itself is a pure function over two consecutive stats
snapshots (:func:`render`), so tests can drive it without a socket.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _fmt_ms(v: Optional[float]) -> str:
    return "-" if v is None else f"{v:8.2f}"


def _fmt_pct(v: Optional[float]) -> str:
    return "-" if v is None else f"{100.0 * v:6.2f}%"


def _rate(cur: float, prev: Optional[float], dt: float) -> str:
    if prev is None or dt <= 0:
        return "      -"
    return f"{(cur - prev) / dt:7.1f}"


def _counter(metrics: Optional[Dict[str, Any]], name: str) -> float:
    if not metrics:
        return 0.0
    return float(metrics.get("counters", {})
                 .get(name, {}).get("value", 0.0))


def _bar(count: int, total: int, width: int = 24) -> str:
    if total <= 0:
        return " " * width
    filled = round(width * count / total)
    return "#" * filled + " " * (width - filled)


def render(stats: Dict[str, Any], health: Dict[str, Any],
           prev: Optional[Dict[str, Any]] = None,
           dt: float = 0.0, width: int = 78) -> str:
    """Render one dashboard frame from ``stats``/``health`` payloads.

    ``prev`` is the previous poll's stats payload (None on the first
    frame) and ``dt`` the seconds between the two — rates are simple
    deltas.  Pure function: no I/O, deterministic for fixed inputs.
    """
    metrics = stats.get("metrics")
    prev_metrics = prev.get("metrics") if prev else None
    lines: List[str] = []
    bar = "=" * width
    lines.append(bar)
    lines.append(f"repro serve  up {stats.get('uptime_s', 0.0):8.1f}s"
                 f"   draining: {stats.get('draining', False)}")
    lines.append(bar)

    # -- requests -------------------------------------------------------
    total = _counter(metrics, "serve.requests")
    done = _counter(metrics, "serve.requests.completed")
    failed = _counter(metrics, "serve.requests.failed")
    rejected = _counter(metrics, "serve.requests.rejected")
    prev_total = _counter(prev_metrics, "serve.requests") if prev else None
    lines.append(f"requests   total {total:10.0f}   "
                 f"ok {done:10.0f}   failed {failed:6.0f}   "
                 f"rejected {rejected:6.0f}   "
                 f"req/s {_rate(total, prev_total, dt)}")
    rej = stats.get("rejected_by_reason") or {}
    if any(rej.values()):
        parts = "  ".join(f"{k}={v}" for k, v in sorted(rej.items()) if v)
        lines.append(f"  rejections: {parts}")

    # -- SLO / latency --------------------------------------------------
    slo = stats.get("slo")
    if slo:
        lines.append(f"latency ms p50 {_fmt_ms(slo.get('p50_ms'))}   "
                     f"p95 {_fmt_ms(slo.get('p95_ms'))}   "
                     f"p99 {_fmt_ms(slo.get('p99_ms'))}   "
                     f"target {slo.get('target_ms', 0):.0f}")
        burn = slo.get("burn_rate")
        lines.append(f"slo        goal {_fmt_pct(slo.get('goal'))}  "
                     f"compliance {_fmt_pct(slo.get('compliance'))}  "
                     f"burn {'-' if burn is None else f'{burn:.2f}x'}"
                     f"  budget left {_fmt_pct(slo.get('budget_remaining'))}")
    else:
        lines.append("slo        (telemetry off on the server: start it "
                     "with --metrics-port)")

    # -- load -----------------------------------------------------------
    inflight = health.get("inflight", 0)
    lines.append(f"load       in-flight {inflight:5d}   "
                 f"pending {stats.get('pending', 0):5d}   "
                 f"batches {stats.get('inflight_batches', 0):3d}   "
                 f"residents {stats.get('residents', 0):2d}")
    tenants = stats.get("inflight_by_tenant") or {}
    if tenants:
        parts = "  ".join(f"{t}={n}" for t, n in sorted(tenants.items()))
        lines.append(f"  by tenant: {parts}")

    # -- batch width histogram ------------------------------------------
    hists = (metrics or {}).get("histograms", {})
    bw = hists.get("serve.batch.width")
    if bw and bw.get("count"):
        lines.append("batch width")
        edges = bw["buckets"]
        counts = bw["counts"]
        total_obs = bw["count"]
        labels = [f"<= {int(e)}" for e in edges] + [f" > {int(edges[-1])}"]
        for label, count in zip(labels, counts):
            if count:
                lines.append(f"  {label:>8} |{_bar(count, total_obs)}| "
                             f"{count}")

    # -- batched dispatch (process executor) ----------------------------
    enq = _counter(metrics, "procexec.enqueues")
    steals = _counter(metrics, "procexec.steal_count")
    if enq or steals:
        prev_steals = (_counter(prev_metrics, "procexec.steal_count")
                       if prev else None)
        wait = hists.get("procexec.dispatch_wait") or {}
        wait_n = wait.get("count") or 0
        wait_mean_ms = (1e3 * wait["sum"] / wait_n) if wait_n else None
        lines.append(f"dispatch   enqueues {enq:9.0f}   "
                     f"steals {steals:9.0f}   "
                     f"steals/s {_rate(steals, prev_steals, dt)}   "
                     f"wait avg {_fmt_ms(wait_mean_ms)} ms")

    # -- breakers / workers ---------------------------------------------
    breakers = health.get("breakers") or {}
    for name, snap in sorted(breakers.items()):
        if isinstance(snap, dict):
            state = snap.get("state", "?")
            fails = snap.get("failures", snap.get("failure_count", 0))
            lines.append(f"breaker    {name}: {state} ({fails} failures)")
    workers = health.get("workers")
    if workers:
        for key, info in sorted(workers.items()):
            if isinstance(info, dict):
                alive = info.get("process_workers")
                lines.append(f"workers    {key}: "
                             f"executor={info.get('executor')} "
                             f"liveness={alive}")
    lines.append(bar)
    return "\n".join(lines)


async def _poll(reader, writer, op: str, timeout_s: float) -> Dict[str, Any]:
    writer.write(json.dumps({"id": op, "op": op}).encode() + b"\n")
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), timeout_s)
    if not line:
        raise ConnectionError("server closed the connection")
    resp = json.loads(line)
    if not resp.get("ok"):
        raise RuntimeError(f"{op} failed: {resp.get('error')}")
    return resp


async def amain(args) -> int:
    port = args.port
    if args.port_file:
        deadline = time.monotonic() + args.timeout
        path = Path(args.port_file)
        while True:
            if path.exists() and path.read_text().strip():
                port = int(path.read_text().strip())
                break
            if time.monotonic() >= deadline:
                print(f"error: {path} never appeared", file=sys.stderr)
                return 1
            await asyncio.sleep(0.1)

    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(args.host, port), args.timeout)
    prev: Optional[Dict[str, Any]] = None
    t_prev = time.monotonic()
    try:
        while True:
            stats = (await _poll(reader, writer, "stats",
                                 args.timeout))["stats"]
            health = (await _poll(reader, writer, "health",
                                  args.timeout))["health"]
            now = time.monotonic()
            frame = render(stats, health, prev=prev,
                           dt=now - t_prev)
            if not args.once:
                # ANSI clear + home keeps the frame in place like top.
                sys.stdout.write("\x1b[2J\x1b[H")
            print(frame, flush=True)
            if args.once:
                return 0
            prev, t_prev = stats, now
            await asyncio.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=7654)
    ap.add_argument("--port-file",
                    help="read the port from this file (server's "
                         "--port-file)")
    ap.add_argument("--interval", type=float, default=1.0,
                    help="seconds between polls (default 1)")
    ap.add_argument("--once", action="store_true",
                    help="print one frame and exit (CI smoke mode)")
    ap.add_argument("--timeout", type=float, default=30.0)
    args = ap.parse_args()
    try:
        return asyncio.run(amain(args))
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away: normal for a
        # streaming dashboard, not an error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
