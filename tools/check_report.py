#!/usr/bin/env python3
"""Validate RunReport files against the repro.obs schema.

Usage::

    python tools/check_report.py REPORT.json [REPORT2.json ...]

Exit status 0 when every file is a schema-valid RunReport, 1 otherwise;
one line per problem on stderr.  This is the same validator the
``python -m repro report`` subcommand runs — CI uses this script so a
malformed telemetry artefact fails the build even without pytest.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import load_report, validate_report  # noqa: E402


def check(path: str) -> int:
    try:
        report = load_report(path)
    except (OSError, ValueError) as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return 1
    errors = validate_report(report)
    for err in errors:
        print(f"error: {path}: {err}", file=sys.stderr)
    if errors:
        return 1
    counters = len(report["metrics"]["counters"])
    spans = report["spans"]["total"]
    print(f"ok: {path} (schema v{report['schema_version']}, "
          f"{counters} counters, {spans} spans)")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return max(check(path) for path in argv)


if __name__ == "__main__":
    raise SystemExit(main())
