"""Execution plans: the serialisable unit of tuning decisions.

An :class:`ExecutionPlan` names one concrete way to execute a workload
with the library's existing building blocks — which FBMPK variant,
sweep-grouping strategy, compute backend and executor to use for an
``A^k x`` pipeline, or which kernel/format to use for a single SpMV.
Plans are deliberately *descriptions*, not objects holding state: they
can be enumerated (:mod:`repro.tune.registry`), timed
(:mod:`repro.tune.autotuner`), serialised into the persistent plan
cache (:mod:`repro.tune.cache`) and re-instantiated by a later process,
which is the OSKI "tuned handle" model the paper's amortisation
argument (Fig. 11) calls for.

The JSON envelope is schema-versioned (:data:`PLAN_SCHEMA_VERSION`);
:func:`ExecutionPlan.from_dict` rejects envelopes it does not
understand with :class:`PlanFormatError`, which the cache layer treats
as a miss — a cache written by a future version of the library must
degrade to re-tuning, never to a crash or a silently wrong plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "PLAN_KINDS",
    "PlanFormatError",
    "ExecutionPlan",
    "default_power_plan",
    "default_spmv_plan",
]

#: Version of the serialised plan envelope.  Bump on any change to the
#: meaning of ``kind``/``params`` that an older reader would
#: misinterpret; readers only accept their own version.
PLAN_SCHEMA_VERSION = 1

#: The workload classes plans can describe: ``"power"`` is the FBMPK
#: ``A^k x`` pipeline, ``"spmv"`` a single sparse matrix-vector product.
PLAN_KINDS = ("power", "spmv")


class PlanFormatError(ValueError):
    """A serialised plan could not be understood (wrong schema version,
    unknown kind, malformed payload).  Cache readers map this to a
    miss."""


@dataclass(frozen=True)
class ExecutionPlan:
    """One concrete execution choice for a workload kind.

    ``params`` is a flat JSON-compatible mapping of knob names to
    values; the accepted knobs per kind are documented (and produced) by
    :mod:`repro.tune.registry`, which is also the only place that turns
    a plan back into runnable objects.  Examples::

        ExecutionPlan("power", {"variant": "fused", "strategy": "abmc",
                                "block_size": 1, "backend": "scipy",
                                "executor": "serial"})
        ExecutionPlan("spmv", {"kernel": "sell", "c": 8, "sigma": 64})
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in PLAN_KINDS:
            raise PlanFormatError(f"unknown plan kind {self.kind!r}")

    @property
    def label(self) -> str:
        """Compact human-readable identity, e.g.
        ``power/fused-abmc-b1-scipy-serial`` — used in telemetry span
        attributes, trial tables and log lines."""
        parts = [str(self.params[key]) for key in sorted(self.params)
                 if self.params[key] is not None]
        return f"{self.kind}/" + "-".join(parts) if parts else self.kind

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready envelope (schema-versioned)."""
        return {
            "schema_version": PLAN_SCHEMA_VERSION,
            "kind": self.kind,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExecutionPlan":
        """Parse an envelope produced by :meth:`to_dict`.

        Raises :class:`PlanFormatError` on anything unexpected: a
        non-mapping, a missing or future ``schema_version``, an unknown
        ``kind`` or non-mapping ``params``.  Unknown *extra* top-level
        keys are ignored (a same-version writer may add informational
        fields).
        """
        if not isinstance(payload, Mapping):
            raise PlanFormatError("plan payload is not a mapping")
        version = payload.get("schema_version")
        if version != PLAN_SCHEMA_VERSION:
            raise PlanFormatError(
                f"unsupported plan schema_version {version!r} "
                f"(this reader understands {PLAN_SCHEMA_VERSION})")
        kind = payload.get("kind")
        params = payload.get("params")
        if not isinstance(params, Mapping):
            raise PlanFormatError("plan params is not a mapping")
        if not isinstance(kind, str):
            raise PlanFormatError(f"plan kind is not a string: {kind!r}")
        return cls(kind=kind, params=dict(params))


def default_power_plan() -> ExecutionPlan:
    """The plan describing :func:`repro.core.build_fbmpk_operator`'s
    defaults — the untuned path every tuned plan is timed against and
    must reproduce bit-identically."""
    return ExecutionPlan("power", {
        "variant": "fused",
        "strategy": "abmc",
        "block_size": 1,
        "backend": "numpy",
        "executor": "serial",
    })


def default_spmv_plan() -> ExecutionPlan:
    """The plan describing the default SpMV path
    (:func:`repro.sparse.spmv.spmv_vectorised`)."""
    return ExecutionPlan("spmv", {"kernel": "vectorised"})
