"""Structure fingerprints: the plan cache's key space.

A tuned plan is only valid for the matrix *structure* it was measured
on (sweep groupings, colourings, kernel efficiency all key on the
sparsity pattern) and the platform it was measured on.  The fingerprint
therefore folds in:

* shape and nnz — the cheap coarse discriminators;
* a SHA-256 over the ``indptr`` and ``indices`` byte streams — the
  exact sparsity pattern, so any structural perturbation is a miss;
* the value dtype — kernels specialise on it (everything in this
  library is float64 today, but the key must not collide if that
  changes);
* the host platform tag (:func:`repro.machine.host_platform_tag`) —
  timings measured on one machine/software stack say nothing about
  another;
* the plan kind — a ``power`` plan and an ``spmv`` plan for the same
  matrix live in different cache slots.

Numerical *values* are deliberately excluded: two matrices with the
same pattern and different values execute identically, which is what
lets a time-stepping application reuse one tuned plan while its
coefficients evolve (the paper's SSpMV-sequence setting).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from ..machine.platform import host_platform_tag
from ..sparse.csr import CSRMatrix

__all__ = ["StructureFingerprint", "fingerprint_matrix"]


@dataclass(frozen=True)
class StructureFingerprint:
    """Identity of (matrix structure, workload kind, platform)."""

    kind: str
    n_rows: int
    n_cols: int
    nnz: int
    dtype: str
    structure_hash: str
    platform: str

    def key(self) -> str:
        """Filesystem-safe cache key: SHA-256 over the canonical field
        rendering, truncated to 32 hex chars (128 bits — collision-safe
        for any realistic cache population)."""
        canon = "|".join([
            self.kind, str(self.n_rows), str(self.n_cols), str(self.nnz),
            self.dtype, self.structure_hash, self.platform,
        ])
        return hashlib.sha256(canon.encode()).hexdigest()[:32]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (stored inside cache entries so a hit
        can be verified field-by-field, not just by file name)."""
        return {
            "kind": self.kind,
            "n_rows": self.n_rows,
            "n_cols": self.n_cols,
            "nnz": self.nnz,
            "dtype": self.dtype,
            "structure_hash": self.structure_hash,
            "platform": self.platform,
        }

    def matches(self, payload: Mapping[str, Any]) -> bool:
        """Whether a stored fingerprint dict equals this fingerprint."""
        try:
            return all(payload.get(k) == v
                       for k, v in self.to_dict().items())
        except Exception:  # non-mapping-ish payloads
            return False


def fingerprint_matrix(
    a: CSRMatrix,
    kind: str = "power",
    platform: Optional[str] = None,
) -> StructureFingerprint:
    """Fingerprint ``a`` for workload ``kind`` on ``platform`` (default:
    the running host).  Cost is one pass over the index arrays —
    negligible next to a single SpMV and paid once per tuning/cache
    lookup, not per execution."""
    h = hashlib.sha256()
    h.update(a.indptr.tobytes())
    h.update(a.indices.tobytes())
    return StructureFingerprint(
        kind=kind,
        n_rows=a.n_rows,
        n_cols=a.n_cols,
        nnz=a.nnz,
        dtype=str(a.data.dtype),
        structure_hash=h.hexdigest(),
        platform=host_platform_tag() if platform is None else platform,
    )
