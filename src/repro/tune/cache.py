"""Persistent execution-plan cache.

The cache is what turns the autotuner from a per-process optimisation
into a per-*matrix* one: the first process ever to see a structure pays
the empirical search (and, for FBMPK plans, the preprocessing), writes
the winning :class:`~repro.tune.plan.ExecutionPlan` — plus the
preprocessed operator artefact when available — under a
:class:`~repro.tune.fingerprint.StructureFingerprint` key, and every
later process skips both.  This is OSKI's "save/restore tuned handle"
workflow realised as a content-addressed directory of JSON envelopes.

Layout (one entry per fingerprint key ``K``)::

    <root>/K.json     schema-versioned envelope: fingerprint, plan, meta
    <root>/K.op.npz   optional FBMPKOperator artefact (see
                      FBMPKOperator.save) letting a hit skip the
                      recomputable split/colour/group preprocessing too

``<root>`` resolves, in order, to: an explicit constructor argument,
``$REPRO_PLAN_CACHE_DIR``, ``$XDG_CACHE_HOME/repro/plans``, and
``~/.cache/repro/plans``.

Robustness contract: a cache entry can *never* make things worse than
having no cache.  Corrupt JSON, truncated files, future schema
versions, plans the current reader does not understand, fingerprint
mismatches — all load as a miss (counted as ``plan_cache.corrupt`` on
top of the miss) and the entry is left for a subsequent ``store`` to
overwrite.  Writes are atomic (temp file + ``os.replace``) so a killed
process cannot leave a half-written entry behind.

Telemetry: every lookup increments ``plan_cache.hit`` or
``plan_cache.miss`` on the active :class:`repro.obs.Telemetry` session
(no-ops otherwise); stores increment ``plan_cache.store``.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from .. import obs
from .fingerprint import StructureFingerprint
from .plan import ExecutionPlan, PlanFormatError

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CACHE_DIR_ENV_VAR",
    "default_cache_dir",
    "CacheEntry",
    "PlanCache",
]

#: Version of the on-disk entry envelope (independent of the plan
#: schema: the envelope carries bookkeeping the plan does not).
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV_VAR = "REPRO_PLAN_CACHE_DIR"


def default_cache_dir() -> Path:
    """Resolve the plan-cache directory (see module docstring)."""
    env = os.environ.get(CACHE_DIR_ENV_VAR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "plans"


@dataclass
class CacheEntry:
    """One successfully loaded cache entry."""

    plan: ExecutionPlan
    meta: Dict[str, Any] = field(default_factory=dict)
    #: Path of the preprocessed-operator artefact, when one was stored
    #: and is present on disk; loaders must still treat the file as
    #: untrusted (fall back to rebuilding from the plan on any error).
    operator_path: Optional[Path] = None


class PlanCache:
    """Content-addressed persistent store of winning execution plans."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- paths ----------------------------------------------------------
    def entry_path(self, fp: StructureFingerprint) -> Path:
        """The JSON envelope path for ``fp``."""
        return self.root / f"{fp.key()}.json"

    def operator_path(self, fp: StructureFingerprint) -> Path:
        """The operator-artefact path for ``fp``."""
        return self.root / f"{fp.key()}.op.npz"

    # -- lookup ---------------------------------------------------------
    def load(self, fp: StructureFingerprint) -> Optional[CacheEntry]:
        """Look up ``fp``; None on miss.

        Every way an entry can be unusable — unreadable file, invalid
        JSON, wrong envelope schema version, fingerprint mismatch,
        plan that fails :meth:`ExecutionPlan.from_dict` — degrades to a
        miss, never an exception.
        """
        path = self.entry_path(fp)
        entry = self._read_entry(path, fp)
        if entry is None:
            obs.add_counter("plan_cache.miss")
            return None
        obs.add_counter("plan_cache.hit")
        op_path = self.operator_path(fp)
        if op_path.is_file():
            entry.operator_path = op_path
        return entry

    def _read_entry(self, path: Path,
                    fp: StructureFingerprint) -> Optional[CacheEntry]:
        try:
            raw = path.read_text()
        except OSError:
            return None  # plain miss: no entry (or unreadable)
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise PlanFormatError("cache entry is not a JSON object")
            if payload.get("schema_version") != CACHE_SCHEMA_VERSION:
                raise PlanFormatError(
                    f"unsupported cache schema_version "
                    f"{payload.get('schema_version')!r}")
            if not fp.matches(payload.get("fingerprint", {})):
                raise PlanFormatError("fingerprint mismatch")
            plan = ExecutionPlan.from_dict(payload.get("plan"))
        except (ValueError, PlanFormatError):
            # ValueError covers json.JSONDecodeError; PlanFormatError is
            # a ValueError too but named for clarity.
            obs.add_counter("plan_cache.corrupt")
            return None
        meta = payload.get("meta")
        return CacheEntry(plan=plan,
                          meta=meta if isinstance(meta, dict) else {})

    # -- store ----------------------------------------------------------
    def store(
        self,
        fp: StructureFingerprint,
        plan: ExecutionPlan,
        meta: Optional[Dict[str, Any]] = None,
        operator=None,
    ) -> Path:
        """Persist ``plan`` (and optionally a preprocessed ``operator``)
        under ``fp``; returns the envelope path.

        ``operator`` must expose ``save(path)`` writing an ``.npz``
        (i.e. :class:`repro.core.fbmpk.FBMPKOperator`); it is written
        first so a hit never observes an envelope whose artefact is
        still in flight.  Both writes are atomic replaces.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if operator is not None:
            self._atomic_write(self.operator_path(fp),
                               lambda tmp: operator.save(tmp))
        envelope = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "fingerprint": fp.to_dict(),
            "plan": plan.to_dict(),
            "meta": dict(meta or {}),
        }
        payload = json.dumps(envelope, indent=2, sort_keys=True) + "\n"
        self._atomic_write(self.entry_path(fp),
                           lambda tmp: Path(tmp).write_text(payload))
        obs.add_counter("plan_cache.store")
        return self.entry_path(fp)

    def _atomic_write(self, dest: Path, write) -> None:
        # The temp name must keep the destination's suffix: np.savez
        # appends ".npz" to names without it, which would strand the
        # payload next to an empty renamed placeholder.
        fd, tmp = tempfile.mkstemp(dir=str(self.root),
                                   prefix=dest.stem + ".tmp.",
                                   suffix=dest.suffix)
        os.close(fd)
        try:
            write(tmp)
            os.replace(tmp, dest)
        finally:
            if os.path.exists(tmp):  # write or replace failed midway
                os.unlink(tmp)

    # -- concurrency ----------------------------------------------------
    @contextmanager
    def lock(self, fp: StructureFingerprint,
             timeout_s: Optional[float] = None):
        """Advisory exclusive lock for ``fp``'s entry (``<key>.lock``).

        Serialises the tune-search critical section across processes
        *and* threads (``flock`` locks the open file description, and
        every ``with`` opens its own descriptor), so two concurrent
        first-tuners of the same structure cannot both pay the search
        or interleave their stores: the loser blocks, then finds the
        winner's entry on its in-lock re-check (double-checked
        locking — see :func:`repro.tune.autotune_power`).

        ``timeout_s`` bounds how long a waiter blocks on the holder:
        past it, the section proceeds *unlocked* (counter
        ``plan_cache.lock_timeout``) rather than stalling behind a
        wedged or slow peer — the duplicated search costs time, never
        correctness.

        Best-effort by design: on platforms without ``fcntl`` or on
        any locking failure this degrades to an unlocked section.
        Atomic stores keep that *correct* (last writer wins, entries
        are never torn) — the lock only removes duplicated work.
        """
        try:
            import fcntl
        except ImportError:  # pragma: no cover - POSIX-only fallback
            yield
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fh = open(self.root / f"{fp.key()}.lock", "a+")
        except OSError:  # pragma: no cover - unwritable cache dir
            yield
            return
        try:
            try:
                if timeout_s is None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                else:
                    self._flock_bounded(fcntl, fh.fileno(), timeout_s)
            except OSError:  # pragma: no cover - e.g. NFS without locks
                pass
            yield
        finally:
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            except OSError:  # pragma: no cover
                pass
            fh.close()

    @staticmethod
    def _flock_bounded(fcntl, fd: int, timeout_s: float) -> None:
        """Non-blocking ``flock`` retried until ``timeout_s`` elapses.

        Gives up (returning without the lock held — the caller's
        section then runs unlocked) instead of blocking indefinitely
        behind a holder that is slow, hung, or SIGSTOPped.
        """
        import errno
        import time as _time
        end = _time.monotonic() + max(0.0, timeout_s)
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                return
            except OSError as exc:
                if exc.errno not in (errno.EAGAIN, errno.EACCES):
                    raise
            if _time.monotonic() >= end:
                obs.add_counter("plan_cache.lock_timeout")
                return
            _time.sleep(min(0.02, max(0.0, end - _time.monotonic())))

    # -- maintenance ----------------------------------------------------
    def invalidate(self, fp: StructureFingerprint) -> None:
        """Drop the entry (and artefact) for ``fp``, if present."""
        for path in (self.entry_path(fp), self.operator_path(fp)):
            try:
                path.unlink()
            except OSError:
                pass

    def clear(self) -> int:
        """Remove every entry in the cache directory; returns the number
        of files removed.  Only this cache's file patterns are touched."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in list(self.root.glob("*.json")) + \
                list(self.root.glob("*.op.npz")) + \
                list(self.root.glob("*.lock")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanCache(root={str(self.root)!r})"
