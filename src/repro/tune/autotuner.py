"""Empirical autotuning with bit-identity gating.

The OSKI-style loop: enumerate candidate execution plans
(:mod:`repro.tune.registry`), time each on the *actual* matrix with
warmup + trimmed-mean repeats, and accept a candidate only if it passes
a two-part bit-identity gate: its output must be **bit-identical**
(``np.array_equal``, not ``allclose``) to the library's default path on
three independent probe vectors, *and* the plan must perform the same
floating-point arithmetic by construction
(:func:`repro.tune.registry.plan_is_bit_identical_by_design` — no
finite probe set can rule out a rounding coincidence on a small
matrix).  The winner is the fastest accepted candidate — with ties
going to the default — so the tuned path can never be
slower-by-selection or numerically different from the untuned one.  Winning plans (plus, for fused FBMPK winners, the
preprocessed operator artefact) are persisted through
:class:`repro.tune.cache.PlanCache`, so a later process skips both the
search and the recomputable preprocessing: the amortisation the paper's
Fig. 11 argues for, moved from per-process to per-matrix.

Resilience: a tuning search can take tens of seconds (the BENCH
numbers: 34–55 s per structure) and can fail repeatedly on a
pathological input — unacceptable on a serving path.  Both entry
points therefore run under a
:class:`~repro.robust.resilience.CircuitBreaker` (the module-level
:data:`SEARCH_BREAKER` unless the caller passes their own) with an
optional per-search time budget: a search that raises, or that blows
``search_budget_s``, records a breaker failure; after
``failure_threshold`` consecutive failures the breaker opens and
subsequent calls skip the search entirely, instantiating the *default*
plan immediately (``TuningResult.source == "breaker"``) until a
half-open probe re-admits searching.  Pass ``breaker=False`` to opt
out.  The budget also bounds the cross-process
:meth:`~repro.tune.cache.PlanCache.lock` wait, so a caller can never
block indefinitely behind another process's search.

Racing: timing every candidate for the full ``repeats`` budget wastes
most of the search on plans that were never going to win.  With
``racing=True`` (the default for :func:`autotune_power`) a non-default
candidate gets one timed repeat first; if that single repeat already
exceeds :data:`RACING_MARGIN` times the best trimmed mean measured so
far, the candidate is *raced out* — its remaining repeats and identity
probes are skipped, its trial records the pessimistic single-repeat
time with ``raced=True``, and it can never be selected.  The winner is
unchanged in expectation (a true winner's single repeat would have to
be >50% slower than the incumbent's trimmed mean to be dropped) while
the search spends its wall clock on the contenders.
``TuningResult.search_s`` records the measured search wall time so the
saving is observable.

Telemetry (all no-ops without an active :class:`repro.obs.Telemetry`):
``tune.autotune`` / ``tune.candidate`` spans, ``tune.candidates`` /
``tune.candidates_raced`` /
``tune.rejected_not_identical`` / ``tune.rejected_inefficient`` /
``tune.errors`` /
``tune.budget_exhausted`` / ``tune.breaker.*`` counters, and
``tune.default_time_s`` / ``tune.best_time_s`` gauges.  Cache lookups
emit ``plan_cache.{hit,miss,corrupt,store}`` (see
:mod:`repro.tune.cache`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs
from ..core.fbmpk import FBMPKOperator
from ..robust.resilience import CircuitBreaker, Deadline
from ..sparse.csr import CSRMatrix
from .cache import PlanCache
from .fingerprint import StructureFingerprint, fingerprint_matrix
from .plan import ExecutionPlan, default_power_plan, default_spmv_plan
from .registry import (
    instantiate_power,
    instantiate_spmv,
    order_power_candidates,
    plan_is_bit_identical_by_design,
    power_candidates,
    spmv_candidates,
)

__all__ = [
    "trimmed_mean",
    "Trial",
    "TuningResult",
    "autotune_power",
    "autotune_spmv",
    "tuned_matvec",
    "SEARCH_BREAKER",
    "RACING_MARGIN",
]

#: ``cache`` argument accepted by the autotune entry points: ``None``
#: (default persistent cache), a :class:`PlanCache`, a directory path,
#: or ``False`` to disable persistence entirely.
CacheArg = Union[None, bool, str, Path, PlanCache]

#: ``breaker`` argument: ``None`` (module default), a caller-owned
#: :class:`CircuitBreaker` (e.g. one per solve service), or ``False``
#: to run unguarded.
BreakerArg = Union[None, bool, CircuitBreaker]

#: Process-wide default breaker guarding the tuning searches.  Named
#: ``tune`` so its metrics land under ``tune.breaker.*``.
SEARCH_BREAKER = CircuitBreaker("tune", failure_threshold=3,
                                reset_timeout_s=60.0)

#: Racing threshold: a candidate whose *single* first repeat exceeds
#: this multiple of the best trimmed mean so far is dropped without
#: spending its remaining repeats or identity probes.  1.5 leaves a
#: wide noise margin — one preempted repeat on a loaded machine rarely
#: inflates a power call by 50% after warmup — so a genuine winner is
#: effectively never raced out.
RACING_MARGIN = 1.5


def _resolve_breaker(breaker: BreakerArg) -> Optional[CircuitBreaker]:
    if breaker is False:
        return None
    if breaker is None or breaker is True:
        return SEARCH_BREAKER
    return breaker


def trimmed_mean(values: Sequence[float]) -> float:
    """Mean with the single min and max dropped (when three or more
    samples exist) — the repeat aggregator used for every timing here.
    One preempted repeat on a noisy machine must not crown or dethrone
    a candidate."""
    vals = sorted(float(v) for v in values)
    if not vals:
        raise ValueError("trimmed_mean of no samples")
    if len(vals) >= 3:
        vals = vals[1:-1]
    return sum(vals) / len(vals)


@dataclass
class Trial:
    """One measured candidate."""

    plan: ExecutionPlan
    time_s: Optional[float] = None
    build_time_s: Optional[float] = None
    identical: Optional[bool] = None
    by_design: Optional[bool] = None
    #: False when the efficiency guard disqualified this trial: a
    #: process-pool plan measured no faster than the serial default
    #: (``speedup_vs_serial < 1``) must never be selected — paying
    #: worker-pool dispatch for a slowdown is strictly worse than the
    #: untuned path.  None means the guard did not apply.
    efficient: Optional[bool] = None
    #: True when racing dropped this candidate after its first timed
    #: repeat (``time_s`` is that single pessimistic sample and the
    #: identity probes never ran, so ``accepted`` is False).  None when
    #: racing did not apply.
    raced: Optional[bool] = None
    error: Optional[str] = None

    @property
    def accepted(self) -> bool:
        """Eligible to win: ran without error, matched the default path
        bit-for-bit on every probe, shares the default's floating-point
        arithmetic by construction
        (:func:`repro.tune.registry.plan_is_bit_identical_by_design`) —
        probes alone cannot rule out a rounding coincidence on small
        matrices — and was not disqualified by the efficiency guard."""
        return self.error is None and bool(self.identical) \
            and bool(self.by_design) and self.efficient is not False


@dataclass
class TuningResult:
    """Outcome of one autotune call (search or cache hit)."""

    kind: str
    fingerprint: StructureFingerprint
    plan: ExecutionPlan
    source: str  # "search" | "cache" | "breaker"
    trials: List[Trial] = field(default_factory=list)
    default_time_s: Optional[float] = None
    best_time_s: Optional[float] = None
    cache_path: Optional[Path] = None
    #: True when a ``search_budget_s`` expired mid-search: the winner is
    #: whatever had been measured so far, and the guarding breaker
    #: counts the call as a failure.
    budget_exhausted: bool = False
    #: Wall-clock seconds the search spent measuring candidates; None
    #: on a cache hit or breaker short-circuit (nothing was searched).
    search_s: Optional[float] = None

    @property
    def speedup(self) -> Optional[float]:
        """Default over winner time ratio; None on a cache hit (nothing
        was measured) or a degenerate measurement."""
        if not self.default_time_s or not self.best_time_s:
            return None
        return self.default_time_s / self.best_time_s


def _resolve_cache(cache: CacheArg) -> Optional[PlanCache]:
    if cache is False:
        return None
    if cache is None or cache is True:
        return PlanCache()
    if isinstance(cache, PlanCache):
        return cache
    return PlanCache(cache)


def _time_candidate(run: Callable[[], np.ndarray], repeats: int,
                    warmup: int) -> Tuple[float, np.ndarray]:
    """Trimmed-mean wall-clock of ``run`` and its (last) output."""
    for _ in range(warmup):
        y = run()
    samples = []
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        y = run()
        samples.append(time.perf_counter() - t0)
    return trimmed_mean(samples), y


def _guarded_search(breaker: Optional[CircuitBreaker],
                    do_search: Callable[[], Tuple[Any, TuningResult]],
                    do_default: Callable[[], Tuple[Any, TuningResult]]
                    ) -> Tuple[Any, TuningResult]:
    """Run ``do_search`` under ``breaker``: an open breaker
    short-circuits straight to ``do_default`` (the untuned plan,
    instantiated in milliseconds); a search that raises or blows its
    budget records a failure, anything else a success."""
    if breaker is None:
        return do_search()
    if not breaker.allow():  # counts <name>.breaker.short_circuit
        return do_default()
    try:
        obj, result = do_search()
    except Exception:
        breaker.record_failure()
        raise
    if result.budget_exhausted:
        breaker.record_failure()
    else:
        breaker.record_success()
    return obj, result


def _default_power(a, fp):
    """Breaker-open degraded path: the default (untuned) plan,
    instantiated directly — nothing measured, nothing persisted."""
    plan = default_power_plan()
    return instantiate_power(plan, a), TuningResult(
        kind="power", fingerprint=fp, plan=plan, source="breaker")


def autotune_power(
    a: CSRMatrix,
    k: int = 8,
    cache: CacheArg = None,
    repeats: int = 5,
    warmup: int = 1,
    force: bool = False,
    candidates: Optional[Sequence[ExecutionPlan]] = None,
    max_candidates: Optional[int] = None,
    seed: int = 0,
    search_budget_s: Optional[float] = None,
    breaker: BreakerArg = None,
    racing: bool = True,
):
    """Tune the ``A^k x`` pipeline for ``a``.

    Returns ``(operator, TuningResult)``.

    On a cache hit (same structure fingerprint, ``force=False``) the
    stored plan — and its preprocessed-operator artefact when present —
    is instantiated directly: no candidate is timed and, with the
    artefact, no splitting/colouring/grouping is recomputed.  Otherwise
    the candidate space (``candidates`` or
    :func:`repro.tune.registry.power_candidates`, analytically
    pre-ordered, optionally truncated to ``max_candidates`` — the
    default plan always survives truncation) is measured and gated as
    described in the module docstring, and the winner is persisted.

    ``racing=True`` (the default) drops candidates whose first timed
    repeat already exceeds :data:`RACING_MARGIN` times the best trimmed
    mean so far, skipping their remaining repeats and identity probes —
    see the module docstring.  Pass ``racing=False`` to time every
    candidate for the full ``repeats`` budget (e.g. when harvesting
    complete per-candidate timings for analysis).

    ``search_budget_s`` bounds the search (and the cross-process cache
    lock wait): once exhausted, no further candidate is measured — the
    best so far wins — and the call counts as a ``breaker`` failure.
    ``breaker`` guards the search as described in the module docstring;
    a cache hit never consults it (hits are the fast path the breaker
    exists to protect).

    The probe vectors are drawn from ``default_rng(seed)`` so reruns of
    the search are reproducible.  The returned operator owns resources
    (thread pools); call ``close()`` or use it as a context manager.
    """
    store = _resolve_cache(cache)
    brk = _resolve_breaker(breaker)
    fp = fingerprint_matrix(a, kind="power")
    with obs.span("tune.autotune", kind="power", k=k, key=fp.key()):
        def search(st):
            return _guarded_search(
                brk,
                lambda: _search_power(a, k, fp, st, repeats, warmup,
                                      candidates, max_candidates, seed,
                                      search_budget_s, racing),
                lambda: _default_power(a, fp))

        if store is None or force:
            return search(store)
        hit = _load_power_entry(store, fp, a)
        if hit is not None:
            return hit
        # Miss: serialise the search on the entry's file lock so
        # concurrent first-tuners of the same structure (threads or
        # separate processes) do not both pay it.  Double-checked: the
        # race's loser blocks here, then finds the winner's entry on
        # the in-lock re-check and instantiates it instead.
        with store.lock(fp, timeout_s=search_budget_s):
            hit = _load_power_entry(store, fp, a)
            if hit is not None:
                return hit
            return search(store)


def _load_power_entry(store, fp, a):
    """Cache-hit path: ``(operator, TuningResult)`` or None on a miss
    (including an entry whose stored plan no longer instantiates — that
    entry is dropped so a search can replace it)."""
    entry = store.load(fp)
    if entry is None:
        return None
    try:
        op = instantiate_power(entry.plan, a,
                               operator_path=entry.operator_path)
    except Exception as exc:
        # Stored plan no longer instantiable (e.g. knob removed):
        # drop it and fall through to a search.
        obs.event("tune.cache_plan_unusable", error=repr(exc))
        store.invalidate(fp)
        return None
    return op, TuningResult(
        kind="power", fingerprint=fp, plan=entry.plan,
        source="cache", cache_path=store.entry_path(fp))


def _search_power(a, k, fp, store, repeats, warmup, candidates,
                  max_candidates, seed, budget_s=None, racing=True):
    search_t0 = time.perf_counter()
    plans = list(candidates) if candidates is not None \
        else power_candidates()
    plans = order_power_candidates(plans, a, k)
    if max_candidates is not None and max_candidates >= 1:
        plans = plans[:max_candidates]
    deadline = Deadline.after(budget_s) if budget_s is not None \
        else Deadline.never()
    budget_exhausted = False
    rng = np.random.default_rng(seed)
    # The identity gate checks THREE independent probe vectors, not one:
    # on small matrices a numerically different candidate (e.g. the
    # unfused variant) can match the default bit-for-bit on a single
    # input by rounding coincidence while differing on others.  Timing
    # uses the first probe; the extra probes cost one power call each.
    probes = [rng.standard_normal(a.n_rows) for _ in range(3)]

    trials: List[Trial] = []
    refs: Optional[List[np.ndarray]] = None
    best: Optional[Tuple[Trial, Any]] = None  # (trial, operator)
    for i, plan in enumerate(plans):
        if i > 0 and deadline.expired():
            # Candidate 0 (the default) is always measured: it defines
            # the references, so a budget too tight even for it still
            # yields a correct, if untuned, winner.
            budget_exhausted = True
            obs.add_counter("tune.budget_exhausted")
            break
        trial = Trial(plan=plan,
                      by_design=plan_is_bit_identical_by_design(plan))
        trials.append(trial)
        obs.add_counter("tune.candidates")
        with obs.span("tune.candidate", plan=plan.label):
            op = None
            try:
                t0 = time.perf_counter()
                op = instantiate_power(plan, a)
                trial.build_time_s = time.perf_counter() - t0

                def run(op=op):
                    return op.power(probes[0], k)

                reference = best[0].time_s if best is not None else None
                if racing and i > 0 and reference is not None:
                    for _ in range(warmup):
                        run()
                    t0 = time.perf_counter()
                    y0 = run()
                    first = time.perf_counter() - t0
                    if first > RACING_MARGIN * reference:
                        # Raced out: a single repeat already misses the
                        # incumbent by the margin.  Record the
                        # pessimistic sample (it cannot win) and skip
                        # the remaining repeats and identity probes.
                        trial.time_s = first
                        trial.raced = True
                        obs.add_counter("tune.candidates_raced")
                        op.close()
                        continue
                    trial.raced = False
                    samples = [first]
                    for _ in range(max(repeats, 1) - 1):
                        t0 = time.perf_counter()
                        y0 = run()
                        samples.append(time.perf_counter() - t0)
                    trial.time_s = trimmed_mean(samples)
                else:
                    trial.time_s, y0 = _time_candidate(run, repeats,
                                                       warmup)
                ys = [y0] + [op.power(x, k) for x in probes[1:]]
            except Exception as exc:
                trial.error = repr(exc)
                obs.add_counter("tune.errors")
                if op is not None:
                    op.close()
                continue
            if i == 0:
                # Candidate 0 is the default plan by construction: it
                # defines the reference outputs and is always accepted.
                refs = ys
                trial.identical = True
            else:
                trial.identical = all(
                    np.array_equal(y, r) for y, r in zip(ys, refs))
                if not trial.identical:
                    obs.add_counter("tune.rejected_not_identical")
                elif not trial.by_design:
                    obs.event("tune.identical_but_not_by_design",
                              plan=plan.label)
                # Efficiency guard: a process-pool plan that fails to
                # beat the measured serial default (speedup < 1) must
                # never win, even if every other candidate errored out —
                # a slowdown that also drags in worker processes and
                # shared-memory segments is strictly worse than serial.
                if (plan.params.get("executor") == "processes"
                        and trials[0].time_s is not None
                        and trial.time_s is not None
                        and trial.time_s >= trials[0].time_s):
                    trial.efficient = False
                    obs.add_counter("tune.rejected_inefficient")
            if trial.accepted and (best is None
                                   or trial.time_s < best[0].time_s):
                if best is not None:
                    best[1].close()
                best = (trial, op)
            else:
                op.close()

    if best is None:
        raise RuntimeError(
            "autotune_power: no candidate ran successfully (not even the "
            "default plan); first error: "
            + next((t.error for t in trials if t.error), "none recorded"))
    win_trial, win_op = best
    default_time = trials[0].time_s
    result = TuningResult(
        kind="power", fingerprint=fp, plan=win_trial.plan, source="search",
        trials=trials, default_time_s=default_time,
        best_time_s=win_trial.time_s, budget_exhausted=budget_exhausted,
        search_s=time.perf_counter() - search_t0)
    if default_time is not None:
        obs.set_gauge("tune.default_time_s", default_time, unit="s")
    obs.set_gauge("tune.best_time_s", win_trial.time_s, unit="s")
    if store is not None:
        meta: Dict[str, Any] = {
            "k": k,
            "repeats": repeats,
            "time_s": win_trial.time_s,
            "default_time_s": default_time,
            "candidates": len(trials),
            "search_s": result.search_s,
            "raced": sum(1 for t in trials if t.raced),
        }
        operator = win_op if isinstance(win_op, FBMPKOperator) else None
        result.cache_path = store.store(fp, win_trial.plan, meta=meta,
                                        operator=operator)
    return win_op, result


def _default_spmv(a, fp):
    """Breaker-open degraded path for :func:`autotune_spmv`."""
    plan = default_spmv_plan()
    return instantiate_spmv(plan, a), TuningResult(
        kind="spmv", fingerprint=fp, plan=plan, source="breaker")


def autotune_spmv(
    a: CSRMatrix,
    cache: CacheArg = None,
    repeats: int = 5,
    warmup: int = 1,
    force: bool = False,
    candidates: Optional[Sequence[ExecutionPlan]] = None,
    seed: int = 0,
    search_budget_s: Optional[float] = None,
    breaker: BreakerArg = None,
):
    """Tune a single-SpMV kernel for ``a``.

    Returns ``(matvec_callable, TuningResult)``.

    Same protocol as :func:`autotune_power` (including the three-probe
    bit-identity gate — one vector is too easy to match by rounding
    coincidence on small matrices, and the ``search_budget_s`` /
    ``breaker`` resilience guards), except no operator artefact is
    stored: format conversions are cheap relative to a tuning search.
    """
    store = _resolve_cache(cache)
    brk = _resolve_breaker(breaker)
    fp = fingerprint_matrix(a, kind="spmv")
    with obs.span("tune.autotune", kind="spmv", key=fp.key()):
        def search(st):
            return _guarded_search(
                brk,
                lambda: _search_spmv(a, fp, st, repeats, warmup,
                                     candidates, seed, search_budget_s),
                lambda: _default_spmv(a, fp))

        if store is None or force:
            return search(store)
        hit = _load_spmv_entry(store, fp, a)
        if hit is not None:
            return hit
        # Same double-checked locking as autotune_power: only one
        # concurrent first-tuner pays the search.
        with store.lock(fp, timeout_s=search_budget_s):
            hit = _load_spmv_entry(store, fp, a)
            if hit is not None:
                return hit
            return search(store)


def _load_spmv_entry(store, fp, a):
    """Cache-hit path for :func:`autotune_spmv`; None on a miss."""
    entry = store.load(fp)
    if entry is None:
        return None
    try:
        fn = instantiate_spmv(entry.plan, a)
    except Exception as exc:
        obs.event("tune.cache_plan_unusable", error=repr(exc))
        store.invalidate(fp)
        return None
    return fn, TuningResult(
        kind="spmv", fingerprint=fp, plan=entry.plan,
        source="cache", cache_path=store.entry_path(fp))


def _search_spmv(a, fp, store, repeats, warmup, candidates, seed,
                 budget_s=None):
    search_t0 = time.perf_counter()
    plans = list(candidates) if candidates is not None \
        else spmv_candidates()
    deadline = Deadline.after(budget_s) if budget_s is not None \
        else Deadline.never()
    budget_exhausted = False
    rng = np.random.default_rng(seed)
    xs = [rng.standard_normal(a.n_cols) for _ in range(3)]

    trials: List[Trial] = []
    refs: Optional[List[np.ndarray]] = None
    best: Optional[Tuple[Trial, Callable]] = None
    for i, plan in enumerate(plans):
        if i > 0 and deadline.expired():
            budget_exhausted = True
            obs.add_counter("tune.budget_exhausted")
            break
        trial = Trial(plan=plan,
                      by_design=plan_is_bit_identical_by_design(plan))
        trials.append(trial)
        obs.add_counter("tune.candidates")
        with obs.span("tune.candidate", plan=plan.label):
            try:
                t0 = time.perf_counter()
                fn = instantiate_spmv(plan, a)
                trial.build_time_s = time.perf_counter() - t0
                times, outs = [], []
                for x in xs:
                    t, y = _time_candidate(lambda: fn(x),
                                           repeats, warmup)
                    times.append(t)
                    outs.append(y)
                trial.time_s = sum(times) / len(times)
            except Exception as exc:
                trial.error = repr(exc)
                obs.add_counter("tune.errors")
                continue
            if i == 0:
                refs = outs
                trial.identical = True
            else:
                trial.identical = all(
                    np.array_equal(y, r)
                    for y, r in zip(outs, refs))
                if not trial.identical:
                    obs.add_counter("tune.rejected_not_identical")
                elif not trial.by_design:
                    obs.event("tune.identical_but_not_by_design",
                              plan=plan.label)
            if trial.accepted and (best is None
                                   or trial.time_s < best[0].time_s):
                best = (trial, fn)

    if best is None:
        raise RuntimeError(
            "autotune_spmv: no candidate ran successfully; first "
            "error: "
            + next((t.error for t in trials if t.error),
                   "none recorded"))
    win_trial, win_fn = best
    default_time = trials[0].time_s
    result = TuningResult(
        kind="spmv", fingerprint=fp, plan=win_trial.plan,
        source="search", trials=trials, default_time_s=default_time,
        best_time_s=win_trial.time_s, budget_exhausted=budget_exhausted,
        search_s=time.perf_counter() - search_t0)
    if default_time is not None:
        obs.set_gauge("tune.default_time_s", default_time, unit="s")
    obs.set_gauge("tune.best_time_s", win_trial.time_s, unit="s")
    if store is not None:
        result.cache_path = store.store(fp, win_trial.plan, meta={
            "repeats": repeats,
            "time_s": win_trial.time_s,
            "default_time_s": default_time,
            "candidates": len(trials),
            "search_s": result.search_s,
        })
    return win_fn, result


def tuned_matvec(
    a: CSRMatrix,
    cache: CacheArg = None,
    force: bool = False,
    repeats: int = 3,
    warmup: int = 1,
) -> Callable[[np.ndarray], np.ndarray]:
    """Convenience for solvers: the tuned ``x -> A @ x`` callable for
    ``a`` (bit-identical to ``a.matvec`` by the acceptance gate), tuning
    or cache-loading as needed.  This is what the ``tuned=True`` paths
    of :mod:`repro.solvers` call."""
    fn, _ = autotune_spmv(a, cache=cache, force=force, repeats=repeats,
                          warmup=warmup)
    return fn
