"""Candidate enumeration and plan instantiation.

This module is the only place that knows how to turn an
:class:`~repro.tune.plan.ExecutionPlan` into runnable objects, and the
only place that decides *which* plans are worth trying.  Keeping both
sides here means the autotuner and the cache deal purely in plan
descriptions, and a new execution building block (a new kernel, a new
format, a new executor) becomes tunable by touching this file alone.

Two candidate spaces exist, matching :data:`repro.tune.plan.PLAN_KINDS`:

* ``power`` — the FBMPK ``A^k x`` pipeline.  Knobs: ``variant``
  (``"fused"`` sweep-grouped operator or ``"unfused"`` whole-triangle
  staging with BtB off), ``strategy``
  (``"abmc"``/``"levels"``/``"levels-blocked"``), ``block_size``
  (ABMC rows per block; for ``levels-blocked`` the cache-residency
  block row count), ``backend``
  (``"numpy"``/``"scipy"`` sweep kernels), ``executor``
  (``"serial"``/``"threads"``/``"processes"``) and ``n_threads``.
* ``spmv`` — one sparse matrix-vector product.  Knobs: ``kernel``
  (:data:`repro.sparse.spmv.KERNELS` plus the ``sell`` and ``bsr``
  format conversions) and the kernel's own parameters.

The enumerations always put the library default first; the autotuner
relies on that to guarantee the default is measured (so "tuned is never
worse than default" is decided empirically, not assumed).  Candidates
are *proposals* — some may not even be constructible for a given matrix
(e.g. BSR needs divisible dimensions) and some are not bit-identical to
the default path (the unfused variant, SELL/BSR's different summation
orders); the autotuner rejects those at measurement time.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.fbmpk import FBMPKOperator, build_fbmpk_operator, fbmpk_unfused
from ..core.partition import TriangularPartition, split_ldu
from ..core.plan import execution_cost_hint
from ..sparse.bsr import BSRMatrix
from ..sparse.csr import CSRMatrix
from ..sparse.sell import SellCSigmaMatrix
from ..sparse.spmv import KERNELS, spmv_blocked
from .plan import (
    ExecutionPlan,
    PlanFormatError,
    default_power_plan,
    default_spmv_plan,
)

__all__ = [
    "UnfusedPowerOperator",
    "power_candidates",
    "spmv_candidates",
    "order_power_candidates",
    "plan_is_bit_identical_by_design",
    "instantiate_power",
    "instantiate_spmv",
]

#: SpMV kernels whose per-row accumulation is the same ``reduce_rows``
#: arithmetic as the default ``vectorised`` path (``blocked`` slices the
#: identical computation into row windows).  ``scipy``, ``sell`` and
#: ``bsr`` reorder the per-row summation and so are excluded.
_SPMV_KERNELS_BY_DESIGN = frozenset({"vectorised", "blocked"})

#: Power-plan knobs that only reschedule independent row updates and so
#: cannot change a result bit: the threaded and process executors are
#: bitwise-equal to serial by the differential test layer, for the
#: *same* built operator, and ``claim_chunk``/``pin_workers`` only
#: change the work-stealing claim granularity and worker placement of
#: the batched dispatch path (per-colour block results are
#: order-independent).
#: Everything else — variant, backend, and notably ``strategy`` /
#: ``block_size``, whose grouping permutes the matrix and therefore the
#: per-row accumulation order — changes the floating-point arithmetic.
_POWER_EXECUTION_ONLY_KEYS = frozenset(
    {"executor", "n_threads", "assign_policy", "claim_chunk",
     "pin_workers"})


def plan_is_bit_identical_by_design(plan: ExecutionPlan) -> bool:
    """Whether ``plan`` performs the *same floating-point arithmetic in
    the same order* as the library default for its kind.

    Power plans qualify iff they differ from
    :func:`~repro.tune.plan.default_power_plan` only in the execution
    dimensions (:data:`_POWER_EXECUTION_ONLY_KEYS`).  SpMV plans qualify
    for the kernels in :data:`_SPMV_KERNELS_BY_DESIGN`.

    The autotuner requires this *in addition to* the empirical probe
    check before a candidate may win: on small matrices a numerically
    different plan can match the default on any finite set of probes by
    rounding coincidence, so probes alone cannot certify bit-identity
    on future inputs.
    """
    params = plan.params
    if plan.kind == "power":
        default = default_power_plan().params
        keys = (set(params) | set(default)) - _POWER_EXECUTION_ONLY_KEYS
        return all(params.get(key, default.get(key)) == default.get(key)
                   for key in keys)
    if plan.kind == "spmv":
        return params.get("kernel", "vectorised") in _SPMV_KERNELS_BY_DESIGN
    return False


class UnfusedPowerOperator:
    """Adapter giving :func:`repro.core.fbmpk.fbmpk_unfused` the same
    call surface as :class:`~repro.core.fbmpk.FBMPKOperator`.

    Represents the BtB-off execution choice: whole-triangle products and
    separate even/odd vectors instead of fused grouped sweeps over the
    interleaved pair.  Its summation order differs from the fused path,
    so it is generally *not* bit-identical to the default — it exists in
    the candidate space to let the bit-identity gate document that
    empirically rather than by fiat.
    """

    def __init__(self, part: TriangularPartition) -> None:
        self.part = part
        self.executor = "serial"

    @property
    def n(self) -> int:
        return self.part.n

    def power(self, x: np.ndarray, k: int, on_iterate=None,
              counter=None, check_finite: bool = False) -> np.ndarray:
        # counter/check_finite accepted for interface parity; the
        # unfused staging has no instrumented kernels to count.
        y = fbmpk_unfused(self.part, x, k, on_iterate=on_iterate)
        if check_finite and not np.all(np.isfinite(y)):
            raise FloatingPointError("non-finite value in unfused power")
        return y

    def close(self) -> None:
        pass

    def __enter__(self) -> "UnfusedPowerOperator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _default_thread_counts() -> List[int]:
    """Thread counts worth probing on this host: 2 and the core count,
    deduplicated, excluding anything a 1-core host cannot exploit."""
    cores = os.cpu_count() or 1
    return sorted({c for c in (2, cores) if c > 1})


#: Work-stealing claim-chunk values the joint executor × block-size ×
#: claim-chunk search probes for process plans.  ``None`` is the
#: auto-sized default (~4 steals per worker per phase); 1 maximises
#: rebalancing, 8 minimises cursor traffic.
_CLAIM_CHUNKS = (None, 1, 8)


def power_candidates(
    thread_counts: Optional[Sequence[int]] = None,
    include_unfused: bool = True,
) -> List[ExecutionPlan]:
    """Enumerate the power-kernel plan space, default plan first.

    ``thread_counts=None`` probes :func:`_default_thread_counts`; pass
    an explicit sequence to widen or suppress threaded candidates.
    Process plans are enumerated jointly over executor × block size ×
    claim chunk (:data:`_CLAIM_CHUNKS`), so the batched dispatch
    granularity is tuned together with the schedule it drains.
    """
    if thread_counts is None:
        thread_counts = _default_thread_counts()
    default = default_power_plan()
    plans = [default]
    # levels-blocked block sizes bracket the residency regime: 256 rows
    # keeps the (2k-1)-block wavefront window inside L2-sized caches,
    # 4096 inside the shared LLC.  The scipy backend is omitted for
    # levels-blocked: its blocked sweep kernel is backend-independent.
    strategies = [("abmc", 1), ("abmc", 256), ("levels", 1),
                  ("levels-blocked", 256), ("levels-blocked", 4096)]
    for strategy, block_size in strategies:
        backends = ("numpy",) if strategy == "levels-blocked" \
            else ("numpy", "scipy")
        for backend in backends:
            fused = ExecutionPlan("power", {
                "variant": "fused",
                "strategy": strategy,
                "block_size": block_size,
                "backend": backend,
                "executor": "serial",
            })
            if fused != default:
                plans.append(fused)
            for parallel_exec in ("threads", "processes"):
                chunks = _CLAIM_CHUNKS if parallel_exec == "processes" \
                    else (None,)
                for n_threads in thread_counts:
                    for chunk in chunks:
                        params = {
                            "variant": "fused",
                            "strategy": strategy,
                            "block_size": block_size,
                            "backend": backend,
                            "executor": parallel_exec,
                            "n_threads": int(n_threads),
                        }
                        if chunk is not None:
                            params["claim_chunk"] = int(chunk)
                        plans.append(ExecutionPlan("power", params))
    if include_unfused:
        plans.append(ExecutionPlan("power", {
            "variant": "unfused",
            "strategy": "none",
            "block_size": 1,
            "backend": "numpy",
            "executor": "serial",
        }))
    return plans


def spmv_candidates() -> List[ExecutionPlan]:
    """Enumerate the SpMV plan space, default kernel first."""
    return [
        default_spmv_plan(),
        ExecutionPlan("spmv", {"kernel": "scipy"}),
        ExecutionPlan("spmv", {"kernel": "blocked", "block_rows": 4096}),
        ExecutionPlan("spmv", {"kernel": "sell", "c": 8, "sigma": 64}),
        ExecutionPlan("spmv", {"kernel": "bsr", "r": 2}),
    ]


def order_power_candidates(
    plans: Sequence[ExecutionPlan],
    a: CSRMatrix,
    k: int,
) -> List[ExecutionPlan]:
    """Stable-sort power candidates by the analytic cost hint
    (:func:`repro.core.plan.execution_cost_hint`), keeping the default
    plan at position 0.

    The hint only reorders the empirical search — it never accepts or
    rejects a plan — so a truncated search (``max_candidates``) spends
    its budget on the analytically promising region first.
    """
    if not plans:
        return []
    head, tail = plans[0], list(plans[1:])

    def hint(plan: ExecutionPlan) -> float:
        params = plan.params
        if params.get("variant") == "unfused":
            method = "standard"
        elif params.get("strategy") == "levels-blocked":
            method = "levels-blocked"
        else:
            method = "fbmpk"
        n_threads = int(params.get("n_threads") or 1)
        # Group count before preprocessing is unknown; charge a nominal
        # per-sweep barrier population for threaded plans.  For
        # levels-blocked the group count is the block count, which the
        # block-size knob pins well enough for ordering purposes.
        n_groups = 8 if n_threads > 1 else 1
        if method == "levels-blocked":
            block = max(int(params.get("block_size", 256)), 1)
            n_groups = max(-(-a.n_rows // block), 1)
        return execution_cost_hint(
            k, a.n_rows, a.nnz, method=method, n_groups=n_groups,
            n_threads=n_threads,
            executor=params.get("executor", "serial"))

    tail.sort(key=hint)
    return [head] + tail


def instantiate_power(
    plan: ExecutionPlan,
    a: CSRMatrix,
    operator_path=None,
):
    """Build the operator a power plan describes.

    With ``operator_path`` pointing at an ``FBMPKOperator.save`` artefact
    (the cache's preprocessed-operator file), fused plans load it and
    skip the split/colour/group preprocessing entirely; any load failure
    falls back to rebuilding from the matrix, so a stale or corrupt
    artefact degrades to the slow path instead of an error.
    """
    if plan.kind != "power":
        raise PlanFormatError(f"not a power plan: {plan.kind!r}")
    params = plan.params
    variant = params.get("variant", "fused")
    if variant == "unfused":
        return UnfusedPowerOperator(split_ldu(a))
    if variant != "fused":
        raise PlanFormatError(f"unknown power variant {variant!r}")
    backend = params.get("backend", "numpy")
    executor = params.get("executor", "serial")
    n_threads = params.get("n_threads")
    assign_policy = params.get("assign_policy", "lpt")
    claim_chunk = params.get("claim_chunk")
    pin_workers = params.get("pin_workers")
    if claim_chunk is not None:
        claim_chunk = int(claim_chunk)
    # Saved-operator artefacts only exist for FBMPKOperator winners;
    # a levels-blocked plan always rebuilds (its preprocessing is a
    # single cheap level sweep, not the ABMC colouring the artefact
    # amortises).
    if operator_path is not None \
            and params.get("strategy") != "levels-blocked":
        try:
            return FBMPKOperator.load(
                operator_path, backend=backend, executor=executor,
                n_threads=n_threads, assign_policy=assign_policy,
                claim_chunk=claim_chunk, pin_workers=pin_workers)
        except Exception:
            pass  # artefact unusable: rebuild below
    return build_fbmpk_operator(
        a,
        strategy=params.get("strategy", "abmc"),
        block_size=int(params.get("block_size", 1)),
        backend=backend,
        executor=executor,
        n_threads=n_threads,
        assign_policy=assign_policy,
        claim_chunk=claim_chunk,
        pin_workers=pin_workers,
    )


def instantiate_spmv(
    plan: ExecutionPlan,
    a: CSRMatrix,
) -> Callable[[np.ndarray], np.ndarray]:
    """Build the ``x -> A @ x`` callable an SpMV plan describes.

    Format-conversion kernels (``sell``, ``bsr``) pay their conversion
    here, once — the returned callable only executes, which is what the
    autotuner times and what a cache hit reuses.
    """
    if plan.kind != "spmv":
        raise PlanFormatError(f"not an spmv plan: {plan.kind!r}")
    params = plan.params
    kernel = params.get("kernel", "vectorised")
    if kernel == "sell":
        sell = SellCSigmaMatrix(a, c=int(params.get("c", 8)),
                                sigma=int(params.get("sigma", 64)))
        return sell.matvec
    if kernel == "bsr":
        bsr = BSRMatrix.from_csr(a, int(params.get("r", 2)))
        return bsr.matvec
    if kernel == "blocked":
        block_rows = int(params.get("block_rows", 4096))
        return lambda x: spmv_blocked(a, x, block_rows=block_rows)
    if kernel in KERNELS:
        fn = KERNELS[kernel]
        return lambda x: fn(a, x)
    raise PlanFormatError(f"unknown spmv kernel {kernel!r}")
