"""OSKI-style kernel autotuning with a persistent execution-plan cache.

The paper's amortisation argument (Fig. 11) is that FBMPK's
preprocessing pays for itself over a *sequence* of SpMVs.  This package
pushes that one step further, in the OSKI tradition: pick the fastest
execution plan *empirically* on the actual matrix, require the winner to
be bit-identical to the default path, and persist the decision — keyed
by matrix structure and platform — so later processes skip both the
search and the recomputable preprocessing.

Layers (each its own module):

* :mod:`~repro.tune.plan` — :class:`ExecutionPlan`, the serialisable
  description of one execution choice (schema-versioned).
* :mod:`~repro.tune.fingerprint` — :class:`StructureFingerprint`, the
  cache key: shape, nnz, a hash of the index arrays, dtype, platform.
* :mod:`~repro.tune.registry` — candidate enumeration and the only
  plan → runnable-object translation.
* :mod:`~repro.tune.cache` — :class:`PlanCache`, the corrupt-tolerant
  persistent store under ``~/.cache/repro/plans`` (or
  ``$REPRO_PLAN_CACHE_DIR``).
* :mod:`~repro.tune.autotuner` — the measurement loop:
  :func:`autotune_power`, :func:`autotune_spmv`, :func:`tuned_matvec`.

Entry points elsewhere: ``repro tune`` on the CLI, ``--tuned`` on
``repro power``/``repro solve``, and ``tuned=True`` on the solvers.
"""

from .autotuner import (
    SEARCH_BREAKER,
    Trial,
    TuningResult,
    autotune_power,
    autotune_spmv,
    trimmed_mean,
    tuned_matvec,
)
from .cache import (
    CACHE_DIR_ENV_VAR,
    CACHE_SCHEMA_VERSION,
    CacheEntry,
    PlanCache,
    default_cache_dir,
)
from .fingerprint import StructureFingerprint, fingerprint_matrix
from .plan import (
    PLAN_KINDS,
    PLAN_SCHEMA_VERSION,
    ExecutionPlan,
    PlanFormatError,
    default_power_plan,
    default_spmv_plan,
)
from .registry import (
    UnfusedPowerOperator,
    instantiate_power,
    instantiate_spmv,
    order_power_candidates,
    plan_is_bit_identical_by_design,
    power_candidates,
    spmv_candidates,
)

__all__ = [
    "SEARCH_BREAKER",
    "Trial",
    "TuningResult",
    "autotune_power",
    "autotune_spmv",
    "trimmed_mean",
    "tuned_matvec",
    "CACHE_DIR_ENV_VAR",
    "CACHE_SCHEMA_VERSION",
    "CacheEntry",
    "PlanCache",
    "default_cache_dir",
    "StructureFingerprint",
    "fingerprint_matrix",
    "PLAN_KINDS",
    "PLAN_SCHEMA_VERSION",
    "ExecutionPlan",
    "PlanFormatError",
    "default_power_plan",
    "default_spmv_plan",
    "UnfusedPowerOperator",
    "instantiate_power",
    "instantiate_spmv",
    "order_power_candidates",
    "plan_is_bit_identical_by_design",
    "power_candidates",
    "spmv_candidates",
]
