"""Command-line reproduction runner: ``python -m repro.bench``.

Regenerates the model-based tables and figures of the paper (the ones
that need no pytest harness) and prints them with the paper's reference
numbers attached.  For the measured benches and pytest-benchmark timings
run ``pytest benchmarks/ --benchmark-only`` instead.

Usage::

    python -m repro.bench                 # everything
    python -m repro.bench fig7 fig9       # selected experiments
    python -m repro.bench --list
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ..machine import FT2000P, PLATFORMS, XEON_6230R, predict_mpk_time, predict_speedup
from ..matrices import TABLE2
from ..memsim import traffic_ratio
from .harness import format_table, geomean
from . import paper_data


def run_table1() -> str:
    rows = [[p.name, p.cores, p.sockets, p.numa_nodes, f"{p.freq_ghz}GHz",
             f"{p.l1_bytes // 1024}KB", f"{p.l2_bytes // 1024}KB",
             "None" if not p.l3_bytes else f"{p.l3_bytes / 2**20:.2f}MB"]
            for p in PLATFORMS]
    return format_table(
        ["Platform", "#Cores", "Sockets", "#NUMAs", "Freq", "L1", "L2",
         "L3"], rows, title="Table I: hardware platforms")


def run_table2() -> str:
    rows = [[m.id, m.name, f"{m.rows / 1e6:.2f}M", f"{m.nnz / 1e6:.2f}M",
             f"{m.nnz_per_row:.2f}", "sym" if m.symmetric else "unsym"]
            for m in TABLE2]
    return format_table(["ID", "Input", "Rows", "#nnz", "#nnz/N", "Sym"],
                        rows, title="Table II: input matrices")


def run_fig7() -> str:
    rows = []
    per_platform = {p.name: [] for p in PLATFORMS}
    for m in TABLE2:
        stats = m.traffic_stats()
        vals = [predict_speedup(p, stats, k=5) for p in PLATFORMS]
        for p, v in zip(PLATFORMS, vals):
            per_platform[p.name].append(v)
        rows.append([m.name] + vals)
    rows.append(["average (model)"]
                + [geomean(per_platform[p.name]) for p in PLATFORMS])
    rows.append(["average (paper)"]
                + [paper_data.FIG7_AVERAGE_SPEEDUP[p.name]
                   for p in PLATFORMS])
    return format_table(["matrix"] + [p.name for p in PLATFORMS], rows,
                        title="Fig 7: FBMPK speedup over baseline (k=5)")


def run_fig8() -> str:
    rows = []
    for k in range(3, 10):
        rows.append([k] + [
            geomean([predict_speedup(p, m.traffic_stats(), k=k)
                     for m in TABLE2]) for p in PLATFORMS])
    for k, ref in paper_data.FIG8_AVERAGE_SPEEDUP_BY_K.items():
        rows.append([f"paper k={k}"] + [ref[p.name] for p in PLATFORMS])
    return format_table(["k"] + [p.name for p in PLATFORMS], rows,
                        title="Fig 8: average speedup vs power k")


def run_fig9() -> str:
    cache = XEON_6230R.effective_cache_bytes(XEON_6230R.cores)
    residency = XEON_6230R.total_last_level_bytes()
    ks = (3, 6, 9)
    rows = []
    for m in TABLE2:
        stats = m.traffic_stats()
        rows.append([m.name] + [
            f"{100 * traffic_ratio(stats, k, cache, residency_cache_bytes=residency):.0f}%"
            for k in ks])
    means = [float(np.mean([
        traffic_ratio(m.traffic_stats(), k, cache,
                      residency_cache_bytes=residency) for m in TABLE2]))
        for k in ks]
    rows.append(["mean (model)"] + [f"{100 * v:.0f}%" for v in means])
    rows.append(["mean (paper)"] + [
        f"{100 * paper_data.FIG9_MEAN_MEASURED_RATIO[k]:.0f}%" for k in ks])
    return format_table(["matrix"] + [f"k={k}" for k in ks], rows,
                        title="Fig 9: FBMPK/baseline DRAM volume (Xeon)")


def run_fig10() -> str:
    rows = []
    for m in TABLE2:
        stats = m.traffic_stats()
        rows.append([
            m.name,
            predict_speedup(FT2000P, stats, k=5, method="fb"),
            predict_speedup(FT2000P, stats, k=5, method="fb+btb"),
            predict_speedup(XEON_6230R, stats, k=5, method="fb"),
            predict_speedup(XEON_6230R, stats, k=5, method="fb+btb"),
        ])
    return format_table(
        ["matrix", "FT:FB", "FT:FB+BtB", "Xeon:FB", "Xeon:FB+BtB"], rows,
        title="Fig 10: FB vs FB+BtB (k=5); paper FT averages 1.41 -> 1.50")


def run_fig12() -> str:
    threads = [4, 8, 16, 24, 32, 48, 64]
    rows = []
    for m in TABLE2:
        stats = m.traffic_stats()
        base1 = predict_mpk_time(FT2000P, stats, 5, threads=1,
                                 method="standard").total
        rows.append([m.name] + [
            base1 / predict_mpk_time(FT2000P, stats, 5, threads=t).total
            for t in threads])
    rows.append(["average (model)"] + [
        geomean([r[i + 1] for r in rows]) for i in range(len(threads))])
    rows.append(["average (paper)", paper_data.FIG12_AVERAGE_SPEEDUP[4]]
                + ["-"] * 5 + [paper_data.FIG12_AVERAGE_SPEEDUP[64]])
    return format_table(["matrix"] + [f"T={t}" for t in threads], rows,
                        title="Fig 12: scalability on FT 2000+ (k=5)")


EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig12": run_fig12,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's model-based tables/figures.")
    parser.add_argument("experiments", nargs="*",
                        help="subset to run (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment ids")
    args = parser.parse_args(argv)
    if args.list:
        print("\n".join(EXPERIMENTS))
        return 0
    selected = args.experiments or list(EXPERIMENTS)
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; use --list", file=sys.stderr)
        return 2
    for name in selected:
        print(EXPERIMENTS[name]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
