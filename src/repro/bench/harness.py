"""Shared benchmark infrastructure.

Provides the scale knob (``REPRO_BENCH_SCALE`` environment variable), a
process-wide stand-in matrix cache (generation and ABMC preprocessing are
one-off costs, as in the paper), table formatting, and a tee that writes
every reproduced table to ``benchmarks/out/`` for EXPERIMENTS.md.

Every table written through :func:`write_report` is accompanied by a
schema-versioned RunReport (``<name>.report.json``, see
:mod:`repro.obs.report`): the active telemetry session's metric snapshot
and span summary when one is live, an empty-but-valid report otherwise —
so benchmark trajectories are machine-diffable with
``python -m repro report A B``.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .. import obs
from ..core.fbmpk import FBMPKOperator, build_fbmpk_operator
from ..matrices.registry import TABLE2, MatrixInfo, get_matrix_info
from ..sparse.csr import CSRMatrix

__all__ = [
    "bench_rows",
    "standin",
    "fbmpk_operator",
    "geomean",
    "format_table",
    "write_report",
    "emit_run_report",
    "Timer",
]


def bench_rows(default: int = 20_000) -> int:
    """Stand-in matrix size for kernel-running benches.

    Override with ``REPRO_BENCH_SCALE`` (rows); smaller values make the
    suite faster, larger values make wall-clock numbers more
    bandwidth-dominated.
    """
    return int(os.environ.get("REPRO_BENCH_SCALE", default))


@lru_cache(maxsize=32)
def standin(name: str, n_rows: int | None = None) -> CSRMatrix:
    """Cached evaluation matrix: the *real* SuiteSparse file when
    ``REPRO_SUITESPARSE_DIR`` is configured (see
    :mod:`repro.matrices.loader`), the scale-reduced synthetic stand-in
    otherwise."""
    from ..matrices.loader import load_matrix

    matrix, _source = load_matrix(name, n_rows=n_rows or bench_rows())
    return matrix


@lru_cache(maxsize=32)
def fbmpk_operator(name: str, n_rows: int | None = None,
                   block_size: int = 1) -> FBMPKOperator:
    """Cached preprocessed FBMPK operator for a stand-in matrix."""
    return build_fbmpk_operator(standin(name, n_rows),
                                strategy="abmc", block_size=block_size)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper reports geometric-mean runtimes)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0 or (arr <= 0).any():
        raise ValueError("geomean needs positive values")
    return float(np.exp(np.log(arr).mean()))


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Plain-text table with right-aligned numeric columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.rjust(w) if _is_num(c) else c.ljust(w)
                               for c, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _is_num(s: str) -> bool:
    try:
        float(s.rstrip("%x"))
        return True
    except ValueError:
        return False


def _out_dir() -> Path:
    """``benchmarks/out/`` of the repository this module lives in."""
    here = Path(__file__).resolve()
    # Walk up to the repository root (the directory holding benchmarks/).
    for parent in here.parents:
        if (parent / "benchmarks").is_dir():
            return parent / "benchmarks" / "out"
    # pragma: no cover - installed without the benchmarks tree
    return Path.cwd() / "benchmarks_out"


def write_report(name: str, content: str) -> Path:
    """Print a reproduced table, persist it under ``benchmarks/out/``,
    and emit the run's RunReport next to it."""
    out_dir = _out_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.txt"
    path.write_text(content + "\n")
    print(f"\n{content}\n[written to {path}]")
    emit_run_report(name)
    return path


def emit_run_report(name: str, config: Optional[Dict] = None) -> Path:
    """Write ``benchmarks/out/<name>.report.json``.

    The report freezes the active :class:`repro.obs.Telemetry` session's
    metrics and span summary (an empty-but-schema-valid report when no
    session is live), stamped with the bench scale so two trajectories
    are comparable only when their scales match.
    """
    out_dir = _out_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.report.json"
    tel = obs.current()
    full_config = {"bench": name, "scale_rows": bench_rows()}
    full_config.update(config or {})
    report = obs.build_run_report(
        tel.metrics if tel else None,
        tel.recorder if tel else None,
        command=f"bench:{name}", config=full_config)
    obs.write_report_file(report, path)
    return path


class Timer:
    """Minimal wall-clock timer for preprocessing-style measurements
    (pytest-benchmark handles the hot loops)."""

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


#: All Table II names, re-exported for bench parametrisation.
MATRIX_NAMES: List[str] = [m.name for m in TABLE2]

#: Mapping name -> info for quick access in benches.
MATRIX_INFO: Dict[str, MatrixInfo] = {m.name: m for m in TABLE2}
