"""The paper's reported results, transcribed for side-by-side comparison.

Every benchmark prints its reproduced values next to these references so
EXPERIMENTS.md can record paper-vs-measured without manual lookup.  Only
numbers stated in the text or directly readable from tables are included;
per-matrix figure values the paper shows only graphically are omitted
rather than guessed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = [
    "FIG7_AVERAGE_SPEEDUP",
    "FIG7_MAX_SPEEDUP",
    "FIG8_AVERAGE_SPEEDUP_BY_K",
    "FIG9_THEORETICAL_RATIO",
    "FIG9_MEAN_MEASURED_RATIO",
    "FIG9_EXTREMES_K9",
    "FIG10_FT_AVERAGES",
    "TABLE3_ABMC_RATIO",
    "FIG11_MEAN_SPMV_EQUIVALENTS",
    "FIG12_AVERAGE_SPEEDUP",
    "MKL_KERNEL_GAP",
]

#: Fig 7 (k=5): average FBMPK speedup over the baseline per platform.
FIG7_AVERAGE_SPEEDUP: Dict[str, float] = {
    "FT 2000+": 1.50,
    "Thunder X2": 1.54,
    "KP 920": 1.47,
    "Intel Xeon": 1.73,
}

#: Maximum speedup reported anywhere in the evaluation.
FIG7_MAX_SPEEDUP: float = 2.32

#: Fig 8 / Section V-B: average speedup at the ends of the k sweep.
FIG8_AVERAGE_SPEEDUP_BY_K: Dict[int, Dict[str, float]] = {
    3: {"FT 2000+": 1.29, "Thunder X2": 1.34, "KP 920": 1.31,
        "Intel Xeon": 1.42},
    9: {"FT 2000+": 1.64, "Thunder X2": 1.70, "KP 920": 1.65,
        "Intel Xeon": 1.85},
}

#: Section V-C: theoretical FBMPK/baseline traffic ratio (k+1)/2k.
FIG9_THEORETICAL_RATIO: Dict[int, float] = {3: 0.67, 6: 0.58, 9: 0.56}

#: Section V-C: measured mean DRAM volume ratios on Xeon.
FIG9_MEAN_MEASURED_RATIO: Dict[int, float] = {3: 0.74, 6: 0.65, 9: 0.62}

#: Section V-C extremes at k=9: (matrix, ratio).
FIG9_EXTREMES_K9: List[Tuple[str, float]] = [
    ("G3_circuit", 0.77),   # worst: vector accesses dominate
    ("ML_Geer", 0.58),      # best: matrix traffic dominates
]

#: Fig 10 / Section V-D on FT 2000+ (k=5): FB alone vs FB+BtB averages.
FIG10_FT_AVERAGES: Dict[str, float] = {"fb": 1.41, "fb+btb": 1.50}

#: Table III: single-SpMV time ratio original/ABMC-reordered on FT 2000+
#: (>1 means the reordered SpMV is faster).
TABLE3_ABMC_RATIO: Dict[str, float] = {
    "af_shell10": 1.01, "audikw_1": 1.80, "cage14": 1.00, "cant": 0.97,
    "Flan_1565": 1.00, "G3_circuit": 1.08, "Hook_1498": 1.01,
    "inline_1": 1.44, "ldoor": 1.06, "ML_Geer": 0.98, "nlpkkt120": 0.98,
    "pwtk": 1.02, "Serena": 1.04, "shipsec1": 1.04,
}

#: Fig 11: mean ABMC preprocessing cost in single-thread SpMV units.
FIG11_MEAN_SPMV_EQUIVALENTS: float = 36.0

#: Fig 12 / Section V-G on FT 2000+ (k=5): average speedup over the
#: single-threaded baseline at 4 and 64 threads.
FIG12_AVERAGE_SPEEDUP: Dict[int, float] = {4: 2.08, 64: 18.05}

#: Section IV-C: the paper's optimised SpMV beats MKL by 13% on Xeon.
MKL_KERNEL_GAP: float = 1.13
