"""Dependency-free ASCII chart rendering for terminal reports.

The benches and the CLI render their sweeps as plain-text charts so the
figure *shapes* (the reproduction target) are visible without matplotlib:

* :func:`bar_chart` — horizontal bars with labels and values;
* :func:`line_chart` — multi-series scatter/line grid for the k-sweeps
  and scalability curves.
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["bar_chart", "line_chart"]


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 50, title: str = "",
              reference: float | None = None) -> str:
    """Horizontal bar chart.

    ``reference`` draws a marker column (e.g. speedup 1.0) when it falls
    inside the plotted range.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return title
    vmax = max(max(values), reference or float("-inf"))
    vmax = vmax if vmax > 0 else 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    ref_col = None
    if reference is not None and 0 < reference <= vmax:
        ref_col = max(int(round(reference / vmax * width)) - 1, 0)
    for label, v in zip(labels, values):
        filled = max(int(round(max(v, 0.0) / vmax * width)), 0)
        bar = list("#" * filled + " " * (width - filled))
        if ref_col is not None and ref_col < len(bar):
            bar[ref_col] = "|" if bar[ref_col] == " " else "+"
        lines.append(f"{str(label).ljust(label_w)} {''.join(bar)} "
                     f"{v:.2f}")
    return "\n".join(lines)


def line_chart(x: Sequence[float], series: Dict[str, Sequence[float]],
               height: int = 12, width: int = 60, title: str = "") -> str:
    """Multi-series character plot on a ``width x height`` grid.

    Each series gets a distinct marker; axes are annotated with the data
    ranges.  Intended for monotone sweeps (speedup vs k, vs threads),
    where shape legibility matters more than precision.
    """
    if not series:
        return title
    markers = "*o+x@%&$"
    xs = list(x)
    all_y = [v for ys in series.values() for v in ys]
    if not all_y or not xs:
        return title
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
        mark = markers[si % len(markers)]
        for xv, yv in zip(xs, ys):
            col = int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((yv - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = mark
    lines = [title] if title else []
    lines.append(f"{y_hi:8.2f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{y_lo:8.2f} +" + "-" * width)
    lines.append(" " * 10 + f"{x_lo:<.3g}" + " " * max(width - 12, 1)
                 + f"{x_hi:>.3g}")
    legend = "   ".join(f"{markers[i % len(markers)]} {name}"
                        for i, name in enumerate(series))
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
