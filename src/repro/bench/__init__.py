"""Benchmark harness: shared fixtures, formatting and paper references."""

from .harness import (
    MATRIX_INFO,
    MATRIX_NAMES,
    Timer,
    bench_rows,
    fbmpk_operator,
    format_table,
    geomean,
    standin,
    write_report,
)
from . import paper_data
from .ascii_plot import bar_chart, line_chart

__all__ = [
    "MATRIX_INFO",
    "MATRIX_NAMES",
    "Timer",
    "bench_rows",
    "fbmpk_operator",
    "format_table",
    "geomean",
    "standin",
    "write_report",
    "paper_data",
    "bar_chart",
    "line_chart",
]
