"""Hardware platform descriptions.

A :class:`Platform` carries the Table I attributes (cores, sockets, NUMA
nodes, frequency, cache sizes) plus the memory/synchronisation parameters
the performance model needs.  The latter are not in the paper; the
registry (:mod:`repro.machine.registry`) fills them from public
specifications and STREAM-class measurements of the same parts, clearly
marked as estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Platform", "host_platform_tag"]

KB = 1024
MB = 1024 * 1024
GB = 1000 ** 3  # bandwidth vendors use decimal GB


def host_platform_tag() -> str:
    """Stable identifier of the machine the process is running on.

    Used as the platform component of :mod:`repro.tune` plan-cache keys:
    an empirically tuned execution plan is only trustworthy on hardware
    and a software stack comparable to where it was measured, so the tag
    folds in the OS, the ISA, the Python minor version, the numpy minor
    version (kernel implementations — and therefore the bit patterns a
    plan was validated against — can change between releases) and the
    core count.  Example: ``linux-x86_64-py3.11-np1.26-c8``.
    """
    import os
    import platform as _platform
    import sys

    import numpy as np

    np_minor = ".".join(np.__version__.split(".")[:2])
    return (f"{sys.platform}-{_platform.machine() or 'unknown'}"
            f"-py{sys.version_info[0]}.{sys.version_info[1]}"
            f"-np{np_minor}-c{os.cpu_count() or 1}")


@dataclass(frozen=True)
class Platform:
    """One evaluation machine.

    Attributes
    ----------
    name:
        Display name (Table I column header).
    cores:
        Total hardware cores used by the experiments.
    sockets, numa_nodes:
        Topology rows of Table I.
    freq_ghz:
        Nominal core frequency.
    l1_bytes, l2_bytes, l3_bytes:
        Per-core L1/L2 and total shared L3 (0 = none, as on FT 2000+).
    l2_shared_cores:
        Number of cores sharing one L2 slice (FT 2000+ clusters share a
        2 MB L2 among 4 cores; 1 elsewhere).
    stream_bw_gbs:
        Sustained aggregate memory bandwidth (STREAM-like), all cores.
    core_bw_gbs:
        Bandwidth a single core can draw.
    barrier_base_us, barrier_log_us:
        Barrier cost model ``base + log2(T) * log_coef`` microseconds.
    thread_spawn_us:
        One-off cost of activating a worker thread.
    numa_penalty:
        Multiplicative bandwidth de-rating when data is interleaved
        across NUMA nodes (1.0 = no penalty).
    flops_per_cycle:
        Sustainable double-precision FLOPs/cycle/core *in sparse code*
        (far below the SIMD peak; gathers dominate).
    baseline_slowdown:
        Multiplier on the *baseline* pipeline's predicted time.  1.0 on
        the ARM platforms, where the paper runs the same optimised SpMV
        kernel in both pipelines; 1.13 on Xeon, where the baseline is
        MKL and the paper reports its own kernel beating MKL by 13%
        (Section IV-C).
    """

    name: str
    cores: int
    sockets: int
    numa_nodes: int
    freq_ghz: float
    l1_bytes: int
    l2_bytes: int
    l3_bytes: int
    l2_shared_cores: int = 1
    stream_bw_gbs: float = 100.0
    core_bw_gbs: float = 12.0
    barrier_base_us: float = 1.0
    barrier_log_us: float = 0.8
    thread_spawn_us: float = 5.0
    numa_penalty: float = 1.0
    flops_per_cycle: float = 2.0
    baseline_slowdown: float = 1.0

    def bandwidth_bytes_per_s(self, threads: int,
                              spawned: int | None = None) -> float:
        """Aggregate sustainable bandwidth for ``threads`` active cores.

        Per-core draw saturates at two ceilings: the machine-wide STREAM
        limit and — on multi-NUMA parts — the links of the *occupied*
        nodes (compact thread placement fills nodes one by one, so a
        4-thread run on FT 2000+ only has one of its eight memory links
        active).  ``spawned`` is the number of threads the run created
        (default: ``threads``): when a phase can only keep a subset busy
        the idle threads still pin their nodes, so link availability
        follows ``spawned`` while core draw follows ``threads``.
        Interleaved allocation (the paper uses ``numactl`` interleaving,
        Section IV-A) pays the remote-access de-rating whenever there is
        more than one node.
        """
        threads = max(1, min(threads, self.cores))
        spawned = threads if spawned is None else \
            max(threads, min(spawned, self.cores))
        bw = min(threads * self.core_bw_gbs, self.stream_bw_gbs)
        if self.numa_nodes > 1:
            cores_per_node = max(self.cores // self.numa_nodes, 1)
            active_nodes = -(-spawned // cores_per_node)
            node_bw = self.stream_bw_gbs / self.numa_nodes
            bw = min(bw, active_nodes * node_bw)
            bw *= self.numa_penalty
        return bw * GB

    def effective_cache_bytes(self, threads: int = 1) -> float:
        """Cache capacity backing one thread's working set: its private
        L2 share plus an equal share of L3."""
        threads = max(1, min(threads, self.cores))
        l2 = self.l2_bytes / max(self.l2_shared_cores, 1)
        l3 = self.l3_bytes / threads
        return l2 + l3

    def total_last_level_bytes(self) -> float:
        """Total last-level capacity (L3, or aggregate L2 slices when
        there is no L3)."""
        if self.l3_bytes:
            return float(self.l3_bytes)
        n_slices = self.cores // max(self.l2_shared_cores, 1)
        return float(self.l2_bytes * n_slices)

    def barrier_seconds(self, threads: int) -> float:
        """Cost of one full barrier across ``threads`` threads."""
        import math

        threads = max(1, min(threads, self.cores))
        return (self.barrier_base_us
                + self.barrier_log_us * math.log2(threads + 1)) * 1e-6

    def flops_per_s(self, threads: int) -> float:
        """Aggregate sustainable sparse FLOP rate."""
        threads = max(1, min(threads, self.cores))
        return threads * self.freq_ghz * 1e9 * self.flops_per_cycle
