"""Table I platform registry.

Core counts, sockets, NUMA nodes, frequencies and cache sizes are taken
verbatim from the paper's Table I.  Memory-bandwidth and synchronisation
parameters are **estimates from public specifications** of the same parts
(the paper does not publish them); they are chosen once, documented here,
and never tuned per-experiment:

* FT 2000+  — 8x DDR4-2400 channels, known-weak sustained bandwidth on
  this part; 2 MB L2 shared per 4-core cluster and *no L3*, which is why
  the paper calls it the hardest platform to optimise for and why the
  BtB layout helps most there (Fig 10).
* ThunderX2 — 8x DDR4-2666 per socket; the paper's configuration exposes
  one NUMA domain.
* Kunpeng 920 — 8x DDR4-2933 per socket.
* Xeon Gold 6230R — 6x DDR4-2933 per socket; 26 hardware threads used by
  the paper's experiments (Section V-A).
"""

from __future__ import annotations

from typing import Dict, List

from .platform import KB, MB, Platform

__all__ = ["FT2000P", "THUNDERX2", "KP920", "XEON_6230R", "A64FX",
           "PLATFORMS", "get_platform", "list_platform_names"]

FT2000P = Platform(
    name="FT 2000+",
    cores=64,
    sockets=1,
    numa_nodes=8,
    freq_ghz=2.2,
    l1_bytes=32 * KB,
    l2_bytes=2 * MB,
    l2_shared_cores=4,
    l3_bytes=0,
    stream_bw_gbs=85.0,
    core_bw_gbs=8.0,
    barrier_base_us=2.0,
    barrier_log_us=4.5,
    thread_spawn_us=8.0,
    numa_penalty=0.70,
    flops_per_cycle=2.0,
)

THUNDERX2 = Platform(
    name="Thunder X2",
    cores=32,
    sockets=2,
    numa_nodes=1,
    freq_ghz=2.5,
    l1_bytes=32 * KB,
    l2_bytes=256 * KB,
    l2_shared_cores=1,
    l3_bytes=32 * MB,
    stream_bw_gbs=220.0,
    core_bw_gbs=12.0,
    barrier_base_us=1.0,
    barrier_log_us=2.0,
    thread_spawn_us=5.0,
    numa_penalty=1.0,
    flops_per_cycle=2.5,
)

KP920 = Platform(
    name="KP 920",
    cores=64,
    sockets=2,
    numa_nodes=1,
    freq_ghz=2.6,
    l1_bytes=64 * KB,
    l2_bytes=512 * KB,
    l2_shared_cores=1,
    l3_bytes=64 * MB,
    stream_bw_gbs=280.0,
    core_bw_gbs=10.0,
    barrier_base_us=1.0,
    barrier_log_us=2.5,
    thread_spawn_us=5.0,
    numa_penalty=1.0,
    flops_per_cycle=2.5,
)

XEON_6230R = Platform(
    name="Intel Xeon",
    cores=26,
    sockets=2,
    numa_nodes=2,
    freq_ghz=2.1,
    l1_bytes=64 * KB,
    l2_bytes=1 * MB,
    l2_shared_cores=1,
    l3_bytes=int(35.75 * MB),
    stream_bw_gbs=140.0,
    core_bw_gbs=12.0,
    barrier_base_us=0.8,
    barrier_log_us=1.5,
    thread_spawn_us=4.0,
    numa_penalty=0.85,
    flops_per_cycle=4.0,
    baseline_slowdown=1.13,
)

#: What-if platform beyond Table I: Fugaku's A64FX (the paper's related
#: work [14] reports SSpMV on it).  High-bandwidth memory (HBM2) changes
#: the regime: with ~1 TB/s feeding 48 cores, sparse kernels lean
#: compute-bound and traffic optimisations buy less — the contrast the
#: what-if bench quantifies.  Public-spec estimates like the others.
A64FX = Platform(
    name="A64FX (what-if)",
    cores=48,
    sockets=1,
    numa_nodes=4,          # four CMGs
    freq_ghz=2.0,
    l1_bytes=64 * KB,
    l2_bytes=8 * MB,       # per 12-core CMG
    l2_shared_cores=12,
    l3_bytes=0,
    stream_bw_gbs=830.0,   # HBM2 sustained
    core_bw_gbs=40.0,
    barrier_base_us=1.0,
    barrier_log_us=1.5,
    thread_spawn_us=5.0,
    numa_penalty=0.85,
    flops_per_cycle=4.0,   # 512-bit SVE helps even gather-bound code
)

#: The four Table I platforms in paper order.
PLATFORMS: List[Platform] = [FT2000P, THUNDERX2, KP920, XEON_6230R]

_BY_NAME: Dict[str, Platform] = {p.name: p for p in PLATFORMS + [A64FX]}


def get_platform(name: str) -> Platform:
    """Look up a platform by its Table I name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def list_platform_names() -> List[str]:
    """Platform names in paper order."""
    return [p.name for p in PLATFORMS]
