"""Roofline-style execution-time model for MPK pipelines.

Converts the DRAM traffic of :mod:`repro.memsim.traffic` into predicted
runtimes on the Table I platforms, adding the compute roof and the
synchronisation costs of the parallelisation scheme.  This is the
substitute for running the paper's C+OpenMP kernels on real FT 2000+ /
ThunderX2 / KP 920 / Xeon hardware (see DESIGN.md): every Fig 7/8/10/12
series is regenerated from this model over the registry's paper-scale
matrix statistics.

Model::

    t = max(bytes / BW(T), flops / F(T)) + sync(T)

* ``BW(T)``: per-core bandwidth saturating at the platform's STREAM
  limit, NUMA-derated (Section IV-A's numactl interleaving).
* ``F(T)``: sustainable sparse FLOP rate.
* ``sync(T)``: barrier costs — one join per SpMV for the baseline, one
  per *colour* per stage for ABMC-parallelised FBMPK (Section III-D),
  making FBMPK's sync term larger; this is what sinks the small ``cant``
  matrix at high thread counts (Section V-A / Fig 12b).
* FBMPK's usable parallelism is capped by the blocks available per
  colour (77 blocks for ``cant`` in the paper's example).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Optional

from ..memsim.traffic import (
    MatrixTrafficStats,
    TrafficParams,
    fbmpk_traffic,
    mpk_standard_traffic,
)
from .platform import Platform

__all__ = [
    "ParallelShape",
    "Prediction",
    "estimate_parallel_shape",
    "predict_mpk_time",
    "predict_speedup",
]

Method = Literal["standard", "fb", "fb+btb"]

#: Default ABMC block granularity in rows (the paper quotes defaults of
#: "either 512 or 1024" for the block setting; Section V-A's ``cant``
#: walkthrough is consistent with blocks of ~120-512 rows).
DEFAULT_ROWS_PER_BLOCK = 512
#: Typical colour count ABMC produces on the evaluation matrices
#: (``cant``'s per-colour block count out of its total implies about 7).
DEFAULT_N_COLORS = 7


@dataclass(frozen=True)
class ParallelShape:
    """Parallel structure of an ABMC-reordered matrix.

    ``n_colors`` sequential phases per sweep; ``max_parallel_blocks``
    independent blocks available inside one colour (the parallelism cap).
    """

    n_colors: int
    max_parallel_blocks: int


def estimate_parallel_shape(
    n_rows: int,
    rows_per_block: int = DEFAULT_ROWS_PER_BLOCK,
    n_colors: int = DEFAULT_N_COLORS,
) -> ParallelShape:
    """Estimate the shape when no measured ABMC ordering is available:
    ``n / 512``-row blocks split across ~7 colours.  Only small matrices
    end up parallelism-capped — ``cant`` (62k rows) gets a few dozen
    blocks per colour, matching the paper's account of why it stops
    scaling, while the million-row inputs get hundreds."""
    n_blocks = max(1, -(-n_rows // rows_per_block))
    return ParallelShape(
        n_colors=n_colors,
        max_parallel_blocks=max(1, n_blocks // n_colors),
    )


@dataclass(frozen=True)
class Prediction:
    """Predicted runtime decomposition (seconds)."""

    t_memory: float
    t_compute: float
    t_sync: float

    @property
    def total(self) -> float:
        """max(memory, compute) roof plus synchronisation."""
        return max(self.t_memory, self.t_compute) + self.t_sync


def _flops_mpk(stats: MatrixTrafficStats, k: int) -> float:
    # Two FLOPs (multiply + add) per stored entry per produced power, for
    # both pipelines: FBMPK reorganises, it does not add arithmetic.
    return 2.0 * stats.nnz * k


def predict_mpk_time(
    platform: Platform,
    stats: MatrixTrafficStats,
    k: int,
    threads: Optional[int] = None,
    method: Method = "fb+btb",
    shape: Optional[ParallelShape] = None,
    params: Optional[TrafficParams] = None,
) -> Prediction:
    """Predict the runtime of one ``A^k x`` computation.

    ``method`` selects the pipeline: ``"standard"`` (Algorithm 1 with a
    parallel SpMV per power), ``"fb"`` (forward-backward with split
    vectors) or ``"fb+btb"`` (the full FBMPK of Algorithm 2).
    """
    if k <= 0:
        raise ValueError("power k must be positive")
    threads = platform.cores if threads is None else threads
    threads = max(1, min(threads, platform.cores))
    shape = shape or estimate_parallel_shape(stats.n)
    params = params or TrafficParams()
    # Each active thread sweeps its own rows, so its vector window
    # competes for its private L2 share plus an even share of L3; the
    # *whole* live vector set, shared by all threads, is resident against
    # the full last-level capacity.
    cache = platform.effective_cache_bytes(threads)
    residency = platform.total_last_level_bytes()
    quant = 1.0
    if method == "standard":
        traffic = mpk_standard_traffic(stats, k, cache, params,
                                       residency_cache_bytes=residency)
        eff_threads = threads
        # One join per SpMV invocation; contiguous row splitting keeps
        # the baseline's static schedule balanced.
        n_barriers = k
    elif method in ("fb", "fb+btb"):
        traffic = fbmpk_traffic(stats, k, cache, params,
                                btb=(method == "fb+btb"),
                                residency_cache_bytes=residency)
        # Parallelism is bounded by the blocks available per colour.
        eff_threads = min(threads, shape.max_parallel_blocks)
        # Head join, one barrier per colour per loop stage (forward and
        # backward each sweep the colours once), tail join when k is odd.
        loop_stages = k - (k % 2)
        n_barriers = 1 + loop_stages * shape.n_colors + (1 if k % 2 else 0)
        # Static block-to-thread assignment quantisation: with B blocks
        # per colour on T threads, a phase takes ceil(B/T) block rounds
        # while perfect balance would take B/T — the "thread overhead"
        # that sinks small matrices like cant at high thread counts
        # (Section V-A).
        b = shape.max_parallel_blocks
        quant = math.ceil(b / eff_threads) * eff_threads / b
    else:
        raise ValueError(f"unknown method {method!r}")
    t_memory = quant * traffic.total_bytes \
        / platform.bandwidth_bytes_per_s(eff_threads, spawned=threads)
    t_compute = quant * _flops_mpk(stats, k) / platform.flops_per_s(eff_threads)
    t_sync = (n_barriers * platform.barrier_seconds(threads)
              + platform.thread_spawn_us * 1e-6)
    slowdown = platform.baseline_slowdown if method == "standard" else 1.0
    return Prediction(t_memory=t_memory * slowdown,
                      t_compute=t_compute * slowdown,
                      t_sync=t_sync)


def predict_speedup(
    platform: Platform,
    stats: MatrixTrafficStats,
    k: int,
    threads: Optional[int] = None,
    method: Method = "fb+btb",
    shape: Optional[ParallelShape] = None,
    params: Optional[TrafficParams] = None,
) -> float:
    """FBMPK speedup over the standard MPK — the Fig 7/8 quantity."""
    base = predict_mpk_time(platform, stats, k, threads, "standard",
                            shape, params).total
    ours = predict_mpk_time(platform, stats, k, threads, method,
                            shape, params).total
    return base / ours
