"""Machine models: Table I platforms and the roofline performance model.

This package replaces the paper's physical testbed (see DESIGN.md):
platform descriptions carry the published Table I attributes plus
documented public-spec estimates for bandwidth and synchronisation costs,
and the performance model converts modelled DRAM traffic into predicted
runtimes and speedups.
"""

from .perfmodel import (
    DEFAULT_ROWS_PER_BLOCK,
    DEFAULT_N_COLORS,
    ParallelShape,
    Prediction,
    estimate_parallel_shape,
    predict_mpk_time,
    predict_speedup,
)
from .platform import GB, KB, MB, Platform, host_platform_tag
from .registry import (
    A64FX,
    FT2000P,
    KP920,
    PLATFORMS,
    THUNDERX2,
    XEON_6230R,
    get_platform,
    list_platform_names,
)

__all__ = [
    "DEFAULT_ROWS_PER_BLOCK",
    "DEFAULT_N_COLORS",
    "ParallelShape",
    "Prediction",
    "estimate_parallel_shape",
    "predict_mpk_time",
    "predict_speedup",
    "GB",
    "KB",
    "MB",
    "Platform",
    "host_platform_tag",
    "A64FX",
    "FT2000P",
    "KP920",
    "PLATFORMS",
    "THUNDERX2",
    "XEON_6230R",
    "get_platform",
    "list_platform_names",
]
