"""Transport-agnostic solve service: parse → acquire → batch → respond.

:class:`SolveService` is the whole serving brain with no sockets in it:
:meth:`handle` takes one decoded request object and returns one
response object.  The TCP server (:mod:`repro.serve.server`) is a thin
framing shell around it, and the concurrency tests drive the service
directly on an event loop without any networking.

Request lifecycle for ``power``:

1. validate (:func:`repro.serve.protocol.parse_request`) — including a
   per-request finiteness check on ``x``, so one tenant's NaN input is
   rejected *before* it can poison a shared batch;
2. borrow the resident operator (:class:`OperatorRegistry.acquire` —
   first request per structure builds/tunes it, later ones hit);
3. queue the RHS on the batcher and await the batched result;
4. release the borrow (this is what lets LRU eviction close an
   operator only after its last in-flight request finishes).

Every failure path returns a structured error envelope; nothing in
:meth:`handle` raises except ``CancelledError`` (a disconnected
client's request is simply abandoned — its batch slot is dropped at
flush time).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from .. import obs
from .batcher import Batcher
from .config import ServeConfig
from .protocol import (
    ControlRequest,
    PowerRequest,
    ProtocolError,
    error_response,
    ok_response,
    parse_request,
)
from .registry import OperatorRegistry
from .spec import MatrixSpec

__all__ = ["SolveService"]


class SolveService:
    """Multi-tenant solve service over one registry and one batcher."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = (config or ServeConfig()).validate()
        self.registry = OperatorRegistry(self.config)
        self.batcher = Batcher(self.config)
        #: Set by an authorised ``shutdown`` request; the server waits
        #: on it to begin the drain.
        self.shutdown_requested = asyncio.Event()
        self._closed = False

    # -- core compute path ----------------------------------------------
    async def power(self, spec: MatrixSpec, x: np.ndarray, k: int
                    ) -> Tuple[np.ndarray, Dict[str, Any]]:
        """Compute ``A^k x`` through the resident operator and the
        batching queue; returns ``(y, meta)``.

        This is the embedding/test entry point; :meth:`handle` wraps it
        with protocol envelopes.  Raises :class:`ProtocolError`
        subclasses on rejection or failure.
        """
        entry = await self.registry.acquire(spec)
        try:
            if x.shape[0] != entry.n:
                raise ProtocolError(
                    "bad_request",
                    f"x: expected {entry.n} entries for "
                    f"{spec.describe()}, got {x.shape[0]}")
            y, width = await self.batcher.submit(entry, x, k)
            meta = {
                "n": entry.n,
                "k": k,
                "plan_source": entry.source,
                "fingerprint": entry.fingerprint_key,
                "batched": entry.can_batch,
                "batch_width": width,
            }
            return y, meta
        finally:
            self.registry.release(entry)

    # -- protocol dispatch ----------------------------------------------
    async def handle(self, obj: Any) -> Dict[str, Any]:
        """Serve one decoded request object; always returns a response
        object (never raises, except ``CancelledError``)."""
        rid = obj.get("id") if isinstance(obj, Mapping) else None
        try:
            req = parse_request(obj, max_rows=self.config.max_rows,
                                allow_paths=self.config.allow_paths)
        except ProtocolError as exc:
            obs.add_counter("serve.requests.failed")
            return error_response(rid, exc.code, exc.message)
        obs.add_counter("serve.requests")
        obs.add_counter(f"serve.tenant.{req.tenant}.requests")
        if isinstance(req, ControlRequest):
            return await self._handle_control(req)
        return await self._handle_power(req)

    async def _handle_power(self, req: PowerRequest) -> Dict[str, Any]:
        if not np.isfinite(req.x).all():
            obs.add_counter("serve.requests.failed")
            return error_response(req.id, "non_finite",
                                  "x contains NaN/Inf entries")
        try:
            with obs.span("serve.request", tenant=req.tenant,
                          matrix=req.spec.key(), k=req.k):
                y, meta = await self.power(req.spec, req.x, req.k)
        except asyncio.CancelledError:
            raise
        except ProtocolError as exc:
            if exc.code in ("queue_full", "shutting_down"):
                obs.add_counter("serve.requests.rejected")
            else:
                obs.add_counter("serve.requests.failed")
            return error_response(req.id, exc.code, exc.message)
        except Exception as exc:  # defensive: nothing below should leak
            obs.add_counter("serve.requests.failed")
            return error_response(req.id, "internal", repr(exc))
        obs.add_counter("serve.requests.completed")
        return ok_response(req.id, y=y.tolist(), meta=meta)

    async def _handle_control(self, req: ControlRequest
                              ) -> Dict[str, Any]:
        if req.op == "ping":
            return ok_response(req.id, pong=True)
        if req.op == "stats":
            return ok_response(req.id, stats=self.stats())
        # req.op == "shutdown"
        if not self.config.allow_shutdown:
            obs.add_counter("serve.requests.failed")
            return error_response(
                req.id, "bad_request",
                "shutdown over the wire is disabled on this server")
        self.shutdown_requested.set()
        return ok_response(req.id, draining=True)

    # -- introspection ---------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Live service state plus a metrics snapshot (when a telemetry
        session is active)."""
        tel = obs.current()
        return {
            "residents": self.registry.residents,
            "resident_keys": self.registry.resident_keys(),
            "pending": self.batcher.pending,
            "inflight_batches": self.batcher.inflight_batches,
            "draining": self.shutdown_requested.is_set() or self._closed,
            "metrics": tel.metrics.snapshot() if tel is not None else None,
        }

    # -- lifecycle -------------------------------------------------------
    async def close(self) -> None:
        """Drain: seal open queues, finish in-flight batches, then close
        every resident operator.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.shutdown_requested.set()
        await self.batcher.drain()
        self.registry.close()
