"""Transport-agnostic solve service: parse → acquire → batch → respond.

:class:`SolveService` is the whole serving brain with no sockets in it:
:meth:`handle` takes one decoded request object and returns one
response object.  The TCP server (:mod:`repro.serve.server`) is a thin
framing shell around it, and the concurrency tests drive the service
directly on an event loop without any networking.

Request lifecycle for ``power``:

1. validate (:func:`repro.serve.protocol.parse_request`) — including a
   per-request finiteness check on ``x``, so one tenant's NaN input is
   rejected *before* it can poison a shared batch;
2. borrow the resident operator (:class:`OperatorRegistry.acquire` —
   first request per structure builds/tunes it, later ones hit);
3. queue the RHS on the batcher and await the batched result;
4. release the borrow (this is what lets LRU eviction close an
   operator only after its last in-flight request finishes).

A request carrying ``deadline_ms`` threads a monotonic
:class:`~repro.robust.resilience.Deadline` through steps 2–3: expiry at
any checkpoint (before acquire, before build, at batch admission, at
flush) returns a structured ``deadline_exceeded`` envelope without
running the sweep.  ``health`` reports in-flight load, circuit-breaker
states and pool-worker liveness; ``ready`` flips to false the moment a
drain begins.

Every failure path returns a structured error envelope; nothing in
:meth:`handle` raises except ``CancelledError`` (a disconnected
client's request is simply abandoned — its batch slot is dropped at
flush time).
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from .. import obs
from ..obs.slo import SLOTracker
from ..robust.errors import DeadlineExceededError
from ..robust.faults import fire as _fire_fault
from ..robust.resilience import Deadline
from .batcher import Batcher
from .config import ServeConfig
from .protocol import (
    ControlRequest,
    PowerRequest,
    ProtocolError,
    error_response,
    ok_response,
    parse_request,
)
from .registry import OperatorRegistry
from .spec import MatrixSpec

__all__ = ["SolveService"]

#: Rejection codes the ``stats`` op reports individual counts for.
REJECT_REASONS = ("queue_full", "deadline_exceeded", "too_large",
                  "shutting_down")


class SolveService:
    """Multi-tenant solve service over one registry and one batcher."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = (config or ServeConfig()).validate()
        self.registry = OperatorRegistry(self.config)
        self.batcher = Batcher(self.config)
        #: Set by an authorised ``shutdown`` request; the server waits
        #: on it to begin the drain.
        self.shutdown_requested = asyncio.Event()
        self._closed = False
        self._t_start = time.monotonic()
        #: ``power`` requests currently between parse and response, per
        #: tenant (event-loop thread only).
        self._inflight_by_tenant: Counter = Counter()
        #: Requests turned away, by structured rejection code.
        self._rejected_by_reason: Counter = Counter()
        #: SLO bookkeeping, bound lazily to the active telemetry
        #: session (None while telemetry is off).
        self._slo: Optional[SLOTracker] = None
        self._slo_session = None

    def _slo_tracker(self) -> Optional[SLOTracker]:
        """The SLO tracker over the *current* telemetry session's
        registry (rebuilt if the session changed; None when telemetry
        is off)."""
        tel = obs.current()
        if tel is None:
            return None
        if self._slo is None or self._slo_session is not tel:
            self._slo = SLOTracker(
                tel.metrics, target_ms=self.config.slo_target_ms,
                goal=self.config.slo_goal)
            self._slo_session = tel
        return self._slo

    # -- core compute path ----------------------------------------------
    async def power(self, spec: MatrixSpec, x: np.ndarray, k: int,
                    deadline: Optional[Deadline] = None
                    ) -> Tuple[np.ndarray, Dict[str, Any]]:
        """Compute ``A^k x`` through the resident operator and the
        batching queue; returns ``(y, meta)``.

        This is the embedding/test entry point; :meth:`handle` wraps it
        with protocol envelopes.  Raises :class:`ProtocolError`
        subclasses on rejection or failure, and
        :class:`~repro.robust.errors.DeadlineExceededError` when
        ``deadline`` runs out before the request reaches a batch.
        """
        entry = await self.registry.acquire(spec, deadline=deadline)
        try:
            if x.shape[0] != entry.n:
                raise ProtocolError(
                    "bad_request",
                    f"x: expected {entry.n} entries for "
                    f"{spec.describe()}, got {x.shape[0]}")
            y, width = await self.batcher.submit(entry, x, k,
                                                 deadline=deadline)
            meta = {
                "n": entry.n,
                "k": k,
                "plan_source": entry.source,
                "fingerprint": entry.fingerprint_key,
                "batched": entry.can_batch,
                "batch_width": width,
            }
            return y, meta
        finally:
            self.registry.release(entry)

    # -- protocol dispatch ----------------------------------------------
    async def handle(self, obj: Any) -> Dict[str, Any]:
        """Serve one decoded request object; always returns a response
        object (never raises, except ``CancelledError``)."""
        rid = obj.get("id") if isinstance(obj, Mapping) else None
        try:
            req = parse_request(obj, max_rows=self.config.max_rows,
                                allow_paths=self.config.allow_paths)
        except ProtocolError as exc:
            if exc.code in REJECT_REASONS:  # e.g. too_large at parse
                return self._reject(rid, exc.code, exc.message)
            obs.add_counter("serve.requests.failed")
            return error_response(rid, exc.code, exc.message)
        obs.add_counter("serve.requests")
        obs.add_counter(f"serve.tenant.{req.tenant}.requests")
        if isinstance(req, ControlRequest):
            return await self._handle_control(req)
        return await self._handle_power(req)

    async def _handle_power(self, req: PowerRequest) -> Dict[str, Any]:
        """Serve one ``power`` request and account it against the SLO:
        wall time from dispatch to response envelope, *good* iff the
        response is ``ok`` and under ``slo_target_ms``."""
        t0 = time.perf_counter()
        resp = await self._power_response(req)
        slo = self._slo_tracker()
        if slo is not None:
            slo.record(time.perf_counter() - t0,
                       ok=bool(resp.get("ok")))
        return resp

    async def _power_response(self, req: PowerRequest) -> Dict[str, Any]:
        if not np.isfinite(req.x).all():
            obs.add_counter("serve.requests.failed")
            return error_response(req.id, "non_finite",
                                  "x contains NaN/Inf entries")
        self._inflight_by_tenant[req.tenant] += 1
        try:
            with obs.span("serve.request", tenant=req.tenant,
                          matrix=req.spec.key(), k=req.k):
                _fire_fault("serve.request", tenant=req.tenant,
                            rid=req.id)
                y, meta = await self.power(req.spec, req.x, req.k,
                                           deadline=req.deadline)
        except asyncio.CancelledError:
            raise
        except DeadlineExceededError as exc:
            return self._reject(req.id, "deadline_exceeded", str(exc))
        except ProtocolError as exc:
            if exc.code in REJECT_REASONS:
                return self._reject(req.id, exc.code, exc.message)
            obs.add_counter("serve.requests.failed")
            return error_response(req.id, exc.code, exc.message)
        except Exception as exc:  # defensive: nothing below should leak
            obs.add_counter("serve.requests.failed")
            return error_response(req.id, "internal", repr(exc))
        finally:
            self._inflight_by_tenant[req.tenant] -= 1
            if self._inflight_by_tenant[req.tenant] <= 0:
                del self._inflight_by_tenant[req.tenant]
        obs.add_counter("serve.requests.completed")
        return ok_response(req.id, y=y.tolist(), meta=meta)

    def _reject(self, rid: Any, code: str, message: str
                ) -> Dict[str, Any]:
        """Record one admission-control rejection and build its
        response envelope."""
        self._rejected_by_reason[code] += 1
        obs.add_counter("serve.requests.rejected")
        obs.add_counter(f"serve.rejected.{code}")
        return error_response(rid, code, message)

    async def _handle_control(self, req: ControlRequest
                              ) -> Dict[str, Any]:
        if req.op == "ping":
            return ok_response(req.id, pong=True)
        if req.op == "stats":
            return ok_response(req.id, stats=self.stats())
        if req.op == "health":
            return ok_response(req.id, health=self.health())
        if req.op == "ready":
            draining = self.shutdown_requested.is_set() or self._closed
            return ok_response(req.id, ready=not draining)
        if req.op == "metrics":
            tel = obs.current()
            slo = self._slo_tracker()
            return ok_response(
                req.id,
                metrics=tel.metrics.snapshot() if tel is not None
                else None,
                slo=slo.snapshot() if slo is not None else None)
        # req.op == "shutdown"
        if not self.config.allow_shutdown:
            obs.add_counter("serve.requests.failed")
            return error_response(
                req.id, "bad_request",
                "shutdown over the wire is disabled on this server")
        self.shutdown_requested.set()
        return ok_response(req.id, draining=True)

    # -- introspection ---------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Live service state plus a metrics snapshot (when a telemetry
        session is active)."""
        tel = obs.current()
        slo = self._slo_tracker()
        return {
            "uptime_s": time.monotonic() - self._t_start,
            "slo": slo.snapshot() if slo is not None else None,
            "residents": self.registry.residents,
            "resident_keys": self.registry.resident_keys(),
            "pending": self.batcher.pending,
            "inflight_batches": self.batcher.inflight_batches,
            "inflight_by_tenant": dict(self._inflight_by_tenant),
            "rejected_by_reason": {
                code: self._rejected_by_reason.get(code, 0)
                for code in REJECT_REASONS},
            "draining": self.shutdown_requested.is_set() or self._closed,
            "metrics": tel.metrics.snapshot() if tel is not None else None,
        }

    def health(self) -> Dict[str, Any]:
        """Liveness detail for the ``health`` op: in-flight load,
        circuit-breaker states and pool-worker liveness per resident
        operator (``None`` liveness = no process pool spawned)."""
        slo = self._slo_tracker()
        return {
            "inflight": sum(self._inflight_by_tenant.values()),
            "slo": slo.snapshot() if slo is not None else None,
            "pending": self.batcher.pending,
            "inflight_batches": self.batcher.inflight_batches,
            "breakers": self.registry.breaker_snapshots(),
            "workers": self.registry.worker_health(),
            "draining": self.shutdown_requested.is_set() or self._closed,
        }

    # -- lifecycle -------------------------------------------------------
    async def close(self, timeout_s: Optional[float] = None) -> None:
        """Drain: seal open queues, finish in-flight batches, then close
        every resident operator.  Idempotent.

        ``timeout_s`` (default ``config.drain_timeout_s``) bounds the
        drain — a batch wedged past it is abandoned with structured
        errors instead of wedging shutdown.
        """
        if self._closed:
            return
        self._closed = True
        self.shutdown_requested.set()
        await self.batcher.drain(
            timeout_s=timeout_s if timeout_s is not None
            else self.config.drain_timeout_s)
        self.registry.close()
