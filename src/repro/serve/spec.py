"""Matrix specifications: how a request names the matrix it solves on.

Clients do not upload matrices; they name one the server can
materialise — a Table II stand-in (``{"standin": "cant", "rows": 2000,
"seed": 0}``) or, when the server allows it, a MatrixMarket file on the
server's filesystem (``{"path": "a.mtx"}``).  The spec's canonical key
deduplicates concurrent first-requests *before* the matrix exists; the
structure fingerprint (:func:`repro.tune.fingerprint.fingerprint_matrix`)
then keys the tuned-plan cache once it does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..matrices import generate_standin, list_matrix_names
from ..sparse import CSRMatrix, read_matrix_market

__all__ = ["MatrixSpec", "SpecError", "TooLargeError"]


class SpecError(ValueError):
    """A request's matrix description is unusable (unknown stand-in,
    oversized, or a path when paths are disabled)."""


class TooLargeError(SpecError):
    """The requested matrix exceeds this server's ``max_rows`` cap.

    Distinguished from plain :class:`SpecError` so the protocol layer
    can return the structured ``too_large`` code (and the stats op can
    count these rejections separately from malformed requests)."""


@dataclass(frozen=True)
class MatrixSpec:
    """Canonical description of one servable matrix."""

    standin: Optional[str] = None
    rows: int = 2000
    seed: int = 0
    path: Optional[str] = None

    def key(self) -> str:
        """Registry key: canonical, collision-free per distinct spec."""
        if self.path is not None:
            return f"path:{self.path}"
        return f"standin:{self.standin}:{self.rows}:{self.seed}"

    def describe(self) -> str:
        """Human-readable name for logs and error messages."""
        if self.path is not None:
            return self.path
        return f"{self.standin} stand-in ({self.rows} rows)"

    def load(self) -> CSRMatrix:
        """Materialise the matrix (CPU-bound; run off the event loop)."""
        if self.path is not None:
            return read_matrix_market(self.path).to_csr()
        return generate_standin(self.standin, n_rows=self.rows,
                                seed=self.seed)

    @classmethod
    def from_payload(cls, obj: Any, max_rows: int = 200_000,
                     allow_paths: bool = False) -> "MatrixSpec":
        """Parse and validate the ``matrix`` field of a request.

        Every rejection is a :class:`SpecError` naming the offending
        field, so the protocol layer can map it to a structured
        ``bad_request`` response.
        """
        if not isinstance(obj, Mapping):
            raise SpecError("matrix: expected an object")
        path = obj.get("path")
        standin = obj.get("standin")
        if path is not None:
            if not allow_paths:
                raise SpecError(
                    "matrix.path: file-backed matrices are disabled on "
                    "this server")
            if not isinstance(path, str) or not path:
                raise SpecError("matrix.path: expected a non-empty string")
            return cls(path=path)
        if not isinstance(standin, str):
            raise SpecError("matrix: provide 'standin' (or 'path')")
        if standin not in list_matrix_names():
            raise SpecError(
                f"matrix.standin: unknown stand-in {standin!r} "
                f"(known: {', '.join(list_matrix_names())})")
        rows = obj.get("rows", 2000)
        if not isinstance(rows, int) or isinstance(rows, bool) or rows < 1:
            raise SpecError("matrix.rows: expected a positive integer")
        if rows > max_rows:
            raise TooLargeError(
                f"matrix.rows: {rows} exceeds this server's cap of "
                f"{max_rows}")
        seed = obj.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise SpecError("matrix.seed: expected an integer")
        return cls(standin=standin, rows=rows, seed=seed)
