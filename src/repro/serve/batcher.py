"""The batching queue: many users' RHS vectors, one read of A.

Concurrent ``power`` requests for the same ``(matrix, k)`` that arrive
within a short *gather window* are stacked into one ``(n, m)`` block and
advanced by a single multi-RHS
:meth:`~repro.core.fbmpk.FBMPKOperator.power_block` sweep — each
triangle of A is streamed once per stage *for the whole batch*, so the
paper's ``(k+1)/2`` traffic win is multiplied again by the batch width.
The block result is then de-interleaved back to the individual callers.

Bit-identity: on the ``numpy`` backend every ``power_block`` column is
computed with exactly the per-vector ``power`` arithmetic (same
``reduce_rows`` accumulation per row, column count changes nothing), so
a batched client receives *the identical bits* an unbatched serial call
would have produced — the differential suite in ``tests/property``
proves it across dtypes, k values and executors.  Entries that cannot
make that guarantee (``can_batch`` False) are served per-request inside
the same queue machinery instead.

Aliasing contract: responses are handed out as **owned copies**
(:func:`split_block`), never as views of the shared gather buffer or of
the operator's persistent block buffer — a later batch reusing those
buffers cannot mutate a response already sent.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .. import obs
from ..parallel.executor import spawn_daemon_pool
from ..robust.errors import NonFiniteError
from ..robust.faults import fire as _fire_fault
from ..robust.resilience import Deadline
from .config import BATCH_WIDTH_BUCKETS, ServeConfig
from .protocol import ProtocolError, QueueFullError, ServiceClosedError
from .registry import ResidentOperator

__all__ = ["Batcher", "split_block"]


def split_block(Y: np.ndarray) -> List[np.ndarray]:
    """Split a ``(n, m)`` result block into ``m`` owned column vectors.

    ``Y[:, j]`` alone is a strided *view* into the block — handing that
    to a caller would alias the batch buffer (and, for ``m == 1``, even
    ``np.ascontiguousarray`` would pass the view through un-copied).
    ``.copy()`` is unconditional: every returned vector owns its data.
    """
    return [Y[:, j].copy() for j in range(Y.shape[1])]


@dataclass
class _Pending:
    """One queued request: its RHS and the future its caller awaits."""

    x: np.ndarray
    #: Resolved with ``(y, batch_width)`` or a :class:`ProtocolError`.
    future: "asyncio.Future"
    tenant: str
    #: The request's latency budget; checked again at flush time so an
    #: expired request is never admitted into a batch.
    deadline: Deadline = field(default_factory=Deadline.never)


@dataclass
class _Queue:
    """Requests gathering for one ``(operator, k)`` batch."""

    entry: ResidentOperator
    k: int
    items: List[_Pending] = field(default_factory=list)
    timer: Optional[asyncio.TimerHandle] = None


class Batcher:
    """Gather-window batching with admission control."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self._queues: Dict[Tuple[int, int], _Queue] = {}
        self._inflight: Set[asyncio.Task] = set()
        self._pending = 0
        self._max_width = 0
        self._closing = False
        # Sweeps run on a dedicated pool of *daemon* threads, not the
        # event loop's default executor: asyncio.run joins the default
        # executor at shutdown, so a sweep wedged by a hung kernel
        # would wedge interpreter exit with it.  Daemon workers let the
        # bounded drain abandon a stuck batch and still exit cleanly.
        self._pool = None
        # Aliasing-audit hooks (held only with debug_keep_last).
        self.last_gather: Optional[np.ndarray] = None
        self.last_block: Optional[np.ndarray] = None
        self.last_outputs: Optional[List[np.ndarray]] = None

    # -- introspection ---------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests queued but not yet sealed into a batch."""
        return self._pending

    @property
    def inflight_batches(self) -> int:
        """Sealed batches currently executing."""
        return len(self._inflight)

    # -- submission ------------------------------------------------------
    async def submit(self, entry: ResidentOperator, x: np.ndarray,
                     k: int, deadline: Optional[Deadline] = None,
                     tenant: str = "-") -> Tuple[np.ndarray, int]:
        """Queue one RHS for ``entry``; returns ``(y, batch_width)``.

        Raises :class:`QueueFullError` when admission control turns the
        request away, :class:`ServiceClosedError` during drain, and
        whatever the sweep raised (mapped to a :class:`ProtocolError`)
        on compute failure.  An already-expired ``deadline`` raises
        :class:`~repro.robust.errors.DeadlineExceededError` before the
        request is queued; one that expires while gathering is rejected
        at flush time, and the batch runs without it.  Cancelling the
        awaiting coroutine simply abandons the slot — the batch still
        runs for everyone else.
        """
        if self._closing:
            raise ServiceClosedError()
        if deadline is not None:
            deadline.require("batch admission")
        if self._pending >= self.config.max_pending:
            raise QueueFullError(
                f"server is saturated ({self._pending} requests pending)")
        qk = (id(entry), k)
        q = self._queues.get(qk)
        if q is None:
            q = self._queues[qk] = _Queue(entry=entry, k=k)
        if len(q.items) >= self.config.max_queue:
            raise QueueFullError(
                f"queue for {entry.spec.describe()} k={k} is full "
                f"({len(q.items)} waiting)")
        loop = asyncio.get_running_loop()
        fut: "asyncio.Future" = loop.create_future()
        q.items.append(_Pending(x=x, future=fut, tenant=tenant,
                                deadline=deadline or Deadline.never()))
        self._pending += 1
        if len(q.items) >= self.config.max_batch:
            self._flush(qk)
        elif q.timer is None:
            q.timer = loop.call_later(self.config.gather_window_s,
                                      self._flush, qk)
        return await fut

    # -- batch execution -------------------------------------------------
    def _flush(self, qk: Tuple[int, int]) -> None:
        """Seal the queue: move its requests into one executing batch."""
        q = self._queues.pop(qk, None)
        if q is None:
            return
        if q.timer is not None:
            q.timer.cancel()
        self._pending -= len(q.items)
        undone = [p for p in q.items if not p.future.done()]
        dropped = len(q.items) - len(undone)
        if dropped:
            obs.add_counter("serve.requests.cancelled", dropped)
        # A request whose deadline passed while gathering is rejected
        # here, before the batch is sealed: the sweep proceeds for
        # everyone else and never spends a column on a result nobody
        # can use any more.
        live: List[_Pending] = []
        for p in undone:
            if p.deadline.expired():
                obs.add_counter("serve.requests.expired_in_queue")
                p.future.set_exception(ProtocolError(
                    "deadline_exceeded",
                    "deadline expired while the request was queued"))
            else:
                live.append(p)
        if not live:
            return
        task = asyncio.get_running_loop().create_task(
            self._run_batch(q.entry, q.k, live))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_batch(self, entry: ResidentOperator, k: int,
                         items: List[_Pending]) -> None:
        m = len(items)
        obs.add_counter("serve.batches")
        tel = obs.current()
        if tel is not None:
            # First creation fixes the buckets, so register the width
            # histogram explicitly rather than inheriting time buckets.
            tel.metrics.histogram("serve.batch.width",
                                  buckets=BATCH_WIDTH_BUCKETS).observe(m)
        if m > self._max_width:
            self._max_width = m
            obs.set_gauge("serve.batch.width.max", m)
        obs.add_counter(
            "serve.batched_requests" if entry.can_batch and m >= 1
            else "serve.unbatched_requests", m)
        loop = asyncio.get_running_loop()
        with obs.span("serve.batch", width=m, k=k,
                      matrix=entry.spec.key(), batched=entry.can_batch):
            X = np.stack([p.x for p in items], axis=1)
            try:
                Y = await loop.run_in_executor(
                    self._ensure_pool(), self._compute, entry, X, k)
            except asyncio.CancelledError:
                # Bounded drain abandoned this batch: its callers still
                # deserve a terminal response, not a forever-pending
                # future.
                self._fail(items, ServiceClosedError(
                    "server drain abandoned the batch"))
                raise
            except NonFiniteError as exc:
                self._fail(items, ProtocolError("non_finite", str(exc)))
                return
            except ProtocolError as exc:
                self._fail(items, exc)
                return
            except Exception as exc:
                self._fail(items, ProtocolError(
                    "internal", f"batched sweep failed: {exc!r}"))
                return
        outputs = split_block(Y)
        if self.config.debug_keep_last:
            self.last_gather = X
            self.last_block = Y
            self.last_outputs = outputs
        for p, y in zip(items, outputs):
            if not p.future.done():
                p.future.set_result((y, m))

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = spawn_daemon_pool(
                max_workers=4, thread_name_prefix="serve-batch")
        return self._pool

    def _compute(self, entry: ResidentOperator, X: np.ndarray,
                 k: int) -> np.ndarray:
        """Run the sweep in a worker thread, serialised per operator."""
        _fire_fault("serve.batch", width=X.shape[1], k=k,
                    matrix=entry.spec.key())
        with entry.compute_lock:
            if entry.can_batch:
                return entry.op.power_block(X, k, check_finite=True)
            cols = [entry.op.power(X[:, j].copy(), k, check_finite=True)
                    for j in range(X.shape[1])]
            return np.stack(cols, axis=1)

    @staticmethod
    def _fail(items: List[_Pending], exc: ProtocolError) -> None:
        for p in items:
            if not p.future.done():
                p.future.set_exception(exc)

    # -- lifecycle -------------------------------------------------------
    async def drain(self, timeout_s: Optional[float] = None) -> None:
        """Seal every open queue immediately and wait for all executing
        batches; new submissions are rejected from the first await on.

        ``timeout_s`` bounds the wait: batches still executing past it
        are abandoned (their requests get structured ``shutting_down``
        errors, their daemon worker threads die with the process)
        instead of wedging shutdown behind a hung sweep.
        """
        self._closing = True
        for qk in list(self._queues):
            self._flush(qk)
        deadline = Deadline.after(timeout_s) if timeout_s is not None \
            else Deadline.never()
        while self._inflight:
            done, pending = await asyncio.wait(
                list(self._inflight),
                timeout=deadline.remaining_or(None))
            if pending and deadline.expired():
                obs.add_counter("serve.drain.abandoned_batches",
                                len(pending))
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
                break
        if self._pool is not None:
            # Daemon workers: never join (a hung sweep would block
            # exit); cancel what never started and let the rest die
            # with the process.
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
