"""Serving-layer configuration.

One :class:`ServeConfig` instance parameterises the whole service
stack — admission control, the batching gather window, operator
residency, tuning policy — so embedding code, the ``serve`` CLI
subcommand and the tests all speak the same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["ServeConfig", "BATCH_WIDTH_BUCKETS"]

#: Histogram buckets for the ``serve.batch.width`` metric (requests per
#: ``power_block`` sweep; the last slot counts wider batches).
BATCH_WIDTH_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass
class ServeConfig:
    """Knobs of the multi-tenant solve service.

    Batching
        ``gather_window_s`` is how long the first request for a
        ``(matrix, k)`` pair waits for companions before its batch is
        sealed; ``max_batch`` seals a batch early once that many RHS
        vectors are queued.  The window is the latency the service
        trades for amortising one read of A over the whole batch.
    Admission control
        ``max_queue`` bounds one ``(matrix, k)`` queue; ``max_pending``
        bounds requests waiting across all queues.  Beyond either, new
        requests receive a structured ``queue_full`` rejection instead
        of unbounded buffering.
    Residency
        ``max_resident`` caps pinned :class:`FBMPKOperator` instances;
        the least-recently-used one is evicted (and closed once its
        in-flight requests drain) to admit a new structure.
    Tuning
        ``tune="full"`` routes first requests through
        :func:`repro.tune.autotune_power` — the plan cache makes warm
        structures skip both search and preprocessing; ``tune="off"``
        builds the default operator directly.  Tuned winners are
        execution-only variations of the default plan (the bit-identity
        gate guarantees it), so they always stay batchable.
    Resilience
        ``tune_budget_s`` caps one tuning search (and its plan-cache
        lock wait); ``tune_breaker`` guards the search behind the
        module circuit breaker so repeated failures/budget blowouts
        serve the default plan immediately instead of re-paying the
        search.  ``hang_timeout_s`` arms the executor watchdogs of
        every operator the registry builds (heartbeat watchdog on
        process pools, bounded phase barrier on thread pools).
        ``drain_timeout_s`` bounds shutdown: batches still executing
        past it are abandoned and their requests receive structured
        ``shutting_down`` errors rather than wedging the drain.
    Observability
        ``metrics_port`` (None = off) starts a Prometheus exposition
        endpoint on a stdlib HTTP daemon thread; ``slo_target_ms`` /
        ``slo_goal`` parameterise the latency SLO the service tracks
        per ``power`` request (see :mod:`repro.obs.slo`);
        ``profile_hz`` is the sampling rate the ``--profile`` flag arms
        the :class:`~repro.obs.sampler.StackSampler` with.
    """

    # batching
    gather_window_s: float = 0.002
    max_batch: int = 32
    # admission control
    max_queue: int = 256
    max_pending: int = 4096
    # matrix admission
    max_rows: int = 200_000
    allow_paths: bool = False
    # operator residency
    max_resident: int = 4
    # execution (tune="off" build path)
    strategy: str = "abmc"
    block_size: int = 1
    executor: str = "serial"
    n_workers: Optional[int] = None
    on_failure: str = "fallback_serial"
    # tuning
    tune: str = "full"
    tune_k: int = 4
    tune_repeats: int = 2
    tune_max_candidates: Optional[int] = 4
    plan_cache_dir: Optional[str] = None
    # resilience
    tune_budget_s: Optional[float] = None
    tune_breaker: bool = True
    hang_timeout_s: Optional[float] = None
    drain_timeout_s: float = 30.0
    # observability
    #: TCP port of the Prometheus ``/metrics`` endpoint (0 = ephemeral;
    #: None — the default — disables the HTTP exporter entirely).
    metrics_port: Optional[int] = None
    metrics_host: str = "127.0.0.1"
    #: Latency SLO: a ``power`` request is *good* when it succeeds
    #: within ``slo_target_ms``; ``slo_goal`` is the fraction of good
    #: requests the error budget is computed against.
    slo_target_ms: float = 250.0
    slo_goal: float = 0.99
    #: Sampling-profiler rate when ``serve --profile`` is active.
    profile_hz: float = 100.0
    # protocol / lifecycle
    allow_shutdown: bool = True
    max_line_bytes: int = 16 * 1024 * 1024
    # test hook: retain references to the last gather/result buffers so
    # aliasing audits can assert responses share memory with neither.
    debug_keep_last: bool = field(default=False, repr=False)

    def validate(self) -> "ServeConfig":
        """Raise ``ValueError`` on out-of-range fields; returns self."""
        if self.gather_window_s < 0:
            raise ValueError("gather_window_s must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.max_resident < 1:
            raise ValueError("max_resident must be >= 1")
        if self.max_rows < 1:
            raise ValueError("max_rows must be >= 1")
        if self.tune not in ("off", "full"):
            raise ValueError(f"unknown tune mode {self.tune!r}")
        if self.strategy not in ("abmc", "levels"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.executor not in ("serial", "threads", "processes"):
            raise ValueError(f"unknown executor {self.executor!r}")
        if self.on_failure not in ("raise", "fallback_serial"):
            raise ValueError(f"unknown on_failure {self.on_failure!r}")
        if self.tune_budget_s is not None and self.tune_budget_s <= 0:
            raise ValueError("tune_budget_s must be > 0 when set")
        if self.hang_timeout_s is not None and self.hang_timeout_s <= 0:
            raise ValueError("hang_timeout_s must be > 0 when set")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be > 0")
        if self.metrics_port is not None \
                and not 0 <= self.metrics_port <= 65535:
            raise ValueError("metrics_port must be in [0, 65535]")
        if self.slo_target_ms <= 0:
            raise ValueError("slo_target_ms must be > 0")
        if not 0.0 < self.slo_goal < 1.0:
            raise ValueError("slo_goal must be in (0, 1)")
        if self.profile_hz <= 0:
            raise ValueError("profile_hz must be > 0")
        return self
