"""Resident-operator registry: first request pays, the rest hit.

The registry maps a :class:`~repro.serve.spec.MatrixSpec` to a pinned
:class:`~repro.core.fbmpk.FBMPKOperator`.  The first request for a
structure materialises the matrix and — in ``tune="full"`` mode — runs
:func:`repro.tune.autotune_power`, whose persistent plan cache makes a
warm structure skip both the search *and* the preprocessing (the OSKI
workflow: only the first request per structure, ever, pays).  All later
requests hit the resident operator directly.

Concurrency contract:

* Concurrent first-requests for the same spec serialise on a per-key
  ``asyncio.Lock`` and build exactly once (the loser of the race finds
  the entry on re-check).  Cross-*process* first-requests serialise on
  the plan cache's file lock (see :meth:`repro.tune.cache.PlanCache.lock`).
* Residency is LRU-bounded by ``max_resident``.  Eviction never
  interrupts in-flight work: each borrowed entry carries a reference
  count, and an evicted operator is only closed when the count drops to
  zero.  Requests that still hold the evicted entry finish on it;
  requests arriving after eviction rebuild a fresh one.
* An operator instance must not run overlapping sweeps, so each entry
  carries a ``compute_lock`` the batcher holds around every
  ``power``/``power_block`` call.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from typing import Dict, Optional

from .. import obs
from ..core.fbmpk import FBMPKOperator, build_fbmpk_operator
from ..robust.resilience import CircuitBreaker, Deadline
from ..tune.fingerprint import fingerprint_matrix
from .config import ServeConfig
from .protocol import ProtocolError, ServiceClosedError
from .spec import MatrixSpec

__all__ = ["ResidentOperator", "OperatorRegistry"]


class ResidentOperator:
    """One pinned operator plus its serving bookkeeping."""

    def __init__(self, spec: MatrixSpec, op, fingerprint_key: str,
                 source: str) -> None:
        self.spec = spec
        self.op = op
        #: Structure-fingerprint cache key (what the plan cache keyed on).
        self.fingerprint_key = fingerprint_key
        #: How the operator came to be: ``"cache"`` (plan-cache hit),
        #: ``"search"`` (fresh autotune) or ``"build"`` (tune off).
        self.source = source
        #: Serialises sweeps on the operator (held in worker threads).
        self.compute_lock = threading.Lock()
        #: Borrow count; mutated only on the event-loop thread.
        self.refs = 0
        self.evicted = False
        self.closed = False

    @property
    def n(self) -> int:
        return self.op.n

    @property
    def can_batch(self) -> bool:
        """Whether stacked ``power_block`` sweeps are bitwise-identical
        to per-request ``power`` calls on this operator.

        True for every :class:`FBMPKOperator` on the ``numpy`` backend
        (its ``matmat`` accumulates each output column in exactly the
        ``matvec`` order, and the differential suite proves it per
        executor).  The ``scipy`` backend's compiled kernels do not make
        that guarantee, and non-FBMPK operators (the unfused tuning
        adapter) have no ``power_block`` at all — those entries are
        served per-request instead of batched.
        """
        return isinstance(self.op, FBMPKOperator) \
            and getattr(self.op, "backend", None) == "numpy"

    def _close_op(self) -> None:
        if not self.closed:
            self.closed = True
            close = getattr(self.op, "close", None)
            if close is not None:
                close()

    def release(self) -> None:
        """Return one borrow; closes an evicted operator at zero."""
        self.refs -= 1
        if self.evicted and self.refs <= 0:
            self._close_op()


class OperatorRegistry:
    """LRU-bounded registry of resident operators, keyed by spec."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self._entries: "OrderedDict[str, ResidentOperator]" = OrderedDict()
        self._building: Dict[str, asyncio.Lock] = {}
        self._closed = False
        #: Guards the tuning search (``tune="full"`` builds): repeated
        #: search failures or budget blowouts open it and first
        #: requests get the default plan immediately.  ``None`` when
        #: the config opts out.
        self.tune_breaker: Optional[CircuitBreaker] = None
        if config.tune == "full" and config.tune_breaker:
            from ..tune import SEARCH_BREAKER
            self.tune_breaker = SEARCH_BREAKER

    # -- introspection ---------------------------------------------------
    @property
    def residents(self) -> int:
        """Number of currently pinned operators."""
        return len(self._entries)

    def resident_keys(self):
        """Spec keys in LRU order (oldest first)."""
        return list(self._entries)

    def worker_health(self):
        """Per-resident executor health (see
        :meth:`repro.core.fbmpk.FBMPKOperator.worker_health`): spec key
        → health dict, for the ``health`` op."""
        out = {}
        for key, entry in self._entries.items():
            probe = getattr(entry.op, "worker_health", None)
            if probe is not None:
                out[key] = probe()
        return out

    def breaker_snapshots(self):
        """State snapshots of every breaker the registry runs."""
        if self.tune_breaker is None:
            return []
        return [self.tune_breaker.snapshot()]

    # -- borrow / return -------------------------------------------------
    async def acquire(self, spec: MatrixSpec,
                      deadline: Optional[Deadline] = None
                      ) -> ResidentOperator:
        """Borrow the resident operator for ``spec``, building it on the
        first request.  Pair every acquire with
        :meth:`ResidentOperator.release`.

        ``deadline``: an already-expired request is refused before the
        build is even attempted, and a request whose deadline passes
        while it waits behind another builder of the same spec is
        refused on wake-up rather than paying a build it can no longer
        use.
        """
        if self._closed:
            raise ServiceClosedError()
        if deadline is not None:
            deadline.require("operator acquire")
        key = spec.key()
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            entry.refs += 1
            obs.add_counter("serve.operator.hits")
            return entry
        lock = self._building.get(key)
        if lock is None:
            lock = self._building[key] = asyncio.Lock()
        async with lock:
            if self._closed:
                raise ServiceClosedError()
            if deadline is not None:
                deadline.require("operator build")
            entry = self._entries.get(key)  # lost the build race?
            if entry is None:
                loop = asyncio.get_running_loop()
                try:
                    entry = await loop.run_in_executor(
                        None, self._build, spec)
                except ProtocolError:
                    raise
                except OSError as exc:
                    raise ProtocolError(
                        "bad_request",
                        f"cannot load {spec.describe()}: {exc}") from exc
                except Exception as exc:
                    raise ProtocolError(
                        "internal",
                        f"building operator for {spec.describe()} "
                        f"failed: {exc!r}") from exc
                self._entries[key] = entry
                obs.add_counter("serve.operator.builds")
                obs.set_gauge("serve.residents", len(self._entries))
                self._evict_over_capacity()
            else:
                obs.add_counter("serve.operator.hits")
            self._building.pop(key, None)
            self._entries.move_to_end(key)
            entry.refs += 1
            return entry

    def release(self, entry: ResidentOperator) -> None:
        """Return a borrowed entry (see :meth:`ResidentOperator.release`)."""
        entry.release()

    # -- build -----------------------------------------------------------
    def _build(self, spec: MatrixSpec) -> ResidentOperator:
        """Materialise the matrix and its operator (executor thread)."""
        cfg = self.config
        with obs.span("serve.build", spec=spec.key(), tune=cfg.tune):
            a = spec.load()
            if cfg.tune == "full":
                from ..tune import autotune_power

                cache = cfg.plan_cache_dir if cfg.plan_cache_dir \
                    is not None else None
                op, result = autotune_power(
                    a, k=cfg.tune_k, cache=cache,
                    repeats=cfg.tune_repeats,
                    max_candidates=cfg.tune_max_candidates,
                    search_budget_s=cfg.tune_budget_s,
                    breaker=self.tune_breaker
                    if self.tune_breaker is not None else False)
                source = result.source
                fp_key = result.fingerprint.key()
            else:
                op = build_fbmpk_operator(
                    a, strategy=cfg.strategy, block_size=cfg.block_size,
                    backend="numpy", executor=cfg.executor,
                    n_threads=cfg.n_workers, on_failure=cfg.on_failure,
                    hang_timeout=cfg.hang_timeout_s)
                source = "build"
                fp_key = fingerprint_matrix(a, kind="power").key()
            # Graceful degradation applies regardless of how the
            # operator was obtained: a crashed parallel phase falls back
            # to a bit-identical serial recompute instead of failing the
            # whole batch, and the watchdog (when armed) turns a hung
            # worker into exactly that failure path.
            configure = getattr(op, "configure_executor", None)
            if configure is not None:
                kwargs = {"on_failure": cfg.on_failure}
                if cfg.hang_timeout_s is not None:
                    kwargs["hang_timeout"] = cfg.hang_timeout_s
                configure(**kwargs)
            obs.add_counter(f"serve.operator.source.{source}")
            return ResidentOperator(spec=spec, op=op,
                                    fingerprint_key=fp_key, source=source)

    # -- eviction ----------------------------------------------------------
    def _evict_over_capacity(self) -> None:
        while len(self._entries) > self.config.max_resident:
            _, victim = self._entries.popitem(last=False)
            victim.evicted = True
            obs.add_counter("serve.operator.evictions")
            if victim.refs <= 0:
                victim._close_op()
        obs.set_gauge("serve.residents", len(self._entries))

    def evict(self, spec: MatrixSpec) -> bool:
        """Explicitly evict one spec (used by tests); returns whether an
        entry was resident."""
        entry = self._entries.pop(spec.key(), None)
        if entry is None:
            return False
        entry.evicted = True
        obs.add_counter("serve.operator.evictions")
        if entry.refs <= 0:
            entry._close_op()
        obs.set_gauge("serve.residents", len(self._entries))
        return True

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Evict and close every resident operator (idempotent).  Callers
        must have drained in-flight work first; an entry still borrowed
        is closed when its last borrower releases it."""
        self._closed = True
        while self._entries:
            _, entry = self._entries.popitem(last=False)
            entry.evicted = True
            if entry.refs <= 0:
                entry._close_op()
