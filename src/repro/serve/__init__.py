"""Multi-tenant async solve service with request batching.

``repro.serve`` turns the library into a long-running server: clients
submit ``A^k x`` requests over newline-delimited JSON, the first
request per matrix structure pays preprocessing + autotuning once (via
the :mod:`repro.tune` plan cache) and pins a resident operator, and
concurrent requests for the same ``(matrix, k)`` are stacked into one
multi-RHS ``power_block`` sweep — one read of A serves the whole batch,
with results bitwise-identical to unbatched serial calls.

Layers (transport-agnostic core, thin shell):

* :class:`ServeConfig` — every knob in one dataclass;
* :class:`MatrixSpec` — how requests name matrices;
* :mod:`~repro.serve.protocol` — wire envelopes + structured errors;
* :class:`OperatorRegistry` — LRU-bounded resident operators with
  refcounted eviction;
* :class:`Batcher` — the gather-window batching queue;
* :class:`SolveService` — parse → acquire → batch → respond;
* :class:`SolveServer` — the asyncio TCP front end
  (``python -m repro serve``).
"""

from .batcher import Batcher, split_block
from .config import BATCH_WIDTH_BUCKETS, ServeConfig
from .protocol import (
    ERROR_CODES,
    ControlRequest,
    PowerRequest,
    ProtocolError,
    QueueFullError,
    ServiceClosedError,
    encode_line,
    error_response,
    ok_response,
    parse_request,
)
from .registry import OperatorRegistry, ResidentOperator
from .server import SolveServer
from .service import SolveService
from .spec import MatrixSpec, SpecError, TooLargeError

__all__ = [
    "BATCH_WIDTH_BUCKETS",
    "Batcher",
    "ControlRequest",
    "ERROR_CODES",
    "MatrixSpec",
    "OperatorRegistry",
    "PowerRequest",
    "ProtocolError",
    "QueueFullError",
    "ResidentOperator",
    "ServeConfig",
    "ServiceClosedError",
    "SolveServer",
    "SolveService",
    "SpecError",
    "TooLargeError",
    "encode_line",
    "error_response",
    "ok_response",
    "parse_request",
    "split_block",
]
