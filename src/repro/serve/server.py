"""Asyncio TCP shell around :class:`~repro.serve.service.SolveService`.

Framing is one JSON object per line in both directions (see
:mod:`repro.serve.protocol`).  Each connection gets its own reader
loop; each request line becomes its own task, so a slow batch never
blocks the connection from submitting more requests — that concurrency
is precisely what fills the gather window.  Responses are written under
a per-connection lock (they may complete out of order).

Disconnect semantics: when a client drops, every request task spawned
for that connection is cancelled.  A cancelled request's future is
abandoned — the batcher drops it at flush time (or skips its slot when
setting results), and the batch still completes for everyone else.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Set

from .. import obs
from ..obs.exporter import MetricsHTTPServer
from .protocol import encode_line, error_response
from .service import SolveService

__all__ = ["SolveServer"]


class SolveServer:
    """NDJSON-over-TCP front end; ``port=0`` binds an ephemeral port.

    When ``config.metrics_port`` is set (0 = ephemeral), :meth:`start`
    additionally launches the Prometheus exposition endpoint of
    :class:`~repro.obs.exporter.MetricsHTTPServer` on a daemon thread;
    the resolved port is :attr:`metrics_port`.
    """

    def __init__(self, service: SolveService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._metrics_http: Optional[MetricsHTTPServer] = None

    @property
    def metrics_port(self) -> Optional[int]:
        """Resolved port of the ``/metrics`` endpoint (None = off)."""
        return None if self._metrics_http is None \
            else self._metrics_http.port

    async def start(self) -> "SolveServer":
        """Bind and start accepting; resolves the actual port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=self.service.config.max_line_bytes)
        self.port = self._server.sockets[0].getsockname()[1]
        cfg = self.service.config
        if cfg.metrics_port is not None and self._metrics_http is None:
            self._metrics_http = MetricsHTTPServer(
                host=cfg.metrics_host, port=cfg.metrics_port).start()
            obs.event("serve.metrics_listening",
                      port=self._metrics_http.port)
        obs.event("serve.listening", host=self.host, port=self.port)
        return self

    async def serve_forever(self) -> None:
        """Accept connections until a ``shutdown`` request arrives (or
        :meth:`aclose` is called), then drain and close."""
        if self._server is None:
            await self.start()
        try:
            await self.service.shutdown_requested.wait()
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting, drop live connections, drain the service."""
        if self._metrics_http is not None:
            self._metrics_http.stop()
            self._metrics_http = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)
        await self.service.close()

    # -- one connection --------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        obs.add_counter("serve.connections")
        write_lock = asyncio.Lock()
        request_tasks: Set[asyncio.Task] = set()
        try:
            await self._read_loop(reader, writer, write_lock,
                                  request_tasks)
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection's reader; end
            # the handler cleanly (asyncio's stream glue re-raises a
            # propagated CancelledError as loop noise otherwise).
            pass
        finally:
            # Disconnect (or server shutdown): abandon this client's
            # outstanding requests.  Their batch slots are skipped; the
            # batches themselves run to completion for other clients.
            for t in list(request_tasks):
                t.cancel()
            if request_tasks:
                await asyncio.gather(*request_tasks,
                                     return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if task is not None:
                self._conn_tasks.discard(task)

    async def _read_loop(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter,
                         write_lock: asyncio.Lock,
                         request_tasks: Set[asyncio.Task]) -> None:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # Oversized request line: the stream is no longer
                # frameable, so reject and hang up.
                await self._send(writer, write_lock, error_response(
                    None, "bad_request",
                    f"request line exceeds "
                    f"{self.service.config.max_line_bytes} bytes"))
                return
            except (ConnectionError, OSError):
                return
            if not line:
                return  # EOF: client is done sending
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                await self._send(writer, write_lock, error_response(
                    None, "bad_request", f"invalid JSON: {exc.msg}"))
                continue
            t = asyncio.get_running_loop().create_task(
                self._dispatch(obj, writer, write_lock))
            request_tasks.add(t)
            t.add_done_callback(request_tasks.discard)

    async def _dispatch(self, obj, writer: asyncio.StreamWriter,
                        write_lock: asyncio.Lock) -> None:
        try:
            resp = await self.service.handle(obj)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # service.handle should never raise
            rid = obj.get("id") if isinstance(obj, dict) else None
            resp = error_response(rid, "internal", repr(exc))
        await self._send(writer, write_lock, resp)

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, lock: asyncio.Lock,
                    obj) -> None:
        data = encode_line(obj)
        async with lock:
            if writer.is_closing():
                return
            writer.write(data)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
