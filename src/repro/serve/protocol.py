"""Wire protocol: newline-delimited JSON requests and responses.

One request per line, one response line per request, matched by the
client-chosen ``id`` (responses may arrive out of submission order —
the whole point of batching is that several requests complete
together).  Python's ``json`` emits shortest-roundtrip ``repr`` floats,
so a float64 result survives the response encoding **bit-exactly**:
what the batched sweep computed is what the client's
``np.array(resp["y"])`` holds.

Requests::

    {"id": "r1", "op": "power", "tenant": "alice",
     "matrix": {"standin": "cant", "rows": 2000, "seed": 0},
     "k": 4, "x": [/* n floats */], "deadline_ms": 5000}
    {"id": "p1", "op": "ping"}
    {"id": "s1", "op": "stats"}
    {"id": "h1", "op": "health"}
    {"id": "h2", "op": "ready"}
    {"id": "m1", "op": "metrics"}
    {"id": "q1", "op": "shutdown"}

``deadline_ms`` (optional, ``power`` only) is a per-request latency
budget counted from parse time: a request whose deadline passes while
it is still queued (or before its batch is sealed) receives a
structured ``deadline_exceeded`` rejection instead of a late result,
and an expired request is never admitted into a batch.
``deadline_ms <= 0`` is rejected at parse time as ``bad_request``.

Responses::

    {"id": "r1", "ok": true, "y": [...], "meta": {"batch_width": 3}}
    {"id": "r1", "ok": false,
     "error": {"code": "queue_full", "message": "..."}}

Error codes are the closed set in :data:`ERROR_CODES`; clients can
switch on them without parsing messages.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from ..robust.resilience import Deadline
from .spec import MatrixSpec, SpecError, TooLargeError

__all__ = [
    "ERROR_CODES",
    "ProtocolError",
    "QueueFullError",
    "ServiceClosedError",
    "PowerRequest",
    "ControlRequest",
    "parse_request",
    "ok_response",
    "error_response",
    "encode_line",
    "decode_vector",
]

#: Closed set of structured error codes a response may carry.
ERROR_CODES = frozenset({
    "bad_request",        # malformed/unparseable request or matrix spec
    "queue_full",         # admission control rejected the request
    "too_large",          # matrix exceeds this server's max_rows cap
    "deadline_exceeded",  # the request's deadline_ms budget ran out
    "shutting_down",      # service is draining; no new work accepted
    "non_finite",         # NaN/Inf in the input or a produced iterate
    "internal",           # unexpected server-side failure
})

#: Ops the protocol understands.
OPS = ("power", "ping", "stats", "health", "ready", "metrics",
       "shutdown")


class ProtocolError(ValueError):
    """A request that cannot be served, with its structured code."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


class QueueFullError(ProtocolError):
    """Admission control turned the request away."""

    def __init__(self, message: str) -> None:
        super().__init__("queue_full", message)


class ServiceClosedError(ProtocolError):
    """The service is shutting down and accepts no new work."""

    def __init__(self, message: str = "service is shutting down") -> None:
        super().__init__("shutting_down", message)


@dataclass
class PowerRequest:
    """A parsed ``power`` request: compute ``A^k x`` for one tenant."""

    id: Any
    spec: MatrixSpec
    k: int
    x: np.ndarray
    tenant: str = "anon"
    #: Latency budget, counted from parse time.  ``Deadline.never()``
    #: when the request carried no ``deadline_ms``.
    deadline: Deadline = field(default_factory=Deadline.never)
    op: str = field(default="power", init=False)


@dataclass
class ControlRequest:
    """A parsed ``ping``/``stats``/``shutdown`` request."""

    id: Any
    op: str
    tenant: str = "anon"


def _request_id(obj: Mapping[str, Any]) -> Any:
    rid = obj.get("id")
    if rid is not None and not isinstance(rid, (str, int)):
        raise ProtocolError("bad_request", "id: expected string or integer")
    return rid


def decode_vector(raw: Any, name: str = "x") -> np.ndarray:
    """Parse a JSON number list into a float64 vector."""
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("bad_request",
                            f"{name}: expected a non-empty number list")
    try:
        x = np.asarray(raw, dtype=np.float64)
    except (TypeError, ValueError):
        raise ProtocolError("bad_request",
                            f"{name}: expected a number list") from None
    if x.ndim != 1:
        raise ProtocolError("bad_request", f"{name}: expected a flat list")
    return x


def parse_request(obj: Any, max_rows: int = 200_000,
                  allow_paths: bool = False
                  ) -> Union[PowerRequest, ControlRequest]:
    """Validate one decoded request object.

    Raises :class:`ProtocolError` (always code ``bad_request``) on any
    malformation; the ``id`` is recovered best-effort first so the
    response can still be matched to the request.
    """
    if not isinstance(obj, Mapping):
        raise ProtocolError("bad_request", "request must be a JSON object")
    rid = _request_id(obj)
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(
            "bad_request", f"op: expected one of {', '.join(OPS)}, "
                           f"got {op!r}")
    tenant = obj.get("tenant", "anon")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("bad_request",
                            "tenant: expected a non-empty string")
    if op != "power":
        return ControlRequest(id=rid, op=op, tenant=tenant)
    try:
        spec = MatrixSpec.from_payload(obj.get("matrix"), max_rows=max_rows,
                                       allow_paths=allow_paths)
    except TooLargeError as exc:
        raise ProtocolError("too_large", str(exc)) from None
    except SpecError as exc:
        raise ProtocolError("bad_request", str(exc)) from None
    k = obj.get("k", 4)
    if not isinstance(k, int) or isinstance(k, bool) or k < 0:
        raise ProtocolError("bad_request",
                            "k: expected a non-negative integer")
    deadline = Deadline.never()
    raw_deadline = obj.get("deadline_ms")
    if raw_deadline is not None:
        if not isinstance(raw_deadline, (int, float)) \
                or isinstance(raw_deadline, bool) or raw_deadline <= 0:
            raise ProtocolError(
                "bad_request",
                "deadline_ms: expected a positive number of milliseconds")
        deadline = Deadline.after_ms(float(raw_deadline))
    x = decode_vector(obj.get("x"))
    return PowerRequest(id=rid, spec=spec, k=k, x=x, tenant=tenant,
                        deadline=deadline)


def ok_response(rid: Any, **payload: Any) -> Dict[str, Any]:
    """Success envelope for request ``rid``."""
    resp: Dict[str, Any] = {"id": rid, "ok": True}
    resp.update(payload)
    return resp


def error_response(rid: Any, code: str,
                   message: str) -> Dict[str, Any]:
    """Failure envelope carrying a structured code from
    :data:`ERROR_CODES`."""
    if code not in ERROR_CODES:
        code, message = "internal", f"[{code}] {message}"
    return {"id": rid, "ok": False,
            "error": {"code": code, "message": message}}


def encode_line(obj: Mapping[str, Any]) -> bytes:
    """Serialise one response/request as a newline-terminated JSON line.

    Compact separators keep result vectors as small as JSON allows;
    float formatting is Python's shortest-roundtrip ``repr``, which
    preserves every float64 bit across the wire.
    """
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"
