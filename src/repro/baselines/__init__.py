"""Baseline and related-work MPK implementations.

``standard`` MPK (Algorithm 1) lives in :mod:`repro.core.mpk`; this
package adds the MKL-like vendor baseline and a working LB-MPK
(level-blocked MPK, the closest related work of Section VI).
"""

from ..core.mpk import mpk_standard, mpk_standard_all
from .explicit_power import ExplicitPowerMPK
from .lbmpk import LevelBlockedMPK, bfs_levels, lbmpk, lbmpk_traffic_estimate
from .mkl_like import MklLikeMPK, mpk_mkl_like

__all__ = [
    "ExplicitPowerMPK",
    "mpk_standard",
    "mpk_standard_all",
    "LevelBlockedMPK",
    "bfs_levels",
    "lbmpk",
    "lbmpk_traffic_estimate",
    "MklLikeMPK",
    "mpk_mkl_like",
]
