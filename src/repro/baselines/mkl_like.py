"""Vendor-library baseline (the paper's Intel MKL comparator).

On the paper's Xeon platform the baseline MPK calls MKL's SpMV; offline
we stand in scipy.sparse's compiled CSR kernels — like MKL, a widely
deployed, heavily optimised C implementation behind a Python-visible
interface.  The conversion to scipy's format happens once (mirroring
MKL's matrix-handle creation), after which every power is a compiled
kernel call.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..sparse.convert import to_scipy_csr
from ..sparse.csr import CSRMatrix

__all__ = ["MklLikeMPK", "mpk_mkl_like"]


class MklLikeMPK:
    """Reusable MKL-style MPK executor over a prebuilt scipy handle."""

    def __init__(self, a: CSRMatrix) -> None:
        self.shape = a.shape
        self._handle = to_scipy_csr(a)

    def power(self, x: np.ndarray, k: int) -> np.ndarray:
        """``A^k x`` with ``k`` compiled SpMV calls."""
        if k < 0:
            raise ValueError("power k must be non-negative")
        y = np.asarray(x, dtype=np.float64).copy()
        for _ in range(k):
            y = self._handle @ y
        return y

    def sequence(self, x: np.ndarray, k: int) -> List[np.ndarray]:
        """The full Krylov sequence ``[x, Ax, ..., A^k x]``."""
        seq = [np.asarray(x, dtype=np.float64).copy()]
        for _ in range(max(k, 0)):
            seq.append(self._handle @ seq[-1])
        return seq


def mpk_mkl_like(a: CSRMatrix, x: np.ndarray, k: int) -> np.ndarray:
    """One-shot convenience wrapper around :class:`MklLikeMPK`."""
    return MklLikeMPK(a).power(x, k)
