"""LB-MPK: level-blocked matrix-power kernel (related work, Section VI).

A working implementation of the *level-based blocking* idea of Alappat et
al. ("Level-based blocking for sparse matrices", the paper's [15], built
on the RACE engine [37]), which the paper compares against conceptually:

1. rows are grouped into BFS *levels* of the adjacency graph — a row in
   level ``l`` only references columns in levels ``l-1 .. l+1``;
2. levels are swept left to right in *groups*; after the sweep has
   covered levels ``0..L``, power ``p`` is computable on levels
   ``0..L-(p-1)``;
3. all ``k`` powers advance in one wavefront, so a matrix row is used by
   every power while its level group is still cache-hot.

Functionally the result is exactly ``A^k x`` (tested against the
oracles).  The temporal-blocking win only materialises while the ``k``
in-flight level groups fit in cache — :func:`lbmpk_traffic_estimate`
models exactly that, producing the "performance drops with larger k
(~6-8)" behaviour the paper reports for LB-MPK, in contrast to FBMPK
which keeps only two live iterates regardless of ``k``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..memsim.traffic import (
    MatrixTrafficStats,
    TrafficBreakdown,
    TrafficParams,
    miss_fraction,
)
from ..reorder.graph import adjacency_from_matrix
from ..sparse.csr import CSRMatrix

__all__ = ["LevelBlockedMPK", "lbmpk", "bfs_levels", "lbmpk_traffic_estimate"]


def bfs_levels(a: CSRMatrix, root: int = 0) -> np.ndarray:
    """BFS level of every row from ``root`` over the symmetrised
    adjacency.  Disconnected components restart at the next unvisited
    vertex, continuing the level count so the level sets stay disjoint."""
    graph = adjacency_from_matrix(a)
    n = graph.n
    levels = np.full(n, -1, dtype=np.int64)
    next_start = int(root)
    base = 0
    while True:
        unvisited = np.nonzero(levels < 0)[0]
        if unvisited.size == 0:
            break
        start = next_start if levels[next_start] < 0 else int(unvisited[0])
        levels[start] = base
        queue = deque([start])
        deepest = base
        while queue:
            v = queue.popleft()
            for w in graph.neighbours(v):
                if levels[w] < 0:
                    levels[w] = levels[v] + 1
                    deepest = max(deepest, int(levels[w]))
                    queue.append(int(w))
        base = deepest + 1
    return levels


@dataclass
class _LevelSlice:
    """Rows of one level plus their pre-extracted matrix rows."""

    rows: np.ndarray
    sub: CSRMatrix


class LevelBlockedMPK:
    """Reusable LB-MPK executor.

    Preprocessing extracts per-level row submatrices (the RACE-style
    one-off cost the paper calls "significantly higher ... than our
    approach"); :meth:`power` then advances all ``k`` powers in a level
    wavefront.
    """

    def __init__(self, a: CSRMatrix, root: int = 0) -> None:
        if a.shape[0] != a.shape[1]:
            raise ValueError("LB-MPK requires a square matrix")
        self.a = a
        self.levels = bfs_levels(a, root)
        self.n_levels = int(self.levels.max(initial=-1)) + 1
        self._slices: List[_LevelSlice] = []
        for lvl in range(self.n_levels):
            rows = np.nonzero(self.levels == lvl)[0].astype(np.int64)
            self._slices.append(_LevelSlice(rows=rows, sub=a.select_rows(rows)))

    def _validate_levels(self) -> bool:
        """Check the level property every correctness claim rests on:
        stored entries only connect adjacent levels."""
        rows = np.repeat(np.arange(self.a.n_rows, dtype=np.int64),
                         self.a.row_nnz())
        gap = np.abs(self.levels[rows] - self.levels[self.a.indices])
        return bool((gap <= 1).all())

    def power(self, x: np.ndarray, k: int) -> np.ndarray:
        """``A^k x`` by the level wavefront.

        ``xs[p]`` holds power ``p``; ``done[p]`` is the first level not
        yet computed for that power.  Sweeping the frontier level ``L``
        forward (including ``k - 1`` virtual levels past the end to drain
        the pipeline), power ``p`` becomes computable on levels up to
        ``L - (p - 1)``.
        """
        if k < 0:
            raise ValueError("power k must be non-negative")
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.a.n_rows,):
            raise ValueError("dimension mismatch")
        if k == 0:
            return x.copy()
        xs = [x.copy()] + [np.zeros_like(x) for _ in range(k)]
        done = [self.n_levels] + [0] * k  # power 0 is fully known
        for frontier in range(self.n_levels + k - 1):
            for p in range(1, k + 1):
                limit = min(frontier - (p - 1) + 1, self.n_levels)
                while done[p] < limit:
                    sl = self._slices[done[p]]
                    xs[p][sl.rows] = sl.sub.matvec(xs[p - 1])
                    done[p] += 1
        assert all(d == self.n_levels for d in done)
        return xs[k]


def lbmpk(a: CSRMatrix, x: np.ndarray, k: int) -> np.ndarray:
    """One-shot LB-MPK (builds the level structure, runs, discards)."""
    return LevelBlockedMPK(a).power(x, k)


def lbmpk_traffic_estimate(
    stats: MatrixTrafficStats,
    k: int,
    cache_bytes: float,
    params: Optional[TrafficParams] = None,
) -> TrafficBreakdown:
    """DRAM traffic model for LB-MPK.

    The wavefront keeps ``~k`` level groups of the matrix plus ``k + 1``
    vector windows live; while that fits in cache the matrix is streamed
    once for all ``k`` powers, degrading towards ``k`` streams as the
    window outgrows the cache — the scaling failure the paper contrasts
    FBMPK against (Section VI).
    """
    params = params or TrafficParams()
    vb = params.value_bytes
    n_levels = max(int(stats.n / max(stats.bandwidth, 1.0)), 1)
    rows_per_level = stats.n / n_levels
    bytes_per_level = rows_per_level * (
        stats.nnz_per_row * (vb + params.index_bytes)  # matrix rows
        + (k + 1) * vb                                 # vector windows
    )
    window = k * bytes_per_level
    reload = miss_fraction(window, cache_bytes, params.cache_utilization)
    # Matrix streams: 1 pass when hot, approaching k passes when thrashing.
    matrix_passes = 1.0 + reload * (k - 1)
    matrix_bytes = matrix_passes * (
        stats.nnz * (vb + params.index_bytes) + (stats.n + 1) * params.index_bytes
    )
    vector_reads = (k + 1) * stats.n * vb  # every power read at least once
    vector_writes = k * stats.n * vb * (2.0 if params.write_allocate else 1.0)
    return TrafficBreakdown(
        matrix_bytes=matrix_bytes,
        vector_read_bytes=vector_reads,
        vector_write_bytes=vector_writes,
    )
