"""Explicit-power MPK baseline: precompute ``A^2``, halve the passes.

An obvious alternative to FBMPK that the comparison benches quantify:
if ``A^2`` is formed once (offline, like FBMPK's preprocessing), then
``A^k x`` needs only ``ceil(k/2)`` SpMV invocations — the *same* pass
count as FBMPK.  The catch is that each pass now streams ``nnz(A^2)``
entries, and sparse squaring fills in: for the evaluation matrices
``nnz(A^2)/nnz(A)`` is typically 2-4x, wiping out the saving (and the
storage doubles/quadruples on top).  FBMPK gets the pass reduction at
``nnz(A)`` per pass with ~zero extra storage — that contrast is the
point of this baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..sparse.csr import CSRMatrix
from ..sparse.spgemm import spgemm

__all__ = ["ExplicitPowerMPK"]


@dataclass(frozen=True)
class _Costs:
    """Per-``A^k x`` traffic summary in stored-entry units."""

    passes_a2: int
    passes_a: int
    entries_streamed: int


class ExplicitPowerMPK:
    """MPK through a precomputed ``A^2`` handle."""

    def __init__(self, a: CSRMatrix, max_products: int = 200_000_000) -> None:
        if a.shape[0] != a.shape[1]:
            raise ValueError("MPK requires a square matrix")
        self.a = a
        self.a2 = spgemm(a, a, max_products=max_products)

    @property
    def fill_in(self) -> float:
        """``nnz(A^2) / nnz(A)`` — the price of the explicit square."""
        return self.a2.nnz / max(self.a.nnz, 1)

    def power(self, x: np.ndarray, k: int) -> np.ndarray:
        """``A^k x`` with ``floor(k/2)`` passes over ``A^2`` plus one
        pass over ``A`` when ``k`` is odd."""
        if k < 0:
            raise ValueError("power k must be non-negative")
        with obs.span("mpk.explicit_power", k=k, n=self.a.n_rows):
            y = np.asarray(x, dtype=np.float64).copy()
            for _ in range(k // 2):
                y = self.a2.matvec(y)
            if k % 2:
                y = self.a.matvec(y)
        # In units of "one full read of A": each A^2 pass streams
        # fill_in times the entries of A.
        obs.add_counter("mpk_explicit.matrix_read_equivalents",
                        self.cost(k).entries_streamed / max(self.a.nnz, 1),
                        unit="A-reads")
        return y

    def cost(self, k: int) -> _Costs:
        """Stored entries streamed for one ``A^k x``."""
        p2, p1 = k // 2, k % 2
        return _Costs(passes_a2=p2, passes_a=p1,
                      entries_streamed=p2 * self.a2.nnz + p1 * self.a.nnz)

    def entries_vs_fbmpk(self, k: int) -> float:
        """Streamed entries relative to FBMPK's ``~(k+1)/2 * nnz(A)``
        (>1 means FBMPK streams less)."""
        fb = (k + 1) / 2 * self.a.nnz
        return self.cost(k).entries_streamed / fb if fb else float("nan")
