"""Submatrix partitioning ``A = L + D + U`` (paper Section III-A).

The sparse matrix is split into the strict lower triangle ``L``, the
diagonal ``D`` (stored as a dense vector ``d`` to save index storage and
the inner-loop lookup, as the paper does) and the strict upper triangle
``U``.  ``L`` and ``U`` stay in CSR.

The split is what enables the forward-backward pipeline: a full SpMV
becomes ``Ax = Lx + d*x + Ux`` and the two triangular halves can each be
fused across two consecutive iterates.

Storage accounting for Table IV is provided by
:meth:`TriangularPartition.storage_report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..sparse.csr import CSRMatrix

__all__ = ["TriangularPartition", "split_ldu", "StorageReport"]


@dataclass(frozen=True)
class StorageReport:
    """Array-length accounting mirroring the paper's Table IV.

    Attributes hold *element counts* (not bytes) for each constituent
    array, for both the monolithic CSR layout and the L+U+d layout.
    """

    csr_col_ind: int
    csr_row_ptr: int
    csr_values: int
    csr_d: int
    ldu_col_ind: int
    ldu_row_ptr: int
    ldu_values: int
    ldu_d: int

    def total_csr(self) -> int:
        """Total element count of the monolithic CSR layout."""
        return self.csr_col_ind + self.csr_row_ptr + self.csr_values + self.csr_d

    def total_ldu(self) -> int:
        """Total element count of the L+U+d layout."""
        return self.ldu_col_ind + self.ldu_row_ptr + self.ldu_values + self.ldu_d

    def overhead_ratio(self) -> float:
        """L+U+d elements over CSR elements; ~1.0 per the paper."""
        return self.total_ldu() / self.total_csr()

    def as_rows(self) -> Dict[str, Dict[str, int]]:
        """Table IV as a nested dict: format -> column -> count."""
        return {
            "CSR": {
                "col_ind": self.csr_col_ind,
                "row_ptr": self.csr_row_ptr,
                "values": self.csr_values,
                "d": self.csr_d,
            },
            "L+U+d": {
                "col_ind": self.ldu_col_ind,
                "row_ptr": self.ldu_row_ptr,
                "values": self.ldu_values,
                "d": self.ldu_d,
            },
        }


class TriangularPartition:
    """The ``A = L + D + U`` decomposition of a square CSR matrix.

    Attributes
    ----------
    lower:
        Strict lower triangle in CSR (column < row).
    upper:
        Strict upper triangle in CSR (column > row).
    diag:
        Dense vector of length ``n`` holding the diagonal, including
        explicit zeros for rows whose diagonal entry is absent.
    """

    __slots__ = ("lower", "upper", "diag", "shape", "source_nnz")

    def __init__(
        self,
        lower: CSRMatrix,
        upper: CSRMatrix,
        diag: np.ndarray,
        source_nnz: int,
    ) -> None:
        if lower.shape != upper.shape:
            raise ValueError("lower/upper shape mismatch")
        if lower.shape[0] != lower.shape[1]:
            raise ValueError("partition requires a square matrix")
        if diag.shape != (lower.shape[0],):
            raise ValueError("diagonal length mismatch")
        self.lower = lower
        self.upper = upper
        self.diag = np.ascontiguousarray(diag, dtype=np.float64)
        self.shape = lower.shape
        self.source_nnz = int(source_nnz)

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.shape[0]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Full SpMV through the partition: ``Ax = Lx + d*x + Ux``."""
        x = np.asarray(x, dtype=np.float64)
        return self.lower.matvec(x) + self.diag * x + self.upper.matvec(x)

    def reassemble(self) -> CSRMatrix:
        """Rebuild the original matrix ``A`` (exact round trip, modulo
        explicit stored zeros on the diagonal)."""
        n = self.n
        rows_l = np.repeat(np.arange(n, dtype=np.int64), self.lower.row_nnz())
        rows_u = np.repeat(np.arange(n, dtype=np.int64), self.upper.row_nnz())
        d_rows = np.nonzero(self.diag)[0].astype(np.int64)
        rows = np.concatenate([rows_l, d_rows, rows_u])
        cols = np.concatenate([self.lower.indices, d_rows, self.upper.indices])
        vals = np.concatenate([self.lower.data, self.diag[d_rows], self.upper.data])
        return CSRMatrix.from_coo_arrays(rows, cols, vals, self.shape,
                                         sum_duplicates=False)

    def storage_report(self) -> StorageReport:
        """Element-count comparison with monolithic CSR (Table IV).

        With ``nnz`` the stored entries of ``A`` and ``n`` its dimension:
        CSR needs ``nnz + (n+1) + nnz`` elements; L+U+d needs
        ``(nnz - n_diag)`` column indices and values, two row-pointer
        arrays of ``n+1``, and the dense ``d`` of ``n``.
        """
        n = self.n
        off_diag = self.lower.nnz + self.upper.nnz
        return StorageReport(
            csr_col_ind=self.source_nnz,
            csr_row_ptr=n + 1,
            csr_values=self.source_nnz,
            csr_d=0,
            ldu_col_ind=off_diag,
            ldu_row_ptr=2 * (n + 1),
            ldu_values=off_diag,
            ldu_d=n,
        )


def split_ldu(a: CSRMatrix) -> TriangularPartition:
    """Split a square CSR matrix into :class:`TriangularPartition`.

    Duplicate diagonal entries (possible after COO assembly without
    deduplication) are summed into ``d``.
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError("split_ldu requires a square matrix")
    n = a.n_rows
    rows = np.repeat(np.arange(n, dtype=np.int64), a.row_nnz())
    cols = a.indices
    below = cols < rows
    above = cols > rows
    on_diag = ~(below | above)
    lower = CSRMatrix.from_coo_arrays(
        rows[below], cols[below], a.data[below], a.shape, sum_duplicates=False
    )
    upper = CSRMatrix.from_coo_arrays(
        rows[above], cols[above], a.data[above], a.shape, sum_duplicates=False
    )
    diag = np.zeros(n, dtype=np.float64)
    np.add.at(diag, rows[on_diag], a.data[on_diag])
    return TriangularPartition(lower, upper, diag, a.nnz)
