"""Generic sequence-SpMV: ``y = sum_{i=0..k} alpha_i A^i x``.

The paper's FBMPK library "is designed to support generic sequence sparse
matrix-vector multiplication of the form ``y = sum alpha_i A^i x``"
(Section I).  This module provides that public entry point over any of
the MPK engines: the coefficients are folded into the running sum as each
power is produced (via the ``on_iterate`` callback), so no intermediate
vector beyond FBMPK's two live iterates is ever stored.

Polynomial evaluation in the matrix ``A`` is exactly what Chebyshev
smoothers/filters and s-step Krylov bases need; see
:mod:`repro.solvers`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..sparse.csr import CSRMatrix
from ..sparse.spmv import spmv_vectorised
from .fbmpk import FBMPKOperator, build_fbmpk_operator
from .mpk import mpk_standard_all

__all__ = ["sspmv_standard", "sspmv_fbmpk", "SSpMVProblem"]


def _checked_coefficients(alphas: Sequence[float]) -> np.ndarray:
    """Validate the coefficient list; real coefficients become float64,
    complex ones complex128 (the paper allows "real or complex
    constants", Section I)."""
    alphas = np.asarray(alphas)
    if alphas.ndim != 1 or alphas.shape[0] == 0:
        raise ValueError("alphas must be a non-empty 1-D coefficient list")
    if np.iscomplexobj(alphas):
        return alphas.astype(np.complex128)
    return alphas.astype(np.float64)


def sspmv_standard(a: CSRMatrix, x: np.ndarray,
                   alphas: Sequence[float]) -> np.ndarray:
    """Baseline combination: run the standard MPK and accumulate
    ``alpha_i * A^i x`` — reads A once per power (``k`` full reads)."""
    alphas = _checked_coefficients(alphas)
    k = alphas.shape[0] - 1
    seq = mpk_standard_all(a, x, k, kernel=spmv_vectorised)
    y = np.zeros(seq[0].shape, dtype=np.result_type(alphas, seq[0]))
    for alpha, xi in zip(alphas, seq):
        if alpha != 0.0:
            y += alpha * xi
    return y


def sspmv_fbmpk(op: FBMPKOperator, x: np.ndarray,
                alphas: Sequence[float]) -> np.ndarray:
    """FBMPK combination: ``~(k+1)/2`` full matrix reads.

    The running sum starts at ``alpha_0 x`` and each produced power is
    folded in through the iterate callback.
    """
    alphas = _checked_coefficients(alphas)
    k = alphas.shape[0] - 1
    x = np.asarray(x, dtype=np.float64)
    acc = (alphas[0] * x).astype(np.result_type(alphas, x))

    def fold(i: int, xi: np.ndarray) -> None:
        if alphas[i] != 0.0:
            np.add(acc, alphas[i] * xi, out=acc)

    op.power(x, k, on_iterate=fold)
    return acc


class SSpMVProblem:
    """A reusable ``y = sum alpha_i A^i x`` evaluator.

    Wraps the one-off FBMPK preprocessing so that repeated evaluations
    with different vectors and coefficient sets amortise it — the
    usage pattern of iterative solvers, where the paper argues the
    preprocessing cost "is usually negligible at runtime" (Section V-F).
    """

    def __init__(
        self,
        a: CSRMatrix,
        strategy: str = "abmc",
        block_size: int = 1,
        operator: Optional[FBMPKOperator] = None,
    ) -> None:
        self.a = a
        self.operator = operator if operator is not None else \
            build_fbmpk_operator(a, strategy=strategy, block_size=block_size)
        self._partition = self.operator.part

    def evaluate(self, x: np.ndarray, alphas: Sequence[float]) -> np.ndarray:
        """Evaluate the combination with the FBMPK pipeline."""
        return sspmv_fbmpk(self.operator, x, alphas)

    def evaluate_baseline(self, x: np.ndarray,
                          alphas: Sequence[float]) -> np.ndarray:
        """Evaluate with the standard pipeline (for validation/benching)."""
        return sspmv_standard(self.a, x, alphas)

    def power(self, x: np.ndarray, k: int) -> np.ndarray:
        """Plain ``A^k x`` through the preprocessed operator."""
        return self.operator.power(x, k)
