"""Back-to-back (BtB) interleaved dense-vector storage (Section III-C).

FBMPK keeps two live iterates (one even power, one odd power).  A row's
update reads *the same position* of both vectors, so storing them as two
separate length-``n`` arrays touches two distant cache lines per row.  The
BtB layout interleaves them into one length-``2n`` array — ``xy[2j]`` is
the even iterate's ``j``-th entry, ``xy[2j+1]`` the odd iterate's — so the
pair shares a cache line.

:class:`InterleavedPair` provides the layout with named accessors; a
C-contiguous ``(n, 2)`` numpy view gives vectorised kernels the same
physical interleaving the paper's C code uses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["InterleavedPair", "interleave", "deinterleave"]


def interleave(even: np.ndarray, odd: np.ndarray) -> np.ndarray:
    """Merge two length-``n`` vectors into one length-``2n`` BtB array."""
    even = np.asarray(even, dtype=np.float64)
    odd = np.asarray(odd, dtype=np.float64)
    if even.shape != odd.shape or even.ndim != 1:
        raise ValueError("interleave expects two 1-D vectors of equal length")
    xy = np.empty(2 * even.shape[0], dtype=np.float64)
    xy[0::2] = even
    xy[1::2] = odd
    return xy


def deinterleave(xy: np.ndarray,
                 copy: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """Split a BtB array back into ``(even, odd)``.

    By default the halves are independent copies.  ``copy=False``
    returns strided views sharing the BtB buffer's memory — free to
    produce, but writes through them (or later sweeps over the buffer)
    are visible in both directions.
    """
    xy = np.asarray(xy, dtype=np.float64)
    if xy.ndim != 1 or xy.shape[0] % 2:
        raise ValueError("BtB array must be 1-D with even length")
    even, odd = xy[0::2], xy[1::2]
    if copy:
        return even.copy(), odd.copy()
    return even, odd


class InterleavedPair:
    """Two logically separate vectors in one physically interleaved buffer.

    The paper always initialises ``x_0`` at the even positions
    (Section III-E); :meth:`from_initial` follows that convention.
    """

    __slots__ = ("xy", "n")

    def __init__(self, xy: np.ndarray) -> None:
        xy = np.ascontiguousarray(xy, dtype=np.float64)
        if xy.ndim != 1 or xy.shape[0] % 2:
            raise ValueError("backing buffer must be 1-D with even length")
        self.xy = xy
        self.n = xy.shape[0] // 2

    @classmethod
    def from_initial(cls, x0: np.ndarray) -> "InterleavedPair":
        """Create a pair with ``x0`` in the even slots and zeros in the odd."""
        x0 = np.asarray(x0, dtype=np.float64)
        return cls(interleave(x0, np.zeros_like(x0)))

    @property
    def even(self) -> np.ndarray:
        """Strided view of the even-position vector (no copy)."""
        return self.xy[0::2]

    @property
    def odd(self) -> np.ndarray:
        """Strided view of the odd-position vector (no copy)."""
        return self.xy[1::2]

    def as_matrix(self) -> np.ndarray:
        """The same buffer as a C-contiguous ``(n, 2)`` view.

        ``view[:, 0]`` is the even vector, ``view[:, 1]`` the odd one; the
        memory layout is exactly the BtB interleaving, so row-wise access
        of both iterates stays cache-line local.
        """
        return self.xy.reshape(self.n, 2)

    def get(self, parity: int) -> np.ndarray:
        """Vector at ``parity`` (0 = even slots, 1 = odd slots) as a view."""
        if parity not in (0, 1):
            raise ValueError("parity must be 0 or 1")
        return self.xy[parity::2]
