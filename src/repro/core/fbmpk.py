"""The forward-backward matrix-power kernel (FBMPK), Section III.

Three implementations of ``y = A^k x`` over the ``A = L + D + U``
partition, all bit-compatible with the standard MPK up to floating-point
summation order:

``fbmpk_reference``
    Literal transcription of the paper's Algorithm 2 (plus the even-k
    variant it mentions): pure-Python row loops over the BtB interleaved
    ``xy`` buffer.  The semantic ground truth.
``fbmpk_unfused``
    Vectorised with full-triangle numpy kernels; performs the same
    forward/backward staging but streams each triangle twice per stage.
    Needs no ordering information — works on any matrix as-is.
``fbmpk_fused``
    The production path.  Rows are partitioned into *sweep groups* (ABMC
    colours/waves or dependency levels) such that every in-sweep
    dependency falls in an earlier group; each group then computes its
    contributions to **both** live iterates with a single fused
    two-column product (``L_g @ [x_even, x_odd]``), so each triangle is
    streamed exactly once per stage — the paper's
    ``(k+1)/2``-matrix-reads pipeline, realised with numpy SpMM.

:func:`build_fbmpk_operator` performs the one-off preprocessing (split,
optional ABMC reorder, group extraction) and returns an
:class:`FBMPKOperator` whose :meth:`~FBMPKOperator.power` hides the
permutation bookkeeping.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Literal, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..parallel.executor import (
    ExecutionStats,
    PhaseExecutionError,
    ThreadedPhaseExecutor,
    check_phases,
)
from ..parallel.dispatch import DescriptorBatch
from ..parallel.procexec import ProcessPhaseExecutor
from ..robust.validate import ensure_finite
from ..parallel.scheduler import (
    BlockTask,
    Phase,
    build_phases,
    phases_from_groups,
)
from ..reorder.abmc import ABMCOrdering, abmc_ordering
from ..reorder.levels import compute_levels, levels_to_groups
from ..reorder.levels_blocked import (
    OP_EVEN,
    OP_FINAL_ODD,
    OP_ODD,
    LevelBlocking,
    blocked_descriptors,
    build_blocked_schedule,
    build_level_blocking,
    check_blocked_schedule,
)
from ..reorder.permute import permute_symmetric, permute_vector, unpermute_vector
from ..sparse.csr import CSRMatrix, reduce_rows
from .btb import InterleavedPair
from .partition import TriangularPartition, split_ldu

__all__ = [
    "KernelCounter",
    "SweepGroups",
    "FBMPKOperator",
    "LevelsBlockedOperator",
    "fbmpk_reference",
    "fbmpk_unfused",
    "fbmpk_fused",
    "build_fbmpk_operator",
    "make_sweep_groups_abmc",
    "make_sweep_groups_levels",
    "check_sweep_groups",
]

IterateCallback = Callable[[int, np.ndarray], None]

#: Last-level cache size assumed by the per-run DRAM traffic estimate
#: published to telemetry (a generic server-class 32 MiB LLC; the
#: machine models in :mod:`repro.machine` carry the platform-accurate
#: values for the paper's figures).
MODEL_CACHE_BYTES = 32 * 1024 * 1024


@dataclass
class KernelCounter:
    """Instrumented pass/entry counters for verifying the access plan.

    ``l_passes``/``u_passes`` increment once per full stream over the
    respective triangle; ``l_entries``/``u_entries`` accumulate the number
    of stored entries actually touched (group streams sum to full passes).
    """

    l_passes: int = 0
    u_passes: int = 0
    l_entries: int = 0
    u_entries: int = 0
    _partial_l: int = field(default=0, repr=False)
    _partial_u: int = field(default=0, repr=False)

    def count_l(self, nnz: int, total: int) -> None:
        """Record ``nnz`` streamed L-entries; rolls partial group streams
        into whole passes against the triangle's ``total`` entries."""
        self.l_entries += nnz
        self._partial_l += nnz
        while total and self._partial_l >= total:
            self.l_passes += 1
            self._partial_l -= total

    def count_u(self, nnz: int, total: int) -> None:
        """Record ``nnz`` streamed U-entries (see :meth:`count_l`)."""
        self.u_entries += nnz
        self._partial_u += nnz
        while total and self._partial_u >= total:
            self.u_passes += 1
            self._partial_u -= total


# ---------------------------------------------------------------------------
# reference implementation (Algorithm 2, pure Python)
# ---------------------------------------------------------------------------
def fbmpk_reference(
    part: TriangularPartition,
    x: np.ndarray,
    k: int,
    on_iterate: Optional[IterateCallback] = None,
    counter: Optional[KernelCounter] = None,
) -> np.ndarray:
    """Algorithm 2 verbatim (generalised to any ``k >= 0``).

    Row loops in pure Python over the interleaved ``xy`` buffer: the even
    slots carry the even-power iterate and the odd slots the odd-power
    one, exactly as Section III-E prescribes ("we always initialise x0 at
    the even position").  ``on_iterate(i, x_i)`` fires for every produced
    power ``i = 1..k``, which lets the generic SSpMV combination
    accumulate ``sum(alpha_i A^i x)`` without storing the sequence.
    """
    if k < 0:
        raise ValueError("power k must be non-negative")
    x = np.asarray(x, dtype=np.float64)
    n = part.n
    if x.shape != (n,):
        raise ValueError(f"x has shape {x.shape}, expected ({n},)")
    if k == 0:
        return x.copy()
    L, U, d = part.lower, part.upper, part.diag
    pair = InterleavedPair.from_initial(x)
    xy = pair.xy
    # Head: tmpvec = U x0 (a plain SpMV in the paper's line 3).
    tmp = U.matvec_scalar(x)
    if counter:
        counter.count_u(U.nnz, U.nnz)
    power = 0
    for _ in range(k // 2):
        # Forward stage (lines 7-16): stream L once top-down, finishing
        # x_{power+1} in the odd slots while pre-accumulating
        # L x_{power+1} + D x_{power+1} into tmpvec for the next stage.
        for i in range(n):
            sum0 = tmp[i] + d[i] * xy[2 * i]
            sum1 = 0.0
            for p in range(L.indptr[i], L.indptr[i + 1]):
                j = L.indices[p]
                v = L.data[p]
                sum0 += v * xy[2 * j]
                sum1 += v * xy[2 * j + 1]
            xy[2 * i + 1] = sum0
            tmp[i] = sum1 + d[i] * xy[2 * i + 1]
        power += 1
        if counter:
            counter.count_l(L.nnz, L.nnz)
        if on_iterate:
            on_iterate(power, pair.odd.copy())
        # Backward stage (lines 17-28): stream U once bottom-up, finishing
        # x_{power+1} in the even slots and leaving tmpvec = U x_{power+1}.
        for i in range(n - 1, -1, -1):
            sum0 = tmp[i]
            sum1 = 0.0
            for p in range(U.indptr[i], U.indptr[i + 1]):
                j = U.indices[p]
                v = U.data[p]
                sum0 += v * xy[2 * j + 1]
                sum1 += v * xy[2 * j]
            xy[2 * i] = sum0
            tmp[i] = sum1
        power += 1
        if counter:
            counter.count_u(U.nnz, U.nnz)
        if on_iterate:
            on_iterate(power, pair.even.copy())
    if k % 2:
        # Tail (lines 30-32): y = L x_{k-1} + tmpvec + d * x_{k-1}.
        even = pair.even.copy()
        y = L.matvec_scalar(even) + tmp + d * even
        if counter:
            counter.count_l(L.nnz, L.nnz)
        if on_iterate:
            on_iterate(k, y.copy())
        return y
    return pair.even.copy()


# ---------------------------------------------------------------------------
# unfused vectorised implementation
# ---------------------------------------------------------------------------
def fbmpk_unfused(
    part: TriangularPartition,
    x: np.ndarray,
    k: int,
    on_iterate: Optional[IterateCallback] = None,
) -> np.ndarray:
    """FBMPK staging with whole-triangle numpy kernels.

    Semantically identical to :func:`fbmpk_reference` but each stage does
    two separate full-triangle products instead of one fused pass (numpy
    cannot express the row-pipelined reuse without grouping).  Useful as a
    fast oracle and for matrices where no good sweep grouping exists.
    """
    if k < 0:
        raise ValueError("power k must be non-negative")
    x = np.asarray(x, dtype=np.float64)
    n = part.n
    if x.shape != (n,):
        raise ValueError(f"x has shape {x.shape}, expected ({n},)")
    if k == 0:
        return x.copy()
    L, U, d = part.lower, part.upper, part.diag
    even = x.copy()
    tmp = U.matvec(even)
    power = 0
    odd = np.zeros(n, dtype=np.float64)
    for _ in range(k // 2):
        odd = tmp + d * even + L.matvec(even)
        tmp = L.matvec(odd) + d * odd
        power += 1
        if on_iterate:
            on_iterate(power, odd.copy())
        even = tmp + U.matvec(odd)
        tmp = U.matvec(even)
        power += 1
        if on_iterate:
            on_iterate(power, even.copy())
    if k % 2:
        y = L.matvec(even) + tmp + d * even
        if on_iterate:
            on_iterate(k, y.copy())
        return y
    return even.copy()


# ---------------------------------------------------------------------------
# sweep groups
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepGroups:
    """Row partition driving the fused sweeps.

    ``forward``/``backward`` list row-index arrays in *processing order*;
    validity requires every strict-lower (resp. strict-upper) dependency
    of a group's rows to lie in a strictly earlier group of that sweep.
    """

    forward: List[np.ndarray]
    backward: List[np.ndarray]
    origin: str

    @property
    def n_forward(self) -> int:
        """Number of forward sweep phases (barriers in the parallel run)."""
        return len(self.forward)

    @property
    def n_backward(self) -> int:
        """Number of backward sweep phases."""
        return len(self.backward)


def _check_groups_one_sweep(tri: CSRMatrix, groups: Sequence[np.ndarray]) -> bool:
    """Dependency check for one sweep direction: all stored columns of a
    group's rows must belong to strictly earlier groups."""
    n = tri.n_rows
    rank = np.full(n, -1, dtype=np.int64)
    for g, rows in enumerate(groups):
        if (rank[rows] != -1).any():
            return False  # overlapping groups
        rank[rows] = g
    if (rank < 0).any():
        return False  # not a partition
    rows_expanded = np.repeat(np.arange(n, dtype=np.int64), tri.row_nnz())
    return bool((rank[tri.indices] < rank[rows_expanded]).all())


def check_sweep_groups(part: TriangularPartition, groups: SweepGroups) -> bool:
    """Validate a :class:`SweepGroups` against both triangles."""
    return _check_groups_one_sweep(part.lower, groups.forward) and \
        _check_groups_one_sweep(part.upper, groups.backward)


def make_sweep_groups_levels(part: TriangularPartition) -> SweepGroups:
    """Sweep groups from dependency levels (no reordering required).

    Forward groups are the level sets of ``L``'s row DAG; backward groups
    the level sets of ``U``'s (computed bottom-up).  This is the
    level-scheduling strategy the paper points to in Section VII.
    """
    fw = levels_to_groups(compute_levels(part.lower, "forward"))
    bw = levels_to_groups(compute_levels(part.upper, "backward"))
    return SweepGroups(forward=fw, backward=bw, origin="levels")


def make_sweep_groups_abmc(ordering: ABMCOrdering) -> SweepGroups:
    """Sweep groups from an ABMC ordering of the (already reordered)
    matrix.

    Within a colour, blocks are mutually independent, so the ``w``-th rows
    of all blocks of one colour form a valid group (a *wave*): their
    lower-triangle dependencies are in earlier colours or earlier waves of
    the same block.  Forward processes colours ascending with waves
    top-down; backward processes colours descending with waves bottom-up.
    With ``block_size == 1`` this degenerates to one group per colour.
    """
    forward: List[np.ndarray] = []
    backward_per_color: List[List[np.ndarray]] = []
    for color in range(ordering.n_colors):
        ranges = ordering.blocks_of_color(color)
        if not ranges:
            continue
        starts = np.array([r[0] for r in ranges], dtype=np.int64)
        stops = np.array([r[1] for r in ranges], dtype=np.int64)
        max_len = int((stops - starts).max())
        bw_waves: List[np.ndarray] = []
        for w in range(max_len):
            fw_rows = starts + w
            forward.append(fw_rows[fw_rows < stops])
            bw_rows = stops - 1 - w
            bw_waves.append(bw_rows[bw_rows >= starts])
        backward_per_color.append(bw_waves)
    # Backward sweep: colours descending, but waves inside a colour keep
    # their bottom-up order (deepest rows of each block first).
    backward: List[np.ndarray] = []
    for bw_waves in reversed(backward_per_color):
        backward.extend(bw_waves)
    return SweepGroups(forward=forward, backward=backward, origin="abmc")


# ---------------------------------------------------------------------------
# fused vectorised implementation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _SweepPart:
    """One group's rows plus its pre-extracted triangle submatrix.

    ``apply`` performs the fused two-column product ``sub @ XY``; with
    the scipy backend it closes over a compiled CSR handle, with the
    numpy backend over :meth:`CSRMatrix.matmat`.
    """

    rows: np.ndarray
    nnz: int
    apply: Callable[[np.ndarray], np.ndarray]


Backend = Literal["numpy", "scipy"]
ExecutorKind = Literal["serial", "threads", "processes"]

#: Valid values of ``FBMPKOperator.executor`` (the ``"processes"``
#: backend is the shared-memory worker pool of
#: :mod:`repro.parallel.procexec`).
EXECUTOR_KINDS = ("serial", "threads", "processes")

#: Sentinel distinguishing "keep the current value" from an explicit
#: None in configure_executor (None disables the hang watchdog).
_KEEP = object()


def _snapshot_counter(counter: Optional[KernelCounter]):
    """Capture a :class:`KernelCounter`'s fields so an aborted threaded
    attempt can be rolled back before the serial fallback recounts."""
    if counter is None:
        return None
    return (counter.l_passes, counter.u_passes, counter.l_entries,
            counter.u_entries, counter._partial_l, counter._partial_u)


def _restore_counter(counter: Optional[KernelCounter], snap) -> None:
    """Undo the counts of an aborted attempt (see :func:`_snapshot_counter`)."""
    if counter is None or snap is None:
        return
    (counter.l_passes, counter.u_passes, counter.l_entries,
     counter.u_entries, counter._partial_l, counter._partial_u) = snap


def _inverse_rows(perm: np.ndarray) -> np.ndarray:
    """Row gather that undoes ``X[perm]`` (used by the block kernels)."""
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
    return inv


def _as_float64(x: np.ndarray) -> np.ndarray:
    """``np.asarray(x, float64)`` with an explicit no-copy fast path: a
    float64 ndarray passes through untouched (the input is written
    straight into the operator's persistent BtB buffer, so no defensive
    copy is needed either)."""
    if isinstance(x, np.ndarray) and x.dtype == np.float64:
        return x
    return np.asarray(x, dtype=np.float64)


def _make_matmat(sub: CSRMatrix, backend: Backend) -> Callable[[np.ndarray], np.ndarray]:
    if backend == "scipy":
        from ..sparse.convert import to_scipy_csr

        handle = to_scipy_csr(sub)
        return lambda XY: handle @ XY
    return sub.matmat


def _make_matvec(tri: CSRMatrix, backend: Backend) -> Callable[[np.ndarray], np.ndarray]:
    if backend == "scipy":
        from ..sparse.convert import to_scipy_csr

        handle = to_scipy_csr(tri)
        return lambda x: handle @ x
    return tri.matvec


def _extract_parts(tri: CSRMatrix, groups: Sequence[np.ndarray],
                   backend: Backend) -> List[_SweepPart]:
    parts = []
    for rows in groups:
        if not len(rows):
            continue
        rows = np.asarray(rows, dtype=np.int64)
        sub = tri.select_rows(rows)
        parts.append(_SweepPart(rows=rows, nnz=sub.nnz,
                                apply=_make_matmat(sub, backend)))
    return parts


class _BlockKernel:
    """Per-block compute of the threaded executor (one task, one thread).

    Processes a contiguous row range ``[start, stop)`` of one triangle in
    two vectorised steps per stage.  Step 1 finishes the new iterate for
    the whole block from values that are stable during the stage (the
    even slots and ``tmp`` for the forward sweep, the odd slots and
    ``tmp`` for the backward one); step 2 re-streams the block's rows
    against the freshly written slots to leave ``tmp`` for the next
    stage.  Intra-block dependencies are honoured because step 2 only
    reads values written either in earlier phases (protected by the
    colour barrier) or by step 1 of this very block, and same-colour
    blocks share no matrix entries, so concurrently running blocks touch
    disjoint vector elements — element-wise disjoint NumPy writes are
    race-free.  The per-row reduction (:func:`reduce_rows`) performs the
    same summation as the serial fused sweeps, which makes threaded and
    serial results bit-identical.
    """

    __slots__ = ("rows", "indptr", "cols", "data", "nnz")

    def __init__(self, tri: CSRMatrix, task: BlockTask) -> None:
        start, stop = task.start, task.stop
        lo, hi = int(tri.indptr[start]), int(tri.indptr[stop])
        self.rows = slice(start, stop)
        self.indptr = tri.indptr[start:stop + 1] - lo
        self.cols = tri.indices[lo:hi]
        self.data = tri.data[lo:hi]
        self.nnz = hi - lo

    def forward(self, XY: np.ndarray, tmp: np.ndarray,
                d: np.ndarray) -> None:
        """Forward-stage block update: finish the odd iterate for this
        block and leave ``tmp = L x_odd + D x_odd`` on its rows."""
        r = self.rows
        new_odd = tmp[r] + d[r] * XY[r, 0] \
            + reduce_rows(self.data * XY[self.cols, 0], self.indptr)
        XY[r, 1] = new_odd
        tmp[r] = reduce_rows(self.data * XY[self.cols, 1], self.indptr) \
            + d[r] * new_odd

    def backward(self, XY: np.ndarray, tmp: np.ndarray) -> None:
        """Backward-stage block update: finish the even iterate for this
        block and leave ``tmp = U x_even`` on its rows."""
        r = self.rows
        XY[r, 0] = tmp[r] \
            + reduce_rows(self.data * XY[self.cols, 1], self.indptr)
        tmp[r] = reduce_rows(self.data * XY[self.cols, 0], self.indptr)


@dataclass
class _ThreadedState:
    """Lazily built artefacts of the ``"threads"`` execution backend.

    The phase schedule is packed once into :class:`DescriptorBatch`
    arrays (the same plan representation the process backend registers
    in its arena); ``fw_kernels``/``bw_kernels`` are lists aligned with
    the batch's global descriptor order, so the claim loop indexes them
    directly.
    """

    fw_phases: List[Phase]
    bw_phases: List[Phase]
    fw_batch: DescriptorBatch
    bw_batch: DescriptorBatch
    fw_kernels: List[_BlockKernel]
    bw_kernels: List[_BlockKernel]
    pool: ThreadedPhaseExecutor


@dataclass
class _ProcState:
    """Lazily built artefacts of the ``"processes"`` execution backend.

    The pool owns the shared-memory arena holding the triangles and the
    working buffers; the operator's ``_xy_buf``/``_tmp_buf`` are bound
    to the arena's segments while this state is live, so the sweeps
    write straight into memory every worker has mapped.  ``fw_plan``/
    ``bw_plan`` are the registered descriptor-plan slots both the
    vector and block sweeps dispatch through.
    """

    fw_phases: List[Phase]
    bw_phases: List[Phase]
    fw_plan: int
    bw_plan: int
    pool: ProcessPhaseExecutor


PhasePlan = Tuple[List[Phase], List[Phase]]


def fbmpk_fused(
    part: TriangularPartition,
    groups: SweepGroups,
    x: np.ndarray,
    k: int,
    on_iterate: Optional[IterateCallback] = None,
    counter: Optional[KernelCounter] = None,
) -> np.ndarray:
    """Fused FBMPK over precomputed sweep groups (convenience wrapper that
    extracts group submatrices on the fly; prefer
    :class:`FBMPKOperator` for repeated use)."""
    op = FBMPKOperator(part, groups)
    return op.power(x, k, on_iterate=on_iterate, counter=counter)


class FBMPKOperator:
    """Preprocessed FBMPK executor (the library's main entry point).

    Holds the ``L + D + U`` partition, the sweep groups and the per-group
    triangle submatrices extracted once at construction — the "one-off
    preprocessing whose overhead is amortised when A is reused", as the
    paper argues in Sections III and V-F.  When built through
    :func:`build_fbmpk_operator` with ABMC, the operator also owns the row
    permutation and transparently maps inputs/outputs to the original
    numbering.

    The operator retains its BtB iterate buffer and sweep temporary
    between calls (outputs are always copied out), so one instance must
    not execute overlapping ``power``/``power_block`` calls from
    multiple threads; create one operator per concurrent caller.
    """

    def __init__(
        self,
        part: TriangularPartition,
        groups: SweepGroups,
        perm: Optional[np.ndarray] = None,
        validate: bool = True,
        backend: Backend = "numpy",
        executor: ExecutorKind = "serial",
        n_threads: Optional[int] = None,
        assign_policy: str = "lpt",
        phase_plan: Optional[PhasePlan] = None,
        on_failure: str = "raise",
        hang_timeout: Optional[float] = None,
        claim_chunk: Optional[int] = None,
        pin_workers: Optional[bool] = None,
    ) -> None:
        if validate and not check_sweep_groups(part, groups):
            raise ValueError("invalid sweep groups for this partition")
        if backend not in ("numpy", "scipy"):
            raise ValueError(f"unknown backend {backend!r}")
        if executor not in EXECUTOR_KINDS:
            raise ValueError(f"unknown executor {executor!r}")
        if on_failure not in ("raise", "fallback_serial"):
            raise ValueError(f"unknown on_failure policy {on_failure!r}")
        self.part = part
        self.groups = groups
        self.backend = backend
        self.perm = None if perm is None else np.asarray(perm, dtype=np.int64)
        self.executor = executor
        self.n_threads = n_threads
        self.assign_policy = assign_policy
        #: What a crashed threaded phase does to ``power``: ``"raise"``
        #: propagates the :class:`PhaseExecutionError`; with
        #: ``"fallback_serial"`` the operator closes the pool, warns, and
        #: recomputes the whole call with the serial fused sweeps — the
        #: result is bit-identical to a clean serial run.
        self.on_failure = on_failure
        if hang_timeout is not None and hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive (or None)")
        #: Hung-worker bound forwarded to both parallel backends: the
        #: process executor's per-heartbeat watchdog and the threaded
        #: executor's per-phase barrier timeout (None disables both).
        self.hang_timeout = hang_timeout
        if claim_chunk is not None and claim_chunk < 1:
            raise ValueError("claim_chunk must be >= 1 (or None)")
        #: Blocks a worker claims per work-stealing cursor round-trip in
        #: the batched dispatch path (None auto-sizes per phase); the
        #: tuner searches this jointly with executor and block size.
        self.claim_chunk = claim_chunk
        #: Deterministic best-effort worker CPU pinning for the process
        #: backend (None = auto: pin only on multi-CPU hosts).
        self.pin_workers = pin_workers
        #: :class:`~repro.parallel.executor.ExecutionStats` of the most
        #: recent ``power`` call that ran on the threaded backend; None
        #: after serial runs.
        self.last_stats: Optional[ExecutionStats] = None
        self._phase_plan = phase_plan
        self._validate_phases = validate
        self._phases_checked = False
        self._threaded: Optional[_ThreadedState] = None
        self._procs: Optional[_ProcState] = None
        # True while _xy_buf/_tmp_buf/_blk_buf are views into the
        # process pool's shared-memory arena (they must be dropped when
        # the arena is unlinked).
        self._shm_bound = False
        self._tstats = None  # lazy MatrixTrafficStats for telemetry
        # Persistent working buffers, allocated on first use and reused
        # across power calls: the 2n BtB iterate buffer and the length-n
        # sweep temporary.  Reusing them removes two O(n) allocations
        # from every A^k x call — which matters exactly in the
        # many-repeated-calls regime FBMPK exists for.  One consequence:
        # a single operator instance must not run concurrent power
        # calls (serial reuse was always the intended pattern).
        self._xy_buf: Optional[np.ndarray] = None
        self._tmp_buf: Optional[np.ndarray] = None
        self._blk_buf: Optional[np.ndarray] = None
        self._fw = _extract_parts(part.lower, groups.forward, backend)
        self._bw = _extract_parts(part.upper, groups.backward, backend)
        self._lower_matvec = _make_matvec(part.lower, backend)
        self._upper_matvec = _make_matvec(part.upper, backend)

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.part.n

    # -- execution backend ---------------------------------------------
    def configure_executor(
        self,
        executor: Optional[ExecutorKind] = None,
        n_threads: Optional[int] = None,
        assign_policy: Optional[str] = None,
        on_failure: Optional[str] = None,
        hang_timeout: object = _KEEP,
        claim_chunk: object = _KEEP,
        pin_workers: object = _KEEP,
    ) -> "FBMPKOperator":
        """Re-point the operator at a different execution backend.

        Phases and block kernels are preprocessing artefacts and are
        kept; only the worker pools are recreated, so a benchmark can
        sweep thread counts and policies over one amortised
        preprocessing pass (Section V-F).  Returns ``self`` for
        chaining.
        """
        if executor is not None:
            if executor not in EXECUTOR_KINDS:
                raise ValueError(f"unknown executor {executor!r}")
            self.executor = executor
        if n_threads is not None:
            self.n_threads = n_threads
        if assign_policy is not None:
            self.assign_policy = assign_policy
        if on_failure is not None:
            if on_failure not in ("raise", "fallback_serial"):
                raise ValueError(
                    f"unknown on_failure policy {on_failure!r}")
            self.on_failure = on_failure
        if hang_timeout is not _KEEP:
            # None is a meaningful value here (disable the watchdog),
            # hence the sentinel default instead of None-means-keep.
            if hang_timeout is not None and hang_timeout <= 0:
                raise ValueError(
                    "hang_timeout must be positive (or None)")
            self.hang_timeout = hang_timeout
        if claim_chunk is not _KEEP:
            # None is meaningful (auto-size per phase), same sentinel
            # discipline as hang_timeout.
            if claim_chunk is not None and claim_chunk < 1:
                raise ValueError("claim_chunk must be >= 1 (or None)")
            self.claim_chunk = claim_chunk
        if pin_workers is not _KEEP:
            self.pin_workers = pin_workers
        if self._threaded is not None:
            if assign_policy is not None:
                # Batch order depends on the policy; rebuild the plan
                # (and the aligned kernel lists) from scratch.
                self._threaded = None
            else:
                self._threaded.pool.close()
                self._threaded.pool = ThreadedPhaseExecutor(
                    self.n_threads, self.assign_policy,
                    hang_timeout=self.hang_timeout,
                    claim_chunk=self.claim_chunk)
        self._close_procs()  # next processes call rebuilds with new knobs
        return self

    def _built_phase_plan(self) -> PhasePlan:
        """The ``(forward, backward)`` block-phase schedule both parallel
        backends execute: the constructor-provided plan if any, otherwise
        one phase per sweep group.  Built and validated once, shared by
        the ``"threads"`` and ``"processes"`` states."""
        if self._phase_plan is None:
            self._phase_plan = (
                phases_from_groups(self.part.lower, self.groups.forward),
                phases_from_groups(self.part.upper, self.groups.backward))
        fw, bw = self._phase_plan
        if self._validate_phases and not self._phases_checked:
            if not check_phases(self.part.lower, fw) \
                    or not check_phases(self.part.upper, bw):
                raise ValueError(
                    "phases are not executable with one barrier each")
            self._phases_checked = True
        return fw, bw

    def _ensure_threaded(self) -> _ThreadedState:
        """Build the block phases, per-block kernels and worker pool on
        first threaded use (lazy so serial operators pay nothing)."""
        if self._threaded is None:
            fw, bw = self._built_phase_plan()
            fw_batch = DescriptorBatch.from_phases(fw, self.assign_policy)
            bw_batch = DescriptorBatch.from_phases(bw, self.assign_policy)
            fw_kernels = [
                _BlockKernel(self.part.lower,
                             BlockTask(int(fw_batch.starts[g]),
                                       int(fw_batch.stops[g]),
                                       int(fw_batch.nnz[g])))
                for g in range(fw_batch.n_blocks)]
            bw_kernels = [
                _BlockKernel(self.part.upper,
                             BlockTask(int(bw_batch.starts[g]),
                                       int(bw_batch.stops[g]),
                                       int(bw_batch.nnz[g])))
                for g in range(bw_batch.n_blocks)]
            self._threaded = _ThreadedState(
                fw_phases=fw, bw_phases=bw,
                fw_batch=fw_batch, bw_batch=bw_batch,
                fw_kernels=fw_kernels, bw_kernels=bw_kernels,
                pool=ThreadedPhaseExecutor(self.n_threads,
                                           self.assign_policy,
                                           hang_timeout=self.hang_timeout,
                                           claim_chunk=self.claim_chunk))
        return self._threaded

    def _ensure_procs(self) -> _ProcState:
        """Build the process pool (and its shared-memory arena) on first
        ``"processes"`` use, and bind the operator's persistent working
        buffers to the arena segments — the sweeps then write directly
        into memory every worker has mapped, so dispatch ships no array
        data.  The binding happens *before* ``_acquire_pair`` /
        ``_acquire_tmp`` run, which makes those reuse the shared
        segments instead of allocating private memory."""
        if self._procs is None:
            fw, bw = self._built_phase_plan()
            pool = ProcessPhaseExecutor(
                self.part, n_workers=self.n_threads,
                policy=self.assign_policy,
                hang_timeout=self.hang_timeout,
                claim_chunk=self.claim_chunk,
                pin_workers=self.pin_workers)
            self._procs = _ProcState(
                fw_phases=fw, bw_phases=bw,
                fw_plan=pool.register_phases(fw),
                bw_plan=pool.register_phases(bw),
                pool=pool)
        self._xy_buf = self._procs.pool.xy
        self._tmp_buf = self._procs.pool.tmp
        self._shm_bound = True
        return self._procs

    def _close_procs(self) -> None:
        """Tear the process backend down: stop the workers, unlink the
        shared-memory segments, and drop any operator buffers that were
        views into them (idempotent)."""
        if self._procs is not None:
            self._procs.pool.close()
            self._procs = None
        if self._shm_bound:
            self._xy_buf = None
            self._tmp_buf = None
            self._blk_buf = None
            self._shm_bound = False

    def worker_health(self) -> Dict[str, object]:
        """Liveness snapshot of the parallel backends, for health
        endpoints: the configured executor plus one alive-bool per
        process-pool worker slot (``None`` until a pool is spawned)."""
        health: Dict[str, object] = {"executor": self.executor,
                                     "hang_timeout_s": self.hang_timeout,
                                     "process_workers": None}
        if self._procs is not None:
            health["process_workers"] = self._procs.pool.worker_liveness()
        return health

    def block_phases(self) -> PhasePlan:
        """The ``(forward, backward)`` block-phase schedule the threaded
        backend executes (built lazily on first access).  Useful for
        feeding the very same schedule to
        :func:`repro.parallel.simulate_phases` and comparing predictions
        against :attr:`last_stats`."""
        state = self._ensure_threaded()
        return state.fw_phases, state.bw_phases

    def close(self) -> None:
        """Shut down the parallel backends: the threaded worker pool,
        and the process pool with its shared-memory segments
        (idempotent; the operator remains usable and will respawn
        workers — and re-create segments — on the next parallel call)."""
        if self._threaded is not None:
            self._threaded.pool.close()
            self._threaded = None
        self._close_procs()

    def __enter__(self) -> "FBMPKOperator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- working buffers -----------------------------------------------
    def _acquire_pair(self, x: np.ndarray) -> InterleavedPair:
        """The persistent BtB buffer, loaded with ``x`` in the even slots
        and zeros in the odd ones (allocated on first use, reused by
        every later ``power`` call)."""
        if self._xy_buf is None:
            self._xy_buf = np.empty(2 * self.n, dtype=np.float64)
        xy = self._xy_buf
        xy[0::2] = x
        xy[1::2] = 0.0
        return InterleavedPair(xy)

    def _acquire_tmp(self, head: np.ndarray) -> np.ndarray:
        """The persistent sweep temporary, loaded with the head product
        ``U x``.  The first call adopts the product's own allocation;
        later calls copy into the retained buffer instead of keeping a
        fresh array per call."""
        if self._tmp_buf is None:
            self._tmp_buf = np.ascontiguousarray(head, dtype=np.float64)
        else:
            np.copyto(self._tmp_buf, head)
        return self._tmp_buf

    # -- sweeps --------------------------------------------------------
    def _forward_sweep(self, XY: np.ndarray, tmp: np.ndarray,
                       d: np.ndarray, counter: Optional[KernelCounter]) -> None:
        """One fused forward stage: finish the odd iterate and leave
        ``tmp = L x_odd + D x_odd``, streaming L exactly once."""
        l_total = self.part.lower.nnz
        for p in self._fw:
            rows = p.rows
            prod = p.apply(XY)  # [:,0] = (L x_even)[rows], [:,1] = (L x_odd)[rows]
            new_odd = tmp[rows] + d[rows] * XY[rows, 0] + prod[:, 0]
            XY[rows, 1] = new_odd
            tmp[rows] = prod[:, 1] + d[rows] * new_odd
            if counter:
                counter.count_l(p.nnz, l_total)

    def _backward_sweep(self, XY: np.ndarray, tmp: np.ndarray,
                        counter: Optional[KernelCounter]) -> None:
        """One fused backward stage: finish the even iterate and leave
        ``tmp = U x_even``, streaming U exactly once."""
        u_total = self.part.upper.nnz
        for p in self._bw:
            rows = p.rows
            prod = p.apply(XY)  # [:,0] = (U x_even)[rows], [:,1] = (U x_odd)[rows]
            XY[rows, 0] = tmp[rows] + prod[:, 1]
            tmp[rows] = prod[:, 0]
            if counter:
                counter.count_u(p.nnz, u_total)

    # -- public API ----------------------------------------------------
    def power(
        self,
        x: np.ndarray,
        k: int,
        on_iterate: Optional[IterateCallback] = None,
        counter: Optional[KernelCounter] = None,
        check_finite: bool = False,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Compute ``A^k x`` with the fused forward-backward pipeline.

        With ``executor="threads"`` the forward/backward stages run on
        the real colour-phase executor (same-colour blocks concurrently,
        one barrier per colour); with ``executor="processes"`` they run
        on the shared-memory worker pool of
        :mod:`repro.parallel.procexec` (same phases, GIL-free).  Either
        way the result is bit-identical to the serial backend and the
        run's timings land in :attr:`last_stats`.  The head/tail
        full-triangle SpMVs are plain vectorised kernels in the calling
        process regardless of backend.

        ``out``, if given, receives the result (a float64 array of
        shape ``(n,)``) instead of a fresh allocation — the repeated-
        call regime FBMPK exists for can then run allocation-free.  The
        returned array *is* ``out``.  Iterates passed to ``on_iterate``
        are always freshly allocated (they must outlive the call).

        ``check_finite=True`` guards the computation against NaN/Inf:
        the input vector and every produced iterate are checked, and a
        :class:`~repro.robust.errors.NonFiniteError` names the first
        power at which a non-finite value appeared — instead of silently
        propagating garbage through the remaining sweeps.

        Failure containment: if a sweep raises mid-call on a parallel
        backend, the worker pool is shut down before the exception
        leaves this method (no leaked threads or processes, no leaked
        shared memory).  With ``on_failure="fallback_serial"`` a
        :class:`~repro.robust.errors.PhaseExecutionError` is not raised
        at all — the operator warns and recomputes the whole call with
        the serial fused sweeps from the original input, bit-identical
        to a clean serial run.  This containment also covers a worker
        process killed mid-phase (detected by the pool's liveness
        polling).  (``on_iterate`` callbacks observed before the crash
        fire again during the rerun.)
        """
        if k < 0:
            raise ValueError("power k must be non-negative")
        x = _as_float64(x)
        if x.shape != (self.n,):
            raise ValueError(f"x has shape {x.shape}, expected ({self.n},)")
        out = self._check_out(out, (self.n,))
        if check_finite:
            ensure_finite(x, "input vector x")
        self.last_stats = None
        if self.perm is not None:
            x = permute_vector(x, self.perm)
        if k == 0:
            if self.perm is not None:
                return unpermute_vector(x, self.perm, out=out)
            if out is not None:
                np.copyto(out, x)
                return out
            return x.copy()
        mode = self.executor
        # Telemetry bookkeeping: when a session is active we always keep
        # pass counts (in the caller's counter if given, an internal one
        # otherwise) so the run's matrix-read equivalents can be
        # published; deltas are taken against a snapshot because a
        # caller-provided counter may accumulate several runs.
        telemetry = obs.current() is not None
        if telemetry and counter is None:
            counter = KernelCounter()
        obs_snap = _snapshot_counter(counter) if telemetry else None
        with obs.span("fbmpk.power", k=k, n=self.n,
                      executor=self.executor, backend=self.backend,
                      origin=self.groups.origin):
            if mode == "serial":
                y = self._power_body(x, k, on_iterate, counter,
                                     check_finite, mode="serial", out=out)
                self._publish_power_telemetry(k, counter, obs_snap)
                return y
            fallback = self.on_failure == "fallback_serial"
            x_saved = x.copy() if fallback else None
            counter_saved = _snapshot_counter(counter) if fallback else None
            try:
                y = self._power_body(x, k, on_iterate, counter,
                                     check_finite, mode=mode, out=out)
            except PhaseExecutionError:
                self.close()
                # A hung worker thread cannot be killed, only abandoned
                # with its pool; it still holds references to the sweep
                # buffers via its bin closure.  Drop ours so any zombie
                # writes land in orphaned arrays — the rerun (and every
                # later call) allocates fresh ones.
                self._xy_buf = self._tmp_buf = self._blk_buf = None
                if not fallback:
                    raise
                warnings.warn(
                    f"{mode} FBMPK phase crashed; recomputing serially "
                    "(on_failure='fallback_serial')", RuntimeWarning,
                    stacklevel=2)
                _restore_counter(counter, counter_saved)
                self.last_stats = None
                y = self._power_body(x_saved, k, on_iterate, counter,
                                     check_finite, mode="serial", out=out)
            except BaseException:
                # Any other mid-sweep failure (a NonFiniteError between
                # stages, a raising on_iterate callback, ...) must not
                # leak the worker pool either.
                self.close()
                raise
            self._publish_power_telemetry(k, counter, obs_snap)
            return y

    def _check_out(self, out: Optional[np.ndarray],
                   shape: Tuple[int, ...]) -> Optional[np.ndarray]:
        """Validate a caller-provided result buffer: float64, C-order,
        exact shape — the contract that lets the pipeline write into it
        without conversions."""
        if out is None:
            return None
        if not isinstance(out, np.ndarray) or out.dtype != np.float64:
            raise TypeError("out must be a float64 ndarray")
        if out.shape != shape:
            raise ValueError(
                f"out has shape {out.shape}, expected {shape}")
        return out

    def _power_body(
        self,
        x: np.ndarray,
        k: int,
        on_iterate: Optional[IterateCallback],
        counter: Optional[KernelCounter],
        check_finite: bool,
        mode: str,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The sweep pipeline proper; ``x`` is already permuted and
        ``k >= 1`` validated by :meth:`power`.  ``mode`` is the resolved
        execution backend for this attempt (``power`` may retry a failed
        parallel attempt with ``mode="serial"``)."""
        d = self.part.diag
        threaded = mode == "threads"
        procs = mode == "processes"
        if procs:
            # Must run before _acquire_pair/_acquire_tmp: binds the
            # persistent buffers to the pool's shared-memory segments.
            pstate = self._ensure_procs()
        pair = self._acquire_pair(x)
        XY = pair.as_matrix()
        with obs.span("fbmpk.head", sweep="head"):
            tmp = self._acquire_tmp(self._upper_matvec(x))
        if counter:
            counter.count_u(self.part.upper.nnz, self.part.upper.nnz)
        if threaded:
            state = self._ensure_threaded()
            stats = ExecutionStats(n_threads=state.pool.n_threads,
                                   policy=state.pool.policy)
            self.last_stats = stats
        elif procs:
            stats = ExecutionStats(n_threads=pstate.pool.n_workers,
                                   policy=pstate.pool.policy)
            self.last_stats = stats
        power = 0
        for _ in range(k // 2):
            with obs.span("fbmpk.sweep", sweep="forward",
                          power_step=power + 1):
                if threaded:
                    state.pool.run_batched(
                        state.fw_batch,
                        lambda g: state.fw_kernels[g].forward(XY, tmp, d),
                        stats)
                elif procs:
                    pstate.pool.run_batched(pstate.fw_plan, "forward",
                                            stats)
                else:
                    self._forward_sweep(XY, tmp, d, counter)
                if (threaded or procs) and counter:
                    counter.count_l(self.part.lower.nnz,
                                    self.part.lower.nnz)
            power += 1
            obs.event("fbmpk.iterate", power_step=power)
            if check_finite:
                ensure_finite(pair.odd, f"iterate A^{power} x")
            if on_iterate:
                on_iterate(power, self._out(pair.odd))
            with obs.span("fbmpk.sweep", sweep="backward",
                          power_step=power + 1):
                if threaded:
                    state.pool.run_batched(
                        state.bw_batch,
                        lambda g: state.bw_kernels[g].backward(XY, tmp),
                        stats)
                elif procs:
                    pstate.pool.run_batched(pstate.bw_plan, "backward",
                                            stats)
                else:
                    self._backward_sweep(XY, tmp, counter)
                if (threaded or procs) and counter:
                    counter.count_u(self.part.upper.nnz,
                                    self.part.upper.nnz)
            power += 1
            obs.event("fbmpk.iterate", power_step=power)
            if check_finite:
                ensure_finite(pair.even, f"iterate A^{power} x")
            if on_iterate:
                on_iterate(power, self._out(pair.even))
        if k % 2:
            even = XY[:, 0]
            with obs.span("fbmpk.tail", sweep="tail", power_step=k):
                y = self._lower_matvec(even) + tmp + d * even
            if counter:
                counter.count_l(self.part.lower.nnz, self.part.lower.nnz)
            obs.event("fbmpk.iterate", power_step=k)
            if check_finite:
                ensure_finite(y, f"iterate A^{k} x")
            if on_iterate:
                on_iterate(k, self._out(y))
            return self._out(y, out)
        return self._out(XY[:, 0], out)

    # -- telemetry ------------------------------------------------------
    def _traffic_stats(self):
        """Lazy :class:`~repro.memsim.traffic.MatrixTrafficStats` of the
        operator's matrix (bandwidth measured over both triangles),
        built only when a telemetry session asks for the DRAM model."""
        if self._tstats is None:
            from ..memsim.traffic import MatrixTrafficStats

            bw = 1
            for tri in (self.part.lower, self.part.upper):
                if tri.nnz:
                    rows = np.repeat(
                        np.arange(tri.n_rows, dtype=np.int64),
                        tri.row_nnz())
                    bw = max(bw, int(np.abs(rows - tri.indices).max()))
            self._tstats = MatrixTrafficStats(
                n=self.n, nnz=self.part.source_nnz, bandwidth=float(bw))
        return self._tstats

    def _publish_power_telemetry(self, k: int,
                                 counter: Optional[KernelCounter],
                                 snap) -> None:
        """Publish one completed ``power``/``power_block`` call to the
        active telemetry session: instrumented pass counts (as deltas
        against ``snap``), the matrix-read equivalents that make the
        paper's ``(k+1)/2`` claim observable per run, and the modelled
        DRAM byte volumes from :mod:`repro.memsim.traffic`."""
        tel = obs.current()
        if tel is None or counter is None or snap is None:
            return
        l_entries = counter.l_entries - snap[2]
        u_entries = counter.u_entries - snap[3]
        nnz = max(self.part.source_nnz, 1)
        # Diagonal contributions: one stream of d per produced iterate.
        equivalents = (l_entries + u_entries + k * self.n) / nnz
        obs.add_counter("fbmpk.powers")
        obs.add_counter("fbmpk.l_passes", counter.l_passes - snap[0])
        obs.add_counter("fbmpk.u_passes", counter.u_passes - snap[1])
        obs.add_counter("fbmpk.matrix_read_equivalents", equivalents,
                        unit="A-reads")
        obs.add_counter("fbmpk.standard_matrix_reads", k, unit="A-reads")
        from ..memsim.traffic import fbmpk_traffic, mpk_standard_traffic

        stats = self._traffic_stats()
        fb = fbmpk_traffic(stats, k, MODEL_CACHE_BYTES).total_bytes
        std = mpk_standard_traffic(stats, k, MODEL_CACHE_BYTES).total_bytes
        obs.add_counter("fbmpk.model.dram_bytes", fb, unit="bytes")
        obs.add_counter("fbmpk.model.baseline_dram_bytes", std,
                        unit="bytes")
        if std:
            obs.set_gauge("fbmpk.model.traffic_ratio", fb / std)

    def power_block(self, X: np.ndarray, k: int,
                    counter: Optional[KernelCounter] = None,
                    check_finite: bool = False,
                    out: Optional[np.ndarray] = None) -> np.ndarray:
        """Compute ``A^k X`` for a dense block ``X`` of shape ``(n, m)``.

        Block version of :meth:`power` for subspace methods (Chebyshev
        filters, block power iteration): all ``m`` columns advance
        through the same fused sweeps, so each triangle is still
        streamed once per stage — the matrix reads are amortised over
        the whole block, not paid per column.

        The working buffer interleaves each column's even/odd iterates
        (columns ``2j``/``2j + 1``), the block generalisation of the BtB
        layout.  With ``executor="processes"`` the sweeps run on the
        shared-memory worker pool (the interleaved block buffer lives in
        a shared segment), bit-identical to the serial path and with the
        same :class:`PhaseExecutionError` containment as :meth:`power`;
        any other executor runs the serial fused sweeps.  ``out``, if
        given, receives the ``(n, m)`` result instead of a fresh
        allocation.  ``check_finite=True`` validates the input block and
        every completed stage pair (see :meth:`power`).
        """
        if k < 0:
            raise ValueError("power k must be non-negative")
        X = _as_float64(X)
        if X.ndim != 2 or X.shape[0] != self.n:
            raise ValueError(f"X has shape {X.shape}, expected ({self.n}, m)")
        out = self._check_out(out, X.shape)
        if check_finite:
            ensure_finite(X, "input block X")
        if self.perm is not None:
            X = X[self.perm]
        if k == 0:
            return self._finish_block(X, out, owned=False)
        m = X.shape[1]
        telemetry = obs.current() is not None
        if telemetry and counter is None:
            counter = KernelCounter()
        obs_snap = _snapshot_counter(counter) if telemetry else None
        mode = "processes" if self.executor == "processes" else "serial"
        with obs.span("fbmpk.power_block", k=k, n=self.n, m=m,
                      executor=mode):
            if mode == "serial":
                Y, owned = self._power_block_body(X, k, counter,
                                                  check_finite)
            else:
                fallback = self.on_failure == "fallback_serial"
                counter_saved = _snapshot_counter(counter) if fallback \
                    else None
                try:
                    Y, owned = self._power_block_procs(X, k, counter,
                                                       check_finite)
                except PhaseExecutionError:
                    self.close()
                    # Same zombie-writer defence as power(): see there.
                    self._xy_buf = self._tmp_buf = self._blk_buf = None
                    if not fallback:
                        raise
                    warnings.warn(
                        "processes FBMPK block phase crashed; recomputing "
                        "serially (on_failure='fallback_serial')",
                        RuntimeWarning, stacklevel=2)
                    _restore_counter(counter, counter_saved)
                    self.last_stats = None
                    Y, owned = self._power_block_body(X, k, counter,
                                                      check_finite)
                except BaseException:
                    # Mid-call NonFiniteError etc. must not leak the
                    # worker pool or its shared segments.
                    self.close()
                    raise
        self._publish_power_telemetry(k, counter, obs_snap)
        return self._finish_block(Y, out, owned=owned)

    def _power_block_body(self, X: np.ndarray, k: int,
                          counter: Optional[KernelCounter],
                          check_finite: bool
                          ) -> Tuple[np.ndarray, bool]:
        """Serial fused block sweeps over the persistent interleaved
        buffer; returns ``(Y, owned)`` in the operator's numbering,
        ``owned=False`` meaning ``Y`` aliases the working buffer."""
        m = X.shape[1]
        d = self.part.diag[:, None]
        if self._blk_buf is None or self._blk_buf.shape[1] != 2 * m:
            self._blk_buf = np.zeros((self.n, 2 * m), dtype=np.float64)
        XY = self._blk_buf
        XY[:, 0::2] = X
        XY[:, 1::2] = 0.0
        tmp = self.part.upper.matmat(X)
        if counter:
            counter.count_u(self.part.upper.nnz, self.part.upper.nnz)
        l_total = self.part.lower.nnz
        u_total = self.part.upper.nnz
        stage = 0
        for _ in range(k // 2):
            with obs.span("fbmpk.sweep", sweep="forward",
                          power_step=stage + 1):
                for p in self._fw:
                    rows = p.rows
                    prod = p.apply(XY)
                    new_odd = tmp[rows] + d[rows] * XY[rows, 0::2] \
                        + prod[:, 0::2]
                    XY[rows, 1::2] = new_odd
                    tmp[rows] = prod[:, 1::2] + d[rows] * new_odd
                    if counter:
                        counter.count_l(p.nnz, l_total)
            with obs.span("fbmpk.sweep", sweep="backward",
                          power_step=stage + 2):
                for p in self._bw:
                    rows = p.rows
                    prod = p.apply(XY)
                    XY[rows, 0::2] = tmp[rows] + prod[:, 1::2]
                    tmp[rows] = prod[:, 0::2]
                    if counter:
                        counter.count_u(p.nnz, u_total)
            stage += 2
            if check_finite:
                ensure_finite(XY, f"block iterates through A^{stage} X")
        if k % 2:
            even = XY[:, 0::2]
            with obs.span("fbmpk.tail", sweep="tail", power_step=k):
                Y = self.part.lower.matmat(even) + tmp + d * even
            if counter:
                counter.count_l(l_total, l_total)
            if check_finite:
                ensure_finite(Y, f"block iterate A^{k} X")
            return Y, True
        return XY[:, 0::2], False

    def _power_block_procs(self, X: np.ndarray, k: int,
                           counter: Optional[KernelCounter],
                           check_finite: bool
                           ) -> Tuple[np.ndarray, bool]:
        """Block sweeps on the process pool: the interleaved block
        buffer and the block temporary live in shared segments, dispatch
        ships only block descriptors.  Same return contract as
        :meth:`_power_block_body`."""
        pstate = self._ensure_procs()
        m = X.shape[1]
        XY, tmp = pstate.pool.ensure_block(m)
        self._blk_buf = XY
        d = self.part.diag[:, None]
        XY[:, 0::2] = X
        XY[:, 1::2] = 0.0
        np.copyto(tmp, self.part.upper.matmat(X))
        if counter:
            counter.count_u(self.part.upper.nnz, self.part.upper.nnz)
        stats = ExecutionStats(n_threads=pstate.pool.n_workers,
                               policy=pstate.pool.policy)
        self.last_stats = stats
        stage = 0
        for _ in range(k // 2):
            with obs.span("fbmpk.sweep", sweep="forward",
                          power_step=stage + 1):
                pstate.pool.run_batched(pstate.fw_plan, "forward_block",
                                        stats)
                if counter:
                    counter.count_l(self.part.lower.nnz,
                                    self.part.lower.nnz)
            with obs.span("fbmpk.sweep", sweep="backward",
                          power_step=stage + 2):
                pstate.pool.run_batched(pstate.bw_plan, "backward_block",
                                        stats)
                if counter:
                    counter.count_u(self.part.upper.nnz,
                                    self.part.upper.nnz)
            stage += 2
            if check_finite:
                ensure_finite(XY, f"block iterates through A^{stage} X")
        if k % 2:
            even = XY[:, 0::2]
            with obs.span("fbmpk.tail", sweep="tail", power_step=k):
                Y = self.part.lower.matmat(even) + tmp + d * even
            if counter:
                counter.count_l(self.part.lower.nnz, self.part.lower.nnz)
            if check_finite:
                ensure_finite(Y, f"block iterate A^{k} X")
            return Y, True
        return XY[:, 0::2], False

    def _finish_block(self, Y: np.ndarray, out: Optional[np.ndarray],
                      owned: bool) -> np.ndarray:
        """Map a result block from the operator's numbering back to the
        caller's, landing in ``out`` when provided.  ``owned=False``
        marks ``Y`` as aliasing a working buffer (it must be copied
        before returning)."""
        if out is not None:
            if self.perm is not None:
                out[self.perm] = Y
            else:
                np.copyto(out, Y)
            return out
        if self.perm is not None:
            return Y[_inverse_rows(self.perm)]
        return Y if owned else Y.copy()

    def _out(self, y: np.ndarray,
             out: Optional[np.ndarray] = None) -> np.ndarray:
        """Copy out of the working buffer, undoing any ABMC permutation;
        with ``out`` the copy lands in the caller's buffer instead of a
        fresh allocation."""
        y = np.asarray(y, dtype=np.float64)
        if self.perm is not None:
            return unpermute_vector(y, self.perm, out=out)
        if out is not None:
            np.copyto(out, y)
            return out
        return y.copy()

    # -- persistence ----------------------------------------------------
    def save(self, path) -> None:
        """Persist the preprocessed operator to an ``.npz`` file.

        The paper stresses that splitting/reordering "can often be
        performed offline when storing the matrix data" (Section IV-C);
        this makes the offline artefact concrete.  Only the ``numpy``
        backend's arrays are stored; :meth:`load` can rebuild either
        backend.
        """
        groups_fw = [np.asarray(g, dtype=np.int64)
                     for g in self.groups.forward]
        groups_bw = [np.asarray(g, dtype=np.int64)
                     for g in self.groups.backward]
        payload = {
            "l_indptr": self.part.lower.indptr,
            "l_indices": self.part.lower.indices,
            "l_data": self.part.lower.data,
            "u_indptr": self.part.upper.indptr,
            "u_indices": self.part.upper.indices,
            "u_data": self.part.upper.data,
            "diag": self.part.diag,
            "source_nnz": np.int64(self.part.source_nnz),
            "n_fw": np.int64(len(groups_fw)),
            "n_bw": np.int64(len(groups_bw)),
            "origin": np.bytes_(self.groups.origin.encode()),
            "has_perm": np.bool_(self.perm is not None),
        }
        if self.perm is not None:
            payload["perm"] = self.perm
        for i, g in enumerate(groups_fw):
            payload[f"fw_{i}"] = g
        for i, g in enumerate(groups_bw):
            payload[f"bw_{i}"] = g
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path, backend: Backend = "numpy",
             executor: ExecutorKind = "serial",
             n_threads: Optional[int] = None,
             assign_policy: str = "lpt",
             claim_chunk: Optional[int] = None,
             pin_workers: Optional[bool] = None) -> "FBMPKOperator":
        """Rebuild an operator persisted with :meth:`save`.

        The block-phase plan is not persisted; a loaded operator using
        ``executor="threads"`` derives its phases from the stored sweep
        groups (one phase per group), which is correct but carries one
        barrier per wave/level rather than per colour.
        """
        with np.load(path) as z:
            n = z["diag"].shape[0]
            lower = CSRMatrix(z["l_indptr"], z["l_indices"], z["l_data"],
                              (n, n), check=False)
            upper = CSRMatrix(z["u_indptr"], z["u_indices"], z["u_data"],
                              (n, n), check=False)
            part = TriangularPartition(lower, upper, z["diag"],
                                       int(z["source_nnz"]))
            groups = SweepGroups(
                forward=[z[f"fw_{i}"] for i in range(int(z["n_fw"]))],
                backward=[z[f"bw_{i}"] for i in range(int(z["n_bw"]))],
                origin=bytes(z["origin"]).decode(),
            )
            perm = z["perm"] if bool(z["has_perm"]) else None
        return cls(part, groups, perm=perm, validate=False, backend=backend,
                   executor=executor, n_threads=n_threads,
                   assign_policy=assign_policy, claim_chunk=claim_chunk,
                   pin_workers=pin_workers)

    def barriers_per_pair(self) -> int:
        """Synchronisation phases per forward+backward iteration — the
        quantity ABMC minimises versus the ``O(n)`` of naive pipelining."""
        return self.groups.n_forward + self.groups.n_backward


class _BlockedRunKernel:
    """Per-row-run compute of the levels-blocked schedule.

    Caches the local CSR views of **both** triangles for one contiguous
    row range; :meth:`run` applies one power's ping-pong update with the
    association order the op tag demands.  The same kernel instance is
    reused for every power that visits the run, so the per-descriptor
    lists of all cached ``k`` plans share one kernel per distinct run.
    """

    __slots__ = ("rows", "lip", "lcols", "ldata", "uip", "ucols", "udata",
                 "nnz")

    def __init__(self, lower: CSRMatrix, upper: CSRMatrix,
                 start: int, stop: int) -> None:
        self.rows = slice(start, stop)
        llo, lhi = int(lower.indptr[start]), int(lower.indptr[stop])
        self.lip = lower.indptr[start:stop + 1] - llo
        self.lcols = lower.indices[llo:lhi]
        self.ldata = lower.data[llo:lhi]
        ulo, uhi = int(upper.indptr[start]), int(upper.indptr[stop])
        self.uip = upper.indptr[start:stop + 1] - ulo
        self.ucols = upper.indices[ulo:uhi]
        self.udata = upper.data[ulo:uhi]
        self.nnz = (lhi - llo) + (uhi - ulo)

    def run(self, XY: np.ndarray, d: np.ndarray, op: int) -> None:
        """Same arithmetic as the ``"blocked"`` sweep of
        :class:`repro.parallel.procexec._Views` (bit-identical by
        construction)."""
        r = self.rows
        rs, ws = (1, 0) if op == OP_EVEN else (0, 1)
        xin = XY[:, rs]
        lsum = reduce_rows(self.ldata * xin[self.lcols], self.lip)
        usum = reduce_rows(self.udata * xin[self.ucols], self.uip)
        dx = d[r] * xin[r]
        if op == OP_ODD:
            XY[r, ws] = usum + dx + lsum
        elif op == OP_EVEN:
            XY[r, ws] = lsum + dx + usum
        elif op == OP_FINAL_ODD:
            XY[r, ws] = lsum + usum + dx
        else:
            raise ValueError(f"unknown blocked op {op!r}")


@dataclass
class _BlockedPlan:
    """One ``k``'s cached levels-blocked schedule artefacts."""

    batch: DescriptorBatch
    n_phases: int
    kernels: Optional[List[_BlockedRunKernel]] = None  # lazy (serial/threads)


@dataclass
class _ProcBlockedState:
    """Process backend of :class:`LevelsBlockedOperator`: the pool plus
    the per-``k`` registered plan slots."""

    pool: ProcessPhaseExecutor
    slots: Dict[int, int]


class LevelsBlockedOperator:
    """Matrix power operator with the levels-blocked (RACE-style)
    schedule — the third scheduling family next to ABMC and levels.

    Instead of FBMPK's stage fusion, DRAM traffic is saved by
    *residency*: rows are partitioned into cache-sized blocks of
    consecutive dependency levels and a skewed wavefront applies all
    ``k`` powers to a block within a bounded phase window, so the
    block's matrix entries are streamed from DRAM once and reused from
    cache (:mod:`repro.reorder.levels_blocked`).  Results are
    bit-identical to serial FBMPK with ``strategy="levels"`` because
    every descriptor reproduces the exact per-row association order of
    the serial stage that produces the same power.

    All three executors run the same :class:`DescriptorBatch` plan:
    ``"serial"`` walks the descriptors in batch order, ``"threads"``
    claims them through :class:`ThreadedPhaseExecutor`'s shared cursor,
    and ``"processes"`` registers the plan table (with its op-tag row)
    in the shared arena and dispatches the ``"blocked"`` sweep.  Like
    :class:`FBMPKOperator`, one instance must not run concurrent
    ``power`` calls.
    """

    def __init__(
        self,
        part: TriangularPartition,
        block_rows: int = 256,
        validate: bool = True,
        backend: Backend = "numpy",
        executor: ExecutorKind = "serial",
        n_threads: Optional[int] = None,
        assign_policy: str = "lpt",
        on_failure: str = "raise",
        hang_timeout: Optional[float] = None,
        claim_chunk: Optional[int] = None,
        pin_workers: Optional[bool] = None,
    ) -> None:
        if backend not in ("numpy", "scipy"):
            raise ValueError(f"unknown backend {backend!r}")
        if executor not in EXECUTOR_KINDS:
            raise ValueError(f"unknown executor {executor!r}")
        if on_failure not in ("raise", "fallback_serial"):
            raise ValueError(f"unknown on_failure policy {on_failure!r}")
        if hang_timeout is not None and hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive (or None)")
        if claim_chunk is not None and claim_chunk < 1:
            raise ValueError("claim_chunk must be >= 1 (or None)")
        self.part = part
        self.block_rows = int(block_rows)
        self.backend = backend
        self.executor = executor
        self.n_threads = n_threads
        self.assign_policy = assign_policy
        self.on_failure = on_failure
        self.hang_timeout = hang_timeout
        self.claim_chunk = claim_chunk
        self.pin_workers = pin_workers
        self.perm = None  # rows keep their original numbering
        self.last_stats: Optional[ExecutionStats] = None
        self._validate = validate
        self.blocking: LevelBlocking = build_level_blocking(
            part.lower, part.upper, self.block_rows)
        self._plans: Dict[int, _BlockedPlan] = {}
        self._run_kernels: Dict[Tuple[int, int], _BlockedRunKernel] = {}
        self._pool: Optional[ThreadedPhaseExecutor] = None
        self._procs: Optional[_ProcBlockedState] = None
        self._xy_buf: Optional[np.ndarray] = None
        self._shm_bound = False
        self._tstats = None

    @property
    def n(self) -> int:
        """Matrix dimension."""
        return self.part.n

    # -- plan construction ---------------------------------------------
    def _plan_for(self, k: int) -> _BlockedPlan:
        """The per-``k`` schedule/batch, built and validated once and
        cached (the repeated-call regime reuses it for free)."""
        plan = self._plans.get(k)
        if plan is None:
            schedule = build_blocked_schedule(self.blocking, k)
            if self._validate \
                    and not check_blocked_schedule(self.blocking, schedule):
                raise ValueError(
                    "levels-blocked schedule violates the ping-pong "
                    "safety invariant")
            descs = blocked_descriptors(self.blocking, schedule,
                                        self.part.lower, self.part.upper)
            batch = DescriptorBatch.from_op_phases(descs,
                                                   self.assign_policy)
            plan = _BlockedPlan(batch=batch, n_phases=schedule.n_phases)
            if len(self._plans) >= 8:
                self._plans.clear()
            self._plans[k] = plan
        return plan

    def _kernels_for(self, plan: _BlockedPlan) -> List[_BlockedRunKernel]:
        """Descriptor-aligned kernel list (serial and threads backends);
        distinct row runs share one kernel across all powers and plans."""
        if plan.kernels is None:
            kernels: List[_BlockedRunKernel] = []
            batch = plan.batch
            for g in range(batch.n_blocks):
                key = (int(batch.starts[g]), int(batch.stops[g]))
                kern = self._run_kernels.get(key)
                if kern is None:
                    kern = _BlockedRunKernel(self.part.lower,
                                             self.part.upper, *key)
                    self._run_kernels[key] = kern
                kernels.append(kern)
            plan.kernels = kernels
        return plan.kernels

    # -- execution backends --------------------------------------------
    def _ensure_threaded(self) -> ThreadedPhaseExecutor:
        if self._pool is None:
            self._pool = ThreadedPhaseExecutor(
                self.n_threads, self.assign_policy,
                hang_timeout=self.hang_timeout,
                claim_chunk=self.claim_chunk)
        return self._pool

    def _ensure_procs(self) -> _ProcBlockedState:
        """Spawn the shared-memory pool on first ``"processes"`` use and
        bind the iterate buffer to its arena segment (dispatch then
        ships no array data, exactly like :class:`FBMPKOperator`)."""
        if self._procs is None:
            pool = ProcessPhaseExecutor(
                self.part, n_workers=self.n_threads,
                policy=self.assign_policy,
                hang_timeout=self.hang_timeout,
                claim_chunk=self.claim_chunk,
                pin_workers=self.pin_workers)
            self._procs = _ProcBlockedState(pool=pool, slots={})
        self._xy_buf = self._procs.pool.xy
        self._shm_bound = True
        return self._procs

    def _proc_slot(self, pstate: _ProcBlockedState, k: int,
                   batch: DescriptorBatch) -> int:
        slot = pstate.slots.get(k)
        if slot is None:
            slot = pstate.pool.register_batch(batch)
            pstate.slots[k] = slot
        return slot

    def _close_procs(self) -> None:
        if self._procs is not None:
            self._procs.pool.close()
            self._procs = None
        if self._shm_bound:
            self._xy_buf = None
            self._shm_bound = False

    def close(self) -> None:
        """Shut down the parallel backends (idempotent; the operator
        remains usable and respawns workers on the next parallel
        call)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._close_procs()

    def __enter__(self) -> "LevelsBlockedOperator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- public API ----------------------------------------------------
    def power(
        self,
        x: np.ndarray,
        k: int,
        counter: Optional[KernelCounter] = None,
        check_finite: bool = False,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Compute ``A^k x`` with the levels-blocked wavefront.

        Bit-identical to serial FBMPK (``strategy="levels"``) on every
        executor.  No ``on_iterate`` hook: intermediate powers are never
        globally materialised — different blocks sit at different powers
        within a phase, which is precisely where the locality comes
        from.  ``check_finite`` therefore guards the input and the final
        iterate only.  Failure containment matches
        :class:`FBMPKOperator.power`: a crashed parallel phase tears the
        backend down and either propagates or — with
        ``on_failure="fallback_serial"`` — recomputes the call serially,
        bit-identical to a clean serial run.
        """
        if k < 0:
            raise ValueError("power k must be non-negative")
        x = _as_float64(x)
        if x.shape != (self.n,):
            raise ValueError(f"x has shape {x.shape}, expected ({self.n},)")
        if out is not None:
            if not isinstance(out, np.ndarray) or out.dtype != np.float64:
                raise TypeError("out must be a float64 ndarray")
            if out.shape != (self.n,):
                raise ValueError(
                    f"out has shape {out.shape}, expected ({self.n},)")
        if check_finite:
            ensure_finite(x, "input vector x")
        self.last_stats = None
        if k == 0:
            if out is not None:
                np.copyto(out, x)
                return out
            return x.copy()
        telemetry = obs.current() is not None
        if telemetry and counter is None:
            counter = KernelCounter()
        obs_snap = _snapshot_counter(counter) if telemetry else None
        mode = self.executor
        with obs.span("fbmpk.power", k=k, n=self.n, executor=mode,
                      backend=self.backend, schedule="levels-blocked"):
            if mode == "serial":
                y = self._power_body(x, k, counter, check_finite,
                                     mode="serial", out=out)
                self._publish_power_telemetry(k, counter, obs_snap)
                return y
            fallback = self.on_failure == "fallback_serial"
            x_saved = x.copy() if fallback else None
            counter_saved = _snapshot_counter(counter) if fallback else None
            try:
                y = self._power_body(x, k, counter, check_finite,
                                     mode=mode, out=out)
            except PhaseExecutionError:
                self.close()
                self._xy_buf = None  # zombie threads may still hold it
                if not fallback:
                    raise
                warnings.warn(
                    f"{mode} levels-blocked phase crashed; recomputing "
                    "serially (on_failure='fallback_serial')",
                    RuntimeWarning, stacklevel=2)
                _restore_counter(counter, counter_saved)
                self.last_stats = None
                y = self._power_body(x_saved, k, counter, check_finite,
                                     mode="serial", out=out)
            except BaseException:
                self.close()
                raise
            self._publish_power_telemetry(k, counter, obs_snap)
            return y

    def _acquire_xy(self, x: np.ndarray) -> np.ndarray:
        """The persistent BtB iterate buffer, loaded with ``x`` in the
        even slots (reused across calls; arena-resident while the
        process backend is live)."""
        if self._xy_buf is None:
            self._xy_buf = np.empty(2 * self.n, dtype=np.float64)
        xy = self._xy_buf
        xy[0::2] = x
        xy[1::2] = 0.0
        return xy

    def _power_body(self, x: np.ndarray, k: int,
                    counter: Optional[KernelCounter], check_finite: bool,
                    mode: str, out: Optional[np.ndarray]) -> np.ndarray:
        plan = self._plan_for(k)
        batch = plan.batch
        procs = mode == "processes"
        if procs:
            # Must run before _acquire_xy: binds the iterate buffer to
            # the pool's shared-memory segment.
            pstate = self._ensure_procs()
            slot = self._proc_slot(pstate, k, batch)
        xy = self._acquire_xy(x)
        XY = xy.reshape(-1, 2)
        d = self.part.diag
        with obs.span("fbmpk.sweep", sweep="blocked", k=k,
                      n_phases=plan.n_phases):
            if mode == "threads":
                pool = self._ensure_threaded()
                kernels = self._kernels_for(plan)
                ops = batch.ops
                stats = ExecutionStats(n_threads=pool.n_threads,
                                       policy=pool.policy)
                self.last_stats = stats
                pool.run_batched(
                    batch,
                    lambda g: kernels[g].run(XY, d, int(ops[g])),
                    stats)
            elif procs:
                stats = ExecutionStats(n_threads=pstate.pool.n_workers,
                                       policy=pstate.pool.policy)
                self.last_stats = stats
                pstate.pool.run_batched(slot, "blocked", stats)
            else:
                kernels = self._kernels_for(plan)
                ops = batch.ops
                for g in range(batch.n_blocks):
                    kernels[g].run(XY, d, int(ops[g]))
        if counter:
            l_total = self.part.lower.nnz
            u_total = self.part.upper.nnz
            for _ in range(k):
                counter.count_l(l_total, l_total)
                counter.count_u(u_total, u_total)
        y = XY[:, k & 1]
        if check_finite:
            ensure_finite(y, f"iterate A^{k} x")
        if out is not None:
            np.copyto(out, y)
            return out
        return y.copy()

    # -- telemetry ------------------------------------------------------
    def _traffic_stats(self):
        """Lazy traffic stats of the operator's matrix (same measurement
        as :meth:`FBMPKOperator._traffic_stats`)."""
        if self._tstats is None:
            from ..memsim.traffic import MatrixTrafficStats

            bw = 1
            for tri in (self.part.lower, self.part.upper):
                if tri.nnz:
                    rows = np.repeat(
                        np.arange(tri.n_rows, dtype=np.int64),
                        tri.row_nnz())
                    bw = max(bw, int(np.abs(rows - tri.indices).max()))
            self._tstats = MatrixTrafficStats(
                n=self.n, nnz=self.part.source_nnz, bandwidth=float(bw))
        return self._tstats

    def _publish_power_telemetry(self, k: int,
                                 counter: Optional[KernelCounter],
                                 snap) -> None:
        """Publish one completed ``power`` call: instrumented pass
        counts plus the modelled DRAM bytes of this schedule *and* of
        FBMPK on the same matrix — the pair whose ratio predicts the
        crossover."""
        tel = obs.current()
        if tel is None or counter is None or snap is None:
            return
        l_entries = counter.l_entries - snap[2]
        u_entries = counter.u_entries - snap[3]
        nnz = max(self.part.source_nnz, 1)
        equivalents = (l_entries + u_entries + k * self.n) / nnz
        obs.add_counter("fbmpk.powers")
        obs.add_counter("fbmpk.levels_blocked.powers")
        obs.add_counter("fbmpk.matrix_read_equivalents", equivalents,
                        unit="A-reads")
        obs.add_counter("fbmpk.standard_matrix_reads", k, unit="A-reads")
        from ..memsim.traffic import fbmpk_traffic, levels_blocked_traffic

        stats = self._traffic_stats()
        lb = levels_blocked_traffic(stats, k, MODEL_CACHE_BYTES,
                                    block_rows=self.block_rows).total_bytes
        fb = fbmpk_traffic(stats, k, MODEL_CACHE_BYTES).total_bytes
        obs.add_counter("fbmpk.model.dram_bytes", lb, unit="bytes")
        obs.add_counter("fbmpk.model.fbmpk_dram_bytes", fb, unit="bytes")
        if fb:
            obs.set_gauge("fbmpk.model.traffic_ratio_vs_fbmpk", lb / fb)


def build_fbmpk_operator(
    a: CSRMatrix,
    strategy: Literal["abmc", "levels", "levels-blocked"] = "abmc",
    block_size: int = 1,
    blocking: Literal["consecutive", "bfs"] = "consecutive",
    backend: Backend = "numpy",
    executor: ExecutorKind = "serial",
    n_threads: Optional[int] = None,
    assign_policy: str = "lpt",
    on_failure: str = "raise",
    hang_timeout: Optional[float] = None,
    claim_chunk: Optional[int] = None,
    pin_workers: Optional[bool] = None,
):
    """One-off preprocessing: split, (optionally) reorder, group, extract.

    ``strategy="abmc"`` reorders the matrix with
    :func:`repro.reorder.abmc.abmc_ordering` (the paper's parallelisation)
    and derives colour/wave sweep groups; ``strategy="levels"`` keeps the
    original order and uses dependency levels;
    ``strategy="levels-blocked"`` returns a
    :class:`LevelsBlockedOperator` scheduling the RACE-style cache-
    blocked wavefront over level-merged blocks (``block_size`` then
    counts rows per resident block).  ``block_size`` is otherwise the
    ABMC rows-per-block knob (1 = point multicolouring, which yields the
    coarsest vectorised groups; the paper's C implementation defaults to
    512/1024 rows for thread-level parallelism).  ``backend`` selects the
    compute kernels for the sweeps: ``"numpy"`` (self-contained reduceat
    kernels) or ``"scipy"`` (compiled CSR kernels, the faster wall-clock
    choice on this substrate).

    ``executor`` selects how sweeps run: ``"serial"`` (the fused
    single-thread pipeline), ``"threads"`` (the real colour-phase
    executor of :mod:`repro.parallel.executor`, ``n_threads`` workers,
    blocks dealt out by ``assign_policy``) or ``"processes"`` (the
    shared-memory worker pool of :mod:`repro.parallel.procexec`, same
    phases and policies but GIL-free — ``n_threads`` then counts worker
    processes).  With ``strategy="abmc"``
    the threaded backend gets the paper's true block phases — one phase
    per colour, one task per block, intra-block rows handled inside the
    task — so a k=2 pair costs ``2 * n_colors`` barriers regardless of
    block size; with ``strategy="levels"`` each level is one phase.
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError("FBMPK requires a square matrix")
    if strategy == "abmc":
        ordering = abmc_ordering(a, block_size=block_size, strategy=blocking)
        reordered = permute_symmetric(a, ordering.perm)
        part = split_ldu(reordered)
        groups = make_sweep_groups_abmc(ordering)
        # Colour-block phases for the threaded backend: forward walks
        # colours ascending, backward descending (same blocks, other
        # triangle).
        phase_plan = (build_phases(ordering, part.lower),
                      list(reversed(build_phases(ordering, part.upper))))
        return FBMPKOperator(part, groups, perm=ordering.perm,
                             backend=backend, executor=executor,
                             n_threads=n_threads,
                             assign_policy=assign_policy,
                             phase_plan=phase_plan,
                             on_failure=on_failure,
                             hang_timeout=hang_timeout,
                             claim_chunk=claim_chunk,
                             pin_workers=pin_workers)
    if strategy == "levels":
        part = split_ldu(a)
        groups = make_sweep_groups_levels(part)
        return FBMPKOperator(part, groups, perm=None, backend=backend,
                             executor=executor, n_threads=n_threads,
                             assign_policy=assign_policy,
                             on_failure=on_failure,
                             hang_timeout=hang_timeout,
                             claim_chunk=claim_chunk,
                             pin_workers=pin_workers)
    if strategy == "levels-blocked":
        # The third scheduling family: keeps the original order (like
        # "levels") but schedules (block, power) wavefronts instead of
        # per-power sweeps; block_size is the rows-per-block residency
        # knob (consecutive levels merged until a block holds at least
        # that many rows).
        part = split_ldu(a)
        return LevelsBlockedOperator(part,
                                     block_rows=max(int(block_size), 1),
                                     backend=backend, executor=executor,
                                     n_threads=n_threads,
                                     assign_policy=assign_policy,
                                     on_failure=on_failure,
                                     hang_timeout=hang_timeout,
                                     claim_chunk=claim_chunk,
                                     pin_workers=pin_workers)
    raise ValueError(f"unknown strategy {strategy!r}")
