"""Analytic access-count planning for MPK pipelines (Section III-B).

The paper's headline claim is a traffic count: the standard MPK streams
the full matrix ``k`` times, while FBMPK streams ``U`` for
``1 + floor(k/2)`` head+backward passes and ``L`` for ``ceil(k/2)``
forward(+tail) passes — roughly ``(k+1)/2`` full-matrix equivalents.
This module states those counts exactly, per method and per power, so
tests can pin the implementations' instrumented counters against them
and the memory model can convert them into byte volumes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AccessPlan", "standard_plan", "fbmpk_plan",
           "levels_blocked_plan", "theoretical_ratio",
           "execution_cost_hint"]


@dataclass(frozen=True)
class AccessPlan:
    """Number of full passes over each submatrix for one ``A^k x`` run.

    ``l_passes``/``u_passes`` count streams over the strict triangles;
    ``d_passes`` over the diagonal vector; ``matrix_equivalents`` is the
    combined traffic in units of "one full read of A" assuming L and U
    each hold about half the off-diagonal entries.
    """

    method: str
    k: int
    l_passes: int
    u_passes: int
    d_passes: int

    @property
    def matrix_equivalents(self) -> float:
        """Traffic in full-matrix units with the half-and-half triangle
        approximation used by the paper's Fig 3 discussion."""
        return (self.l_passes + self.u_passes) / 2.0

    def weighted_equivalents(self, l_nnz: int, u_nnz: int, d_n: int,
                             total_nnz: int) -> float:
        """Traffic in full-matrix units weighted by the true entry counts
        of this matrix's triangles and diagonal."""
        if total_nnz == 0:
            return 0.0
        raw = (self.l_passes * l_nnz + self.u_passes * u_nnz
               + self.d_passes * d_n)
        return raw / total_nnz


def standard_plan(k: int) -> AccessPlan:
    """Algorithm 1: every power is a fresh full SpMV — ``k`` passes over
    each of L, U and D."""
    if k < 0:
        raise ValueError("power k must be non-negative")
    return AccessPlan(method="standard", k=k, l_passes=k, u_passes=k,
                      d_passes=k)


def fbmpk_plan(k: int) -> AccessPlan:
    """FBMPK (Fig 3b): head reads U once; each of the ``floor(k/2)``
    forward/backward pairs reads L once and U once; an odd ``k`` adds one
    tail pass over L.

    Matches the paper's Section III-B count: ``k/2 + 1`` U-passes and
    ``k/2`` L-passes for even ``k``; ``(k+1)/2`` each for odd ``k``.
    The diagonal participates in every produced iterate.
    """
    if k < 0:
        raise ValueError("power k must be non-negative")
    if k == 0:
        return AccessPlan(method="fbmpk", k=0, l_passes=0, u_passes=0,
                          d_passes=0)
    pairs = k // 2
    odd = k % 2
    return AccessPlan(
        method="fbmpk",
        k=k,
        l_passes=pairs + odd,
        u_passes=1 + pairs,
        d_passes=k,
    )


def levels_blocked_plan(k: int) -> AccessPlan:
    """Levels-blocked schedule (RACE-style cache blocking): every power
    touches every stored entry once, so the *logical* stream counts
    equal the standard plan's ``k`` passes over L, U and D.

    The DRAM win of this family is not a reduced pass count but
    *residency*: the wavefront applies all ``k`` powers to a cache-sized
    block before advancing, so most of those logical passes are served
    from cache.  That effect is priced by
    :func:`repro.memsim.traffic.levels_blocked_traffic`, not by this
    access plan — which is why instrumented entry counters for this
    method are expected to report ``k`` full-matrix equivalents even
    when the measured DRAM volume approaches a single stream of A.
    """
    if k < 0:
        raise ValueError("power k must be non-negative")
    return AccessPlan(method="levels-blocked", k=k, l_passes=k,
                      u_passes=k, d_passes=k)


def theoretical_ratio(k: int) -> float:
    """FBMPK over standard traffic ratio ``(k+1) / (2k)`` quoted for
    Fig 9 ("in theory, the memory access ratio ... is (k+1)/2k")."""
    if k <= 0:
        raise ValueError("power k must be positive")
    return (k + 1) / (2.0 * k)


def execution_cost_hint(
    k: int,
    n: int,
    nnz: int,
    method: str = "fbmpk",
    n_groups: int = 1,
    n_threads: int = 1,
    barrier_weight: float = 2048.0,
    executor: str = "serial",
    enqueue_weight: float = 512.0,
) -> float:
    """Dimensionless modelled cost of one candidate execution plan.

    :mod:`repro.tune` uses this to *pre-order* its candidate plans so
    the empirical search tries the analytically promising ones first
    (and a truncated search still covers them).  It is deliberately
    crude — a traffic term from the access plans above divided by the
    thread count, plus a per-sweep synchronisation term charging
    ``barrier_weight`` matrix entries for each of the ``n_groups``
    barriers a sweep crosses — and is never used for correctness or
    acceptance decisions; only the measured wall clock decides those.

    The batched dispatch path performs one enqueue per phase per
    *worker* (never per block), so the ``"processes"`` executor adds a
    cross-process messaging term of ``enqueue_weight`` entries per
    enqueue — ``sweeps * n_groups * n_threads`` of them — on top of the
    barrier term both parallel backends pay.
    """
    if n_threads < 1:
        raise ValueError("n_threads must be positive")
    if method == "levels-blocked":
        # Optimistic residency bound: one DRAM stream of A plus the
        # per-power diagonal work; the wavefront's barriers (one per
        # phase: ~n_groups blocks of skew plus 2(k-1) of drain) are
        # charged once per run, not once per sweep.
        traffic = float(nnz) + float(k) * n
        phases = max(n_groups, 1) + 2 * max(k - 1, 0)
        sync = phases * barrier_weight if n_threads > 1 else 0.0
        if executor == "processes" and n_threads > 1:
            sync += phases * n_threads * enqueue_weight
        return traffic / n_threads + sync
    plan = fbmpk_plan(k) if method == "fbmpk" else standard_plan(k)
    traffic = plan.matrix_equivalents * nnz + plan.d_passes * n
    sweeps = plan.l_passes + plan.u_passes
    sync = sweeps * max(n_groups, 1) * barrier_weight if n_threads > 1 \
        else 0.0
    if executor == "processes" and n_threads > 1:
        sync += sweeps * max(n_groups, 1) * n_threads * enqueue_weight
    return traffic / n_threads + sync
