"""Symbolic SSpMV expressions — a miniature of the paper's Section VII
"compiler-based approach".

The paper's ongoing work translates standard SpMV call sequences into
FBMPK library calls automatically.  This module provides the library-side
half of that idea: users write the mathematical expression —

    >>> from repro.core.expr import A, X
    >>> expr = A(A(X)) + 2 * A(X) + X          # A^2 x + 2 A x + x
    >>> expr.coefficients()
    array([1., 2., 1.])

— and the expression lowers itself to the ``y = sum alpha_i A^i x``
coefficient form that :func:`repro.core.sspmv.sspmv_fbmpk` evaluates with
``~(k+1)/2`` matrix reads.  Supported syntax:

* ``X`` — the input vector symbol;
* ``A(expr)`` or ``A @ expr`` — one application of the matrix;
* ``A**k`` — the k-fold application, usable as ``(A**3)(X)`` or
  ``A**3 @ X``;
* ``+``, ``-``, unary ``-`` between expressions;
* ``c * expr`` / ``expr * c`` / ``expr / c`` for real or complex ``c``.

Expressions are exact: they are finite coefficient vectors, so two
expressions are equal iff their coefficient vectors match.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..sparse.csr import CSRMatrix
from .fbmpk import FBMPKOperator
from .sspmv import sspmv_fbmpk, sspmv_standard

__all__ = ["SSpMVExpression", "MatrixSymbol", "A", "X", "from_coefficients"]

Scalar = Union[int, float, complex]


class SSpMVExpression:
    """A polynomial in the matrix symbol applied to the vector symbol.

    Internally just the coefficient vector ``alphas`` with
    ``expr = sum alphas[i] * A^i @ x``; all operators manipulate it.
    """

    __slots__ = ("alphas",)

    def __init__(self, alphas: Sequence[Scalar]) -> None:
        arr = np.atleast_1d(np.asarray(alphas))
        if arr.ndim != 1 or arr.shape[0] == 0:
            raise ValueError("coefficient vector must be non-empty 1-D")
        if np.iscomplexobj(arr):
            arr = arr.astype(np.complex128)
            if not np.iscomplex(arr).any():
                arr = arr.real.astype(np.float64)
        else:
            arr = arr.astype(np.float64)
        self.alphas = arr

    # -- structure ------------------------------------------------------
    def coefficients(self) -> np.ndarray:
        """The alpha vector, trimmed of trailing zeros (degree-exact)."""
        arr = self.alphas
        nz = np.nonzero(arr)[0]
        if nz.size == 0:
            return arr[:1] * 0
        return arr[: int(nz[-1]) + 1].copy()

    @property
    def degree(self) -> int:
        """Highest power of A with a nonzero coefficient."""
        return int(self.coefficients().shape[0]) - 1

    def __eq__(self, other) -> bool:
        if not isinstance(other, SSpMVExpression):
            return NotImplemented
        a, b = self.coefficients(), other.coefficients()
        return a.shape == b.shape and bool(np.array_equal(a, b))

    def __hash__(self):  # expressions are mutable-free but keep it simple
        return hash(tuple(self.coefficients().tolist()))

    # -- algebra --------------------------------------------------------
    def _binary(self, other: "SSpMVExpression", sign: float
                ) -> "SSpMVExpression":
        n = max(self.alphas.shape[0], other.alphas.shape[0])
        dtype = np.result_type(self.alphas, other.alphas)
        out = np.zeros(n, dtype=dtype)
        out[: self.alphas.shape[0]] += self.alphas
        out[: other.alphas.shape[0]] += sign * other.alphas
        return SSpMVExpression(out)

    def __add__(self, other):
        if isinstance(other, SSpMVExpression):
            return self._binary(other, 1.0)
        return NotImplemented

    def __sub__(self, other):
        if isinstance(other, SSpMVExpression):
            return self._binary(other, -1.0)
        return NotImplemented

    def __neg__(self):
        return SSpMVExpression(-self.alphas)

    def __mul__(self, c):
        if isinstance(c, (int, float, complex, np.number)):
            return SSpMVExpression(self.alphas * c)
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, c):
        if isinstance(c, (int, float, complex, np.number)):
            return SSpMVExpression(self.alphas / c)
        return NotImplemented

    def shifted(self, powers: int = 1) -> "SSpMVExpression":
        """The expression with ``A`` applied ``powers`` more times."""
        if powers < 0:
            raise ValueError("cannot unapply the matrix")
        out = np.zeros(self.alphas.shape[0] + powers,
                       dtype=self.alphas.dtype)
        out[powers:] = self.alphas
        return SSpMVExpression(out)

    # -- evaluation -----------------------------------------------------
    def evaluate(self, operator: FBMPKOperator, x: np.ndarray) -> np.ndarray:
        """Evaluate through the FBMPK pipeline."""
        return sspmv_fbmpk(operator, x, self.coefficients())

    def evaluate_baseline(self, a: CSRMatrix, x: np.ndarray) -> np.ndarray:
        """Evaluate with the standard one-SpMV-per-power pipeline."""
        return sspmv_standard(a, x, self.coefficients())

    def __repr__(self) -> str:
        terms = []
        for i, c in enumerate(self.coefficients()):
            if c == 0:
                continue
            coef = "" if c == 1 else f"{c}*"
            if i == 0:
                terms.append(f"{c}*x" if c != 1 else "x")
            elif i == 1:
                terms.append(f"{coef}A@x")
            else:
                terms.append(f"{coef}A^{i}@x")
        return " + ".join(terms) if terms else "0"


class MatrixSymbol:
    """The symbol ``A``: callable / matmul-able / exponentiable."""

    __slots__ = ("power",)

    def __init__(self, power: int = 1) -> None:
        if power < 0:
            raise ValueError("matrix powers must be non-negative")
        self.power = int(power)

    def __call__(self, expr: SSpMVExpression) -> SSpMVExpression:
        if not isinstance(expr, SSpMVExpression):
            raise TypeError("A(...) expects an SSpMV expression")
        return expr.shifted(self.power)

    def __matmul__(self, expr):
        if isinstance(expr, SSpMVExpression):
            return expr.shifted(self.power)
        return NotImplemented

    def __pow__(self, k: int) -> "MatrixSymbol":
        if not isinstance(k, (int, np.integer)) or k < 0:
            raise ValueError("A**k requires a non-negative integer k")
        return MatrixSymbol(self.power * int(k))

    def __repr__(self) -> str:
        return "A" if self.power == 1 else f"A^{self.power}"


#: The matrix symbol.
A = MatrixSymbol()
#: The input-vector symbol (``1 * A^0 @ x``).
X = SSpMVExpression([1.0])


def from_coefficients(alphas: Sequence[Scalar]) -> SSpMVExpression:
    """Build an expression directly from a coefficient list."""
    return SSpMVExpression(alphas)
