"""Standard matrix-power kernel (the paper's Algorithm 1 baseline).

``mpk_standard`` performs ``x_{i+1} = A x_i`` for ``i = 0..k-1`` with a
fresh full SpMV per power — reading the whole matrix ``k`` times from
memory.  This is the baseline every figure of the paper normalises
against.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from .. import obs
from ..sparse.csr import CSRMatrix
from ..sparse.spmv import spmv_vectorised

__all__ = ["mpk_standard", "mpk_standard_all", "mpk_reference_dense"]

SpmvKernel = Callable[[CSRMatrix, np.ndarray], np.ndarray]


def mpk_standard(
    a: CSRMatrix,
    x: np.ndarray,
    k: int,
    kernel: SpmvKernel = spmv_vectorised,
) -> np.ndarray:
    """Compute ``A^k x`` with ``k`` independent SpMV invocations.

    ``kernel`` selects the single-SpMV implementation (vectorised numpy by
    default; pass :func:`repro.sparse.spmv.spmv_scipy` for the MKL-like
    baseline or :func:`repro.sparse.spmv.spmv_scalar` for the literal
    Algorithm 1 loops).
    """
    if k < 0:
        raise ValueError("power k must be non-negative")
    with obs.span("mpk.standard", k=k, n=a.n_rows):
        y = np.asarray(x, dtype=np.float64).copy()
        for _ in range(k):
            y = kernel(a, y)
    # Every power is one full stream over A — the baseline read count
    # FBMPK's (k+1)/2 equivalents are compared against in a RunReport.
    obs.add_counter("mpk.matrix_read_equivalents", k, unit="A-reads")
    return y


def mpk_standard_all(
    a: CSRMatrix,
    x: np.ndarray,
    k: int,
    kernel: SpmvKernel = spmv_vectorised,
) -> List[np.ndarray]:
    """Compute and return the whole Krylov sequence ``[x, Ax, ..., A^k x]``.

    Used by the generic SSpMV combination (``y = sum alpha_i A^i x``) and
    by the s-step solvers in :mod:`repro.solvers`.
    """
    if k < 0:
        raise ValueError("power k must be non-negative")
    seq = [np.asarray(x, dtype=np.float64).copy()]
    for _ in range(k):
        seq.append(kernel(a, seq[-1]))
    return seq


def mpk_reference_dense(a: CSRMatrix, x: np.ndarray, k: int) -> np.ndarray:
    """Dense-arithmetic oracle: ``k`` dense matvecs on ``A.to_dense()``.

    Only suitable for small test matrices; the property-based tests use it
    as an implementation-independent ground truth.
    """
    dense = a.to_dense()
    y = np.asarray(x, dtype=np.float64).copy()
    for _ in range(k):
        y = dense @ y
    return y
