"""FBMPK core: the paper's primary contribution.

Partitioning (III-A), the forward-backward pipeline (III-B), back-to-back
vector storage (III-C), the ABMC-grouped fused executor (III-D/E), the
analytic access plan, and the generic ``sum alpha_i A^i x`` front end.
"""

from ..parallel.executor import ExecutionStats, ThreadedPhaseExecutor
from .btb import InterleavedPair, deinterleave, interleave
from .expr import A, MatrixSymbol, SSpMVExpression, X, from_coefficients
from .fbmpk import (
    FBMPKOperator,
    KernelCounter,
    LevelsBlockedOperator,
    SweepGroups,
    build_fbmpk_operator,
    check_sweep_groups,
    fbmpk_fused,
    fbmpk_reference,
    fbmpk_unfused,
    make_sweep_groups_abmc,
    make_sweep_groups_levels,
)
from .mpk import mpk_reference_dense, mpk_standard, mpk_standard_all
from .partition import StorageReport, TriangularPartition, split_ldu
from .plan import (
    AccessPlan,
    execution_cost_hint,
    fbmpk_plan,
    standard_plan,
    theoretical_ratio,
)
from .sspmv import SSpMVProblem, sspmv_fbmpk, sspmv_standard

__all__ = [
    "ExecutionStats",
    "ThreadedPhaseExecutor",
    "InterleavedPair",
    "deinterleave",
    "interleave",
    "A",
    "MatrixSymbol",
    "SSpMVExpression",
    "X",
    "from_coefficients",
    "FBMPKOperator",
    "KernelCounter",
    "LevelsBlockedOperator",
    "SweepGroups",
    "build_fbmpk_operator",
    "check_sweep_groups",
    "fbmpk_fused",
    "fbmpk_reference",
    "fbmpk_unfused",
    "make_sweep_groups_abmc",
    "make_sweep_groups_levels",
    "mpk_reference_dense",
    "mpk_standard",
    "mpk_standard_all",
    "StorageReport",
    "TriangularPartition",
    "split_ldu",
    "AccessPlan",
    "execution_cost_hint",
    "fbmpk_plan",
    "standard_plan",
    "theoretical_ratio",
    "SSpMVProblem",
    "sspmv_fbmpk",
    "sspmv_standard",
]
