"""MatrixMarket coordinate-format I/O.

The SuiteSparse matrices the paper evaluates ship as MatrixMarket files;
this module lets users feed the real files to the library when they have
them, and is used by the test suite to round-trip the synthetic stand-ins.
Supports the ``matrix coordinate real/integer/pattern
general/symmetric/skew-symmetric`` subset, which covers all of Table II.

Parsing failures raise :class:`~repro.robust.errors.MatrixMarketError`
(a ``ValueError`` subclass) naming the file and the 1-based line number:
truncated files, non-numeric tokens, and 1-based indices outside
``[1, n]`` are all caught *before* they turn into garbage reads from the
pre-allocated entry arrays.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from ..robust.errors import MatrixMarketError
from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["MatrixMarketError", "read_matrix_market", "write_matrix_market"]

_Readable = Union[str, Path, TextIO]


def _open(source: _Readable, mode: str):
    if isinstance(source, (str, Path)):
        return open(source, mode), True
    return source, False


def _source_name(source: _Readable) -> str:
    if isinstance(source, (str, Path)):
        return str(source)
    return getattr(source, "name", "<stream>")


def read_matrix_market(source: _Readable) -> COOMatrix:
    """Parse a MatrixMarket coordinate file into a :class:`COOMatrix`.

    Symmetric and skew-symmetric files are expanded to full storage (the
    mirrored entries are materialised), matching how the paper's kernels
    consume general CSR.

    Raises :class:`MatrixMarketError` — with the source name and 1-based
    line number baked into the message — on malformed headers, size
    lines, entry lines, out-of-range indices, and truncated files.
    """
    name = _source_name(source)

    def fail(message: str, line_no: int) -> MatrixMarketError:
        return MatrixMarketError(message, source=name, line=line_no)

    fh, owned = _open(source, "r")
    try:
        lineno = 1
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise fail("not a MatrixMarket file (missing %%MatrixMarket "
                       "header)", lineno)
        parts = header.strip().split()
        if len(parts) < 5:
            raise fail(f"malformed MatrixMarket header: {header.strip()!r} "
                       f"(expected 5 fields)", lineno)
        _, obj, fmt, field, symmetry = parts[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise fail("only 'matrix coordinate' files are supported "
                       f"(got {obj!r} {fmt!r})", lineno)
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in ("real", "integer", "pattern"):
            raise fail(f"unsupported field type {field!r}", lineno)
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise fail(f"unsupported symmetry {symmetry!r}", lineno)
        line = fh.readline()
        lineno += 1
        while line and (line.startswith("%") or not line.strip()):
            line = fh.readline()
            lineno += 1
        if not line:
            raise fail("file ends before the size line", lineno)
        toks = line.split()
        if len(toks) != 3:
            raise fail(f"size line must be 'rows cols nnz', got "
                       f"{line.strip()!r}", lineno)
        try:
            n_rows, n_cols, nnz = (int(t) for t in toks)
        except ValueError:
            raise fail(f"non-numeric token in size line {line.strip()!r}",
                       lineno) from None
        if n_rows < 0 or n_cols < 0 or nnz < 0:
            raise fail(f"negative dimension in size line "
                       f"({n_rows} {n_cols} {nnz})", lineno)
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        k = 0
        need_value = field != "pattern"
        for line in fh:
            lineno += 1
            stripped = line.strip()
            if not stripped or stripped.startswith("%"):
                continue
            if k >= nnz:
                raise fail(f"more than the declared {nnz} entries", lineno)
            toks = stripped.split()
            if len(toks) < (3 if need_value else 2):
                raise fail(f"entry line needs "
                           f"{'row col value' if need_value else 'row col'},"
                           f" got {stripped!r}", lineno)
            try:
                r = int(toks[0])
                c = int(toks[1])
                v = float(toks[2]) if need_value else 1.0
            except ValueError:
                raise fail(f"non-numeric token in entry line {stripped!r}",
                           lineno) from None
            if not (1 <= r <= n_rows):
                raise fail(f"row index {r} outside [1, {n_rows}]", lineno)
            if not (1 <= c <= n_cols):
                raise fail(f"column index {c} outside [1, {n_cols}]", lineno)
            rows[k] = r - 1
            cols[k] = c - 1
            vals[k] = v
            k += 1
        if k != nnz:
            raise fail(f"truncated file: expected {nnz} entries, found {k}",
                       lineno)
    finally:
        if owned:
            fh.close()
    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirrored_rows, mirrored_cols = cols[off], rows[off]
        rows = np.concatenate([rows, mirrored_rows])
        cols = np.concatenate([cols, mirrored_cols])
        vals = np.concatenate([vals, sign * vals[off]])
    return COOMatrix(rows, cols, vals, (n_rows, n_cols))


def write_matrix_market(
    matrix: Union[COOMatrix, CSRMatrix],
    target: _Readable,
    comment: str = "generated by repro (FBMPK reproduction)",
) -> None:
    """Write a matrix as ``matrix coordinate real general``."""
    if isinstance(matrix, CSRMatrix):
        from .convert import csr_to_coo

        matrix = csr_to_coo(matrix)
    fh, owned = _open(target, "w")
    try:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        for ln in comment.splitlines():
            fh.write(f"% {ln}\n")
        fh.write(f"{matrix.shape[0]} {matrix.shape[1]} {matrix.nnz}\n")
        buf = _io.StringIO()
        for r, c, v in zip(matrix.rows, matrix.cols, matrix.data):
            # repr of a Python float round-trips exactly (shortest form).
            buf.write(f"{r + 1} {c + 1} {float(v)!r}\n")
        fh.write(buf.getvalue())
    finally:
        if owned:
            fh.close()
