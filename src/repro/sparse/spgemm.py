"""Sparse general matrix-matrix multiplication (SpGEMM).

Provides ``C = A @ B`` for CSR operands, fully vectorised (the expanded
Gustavson formulation: every product ``A[i,k] * B[k,j]`` is materialised
with repeat/gather index arithmetic and reduced through the COO->CSR
duplicate summation).  Memory use is proportional to the *intermediate
product count* ``sum_ik nnz(B[k,:])``, which the helper
:func:`spgemm_product_count` exposes so callers can bound it first.

The library uses SpGEMM to build the **explicit-power baseline** for MPK
(:mod:`repro.baselines.explicit_power`): precomputing ``A^2`` also halves
the number of matrix reads per power — the natural alternative to FBMPK
— but pays ``nnz(A^2)`` storage/traffic, which fill-in usually makes a
losing trade.  The comparison bench quantifies exactly that.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix

__all__ = ["spgemm", "spgemm_product_count", "matrix_power_explicit"]


def spgemm_product_count(a: CSRMatrix, b: CSRMatrix) -> int:
    """Number of elementary products ``A[i,k] * B[k,j]`` the expanded
    SpGEMM materialises — the peak intermediate size."""
    if a.shape[1] != b.shape[0]:
        raise ValueError("inner dimensions do not match")
    return int(b.row_nnz()[a.indices].sum())


def spgemm(a: CSRMatrix, b: CSRMatrix,
           max_products: int = 200_000_000) -> CSRMatrix:
    """Compute ``C = A @ B`` in CSR.

    Raises ``MemoryError`` before materialising more than
    ``max_products`` intermediate entries (~24 bytes each).
    """
    if a.shape[1] != b.shape[0]:
        raise ValueError("inner dimensions do not match")
    total = spgemm_product_count(a, b)
    if total > max_products:
        raise MemoryError(
            f"SpGEMM would materialise {total} products "
            f"(> max_products={max_products})")
    if total == 0:
        return CSRMatrix.zeros((a.n_rows, b.n_cols))
    # One output product per (A entry, B entry in the matching row).
    per_entry = b.row_nnz()[a.indices]            # products per A entry
    a_rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_nnz())
    out_rows = np.repeat(a_rows, per_entry)
    a_vals = np.repeat(a.data, per_entry)
    # Ranges-to-indices: positions into B's arrays for every product.
    offsets = np.zeros(total, dtype=np.int64)
    ends = np.cumsum(per_entry)
    starts = ends - per_entry
    nonempty = per_entry > 0
    offsets = np.repeat(b.indptr[a.indices][nonempty] - starts[nonempty],
                        per_entry[nonempty])
    gather = np.arange(total, dtype=np.int64) + offsets
    out_cols = b.indices[gather]
    out_vals = a_vals * b.data[gather]
    return CSRMatrix.from_coo_arrays(out_rows, out_cols, out_vals,
                                     (a.n_rows, b.n_cols))


def matrix_power_explicit(a: CSRMatrix, p: int,
                          max_products: int = 200_000_000) -> CSRMatrix:
    """Explicit sparse ``A^p`` by repeated squaring (``p >= 1``).

    Fill-in grows quickly — callers should check
    :meth:`CSRMatrix.nnz` of the result against the storage they can
    afford.  Used by the explicit-power MPK baseline for ``p = 2``.
    """
    if p < 1:
        raise ValueError("power must be >= 1")
    result = None
    base = a
    e = p
    while e:
        if e & 1:
            result = base if result is None else \
                spgemm(result, base, max_products)
        e >>= 1
        if e:
            base = spgemm(base, base, max_products)
    return result
