"""Compressed Sparse Row (CSR) matrix container.

This is the storage format the paper builds on (Section II-A).  The class
stores the three classic arrays:

``indptr``
    ``n_rows + 1`` row pointers (``row_ptr`` in the paper's Fig 1).
``indices``
    column index of every stored entry (``col_idx``).
``data``
    the stored values (``values``).

The implementation is deliberately self-contained (no scipy dependency) so
the substrate the paper's kernels run on is fully under our control.  All
hot paths are vectorised numpy: the row-wise reduction used by
:meth:`CSRMatrix.matvec` and :meth:`CSRMatrix.matmat` is a single
``np.add.reduceat`` over the element-wise products, which streams the
``data``/``indices`` arrays exactly once — the same traffic pattern as the
C kernels in the paper.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

__all__ = ["CSRMatrix", "reduce_rows"]

_INDEX_DTYPE = np.int64
_VALUE_DTYPE = np.float64


def reduce_rows(products: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Sum ``products`` within each CSR row segment described by ``indptr``.

    ``products`` has one leading entry per stored nonzero (optionally with
    trailing axes, e.g. shape ``(nnz, m)`` for a multi-vector product).  The
    result has one leading entry per row.  Empty rows produce exact zeros.

    This wraps ``np.add.reduceat`` with the standard fix-ups: ``reduceat``
    cannot represent empty segments, so empty rows are masked out and their
    outputs left at zero.
    """
    indptr = np.asarray(indptr)
    n_rows = indptr.shape[0] - 1
    out = np.zeros((n_rows,) + products.shape[1:], dtype=products.dtype)
    if products.shape[0] == 0 or n_rows == 0:
        return out
    nonempty = indptr[:-1] != indptr[1:]
    if not nonempty.any():
        return out
    starts = indptr[:-1][nonempty]
    # With empty rows removed the segment boundaries of reduceat coincide
    # with the true row boundaries: the end of a nonempty row equals the
    # start of the next nonempty row.
    out[nonempty] = np.add.reduceat(products, starts, axis=0)
    return out


class CSRMatrix:
    """A sparse matrix in CSR format with vectorised kernels.

    Parameters
    ----------
    indptr, indices, data:
        The classic CSR arrays.  ``indptr`` must be monotonically
        non-decreasing with ``indptr[0] == 0`` and
        ``indptr[-1] == len(indices) == len(data)``.
    shape:
        ``(n_rows, n_cols)``.
    check:
        When true (default) the invariants above are validated eagerly.
    """

    __slots__ = ("indptr", "indices", "data", "shape", "_scipy_handle")

    def __init__(
        self,
        indptr: Iterable[int],
        indices: Iterable[int],
        data: Iterable[float],
        shape: Tuple[int, int],
        *,
        check: bool = True,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=_INDEX_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=_INDEX_DTYPE)
        self.data = np.ascontiguousarray(data, dtype=_VALUE_DTYPE)
        self.shape = (int(shape[0]), int(shape[1]))
        # Memoised scipy.sparse handle (see repro.sparse.convert): a
        # (indptr, indices, data, handle) tuple whose first three slots
        # record the exact array objects the handle was built from, so
        # replacing any CSR array invalidates it.
        self._scipy_handle = None
        if check:
            self._validate()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Build a CSR matrix from a dense 2-D array (zeros are dropped)."""
        dense = np.asarray(dense, dtype=_VALUE_DTYPE)
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(dense)
        data = dense[rows, cols]
        return cls.from_coo_arrays(rows, cols, data, dense.shape)

    @classmethod
    def from_coo_arrays(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
        *,
        sum_duplicates: bool = True,
    ) -> "CSRMatrix":
        """Build a CSR matrix from parallel (row, col, value) arrays.

        Duplicate coordinates are summed when ``sum_duplicates`` is true,
        matching the conventional COO -> CSR conversion semantics.
        """
        rows = np.asarray(rows, dtype=_INDEX_DTYPE)
        cols = np.asarray(cols, dtype=_INDEX_DTYPE)
        data = np.asarray(data, dtype=_VALUE_DTYPE)
        if not (rows.shape == cols.shape == data.shape):
            raise ValueError("rows, cols and data must have identical shapes")
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if rows.size:
            if rows.min(initial=0) < 0 or rows.max(initial=0) >= n_rows:
                raise ValueError("row index out of range")
            if cols.min(initial=0) < 0 or cols.max(initial=0) >= n_cols:
                raise ValueError("column index out of range")
        # Single-key sort (row-major linear index) is several times faster
        # than a two-array lexsort for the matrix sizes we build.
        if rows.size and n_rows * n_cols < (1 << 62):
            key = rows * n_cols + cols
            order = np.argsort(key, kind="stable")
            key = key[order]
            rows, cols, data = rows[order], cols[order], data[order]
            if sum_duplicates:
                keep = np.empty(rows.shape, dtype=bool)
                keep[0] = True
                np.not_equal(key[1:], key[:-1], out=keep[1:])
                if not keep.all():
                    # Duplicates are adjacent after the sort, so a segment
                    # reduction (reduceat) sums them far faster than the
                    # scattered np.add.at alternative.
                    starts = np.nonzero(keep)[0]
                    summed = np.add.reduceat(data, starts)
                    rows, cols, data = rows[starts], cols[starts], summed
        elif rows.size:
            order = np.lexsort((cols, rows))
            rows, cols, data = rows[order], cols[order], data[order]
            if sum_duplicates:
                keep = np.empty(rows.shape, dtype=bool)
                keep[0] = True
                np.not_equal(rows[1:], rows[:-1], out=keep[1:])
                keep[1:] |= cols[1:] != cols[:-1]
                if not keep.all():
                    group = np.cumsum(keep) - 1
                    summed = np.zeros(int(group[-1]) + 1, dtype=_VALUE_DTYPE)
                    np.add.at(summed, group, data)
                    rows, cols, data = rows[keep], cols[keep], summed
        indptr = np.zeros(n_rows + 1, dtype=_INDEX_DTYPE)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, cols, data, (n_rows, n_cols), check=False)

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        """The ``n x n`` identity matrix in CSR form."""
        idx = np.arange(n, dtype=_INDEX_DTYPE)
        return cls(
            np.arange(n + 1, dtype=_INDEX_DTYPE),
            idx,
            np.ones(n, dtype=_VALUE_DTYPE),
            (n, n),
            check=False,
        )

    @classmethod
    def zeros(cls, shape: Tuple[int, int]) -> "CSRMatrix":
        """An all-zero matrix (no stored entries)."""
        return cls(
            np.zeros(int(shape[0]) + 1, dtype=_INDEX_DTYPE),
            np.empty(0, dtype=_INDEX_DTYPE),
            np.empty(0, dtype=_VALUE_DTYPE),
            shape,
            check=False,
        )

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.data.shape[0])

    def row_nnz(self) -> np.ndarray:
        """Per-row stored-entry counts as an ``int64`` array."""
        return np.diff(self.indptr)

    def _validate(self) -> None:
        n_rows, _ = self.shape
        if self.indptr.shape[0] != n_rows + 1:
            raise ValueError(
                f"indptr has length {self.indptr.shape[0]}, expected {n_rows + 1}"
            )
        if self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if int(self.indptr[-1]) != self.indices.shape[0]:
            raise ValueError("indptr[-1] must equal len(indices)")
        if self.indices.shape[0] != self.data.shape[0]:
            raise ValueError("indices and data lengths differ")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ValueError("column index out of range")

    def has_sorted_indices(self) -> bool:
        """True when every row's column indices are strictly increasing."""
        for r in range(self.n_rows):
            row = self.indices[self.indptr[r] : self.indptr[r + 1]]
            if row.size > 1 and np.any(np.diff(row) <= 0):
                return False
        return True

    def sort_indices(self) -> "CSRMatrix":
        """Return a copy with column indices sorted within each row."""
        rows = np.repeat(
            np.arange(self.n_rows, dtype=_INDEX_DTYPE), self.row_nnz()
        )
        return CSRMatrix.from_coo_arrays(
            rows, self.indices, self.data, self.shape, sum_duplicates=False
        )

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Sparse matrix-vector product ``y = A @ x`` (vectorised).

        ``out`` may be supplied to avoid an allocation; it is overwritten.
        """
        x = np.asarray(x, dtype=_VALUE_DTYPE)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x has shape {x.shape}, expected ({self.n_cols},)")
        y = reduce_rows(self.data * x[self.indices], self.indptr)
        if out is None:
            return y
        out[...] = y
        return out

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Sparse matrix times dense block ``Y = A @ X`` for ``X`` of shape
        ``(n_cols, m)``.

        This is the fused multi-vector kernel FBMPK relies on: the matrix
        arrays are streamed **once** while producing all ``m`` output
        columns, which is exactly the "read A once for two iterates"
        memory behaviour of the paper's forward/backward sweeps.
        """
        X = np.asarray(X, dtype=_VALUE_DTYPE)
        if X.ndim != 2 or X.shape[0] != self.n_cols:
            raise ValueError(f"X has shape {X.shape}, expected ({self.n_cols}, m)")
        if X.shape[1] <= 4:
            # One shared gather, then per-column 1-D reductions: numpy's
            # 1-D reduceat is measurably faster than the 2-D axis form
            # for the narrow blocks FBMPK uses (m = 2).
            gathered = X[self.indices]
            cols = [
                reduce_rows(self.data * gathered[:, j], self.indptr)
                for j in range(X.shape[1])
            ]
            return np.stack(cols, axis=1) if cols else \
                np.zeros((self.n_rows, 0), dtype=_VALUE_DTYPE)
        products = self.data[:, None] * X[self.indices]
        return reduce_rows(products, self.indptr)

    def matvec_scalar(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV: literal transcription of Algorithm 1's inner
        loops.  Quadratically slower than :meth:`matvec`; used by tests to
        pin down the vectorised kernels."""
        x = np.asarray(x, dtype=_VALUE_DTYPE)
        y = np.zeros(self.n_rows, dtype=_VALUE_DTYPE)
        for i in range(self.n_rows):
            acc = 0.0
            for j in range(self.indptr[i], self.indptr[i + 1]):
                acc += self.data[j] * x[self.indices[j]]
            y[i] = acc
        return y

    def __matmul__(self, other):
        if isinstance(other, np.ndarray):
            if other.ndim == 1:
                return self.matvec(other)
            return self.matmat(other)
        return NotImplemented

    # ------------------------------------------------------------------
    # structure manipulation
    # ------------------------------------------------------------------
    def row_slice(self, start: int, stop: int) -> "CSRMatrix":
        """A CSR matrix holding rows ``start:stop``.

        ``indices``/``data`` are *views* into this matrix's arrays (no copy)
        — mirroring how the parallel implementation hands contiguous row
        ranges (colour blocks) to worker threads without repacking.
        """
        if not (0 <= start <= stop <= self.n_rows):
            raise IndexError("row range out of bounds")
        lo, hi = int(self.indptr[start]), int(self.indptr[stop])
        return CSRMatrix(
            self.indptr[start : stop + 1] - lo,
            self.indices[lo:hi],
            self.data[lo:hi],
            (stop - start, self.n_cols),
            check=False,
        )

    def select_rows(self, rows: np.ndarray) -> "CSRMatrix":
        """Gather an arbitrary row subset into a new CSR matrix.

        ``rows`` may be in any order and the result keeps that order.  The
        gather is fully vectorised (the ranges-to-indices trick), so the
        FBMPK operator builder can extract per-colour / per-level row
        groups of large matrices as a one-off preprocessing step.
        """
        rows = np.asarray(rows, dtype=_INDEX_DTYPE)
        if rows.size and (rows.min() < 0 or rows.max() >= self.n_rows):
            raise IndexError("row index out of range")
        lens = self.indptr[rows + 1] - self.indptr[rows]
        indptr = np.zeros(rows.shape[0] + 1, dtype=_INDEX_DTYPE)
        np.cumsum(lens, out=indptr[1:])
        total = int(indptr[-1])
        if total:
            # Element p of output row i maps to global position
            # self.indptr[rows[i]] + (p - indptr[i]).
            offsets = np.repeat(self.indptr[rows] - indptr[:-1], lens)
            gather = np.arange(total, dtype=_INDEX_DTYPE) + offsets
            indices = self.indices[gather]
            data = self.data[gather]
        else:
            indices = np.empty(0, dtype=_INDEX_DTYPE)
            data = np.empty(0, dtype=_VALUE_DTYPE)
        return CSRMatrix(indptr, indices, data, (rows.shape[0], self.n_cols),
                         check=False)

    def transpose(self) -> "CSRMatrix":
        """Return ``A^T`` as a new CSR matrix."""
        rows = np.repeat(
            np.arange(self.n_rows, dtype=_INDEX_DTYPE), self.row_nnz()
        )
        return CSRMatrix.from_coo_arrays(
            self.indices, rows, self.data, (self.n_cols, self.n_rows),
            sum_duplicates=False,
        )

    def diagonal(self) -> np.ndarray:
        """Main diagonal as a dense vector (absent entries are zero)."""
        n = min(self.shape)
        d = np.zeros(n, dtype=_VALUE_DTYPE)
        rows = np.repeat(np.arange(self.n_rows, dtype=_INDEX_DTYPE), self.row_nnz())
        mask = rows == self.indices
        np.add.at(d, rows[mask], self.data[mask])
        return d

    def to_dense(self) -> np.ndarray:
        """Materialise the matrix as a dense 2-D array."""
        dense = np.zeros(self.shape, dtype=_VALUE_DTYPE)
        rows = np.repeat(np.arange(self.n_rows, dtype=_INDEX_DTYPE), self.row_nnz())
        np.add.at(dense, (rows, self.indices), self.data)
        return dense

    def copy(self) -> "CSRMatrix":
        """Deep copy (arrays are duplicated)."""
        return CSRMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(),
            self.shape, check=False,
        )

    def is_symmetric(self, tol: float = 0.0) -> bool:
        """Structural+numerical symmetry test (``|A - A^T| <= tol``)."""
        t = self.transpose()
        a = self.sort_indices()
        if not np.array_equal(a.indptr, t.indptr):
            return False
        if not np.array_equal(a.indices, t.indices):
            return False
        return bool(np.all(np.abs(a.data - t.data) <= tol))

    def memory_bytes(self, index_bytes: int = 8, value_bytes: int = 8) -> int:
        """Storage footprint in bytes given index/value widths.

        Used by the Table IV storage-overhead accounting.
        """
        return (
            self.indptr.shape[0] * index_bytes
            + self.indices.shape[0] * index_bytes
            + self.data.shape[0] * value_bytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"nnz/row={self.nnz / max(self.n_rows, 1):.2f})"
        )
