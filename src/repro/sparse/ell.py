"""ELLPACK sparse storage format.

Section VII of the paper names ELLPACK as a candidate replacement for CSR
in the FBMPK submatrices because its fixed row width enables clean
vectorisation.  We implement it as one of the interchangeable compute
formats: column-major ``(n_rows, width)`` panels of values and column
indices, padded with a sentinel column and zero values.

The padding waste ``n_rows * width - nnz`` is exposed so format-selection
heuristics (and the format-comparison bench) can reason about it.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix

__all__ = ["ELLMatrix"]


class ELLMatrix:
    """ELLPACK matrix: dense ``(n_rows, width)`` panels.

    ``indices[i, j]`` holds the column of the ``j``-th stored entry of row
    ``i`` or ``-1`` for padding; ``data`` holds the value (0 for padding).
    """

    __slots__ = ("indices", "data", "shape", "width")

    def __init__(self, indices: np.ndarray, data: np.ndarray, shape) -> None:
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data shapes differ")
        if self.indices.ndim != 2 or self.indices.shape[0] != self.shape[0]:
            raise ValueError("panel shape must be (n_rows, width)")
        self.width = int(self.indices.shape[1])

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "ELLMatrix":
        """Pack a CSR matrix into ELLPACK panels of width ``max row nnz``."""
        n = csr.n_rows
        counts = csr.row_nnz()
        width = int(counts.max(initial=0))
        indices = np.full((n, width), -1, dtype=np.int64)
        data = np.zeros((n, width), dtype=np.float64)
        if csr.nnz:
            # Scatter each nonzero to (row, position-within-row).
            rows = np.repeat(np.arange(n, dtype=np.int64), counts)
            pos = np.arange(csr.nnz, dtype=np.int64) - np.repeat(
                csr.indptr[:-1], counts
            )
            indices[rows, pos] = csr.indices
            data[rows, pos] = csr.data
        return cls(indices, data, csr.shape)

    @property
    def nnz(self) -> int:
        """Number of genuine (non-padding) entries."""
        return int((self.indices >= 0).sum())

    @property
    def padding(self) -> int:
        """Number of padded slots, the ELLPACK storage waste."""
        return self.indices.size - self.nnz

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = A @ x`` over the fixed-width panels.

        Padding uses column 0 with a zero coefficient so no masking is
        needed in the inner product — the same trick real ELL kernels use.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"x has shape {x.shape}, expected ({self.shape[1]},)")
        safe = np.where(self.indices >= 0, self.indices, 0)
        return (self.data * x[safe]).sum(axis=1)

    def to_csr(self) -> CSRMatrix:
        """Unpack back to CSR (padding removed)."""
        mask = self.indices >= 0
        rows = np.nonzero(mask)[0]
        return CSRMatrix.from_coo_arrays(
            rows, self.indices[mask], self.data[mask], self.shape,
            sum_duplicates=False,
        )

    def memory_bytes(self, index_bytes: int = 8, value_bytes: int = 8) -> int:
        """Storage footprint including padding."""
        return self.indices.size * index_bytes + self.data.size * value_bytes

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ELLMatrix(shape={self.shape}, width={self.width}, "
            f"padding={self.padding})"
        )
