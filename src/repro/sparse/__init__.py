"""Sparse-matrix substrate: storage formats, conversions, I/O and kernels.

This package is the foundation the FBMPK core (:mod:`repro.core`) runs on.
It provides the CSR format of the paper's Section II-A plus the COO
interchange format, the ELLPACK / SELL-C-sigma formats discussed as future
work in Section VII, MatrixMarket I/O, and a tiered SpMV kernel collection.
"""

from .assembly import MatrixBuilder
from .bsr import BSRMatrix
from .coo import COOMatrix
from .csr import CSRMatrix, reduce_rows
from .ell import ELLMatrix
from .sell import SellCSigmaMatrix, SellSlice
from .convert import (
    coo_to_csr,
    csr_to_coo,
    csr_to_ell,
    csr_to_sell,
    from_scipy,
    to_scipy_csr,
)
from .io import MatrixMarketError, read_matrix_market, write_matrix_market
from .spgemm import matrix_power_explicit, spgemm, spgemm_product_count
from .spmv import (
    KERNELS,
    spmm_vectorised,
    spmv_blocked,
    spmv_scalar,
    spmv_scipy,
    spmv_vectorised,
)

__all__ = [
    "MatrixBuilder",
    "BSRMatrix",
    "COOMatrix",
    "CSRMatrix",
    "ELLMatrix",
    "SellCSigmaMatrix",
    "SellSlice",
    "reduce_rows",
    "coo_to_csr",
    "csr_to_coo",
    "csr_to_ell",
    "csr_to_sell",
    "from_scipy",
    "to_scipy_csr",
    "MatrixMarketError",
    "read_matrix_market",
    "write_matrix_market",
    "matrix_power_explicit",
    "spgemm",
    "spgemm_product_count",
    "KERNELS",
    "spmm_vectorised",
    "spmv_blocked",
    "spmv_scalar",
    "spmv_scipy",
    "spmv_vectorised",
]
