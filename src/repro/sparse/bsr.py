"""BSR (Block Sparse Row) storage format.

Most of the paper's structural FEM matrices (``audikw_1``, ``ldoor``,
``Flan_1565``...) come from vector-valued 3-D elements, whose natural
sparsity is *blocked*: each mesh-node pair contributes a dense ``r x r``
block (r = 3 displacement components).  BSR stores those blocks densely
— one column index per block instead of per entry — cutting index
traffic by ``~r^2`` and enabling register-blocked kernels.  It is the
natural next step after the CSR/ELL discussion of Section VII, so the
library provides it alongside the other formats with the same
interchangeability contract.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix

__all__ = ["BSRMatrix"]


class BSRMatrix:
    """Square-blocked sparse matrix.

    ``indptr``/``indices`` index *block rows* and *block columns*;
    ``blocks`` has shape ``(n_blocks_stored, r, r)``.  The matrix
    dimension must be a multiple of the block size ``r``.
    """

    __slots__ = ("indptr", "indices", "blocks", "shape", "r")

    def __init__(self, indptr, indices, blocks, shape) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.blocks = np.ascontiguousarray(blocks, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.blocks.ndim != 3 or self.blocks.shape[1] != self.blocks.shape[2]:
            raise ValueError("blocks must have shape (nb, r, r)")
        # Block size comes from the array shape even when no blocks are
        # stored (an all-zero matrix still has a blocking granularity).
        self.r = int(self.blocks.shape[1]) if self.blocks.shape[1] else 1
        if self.shape[0] % max(self.r, 1) or self.shape[1] % max(self.r, 1):
            raise ValueError("matrix dimensions must be multiples of r")
        n_brows = self.shape[0] // self.r
        if self.indptr.shape[0] != n_brows + 1:
            raise ValueError("indptr length must be n_block_rows + 1")
        if int(self.indptr[-1]) != self.indices.shape[0] \
                or self.indices.shape[0] != self.blocks.shape[0]:
            raise ValueError("indptr/indices/blocks lengths disagree")

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr: CSRMatrix, r: int) -> "BSRMatrix":
        """Pack a CSR matrix into ``r x r`` blocks (zero-filling inside
        any block that has at least one stored entry)."""
        if r < 1:
            raise ValueError("block size must be positive")
        if csr.shape[0] % r or csr.shape[1] % r:
            raise ValueError("matrix dimensions must be multiples of r")
        n_brows = csr.shape[0] // r
        rows = np.repeat(np.arange(csr.n_rows, dtype=np.int64),
                         csr.row_nnz())
        brows = rows // r
        bcols = csr.indices // r
        # Unique (block-row, block-col) pairs in row-major order.
        key = brows * (csr.shape[1] // r) + bcols
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        uniq_mask = np.empty(key_sorted.shape, dtype=bool)
        if key_sorted.size:
            uniq_mask[0] = True
            np.not_equal(key_sorted[1:], key_sorted[:-1], out=uniq_mask[1:])
        uniq_keys = key_sorted[uniq_mask]
        nb = uniq_keys.shape[0]
        blocks = np.zeros((nb, r, r))
        # Scatter entries into their block slots.
        block_of_entry = np.searchsorted(uniq_keys, key)
        np.add.at(blocks,
                  (block_of_entry, rows % r, csr.indices % r),
                  csr.data)
        ubrows = uniq_keys // (csr.shape[1] // r)
        ubcols = uniq_keys % (csr.shape[1] // r)
        indptr = np.zeros(n_brows + 1, dtype=np.int64)
        np.add.at(indptr, ubrows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, ubcols, blocks, csr.shape)

    @property
    def nnz_blocks(self) -> int:
        """Number of stored blocks."""
        return int(self.blocks.shape[0])

    @property
    def nnz(self) -> int:
        """Stored scalar entries including intra-block zero fill."""
        return self.nnz_blocks * self.r * self.r

    def fill_ratio(self, csr_nnz: int) -> float:
        """Stored scalars over the source CSR's nnz — the zero-fill
        price of blocking (1.0 = perfectly blocked structure)."""
        return self.nnz / max(csr_nnz, 1)

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = A @ x`` with block-level kernels.

        Gathers ``r``-vectors per stored block, one batched ``(nb, r, r)
        @ (nb, r)`` einsum, and a segment reduction per block row —
        index traffic is one integer per *block* rather than per entry.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"x has shape {x.shape}, expected "
                             f"({self.shape[1]},)")
        if self.nnz_blocks == 0:
            return np.zeros(self.shape[0])
        xb = x.reshape(self.shape[1] // self.r, self.r)
        products = np.einsum("bij,bj->bi", self.blocks, xb[self.indices])
        n_brows = self.shape[0] // self.r
        out = np.zeros((n_brows, self.r))
        nonempty = self.indptr[:-1] != self.indptr[1:]
        if nonempty.any():
            starts = self.indptr[:-1][nonempty]
            out[nonempty] = np.add.reduceat(products, starts, axis=0)
        return out.reshape(self.shape[0])

    def to_csr(self) -> CSRMatrix:
        """Unpack to CSR (zero fill dropped)."""
        if self.nnz_blocks == 0:
            return CSRMatrix.zeros(self.shape)
        nb, r = self.nnz_blocks, self.r
        brows = np.repeat(np.arange(self.shape[0] // r, dtype=np.int64),
                          np.diff(self.indptr))
        rows = (brows[:, None, None] * r
                + np.arange(r)[None, :, None]).repeat(r, axis=2)
        cols = (self.indices[:, None, None] * r
                + np.arange(r)[None, None, :]).repeat(r, axis=1)
        vals = self.blocks
        mask = vals != 0.0
        return CSRMatrix.from_coo_arrays(rows[mask], cols[mask],
                                         vals[mask], self.shape,
                                         sum_duplicates=False)

    def memory_bytes(self, index_bytes: int = 8,
                     value_bytes: int = 8) -> int:
        """Storage footprint: block values + one index per block."""
        return (self.indptr.size + self.indices.size) * index_bytes \
            + self.blocks.size * value_bytes

    def __repr__(self) -> str:  # pragma: no cover
        return (f"BSRMatrix(shape={self.shape}, r={self.r}, "
                f"blocks={self.nnz_blocks})")
