"""Incremental sparse-matrix assembly (the FEM usage pattern).

The paper's evaluation matrices are assembled finite-element operators:
element-by-element accumulation of small dense blocks, duplicates
summed.  :class:`MatrixBuilder` provides that workflow over growing
coordinate buffers with amortised O(1) appends, finalising into CSR —
the entry path for users bringing their own discretisations to the
library.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .csr import CSRMatrix

__all__ = ["MatrixBuilder"]

_INITIAL_CAPACITY = 1024


class MatrixBuilder:
    """Accumulate ``(row, col, value)`` contributions, then build CSR.

    Duplicate coordinates sum on :meth:`build` (assembly semantics).
    Buffers double on demand, so ``add``/``add_block`` stay amortised
    O(1) per stored value.
    """

    def __init__(self, shape: Tuple[int, int]) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        if min(self.shape) < 0:
            raise ValueError("shape must be non-negative")
        self._rows = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._cols = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._vals = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._n = 0

    def __len__(self) -> int:
        """Number of accumulated (possibly duplicate) entries."""
        return self._n

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        cap = self._rows.shape[0]
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        for name in ("_rows", "_cols", "_vals"):
            old = getattr(self, name)
            fresh = np.empty(cap, dtype=old.dtype)
            fresh[: self._n] = old[: self._n]
            setattr(self, name, fresh)

    def add(self, row: int, col: int, value: float) -> None:
        """Accumulate one entry."""
        if not (0 <= row < self.shape[0] and 0 <= col < self.shape[1]):
            raise IndexError(f"entry ({row}, {col}) outside {self.shape}")
        self._reserve(1)
        self._rows[self._n] = row
        self._cols[self._n] = col
        self._vals[self._n] = value
        self._n += 1

    def add_block(self, rows, cols, block) -> None:
        """Accumulate a dense element block.

        ``rows``/``cols`` are the global indices of the block's local
        rows/columns; ``block`` is the ``len(rows) x len(cols)`` dense
        element matrix — the classic FEM scatter-add.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        block = np.asarray(block, dtype=np.float64)
        if block.shape != (rows.shape[0], cols.shape[0]):
            raise ValueError(
                f"block shape {block.shape} does not match "
                f"({rows.shape[0]}, {cols.shape[0]})")
        if rows.size and (rows.min() < 0 or rows.max() >= self.shape[0]):
            raise IndexError("block row index out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= self.shape[1]):
            raise IndexError("block column index out of range")
        m = block.size
        self._reserve(m)
        sl = slice(self._n, self._n + m)
        self._rows[sl] = np.repeat(rows, cols.shape[0])
        self._cols[sl] = np.tile(cols, rows.shape[0])
        self._vals[sl] = block.ravel()
        self._n += m

    def add_diagonal(self, values) -> None:
        """Accumulate onto the main diagonal."""
        values = np.asarray(values, dtype=np.float64)
        n = min(self.shape)
        if values.shape != (n,):
            raise ValueError(f"diagonal must have length {n}")
        idx = np.arange(n, dtype=np.int64)
        m = n
        self._reserve(m)
        sl = slice(self._n, self._n + m)
        self._rows[sl] = idx
        self._cols[sl] = idx
        self._vals[sl] = values
        self._n += m

    def build(self) -> CSRMatrix:
        """Finalise into CSR (duplicates summed).  The builder remains
        usable afterwards (further adds accumulate on top)."""
        return CSRMatrix.from_coo_arrays(
            self._rows[: self._n], self._cols[: self._n],
            self._vals[: self._n], self.shape)
