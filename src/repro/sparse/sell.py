"""SELL-C-sigma (sliced ELLPACK) sparse storage format.

The second future-work format named in Section VII (Kreutzer et al.,
"A unified sparse matrix data format...", SISC 2014).  Rows are grouped
into slices of height ``C``; within a sorting window of ``sigma`` rows the
rows are ordered by descending nnz so rows sharing a slice have similar
lengths, which bounds padding while keeping rows near their original
position (important for locality and for restoring the output order).
Each slice is stored as an ELLPACK panel of its own width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .csr import CSRMatrix

__all__ = ["SellSlice", "SellCSigmaMatrix"]


@dataclass(frozen=True)
class SellSlice:
    """One slice: ``rows`` are original row ids, panels are ``(C', width)``
    where ``C'`` may be smaller than ``C`` for the trailing slice."""

    rows: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    @property
    def width(self) -> int:
        """Panel width of this slice (max nnz among its rows)."""
        return int(self.indices.shape[1])


class SellCSigmaMatrix:
    """SELL-C-sigma matrix built from CSR.

    Parameters
    ----------
    csr:
        Source matrix.
    c:
        Slice height (rows per slice); typical hardware values are the
        SIMD width, e.g. 4-32.
    sigma:
        Sorting window; ``sigma = 1`` disables sorting (plain sliced ELL),
        ``sigma >= n`` sorts globally.
    """

    __slots__ = ("slices", "shape", "c", "sigma", "_nnz")

    def __init__(self, csr: CSRMatrix, c: int = 8, sigma: int = 64) -> None:
        if c < 1 or sigma < 1:
            raise ValueError("c and sigma must be positive")
        self.shape = csr.shape
        self.c = int(c)
        self.sigma = int(sigma)
        self._nnz = csr.nnz
        counts = csr.row_nnz()
        n = csr.n_rows
        order = np.arange(n, dtype=np.int64)
        # Sort each sigma-window by descending row length (stable so ties
        # keep their original relative order).
        for lo in range(0, n, self.sigma):
            hi = min(lo + self.sigma, n)
            window = order[lo:hi]
            order[lo:hi] = window[np.argsort(-counts[window], kind="stable")]
        self.slices: List[SellSlice] = []
        for lo in range(0, n, self.c):
            rows = order[lo : min(lo + self.c, n)]
            width = int(counts[rows].max(initial=0))
            idx = np.full((rows.size, max(width, 1)), -1, dtype=np.int64)
            val = np.zeros((rows.size, max(width, 1)), dtype=np.float64)
            for k, r in enumerate(rows):
                s, e = int(csr.indptr[r]), int(csr.indptr[r + 1])
                idx[k, : e - s] = csr.indices[s:e]
                val[k, : e - s] = csr.data[s:e]
            self.slices.append(SellSlice(rows.copy(), idx, val))

    @property
    def nnz(self) -> int:
        """Number of genuine entries (excludes padding)."""
        return self._nnz

    @property
    def padding(self) -> int:
        """Total padded slots across all slices."""
        stored = sum(s.indices.size for s in self.slices)
        return stored - self._nnz

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = A @ x`` slice by slice, scattered back to original order."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"x has shape {x.shape}, expected ({self.shape[1]},)")
        y = np.zeros(self.shape[0], dtype=np.float64)
        for sl in self.slices:
            safe = np.where(sl.indices >= 0, sl.indices, 0)
            y[sl.rows] = (sl.data * x[safe]).sum(axis=1)
        return y

    def to_csr(self) -> CSRMatrix:
        """Unpack back to CSR in the original row order."""
        rows_all, cols_all, vals_all = [], [], []
        for sl in self.slices:
            mask = sl.indices >= 0
            local_rows = np.nonzero(mask)[0]
            rows_all.append(sl.rows[local_rows])
            cols_all.append(sl.indices[mask])
            vals_all.append(sl.data[mask])
        if rows_all:
            rows = np.concatenate(rows_all)
            cols = np.concatenate(cols_all)
            vals = np.concatenate(vals_all)
        else:  # pragma: no cover - zero-row matrix
            rows = cols = np.empty(0, dtype=np.int64)
            vals = np.empty(0, dtype=np.float64)
        return CSRMatrix.from_coo_arrays(
            rows, cols, vals, self.shape, sum_duplicates=False
        )

    def memory_bytes(self, index_bytes: int = 8, value_bytes: int = 8) -> int:
        """Storage footprint including per-slice padding and row ids."""
        total = 0
        for sl in self.slices:
            total += sl.indices.size * index_bytes
            total += sl.data.size * value_bytes
            total += sl.rows.size * index_bytes
        return total

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SellCSigmaMatrix(shape={self.shape}, C={self.c}, "
            f"sigma={self.sigma}, slices={len(self.slices)}, "
            f"padding={self.padding})"
        )
