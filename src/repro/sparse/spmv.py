"""SpMV kernel collection.

Three tiers of kernels over the same CSR arrays:

``spmv_scalar``
    Literal transcription of the paper's Algorithm 1 inner loops (pure
    Python).  The semantic reference all other kernels are tested against.
``spmv_vectorised`` / ``spmm_vectorised``
    Production numpy kernels (reduceat-based).  ``spmm_vectorised`` is the
    fused multi-vector kernel FBMPK's forward/backward sweeps use: one
    stream over the matrix arrays produces all output columns.
``spmv_scipy``
    scipy.sparse's compiled kernel, standing in for the vendor-optimised
    (MKL) baseline on the evaluation platforms.

All kernels produce bit-identical results up to floating-point summation
order.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix, reduce_rows

__all__ = [
    "spmv_scalar",
    "spmv_vectorised",
    "spmm_vectorised",
    "spmv_scipy",
    "spmv_blocked",
    "KERNELS",
]


def spmv_scalar(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Row-by-row SpMV exactly as written in Algorithm 1 (lines 6-12)."""
    return a.matvec_scalar(x)


def spmv_vectorised(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Vectorised SpMV: gathers ``x`` through ``indices``, multiplies the
    value stream, and reduces per row.  Streams the matrix exactly once."""
    return a.matvec(x)


def spmm_vectorised(a: CSRMatrix, xs: np.ndarray) -> np.ndarray:
    """Fused sparse matrix x dense block product ``A @ X``.

    For FBMPK, ``X`` has two columns (the two live iterates of the paper's
    forward/backward stage); the matrix arrays are read once for both.
    """
    return a.matmat(xs)


def spmv_scipy(a: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """SpMV through scipy.sparse's compiled CSR kernel (the MKL stand-in).

    The compiled handle is memoised on ``a`` (see
    :func:`repro.sparse.convert.to_scipy_csr`), so repeated calls pay
    only the kernel — not an O(nnz) format conversion per SpMV.
    """
    from .convert import to_scipy_csr

    return to_scipy_csr(a) @ np.asarray(x, dtype=np.float64)


def spmv_blocked(a: CSRMatrix, x: np.ndarray, block_rows: int = 4096) -> np.ndarray:
    """SpMV computed over contiguous row blocks.

    Functionally identical to :func:`spmv_vectorised`; exists to model the
    row-blocked traversal that the parallel scheduler hands to simulated
    threads, and to keep the peak temporary footprint bounded for very
    large matrices.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.empty(a.n_rows, dtype=np.float64)
    for lo in range(0, a.n_rows, block_rows):
        hi = min(lo + block_rows, a.n_rows)
        s, e = int(a.indptr[lo]), int(a.indptr[hi])
        products = a.data[s:e] * x[a.indices[s:e]]
        y[lo:hi] = reduce_rows(products, a.indptr[lo : hi + 1] - s)
    return y


#: Kernel registry keyed by name, used by benches and the CLI examples.
KERNELS = {
    "scalar": spmv_scalar,
    "vectorised": spmv_vectorised,
    "scipy": spmv_scipy,
    "blocked": spmv_blocked,
}
