"""Conversions between the library's sparse formats and scipy.

Every compute format (CSR, ELLPACK, SELL-C-sigma) can round-trip through
COO, and CSR bridges to ``scipy.sparse`` so the MKL-like baseline
(:mod:`repro.baselines.mkl_like`) can run the same matrices through
scipy's compiled kernels.
"""

from __future__ import annotations

import numpy as np

from .coo import COOMatrix
from .csr import CSRMatrix
from .ell import ELLMatrix
from .sell import SellCSigmaMatrix

__all__ = [
    "csr_to_coo",
    "coo_to_csr",
    "csr_to_ell",
    "csr_to_sell",
    "to_scipy_csr",
    "from_scipy",
]


def csr_to_coo(csr: CSRMatrix) -> COOMatrix:
    """Expand CSR row pointers into explicit row coordinates."""
    rows = np.repeat(np.arange(csr.n_rows, dtype=np.int64), csr.row_nnz())
    return COOMatrix(rows, csr.indices.copy(), csr.data.copy(), csr.shape)


def coo_to_csr(coo: COOMatrix) -> CSRMatrix:
    """COO -> CSR with duplicate summation."""
    return coo.to_csr()


def csr_to_ell(csr: CSRMatrix) -> ELLMatrix:
    """CSR -> ELLPACK panels."""
    return ELLMatrix.from_csr(csr)


def csr_to_sell(csr: CSRMatrix, c: int = 8, sigma: int = 64) -> SellCSigmaMatrix:
    """CSR -> SELL-C-sigma with the given slice height and sort window."""
    return SellCSigmaMatrix(csr, c=c, sigma=sigma)


def to_scipy_csr(csr: CSRMatrix, cache: bool = True):
    """Bridge to ``scipy.sparse.csr_matrix``, memoised on the matrix.

    The conversion is O(nnz); paying it once per SpMV made the
    scipy-backed baseline kernel (:func:`repro.sparse.spmv.spmv_scipy`)
    a conversion benchmark rather than an SpMV one.  The handle is
    cached on the :class:`CSRMatrix` together with the identity of the
    three CSR arrays it was built from: replacing ``indptr``,
    ``indices`` or ``data`` (the supported mutation pattern — e.g. the
    fault injector builds new arrays) invalidates the cache.  The
    handle's ``data`` array shares memory with ``csr.data`` where scipy
    allows, so in-place *value* edits are reflected too; in-place
    *index* edits are not a supported mutation.

    ``cache=False`` forces a fresh, fully copied handle (the old
    behaviour) and leaves the memo untouched.
    """
    import scipy.sparse as sp

    if not cache:
        return sp.csr_matrix(
            (csr.data.copy(), csr.indices.copy(), csr.indptr.copy()),
            shape=csr.shape,
        )
    memo = getattr(csr, "_scipy_handle", None)
    if memo is not None:
        indptr, indices, data, handle = memo
        if (indptr is csr.indptr and indices is csr.indices
                and data is csr.data):
            return handle
    handle = sp.csr_matrix(
        (csr.data, csr.indices, csr.indptr), shape=csr.shape, copy=False
    )
    try:
        csr._scipy_handle = (csr.indptr, csr.indices, csr.data, handle)
    except AttributeError:  # pragma: no cover - foreign CSR-likes
        pass
    return handle


def from_scipy(mat) -> CSRMatrix:
    """Import any scipy sparse matrix as our CSR type."""
    m = mat.tocsr()
    m.sum_duplicates()
    return CSRMatrix(
        np.asarray(m.indptr, dtype=np.int64),
        np.asarray(m.indices, dtype=np.int64),
        np.asarray(m.data, dtype=np.float64),
        m.shape,
        check=False,
    )
