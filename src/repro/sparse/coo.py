"""Coordinate (COO) sparse matrix format.

COO is the interchange format of the library: MatrixMarket files load into
COO, the synthetic generators emit COO, and conversions to the compute
formats (CSR, ELLPACK, SELL-C-sigma) go through it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .csr import CSRMatrix

__all__ = ["COOMatrix"]


class COOMatrix:
    """A sparse matrix as parallel ``(row, col, value)`` arrays.

    Duplicate coordinates are allowed and are summed on conversion to CSR,
    following the usual assembly semantics of finite-element codes.
    """

    __slots__ = ("rows", "cols", "data", "shape")

    def __init__(self, rows, cols, data, shape: Tuple[int, int]) -> None:
        self.rows = np.ascontiguousarray(rows, dtype=np.int64)
        self.cols = np.ascontiguousarray(cols, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        if not (self.rows.shape == self.cols.shape == self.data.shape):
            raise ValueError("rows, cols, data must have identical shapes")
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= self.shape[0]:
                raise ValueError("row index out of range")
            if self.cols.min() < 0 or self.cols.max() >= self.shape[1]:
                raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        """Number of stored (possibly duplicate) entries."""
        return int(self.data.shape[0])

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build from a dense array, dropping exact zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        rows, cols = np.nonzero(dense)
        return cls(rows, cols, dense[rows, cols], dense.shape)

    def to_csr(self) -> CSRMatrix:
        """Convert to CSR, summing duplicate coordinates."""
        return CSRMatrix.from_coo_arrays(
            self.rows, self.cols, self.data, self.shape
        )

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array (duplicates summed)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.data)
        return dense

    def transpose(self) -> "COOMatrix":
        """Return the transpose (swaps the coordinate arrays)."""
        return COOMatrix(self.cols, self.rows, self.data,
                         (self.shape[1], self.shape[0]))

    def symmetrized(self) -> "COOMatrix":
        """Return ``(A + A^T) / 2`` structurally: stacks both coordinate
        lists with halved values; duplicates merge on CSR conversion."""
        return COOMatrix(
            np.concatenate([self.rows, self.cols]),
            np.concatenate([self.cols, self.rows]),
            np.concatenate([self.data, self.data]) * 0.5,
            self.shape,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
