"""Memory simulation: cache hierarchy, kernel traces, analytic traffic.

Replaces the paper's LIKWID DRAM counters (Fig 9): the trace-driven
simulator measures exact line traffic on scale-reduced matrices, and the
analytic model extrapolates the same accounting to paper scale.
"""

from .cache import CacheConfig, CacheLevel, CacheStats
from .hierarchy import DramTraffic, MemoryHierarchy
from .trace import ArrayLayout, trace_fbmpk_pair, trace_mpk_standard, trace_spmv
from .traffic import (
    MatrixTrafficStats,
    TrafficBreakdown,
    TrafficParams,
    fbmpk_traffic,
    levels_blocked_crossover,
    levels_blocked_traffic,
    miss_fraction,
    mpk_standard_traffic,
    spmv_traffic,
    traffic_ratio,
)

__all__ = [
    "CacheConfig",
    "CacheLevel",
    "CacheStats",
    "DramTraffic",
    "MemoryHierarchy",
    "ArrayLayout",
    "trace_fbmpk_pair",
    "trace_mpk_standard",
    "trace_spmv",
    "MatrixTrafficStats",
    "TrafficBreakdown",
    "TrafficParams",
    "fbmpk_traffic",
    "levels_blocked_crossover",
    "levels_blocked_traffic",
    "miss_fraction",
    "mpk_standard_traffic",
    "spmv_traffic",
    "traffic_ratio",
]
